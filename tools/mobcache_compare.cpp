/// \file mobcache_compare.cpp
/// CLI: compare two experiment JSON files (as written by bench_e9_headline)
/// and flag regressions. Intended for release engineering: run E9 before
/// and after a change, then
///
///   mobcache_compare old/e9_headline.json new/e9_headline.json [tol]
///
/// exits nonzero when any scheme's normalized cache energy or execution
/// time moved by more than `tol` (default 0.02 absolute).
///
/// The parser handles exactly the subset of JSON our exporter emits (flat
/// numeric fields inside the scheme objects) — no third-party dependency.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "exp/bench_harness.hpp"

using namespace mobcache;

namespace {

struct SchemeRow {
  std::string name;
  double energy = 0.0;
  double time = 0.0;
  double miss = 0.0;
};

/// Extracts the string value following `"key":"` starting at `from`.
std::optional<std::string> find_string(const std::string& doc,
                                       const std::string& key,
                                       std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = doc.find(needle, from);
  if (pos == std::string::npos || pos >= until) return std::nullopt;
  const std::size_t start = pos + needle.size();
  const std::size_t end = doc.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return doc.substr(start, end - start);
}

std::optional<double> find_number(const std::string& doc,
                                  const std::string& key, std::size_t from,
                                  std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = doc.find(needle, from);
  if (pos == std::string::npos || pos >= until) return std::nullopt;
  return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

std::vector<SchemeRow> load(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();

  std::vector<SchemeRow> rows;
  // Each scheme object starts with {"name": — walk them in order. Scheme
  // objects contain nested per-workload objects, so bound each search by
  // the next scheme's start.
  std::vector<std::size_t> starts;
  for (std::size_t pos = doc.find("{\"name\":"); pos != std::string::npos;
       pos = doc.find("{\"name\":", pos + 1)) {
    starts.push_back(pos);
  }
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::size_t from = starts[i];
    const std::size_t until =
        i + 1 < starts.size() ? starts[i + 1] : doc.size();
    SchemeRow r;
    const auto name = find_string(doc, "name", from, until);
    const auto energy = find_number(doc, "norm_cache_energy", from, until);
    const auto time = find_number(doc, "norm_exec_time", from, until);
    const auto miss = find_number(doc, "avg_miss_rate", from, until);
    if (!name || !energy || !time || !miss) continue;
    r.name = *name;
    r.energy = *energy;
    r.time = *time;
    r.miss = *miss;
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <old.json> <new.json> [tolerance]\n",
                 argv[0]);
    return 2;
  }
  const double tol = argc > 3 ? std::strtod(argv[3], nullptr) : 0.02;

  const auto old_rows = load(argv[1]);
  const auto new_rows = load(argv[2]);
  std::map<std::string, SchemeRow> old_by_name;
  for (const SchemeRow& r : old_rows) old_by_name[r.name] = r;

  TablePrinter t({"scheme", "energy old->new", "time old->new",
                  "miss old->new", "verdict"});
  bool regressed = false;
  for (const SchemeRow& n : new_rows) {
    const auto it = old_by_name.find(n.name);
    if (it == old_by_name.end()) {
      t.add_row({n.name, "-", "-", "-", "new scheme"});
      continue;
    }
    const SchemeRow& o = it->second;
    const double de = n.energy - o.energy;
    const double dt = n.time - o.time;
    const bool bad = de > tol || dt > tol;
    regressed |= bad;
    t.add_row({n.name,
               format_double(o.energy, 3) + " -> " + format_double(n.energy, 3),
               format_double(o.time, 3) + " -> " + format_double(n.time, 3),
               format_double(o.miss, 3) + " -> " + format_double(n.miss, 3),
               bad ? "REGRESSED" : (de < -tol || dt < -tol) ? "improved"
                                                            : "ok"});
  }
  t.print();
  std::printf("\ntolerance: %.3f (absolute, on normalized metrics)\n%s\n",
              tol, regressed ? "REGRESSIONS FOUND" : "no regressions");
  return regressed ? 1 : 0;
}

int main(int argc, char** argv) {
  return guarded_main("mobcache_compare", /*install_signals=*/false, argc,
                      argv, tool_main);
}
