/// \file mobcache_appcheck.cpp
/// CLI: workload calibration report. For every app (or one named app)
/// prints the properties the reproduction depends on — kernel L2 share,
/// L1/L2 miss rates, footprints, phase list — and flags values outside the
/// calibrated bands. Run this after touching the workload models.
///
/// Usage: mobcache_appcheck [app] [records] [seed]

#include <cstdio>
#include <cstring>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "exp/bench_harness.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

bool check_app(AppId id, std::uint64_t records, std::uint64_t seed,
               TablePrinter& t) {
  const AppSpec spec = make_app(id);
  const Trace trace = generate_app_trace(id, records, seed);
  const TraceSummary ts = trace.summarize();
  const SimResult r = simulate(trace, build_scheme(SchemeKind::BaselineSram));

  const bool share_ok = spec.interactive
                            ? r.l2_kernel_fraction() > 0.35 &&
                                  r.l2_kernel_fraction() < 0.75
                            : r.l2_kernel_fraction() < 0.15;
  const bool miss_ok = r.l2_miss_rate() < 0.75;
  const bool consistent = trace.modes_consistent_with_addresses();
  const bool ok = share_ok && miss_ok && consistent;

  std::string phases;
  for (const PhaseSpec& p : spec.phases) {
    if (!phases.empty()) phases += ", ";
    phases += p.name;
  }

  t.add_row({app_name(id), spec.interactive ? "interactive" : "compute",
             phases, format_percent(ts.kernel_fraction()),
             format_percent(r.l2_kernel_fraction()),
             format_percent(r.l1d.miss_rate()),
             format_percent(r.l2_miss_rate()),
             format_bytes((ts.distinct_lines_user + ts.distinct_lines_kernel) *
                          kLineSize),
             ok ? "ok" : "OUT OF BAND"});
  return ok;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const std::uint64_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::vector<AppId> apps;
  if (argc > 1) {
    bool found = false;
    for (AppId id : all_apps()) {
      if (std::strcmp(argv[1], app_name(id)) == 0) {
        apps.push_back(id);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown app '%s'\n", argv[1]);
      return 2;
    }
  } else {
    apps = all_apps();
  }

  std::printf("workload calibration check (%s records/app, seed %llu)\n\n",
              format_count(records).c_str(),
              static_cast<unsigned long long>(seed));
  TablePrinter t({"app", "class", "phases", "trace kern", "L2 kern share",
                  "L1D miss", "L2 miss", "footprint", "band"});
  bool all_ok = true;
  for (AppId id : apps) all_ok &= check_app(id, records, seed, t);
  t.print();

  std::printf("\nbands: interactive apps 35%%-75%% kernel share of L2 "
              "accesses, compute <15%%; L2 miss <75%%.\n%s\n",
              all_ok ? "ALL IN BAND" : "CALIBRATION DRIFT DETECTED");
  return all_ok ? 0 : 1;
}

int main(int argc, char** argv) {
  return guarded_main("mobcache_appcheck", /*install_signals=*/false, argc,
                      argv, tool_main);
}
