/// \file mobcache_tracestat.cpp
/// CLI: inspect a .mct trace file — mode/type mix, footprints, reuse and
/// per-thread breakdown. The first sanity check to run on any trace before
/// simulating it.
///
/// Usage: mobcache_tracestat <trace.mct>

#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "trace/trace_compress.hpp"

using namespace mobcache;

static int tool_main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.mct>\n", argv[0]);
    return 2;
  }
  const auto trace = read_trace_any(argv[1]);
  if (!trace) {
    std::fprintf(stderr, "cannot load '%s' (missing/corrupt/inconsistent)\n",
                 argv[1]);
    return 1;
  }

  const TraceSummary s = trace->summarize();
  std::printf("trace '%s': %s records\n\n", trace->name().c_str(),
              format_count(s.total).c_str());

  TablePrinter mix({"dimension", "value"});
  mix.add_row({"kernel share", format_percent(s.kernel_fraction())});
  mix.add_row({"write share",
               format_percent(static_cast<double>(s.writes) /
                              static_cast<double>(s.total))});
  mix.add_row({"ifetch share",
               format_percent(static_cast<double>(s.ifetches) /
                              static_cast<double>(s.total))});
  mix.add_row({"distinct user lines (footprint)",
               format_count(s.distinct_lines_user) + " (" +
                   format_bytes(s.distinct_lines_user * kLineSize) + ")"});
  mix.add_row({"distinct kernel lines (footprint)",
               format_count(s.distinct_lines_kernel) + " (" +
                   format_bytes(s.distinct_lines_kernel * kLineSize) + ")"});
  mix.print();

  // Reuse: accesses per distinct line, split by mode.
  std::unordered_map<Addr, std::uint32_t> touches;
  touches.reserve(s.distinct_lines_user + s.distinct_lines_kernel);
  std::map<std::uint16_t, std::uint64_t> per_thread;
  for (const Access& a : trace->accesses()) {
    ++touches[line_addr(a.addr)];
    ++per_thread[a.thread];
  }
  Log2Histogram reuse;
  for (const auto& [line, n] : touches) reuse.add(n);
  std::printf("\nline reuse (touches per distinct line): median %llu, "
              "p90 %llu, p99 %llu\n",
              static_cast<unsigned long long>(reuse.quantile_upper_bound(0.5)),
              static_cast<unsigned long long>(reuse.quantile_upper_bound(0.9)),
              static_cast<unsigned long long>(
                  reuse.quantile_upper_bound(0.99)));

  std::printf("\nper-thread records:\n");
  TablePrinter th({"thread", "records", "share"});
  for (const auto& [tid, n] : per_thread) {
    th.add_row({std::to_string(tid), format_count(n),
                format_percent(static_cast<double>(n) /
                               static_cast<double>(s.total))});
  }
  th.print();
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("mobcache_tracestat", /*install_signals=*/false, argc,
                      argv, tool_main);
}
