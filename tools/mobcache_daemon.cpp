/// \file mobcache_daemon.cpp
/// CLI: mobcached, the long-running simulation service (docs/SERVICE.md).
/// Watches `<dir>/inbox/` for JSONL request files, answers each under
/// `<dir>/outbox/`, memoizes through a shared result store, and republishes
/// `<dir>/metrics.json` every epoch.
///
/// Usage:
///   mobcache_daemon <dir> [--store-dir=PATH] [--jobs=N] [--poll-ms=N]
///                   [--epoch-ms=N] [--once] [--idle-exit-ms=N]
///
///   <dir>              service root; inbox/ outbox/ quarantine/ are
///                      created inside it
///   --store-dir=PATH   memoize (scheme × workload) cells in the result
///                      store at PATH — shared with mobcache_simrun and the
///                      benches, byte-identical records either way
///   --jobs=N           worker threads per request (default: MOBCACHE_JOBS
///                      env, then hardware concurrency)
///   --poll-ms=N        inbox poll interval while idle (default 50)
///   --epoch-ms=N       metrics.json republish cadence (default 1000)
///   --once             serve everything currently queued, then exit
///   --idle-exit-ms=N   exit cleanly after N ms with an empty inbox
///
/// Exit codes (shared guarded_main contract, src/common/error.hpp):
/// 0 ok, 2 usage error, 75 interrupted by SIGINT/SIGTERM — the drain is
/// resumable: finished points are persisted, the in-flight request file
/// stays queued, and a restarted daemon completes it from warm hits.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/bench_harness.hpp"
#include "exp/parallel.hpp"
#include "service/service.hpp"

using namespace mobcache;

namespace {

/// Value of an `--name=value` flag; an empty value is a hard usage error
/// (same contract as mobcache_simrun).
std::string require_flag_value(const std::string& a, const char* flag,
                               const char* what) {
  std::string v = a.substr(std::strlen(flag));
  if (v.empty()) {
    std::fprintf(stderr, "%.*s needs %s\n",
                 static_cast<int>(std::strlen(flag) - 1), flag, what);
    std::exit(2);
  }
  return v;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dir> [--store-dir=PATH] [--jobs=N] [--poll-ms=N]\n"
               "          [--epoch-ms=N] [--once] [--idle-exit-ms=N]\n",
               argv0);
  return 2;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  ServiceConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      if (!cfg.dir.empty()) return usage(argv[0]);
      cfg.dir = a;
    } else if (a.rfind("--store-dir=", 0) == 0) {
      cfg.store_dir = require_flag_value(a, "--store-dir=", "a path");
    } else if (a.rfind("--jobs=", 0) == 0) {
      cfg.jobs = static_cast<unsigned>(std::strtoul(
          require_flag_value(a, "--jobs=", "a count").c_str(), nullptr, 10));
    } else if (a.rfind("--poll-ms=", 0) == 0) {
      cfg.poll_ms = std::strtoull(
          require_flag_value(a, "--poll-ms=", "an interval").c_str(), nullptr,
          10);
    } else if (a.rfind("--epoch-ms=", 0) == 0) {
      cfg.epoch_ms = std::strtoull(
          require_flag_value(a, "--epoch-ms=", "an interval").c_str(),
          nullptr, 10);
    } else if (a == "--once") {
      cfg.once = true;
    } else if (a.rfind("--idle-exit-ms=", 0) == 0) {
      cfg.idle_exit_ms = std::strtoull(
          require_flag_value(a, "--idle-exit-ms=", "a duration").c_str(),
          nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (cfg.dir.empty()) return usage(argv[0]);
  MobcacheDaemon daemon(cfg);
  std::printf("mobcached: serving %s (store: %s, jobs: %u)\n",
              cfg.dir.c_str(),
              cfg.store_dir.empty() ? "off" : cfg.store_dir.c_str(),
              effective_jobs(cfg.jobs));
  return daemon.run();
}

int main(int argc, char** argv) {
  // Signal handlers on: SIGTERM/SIGINT drain the in-flight request, keep
  // the store and inbox consistent, and exit 75 (resumable).
  return guarded_main("mobcached", /*install_signals=*/true, argc, argv,
                      tool_main);
}
