/// \file mobcache_tracegen.cpp
/// CLI: generate a synthetic mobile workload trace and save it as .mct.
///
/// Usage: mobcache_tracegen <app> <records> <out.mct> [seed]
///   app: launcher|browser|game|video|audio|email|maps|social|fft|matmul
///        or "mix" (time-sliced multitasking scenario over all interactive
///        apps, see workload/scenario.hpp)

#include <cstdio>
#include <cstring>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "workload/scenario.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

static int tool_main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <app|mix> <records> <out.mct> [seed]\napps:",
                 argv[0]);
    for (AppId id : all_apps()) std::fprintf(stderr, " %s", app_name(id));
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::uint64_t records = std::strtoull(argv[2], nullptr, 10);
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  if (records == 0) {
    std::fprintf(stderr, "records must be > 0\n");
    return 2;
  }

  Trace trace;
  if (std::strcmp(argv[1], "mix") == 0) {
    ScenarioConfig sc;
    sc.apps = interactive_apps();
    sc.total_accesses = records;
    sc.seed = seed;
    trace = generate_scenario(sc);
  } else {
    bool found = false;
    for (AppId id : all_apps()) {
      if (std::strcmp(argv[1], app_name(id)) == 0) {
        trace = generate_app_trace(id, records, seed);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown app '%s'\n", argv[1]);
      return 2;
    }
  }

  const std::string out_path = argv[3];
  const bool compressed =
      out_path.size() > 5 && out_path.rfind(".mctz") == out_path.size() - 5;
  const bool ok = compressed ? write_trace_compressed(trace, out_path)
                             : write_trace(trace, out_path);
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  const TraceSummary s = trace.summarize();
  std::printf("%s: %s records (%s kernel, %s writes) -> %s\n",
              trace.name().c_str(), format_count(s.total).c_str(),
              format_percent(s.kernel_fraction()).c_str(),
              format_percent(static_cast<double>(s.writes) /
                             static_cast<double>(s.total)).c_str(),
              argv[3]);
  return 0;
}

int main(int argc, char** argv) {
  // No signal handlers: trace generation has no resumable state — Ctrl-C
  // should kill it like any other short-lived tool.
  return guarded_main("mobcache_tracegen", /*install_signals=*/false, argc,
                      argv, tool_main);
}
