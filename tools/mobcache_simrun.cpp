/// \file mobcache_simrun.cpp
/// CLI: run traces (generated or from .mct files) through one or all L2
/// schemes and print the full result sheet. The scripting workhorse —
/// everything the bench binaries compute is reachable from here.
///
/// Usage:
///   mobcache_simrun <trace.mct|app[,app...]> [scheme|all] [records] [seed]
///                   [--trace-out=FILE[,FORMAT]] [--metrics[=FILE]]
///                   [--sample=N] [--trace-evictions]
/// Schemes: base shrunk sharedstt sp spmrstt dp dpstt all (default: all)
///
/// Observability flags (docs/OBSERVABILITY.md):
///   --trace-out=FILE[,FORMAT]  structured event trace for every run.
///                              FORMAT: jsonl | chrome (default from the
///                              extension: .jsonl -> jsonl, .json/.trace ->
///                              chrome; otherwise jsonl).
///   --metrics[=FILE]           merged metric registry across all runs —
///                              printed as a table, or written as JSON when
///                              FILE is given.
///   --sample=N                 push an epoch sample every N trace records
///                              (schemes without internal epochs; the
///                              dynamic L2 always samples at its epochs).
///   --trace-evictions          include per-block eviction events in the
///                              trace (high volume; off by default).

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_compress.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::optional<SchemeKind> parse_scheme(const char* s) {
  if (std::strcmp(s, "base") == 0) return SchemeKind::BaselineSram;
  if (std::strcmp(s, "shrunk") == 0) return SchemeKind::ShrunkSram;
  if (std::strcmp(s, "sharedstt") == 0) return SchemeKind::SharedStt;
  if (std::strcmp(s, "sp") == 0) return SchemeKind::StaticPartSram;
  if (std::strcmp(s, "spmrstt") == 0) return SchemeKind::StaticPartMrstt;
  if (std::strcmp(s, "dp") == 0) return SchemeKind::DynamicSram;
  if (std::strcmp(s, "dpstt") == 0) return SchemeKind::DynamicStt;
  return std::nullopt;
}

Trace load_or_generate(const std::string& spec, std::uint64_t records,
                       std::uint64_t seed) {
  if (auto t = read_trace_any(spec)) return std::move(*t);
  for (AppId id : all_apps()) {
    if (spec == app_name(id)) return generate_app_trace(id, records, seed);
  }
  std::fprintf(stderr, "'%s' is neither a readable .mct nor an app name\n",
               spec.c_str());
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

struct CliFlags {
  std::string trace_out;
  TraceFormat trace_format = TraceFormat::Jsonl;
  bool want_metrics = false;
  std::string metrics_out;  ///< empty = print table to stdout
  std::uint64_t sample_interval = 0;
  bool trace_evictions = false;

  bool telemetry_needed() const {
    return !trace_out.empty() || want_metrics || sample_interval != 0;
  }
};

/// Consumes --flags from (argc, argv); returns remaining positional args.
std::vector<std::string> parse_flags(int argc, char** argv, CliFlags& f) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional.push_back(a);
      continue;
    }
    if (a.rfind("--trace-out=", 0) == 0) {
      std::string spec = a.substr(std::strlen("--trace-out="));
      const std::size_t comma = spec.rfind(',');
      bool format_given = false;
      if (comma != std::string::npos) {
        if (auto fmt = parse_trace_format(spec.substr(comma + 1))) {
          f.trace_format = *fmt;
          format_given = true;
          spec.resize(comma);
        }
      }
      if (!format_given) {
        f.trace_format = ends_with(spec, ".json") || ends_with(spec, ".trace")
                             ? TraceFormat::ChromeTrace
                             : TraceFormat::Jsonl;
      }
      f.trace_out = std::move(spec);
    } else if (a == "--metrics") {
      f.want_metrics = true;
    } else if (a.rfind("--metrics=", 0) == 0) {
      f.want_metrics = true;
      f.metrics_out = a.substr(std::strlen("--metrics="));
    } else if (a.rfind("--sample=", 0) == 0) {
      f.sample_interval =
          std::strtoull(a.c_str() + std::strlen("--sample="), nullptr, 10);
    } else if (a == "--trace-evictions") {
      f.trace_evictions = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      std::exit(2);
    }
  }
  return positional;
}

void print_metrics_table(const MetricRegistry& reg) {
  if (reg.empty()) {
    std::printf("(no metrics recorded)\n");
    return;
  }
  if (!reg.counters().empty()) {
    TablePrinter t({"counter", "value"});
    for (const auto& [name, c] : reg.counters())
      t.add_row({name, format_count(c.value())});
    t.print();
    std::printf("\n");
  }
  if (!reg.gauges().empty()) {
    TablePrinter t({"gauge", "last"});
    for (const auto& [name, g] : reg.gauges())
      t.add_row({name, format_double(g.value(), 3)});
    t.print();
    std::printf("\n");
  }
  if (!reg.stats().empty()) {
    TablePrinter t({"stat", "n", "mean", "min", "max"});
    for (const auto& [name, s] : reg.stats())
      t.add_row({name, format_count(s.count()), format_double(s.mean(), 3),
                 format_double(s.min(), 3), format_double(s.max(), 3)});
    t.print();
    std::printf("\n");
  }
  if (!reg.histograms().empty()) {
    TablePrinter t({"histogram", "n", "p50 <=", "p95 <="});
    for (const auto& [name, h] : reg.histograms())
      t.add_row({name, format_count(h.total()),
                 format_count(h.quantile_upper_bound(0.5)),
                 format_count(h.quantile_upper_bound(0.95))});
    t.print();
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  const std::vector<std::string> pos = parse_flags(argc, argv, flags);
  if (pos.empty()) {
    std::fprintf(
        stderr,
        "usage: %s <trace.mct|app[,app...]> [scheme|all] [records] [seed]\n"
        "          [--trace-out=FILE[,jsonl|chrome]] [--metrics[=FILE]]\n"
        "          [--sample=N] [--trace-evictions]\n",
        argv[0]);
    return 2;
  }
  const std::uint64_t records =
      pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10) : 1'000'000;
  const std::uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 1;

  std::vector<Trace> traces;
  for (const std::string& spec : split_commas(pos[0]))
    traces.push_back(load_or_generate(spec, records, seed));

  std::vector<SchemeKind> kinds;
  if (pos.size() <= 1 || pos[1] == "all") {
    kinds = headline_schemes();
  } else if (auto k = parse_scheme(pos[1].c_str())) {
    kinds = {SchemeKind::BaselineSram};
    if (*k != SchemeKind::BaselineSram) kinds.push_back(*k);
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", pos[1].c_str());
    return 2;
  }

  TraceSinkOptions sink_opts;
  sink_opts.include_evictions = flags.trace_evictions;
  TraceSink sink(flags.trace_format, sink_opts);
  // One session per (trace, scheme) run: contexts stay distinct in the trace
  // and per-run registries merge cleanly afterwards. Sessions must outlive
  // the sink's render (hub subscribers reference them).
  std::vector<std::unique_ptr<Telemetry>> sessions;

  for (const Trace& trace : traces) {
    std::printf("trace '%s' (%s records, kernel %s)\n\n", trace.name().c_str(),
                format_count(trace.size()).c_str(),
                format_percent(trace.summarize().kernel_fraction()).c_str());

    TablePrinter t({"scheme", "L2 miss", "cycles", "CPI", "leak uJ", "dyn uJ",
                    "refresh uJ", "DRAM uJ", "cache E vs base",
                    "time vs base"});
    std::optional<SimResult> base;
    for (SchemeKind k : kinds) {
      SimOptions opts;
      if (flags.telemetry_needed()) {
        sessions.push_back(std::make_unique<Telemetry>());
        Telemetry& tel = *sessions.back();
        tel.set_sample_interval(flags.sample_interval);
        if (!flags.trace_out.empty()) sink.attach(tel);
        opts.telemetry = &tel;
      }
      const SimResult r = simulate(trace, build_scheme(k), opts);
      if (!base) base = r;
      const EnergyBreakdown& e = r.l2_energy;
      t.add_row({scheme_name(k), format_percent(r.l2_miss_rate()),
                 format_count(r.cycles), format_double(r.cpi, 2),
                 format_double(e.leakage_nj / 1e3, 1),
                 format_double((e.read_nj + e.write_nj) / 1e3, 1),
                 format_double(e.refresh_nj / 1e3, 1),
                 format_double(e.dram_nj / 1e3, 1),
                 format_double(e.cache_nj() / base->l2_energy.cache_nj(), 3),
                 format_double(static_cast<double>(r.cycles) /
                                   static_cast<double>(base->cycles),
                               3)});
    }
    t.print();
    std::printf("\n");
  }

  if (!flags.trace_out.empty()) {
    if (!sink.write_file(flags.trace_out)) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   flags.trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (%s)\n", sink.event_count(),
                flags.trace_out.c_str(),
                flags.trace_format == TraceFormat::Jsonl ? "jsonl" : "chrome");
  }

  if (flags.want_metrics) {
    MetricRegistry merged;
    for (const auto& tel : sessions) merged.merge(tel->metrics());
    if (flags.metrics_out.empty()) {
      std::printf("merged metrics (%zu runs)\n", sessions.size());
      print_metrics_table(merged);
    } else {
      JsonWriter w;
      write_metrics_json(w, merged);
      std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write metrics to '%s'\n",
                     flags.metrics_out.c_str());
        return 1;
      }
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote metrics JSON to %s\n", flags.metrics_out.c_str());
    }
  }
  return 0;
}
