/// \file mobcache_simrun.cpp
/// CLI: run traces (generated or from .mct files) through one or all L2
/// schemes and print the full result sheet. The scripting workhorse —
/// everything the bench binaries compute is reachable from here.
///
/// Usage:
///   mobcache_simrun <trace.mct|app[,app...]> [scheme|all] [records] [seed]
///                   [--trace-out=FILE[,FORMAT]] [--metrics[=FILE]]
///                   [--sample=N] [--trace-evictions]
///                   [--fault-rate=R] [--ecc=KIND] [--fault-seed=N]
///                   [--way-disable-threshold=N] [--fault-sweep=R1,R2,...]
///                   [--jobs=N] [--store-dir=PATH] [--resume]
///                   [--keep-going] [--retry-failed] [--point-deadline-ms=N]
/// Schemes: base shrunk sharedstt drowsy victim sp spmrstt dp dpstt all
/// (default: all) — the shared parse_scheme_kind() vocabulary, so simrun
/// and the mobcached request protocol accept exactly the same names.
///
/// Parallelism (docs/PARALLELISM.md):
///   --jobs=N                   worker threads for --fault-sweep mode
///                              (default: MOBCACHE_JOBS env, then hardware
///                              concurrency). Results are identical for
///                              every N. The plain per-scheme mode stays
///                              serial: its telemetry sessions attach to one
///                              shared trace sink.
///
/// Resumable sweeps (docs/RESULT_STORE.md):
///   --store-dir=PATH           serve already-computed (scheme, trace)
///                              points from the result store at PATH and
///                              persist new ones there. Cached results are
///                              byte-identical to recomputed ones.
///   --resume                   same, using MOBCACHE_RESULT_STORE when set,
///                              else <results>/result_store. Memoization is
///                              skipped while --trace-out/--sample are
///                              active (cached results cannot replay event
///                              streams). With --metrics, a cache hit skips
///                              the run entirely — only executed runs
///                              contribute sim metrics — and the store's own
///                              hit/miss/corrupt counters surface under
///                              result_store.* in the merged registry.
///
/// Observability flags (docs/OBSERVABILITY.md):
///   --trace-out=FILE[,FORMAT]  structured event trace for every run.
///                              FORMAT: jsonl | chrome (default from the
///                              extension: .jsonl -> jsonl, .json/.trace ->
///                              chrome; otherwise jsonl).
///   --metrics[=FILE]           merged metric registry across all runs —
///                              printed as a table, or written as JSON when
///                              FILE is given. Includes the process-wide
///                              stream.* (trace chunking) and fleet.* (E22
///                              population sweep) counter groups.
///   --sample=N                 push an epoch sample every N trace records
///                              (schemes without internal epochs; the
///                              dynamic L2 always samples at its epochs).
///   --trace-evictions          include per-block eviction events in the
///                              trace (high volume; off by default).
///
/// Resilience flags (docs/RELIABILITY.md):
///   --fault-rate=R             per-write fault probability; scales the
///                              transient and retention-variation intensity
///                              with it (0 = off, bit-identical to a
///                              fault-free run).
///   --ecc=KIND                 none | parity | secded | dected (default
///                              secded).
///   --fault-seed=N             fault-stream RNG seed (default 1).
///   --way-disable-threshold=N  write faults on one way before it is
///                              quarantined (0 = never).
///   --fault-sweep=R1,R2,...    error-rate sweep: rerun each selected
///                              scheme at every rate, normalized against
///                              its own rate-0 run (bench E21 from the CLI).
///
/// Fault supervision (docs/RELIABILITY.md):
///   --keep-going               a failing (trace, scheme) run becomes a
///                              one-line diagnostic plus sweep.failed
///                              counter instead of aborting; with a store
///                              it is quarantined as a poison record and
///                              skipped (not re-run) on later resumes.
///                              --fault-sweep mode stays fail-fast: its
///                              points are normalized against each other,
///                              so a partial sweep has no meaning.
///   --retry-failed             ignore poison records: quarantined points
///                              re-run, and a success replaces the poison.
///   --point-deadline-ms=N      per-run wall-clock budget; an overrunning
///                              point throws DeadlineExceeded (exit 4, or a
///                              keep-going failure).
///
/// Exit codes (shared guarded_main contract, src/common/error.hpp):
/// 0 ok, 1 corrupt/unreadable input, 2 usage error, 3 numeric invariant
/// broken, 4 point deadline exceeded, 5 unexpected exception, 75
/// interrupted by SIGINT/SIGTERM (resumable — completed points persisted).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "energy/technology.hpp"
#include "exp/bench_harness.hpp"
#include "exp/fleet.hpp"
#include "exp/parallel.hpp"
#include "exp/result_store.hpp"
#include "exp/runner.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_stream.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

Trace load_or_generate(const std::string& spec, std::uint64_t records,
                       std::uint64_t seed) {
  TraceReadResult r = read_trace_any_detailed(spec);
  if (r.ok()) return std::move(*r.trace);
  if (r.status != TraceIoStatus::FileNotFound) {
    // The path exists but does not decode: refusing loudly beats silently
    // regenerating a different workload under the same name.
    std::fprintf(stderr, "cannot load trace '%s': %s (%s)\n", spec.c_str(),
                 to_string(r.status), r.detail.c_str());
    std::exit(1);
  }
  for (AppId id : all_apps()) {
    if (spec == app_name(id)) return generate_app_trace(id, records, seed);
  }
  std::fprintf(stderr, "'%s' is neither a readable .mct nor an app name\n",
               spec.c_str());
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

struct CliFlags {
  std::string trace_out;
  TraceFormat trace_format = TraceFormat::Jsonl;
  bool want_metrics = false;
  std::string metrics_out;  ///< empty = print table to stdout
  std::uint64_t sample_interval = 0;
  bool trace_evictions = false;

  double fault_rate = 0.0;
  EccKind ecc = EccKind::Secded;
  std::uint64_t fault_seed = 1;
  std::uint32_t way_disable_threshold = 0;
  std::vector<double> sweep_rates;
  unsigned jobs = 0;  ///< 0 = auto (MOBCACHE_JOBS, then hw concurrency)
  /// --store-dir / --resume are parsed here for validation but resolved by
  /// bench_result_store(argc, argv), the shared precedence logic.
  bool want_store = false;
  bool keep_going = false;
  bool retry_failed = false;
  std::uint64_t point_deadline_ms = 0;

  bool telemetry_needed() const {
    return !trace_out.empty() || want_metrics || sample_interval != 0;
  }

  FaultConfig fault_config(double rate) const {
    return FaultConfig::from_rate(rate, ecc, way_disable_threshold,
                                  fault_seed);
  }
};

/// Value of an `--name=value` flag. An empty value is a hard usage error for
/// every `=`-flag: `--metrics=` silently falling back to the stdout table
/// (or `--trace-out=` writing nowhere) hides a truncated shell variable.
/// `flag` includes the trailing '='; `what` names the expected value.
std::string require_flag_value(const std::string& a, const char* flag,
                               const char* what) {
  std::string v = a.substr(std::strlen(flag));
  if (v.empty()) {
    std::fprintf(stderr, "%.*s needs %s\n",
                 static_cast<int>(std::strlen(flag) - 1), flag, what);
    std::exit(2);
  }
  return v;
}

/// Consumes --flags from (argc, argv); returns remaining positional args.
std::vector<std::string> parse_flags(int argc, char** argv, CliFlags& f) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional.push_back(a);
      continue;
    }
    if (a.rfind("--trace-out=", 0) == 0) {
      std::string spec = require_flag_value(a, "--trace-out=", "a path");
      const std::size_t comma = spec.rfind(',');
      bool format_given = false;
      if (comma != std::string::npos) {
        if (auto fmt = parse_trace_format(spec.substr(comma + 1))) {
          f.trace_format = *fmt;
          format_given = true;
          spec.resize(comma);
        }
      }
      if (!format_given) {
        f.trace_format = ends_with(spec, ".json") || ends_with(spec, ".trace")
                             ? TraceFormat::ChromeTrace
                             : TraceFormat::Jsonl;
      }
      f.trace_out = std::move(spec);
    } else if (a == "--metrics") {
      f.want_metrics = true;
    } else if (a.rfind("--metrics=", 0) == 0) {
      f.want_metrics = true;
      f.metrics_out = require_flag_value(a, "--metrics=", "a path");
    } else if (a.rfind("--sample=", 0) == 0) {
      f.sample_interval = std::strtoull(
          require_flag_value(a, "--sample=", "an interval").c_str(), nullptr,
          10);
    } else if (a == "--trace-evictions") {
      f.trace_evictions = true;
    } else if (a.rfind("--fault-rate=", 0) == 0) {
      f.fault_rate = std::strtod(
          require_flag_value(a, "--fault-rate=", "a rate").c_str(), nullptr);
      if (f.fault_rate < 0.0 || f.fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be in [0, 1]\n");
        std::exit(2);
      }
    } else if (a.rfind("--ecc=", 0) == 0) {
      const std::string kind = require_flag_value(a, "--ecc=", "a kind");
      if (auto k = parse_ecc_kind(kind)) {
        f.ecc = *k;
      } else {
        std::fprintf(stderr,
                     "unknown --ecc '%s' (none|parity|secded|dected)\n",
                     kind.c_str());
        std::exit(2);
      }
    } else if (a.rfind("--fault-seed=", 0) == 0) {
      f.fault_seed = std::strtoull(
          require_flag_value(a, "--fault-seed=", "a seed").c_str(), nullptr,
          10);
    } else if (a.rfind("--way-disable-threshold=", 0) == 0) {
      f.way_disable_threshold = static_cast<std::uint32_t>(std::strtoul(
          require_flag_value(a, "--way-disable-threshold=", "a count").c_str(),
          nullptr, 10));
    } else if (a.rfind("--fault-sweep=", 0) == 0) {
      for (const std::string& r : split_commas(
               require_flag_value(a, "--fault-sweep=", "at least one rate"))) {
        f.sweep_rates.push_back(std::strtod(r.c_str(), nullptr));
      }
      if (f.sweep_rates.empty()) {
        std::fprintf(stderr, "--fault-sweep needs at least one rate\n");
        std::exit(2);
      }
    } else if (a.rfind("--jobs=", 0) == 0) {
      f.jobs = static_cast<unsigned>(std::strtoul(
          require_flag_value(a, "--jobs=", "a count").c_str(), nullptr, 10));
    } else if (a.rfind("--store-dir=", 0) == 0) {
      require_flag_value(a, "--store-dir=", "a path");
      f.want_store = true;
    } else if (a == "--resume") {
      f.want_store = true;
    } else if (a == "--keep-going") {
      f.keep_going = true;
    } else if (a == "--retry-failed") {
      f.retry_failed = true;
    } else if (a.rfind("--point-deadline-ms=", 0) == 0) {
      f.point_deadline_ms = std::strtoull(
          require_flag_value(a, "--point-deadline-ms=", "a deadline").c_str(),
          nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      std::exit(2);
    }
  }
  return positional;
}

void print_metrics_table(const MetricRegistry& reg) {
  if (reg.empty()) {
    std::printf("(no metrics recorded)\n");
    return;
  }
  if (!reg.counters().empty()) {
    TablePrinter t({"counter", "value"});
    for (const auto& [name, c] : reg.counters())
      t.add_row({name, format_count(c.value())});
    t.print();
    std::printf("\n");
  }
  if (!reg.gauges().empty()) {
    TablePrinter t({"gauge", "last"});
    for (const auto& [name, g] : reg.gauges())
      t.add_row({name, format_double(g.value(), 3)});
    t.print();
    std::printf("\n");
  }
  if (!reg.stats().empty()) {
    TablePrinter t({"stat", "n", "mean", "min", "max"});
    for (const auto& [name, s] : reg.stats())
      t.add_row({name, format_count(s.count()), format_double(s.mean(), 3),
                 format_double(s.min(), 3), format_double(s.max(), 3)});
    t.print();
    std::printf("\n");
  }
  if (!reg.histograms().empty()) {
    TablePrinter t({"histogram", "n", "p50 <=", "p95 <="});
    for (const auto& [name, h] : reg.histograms())
      t.add_row({name, format_count(h.total()),
                 format_count(h.quantile_upper_bound(0.5)),
                 format_count(h.quantile_upper_bound(0.95))});
    t.print();
    std::printf("\n");
  }
}

/// --fault-sweep mode: error-rate vs energy/CPI per selected scheme, each
/// point normalized against that scheme's own fault-free run.
int run_sweep_mode(const CliFlags& flags, std::vector<Trace> traces,
                   const std::vector<SchemeKind>& kinds, ResultStore* store) {
  ExperimentRunner runner(std::move(traces));
  runner.jobs = effective_jobs(flags.jobs);
  runner.result_store = store;
  runner.sim_options.point_deadline_ms = flags.point_deadline_ms;
  SchemeParams tmpl;
  tmpl.fault = flags.fault_config(0.0);
  tmpl.fault.ecc = flags.ecc;
  tmpl.fault.way_disable_threshold = flags.way_disable_threshold;
  tmpl.fault.seed = flags.fault_seed;

  for (SchemeKind k : kinds) {
    const std::vector<FaultSweepPoint> pts =
        run_fault_sweep(runner, k, flags.sweep_rates, tmpl);
    std::printf("fault sweep: %s (ecc=%s, threshold=%u)\n", scheme_name(k),
                std::string(to_string(flags.ecc)).c_str(),
                flags.way_disable_threshold);
    TablePrinter t({"rate", "cache E vs clean", "time vs clean", "L2 miss",
                    "corrected", "lost", "dirty lost", "scrub repair",
                    "ways out"});
    for (const FaultSweepPoint& p : pts) {
      t.add_row({format_double(p.rate, 6), format_double(p.norm_cache_energy, 3),
                 format_double(p.norm_exec_time, 3),
                 format_percent(p.avg_miss_rate),
                 format_count(p.ecc_corrections), format_count(p.fault_losses),
                 format_count(p.dirty_losses), format_count(p.scrub_repairs),
                 format_count(p.quarantined_ways)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  CliFlags flags;
  const std::vector<std::string> pos = parse_flags(argc, argv, flags);
  if (pos.empty()) {
    std::fprintf(
        stderr,
        "usage: %s <trace.mct|app[,app...]> [scheme|all] [records] [seed]\n"
        "          [--trace-out=FILE[,jsonl|chrome]] [--metrics[=FILE]]\n"
        "          [--sample=N] [--trace-evictions]\n"
        "          [--fault-rate=R] [--ecc=none|parity|secded|dected]\n"
        "          [--fault-seed=N] [--way-disable-threshold=N]\n"
        "          [--fault-sweep=R1,R2,...] [--jobs=N]\n"
        "          [--store-dir=PATH] [--resume]\n"
        "          [--keep-going] [--retry-failed] [--point-deadline-ms=N]\n",
        argv[0]);
    return 2;
  }
  const std::uint64_t records =
      pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10) : 1'000'000;
  const std::uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 1;

  std::vector<Trace> traces;
  for (const std::string& spec : split_commas(pos[0]))
    traces.push_back(load_or_generate(spec, records, seed));

  std::vector<SchemeKind> kinds;
  if (pos.size() <= 1 || pos[1] == "all") {
    kinds = headline_schemes();
  } else if (auto k = parse_scheme_kind(pos[1])) {
    kinds = {SchemeKind::BaselineSram};
    if (*k != SchemeKind::BaselineSram) kinds.push_back(*k);
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", pos[1].c_str());
    return 2;
  }

  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  if (store) store->set_retry_failed(flags.retry_failed);

  if (!flags.sweep_rates.empty())
    return run_sweep_mode(flags, std::move(traces), kinds, store.get());

  SchemeParams params;
  params.fault = flags.fault_config(flags.fault_rate);
  const bool faulted = params.fault.enabled();

  // Plain-mode memoization: with a store attached, each (trace, scheme) run
  // is a pure function of its inputs and can be served from (or persisted
  // to) the store. Keys match the ones the ExperimentRunner computes, so
  // simrun and the benches share entries. Event-stream flags opt out: a
  // cached SimResult cannot replay the per-access events --trace-out and
  // --sample exist to capture. (--metrics is fine — hits simply skip the
  // run, so the merged registry covers executed runs plus store counters.)
  const bool memoize = store != nullptr && flags.trace_out.empty() &&
                       flags.sample_interval == 0;
  const std::uint64_t tech_hash = memoize ? hash_technology(technology()) : 0;

  TraceSinkOptions sink_opts;
  sink_opts.include_evictions = flags.trace_evictions;
  TraceSink sink(flags.trace_format, sink_opts);
  // One session per (trace, scheme) run: contexts stay distinct in the trace
  // and per-run registries merge cleanly afterwards. Sessions must outlive
  // the sink's render (hub subscribers reference them).
  std::vector<std::unique_ptr<Telemetry>> sessions;

  // Keep-going bookkeeping, surfaced as sweep.* counters under --metrics.
  // quarantined counts within failed: those points were skipped because a
  // poison record already diagnosed them.
  std::uint64_t sweep_completed = 0;
  std::uint64_t sweep_failed = 0;
  std::uint64_t sweep_quarantined = 0;

  for (const Trace& trace : traces) {
    const std::uint64_t trace_hash = memoize ? hash_trace(trace) : 0;
    std::printf("trace '%s' (%s records, kernel %s)\n\n", trace.name().c_str(),
                format_count(trace.size()).c_str(),
                format_percent(trace.summarize().kernel_fraction()).c_str());

    TablePrinter t({"scheme", "L2 miss", "cycles", "CPI", "leak uJ", "dyn uJ",
                    "refresh uJ", "DRAM uJ", "cache E vs base",
                    "time vs base"});
    TablePrinter ft({"scheme", "write faults", "transients", "corrected",
                     "lost", "dirty lost", "scrub repair", "silent",
                     "ways out"});
    std::optional<SimResult> base;
    for (SchemeKind k : kinds) {
      SimOptions opts;
      opts.point_deadline_ms = flags.point_deadline_ms;
      SimResult r;
      bool cached_hit = false;
      std::uint64_t key = 0;
      if (memoize) {
        // Same key recipe as ExperimentRunner::run_scheme. The key ignores
        // opts.telemetry and the supervision knobs (hash_sim_options covers
        // semantic fields only), so it can be computed before a session is
        // attached.
        const std::uint64_t dh = ContentHasher()
                                     .mix(std::string("scheme"))
                                     .mix(static_cast<std::uint64_t>(k))
                                     .mix(hash_scheme_params(params))
                                     .digest();
        key = result_point_key(dh, trace_hash, hash_sim_options(opts),
                               tech_hash);
        if (std::optional<SimResult> cached = store->lookup(key)) {
          r = std::move(*cached);
          cached_hit = true;
        } else if (flags.keep_going) {
          if (std::optional<StoredFailure> poisoned =
                  store->lookup_failure(key)) {
            std::fprintf(stderr,
                         "simrun: quarantined %s/%s: [%s] %s "
                         "(--retry-failed to re-run)\n",
                         trace.name().c_str(), scheme_name(k),
                         poisoned->error_type.c_str(),
                         poisoned->message.c_str());
            ++sweep_failed;
            ++sweep_quarantined;
            continue;
          }
        }
      }
      if (!cached_hit) {
        if (flags.telemetry_needed()) {
          sessions.push_back(std::make_unique<Telemetry>());
          Telemetry& tel = *sessions.back();
          tel.set_sample_interval(flags.sample_interval);
          if (!flags.trace_out.empty()) sink.attach(tel);
          opts.telemetry = &tel;
        }
        if (flags.keep_going) {
          try {
            r = simulate(trace, build_scheme(k, params), opts);
            validate_sim_result_finite(r);
          } catch (...) {
            const std::exception_ptr e = std::current_exception();
            // Cancellation is a run-level event, never a point failure.
            if (is_cancellation(e)) std::rethrow_exception(e);
            std::fprintf(stderr, "simrun: point failed: %s/%s: [%s] %s\n",
                         trace.name().c_str(), scheme_name(k),
                         error_type_of(e).c_str(),
                         error_message_of(e).c_str());
            if (memoize) {
              store->store_failure(
                  key, StoredFailure{error_type_of(e), error_message_of(e)});
            }
            ++sweep_failed;
            continue;
          }
        } else {
          r = simulate(trace, build_scheme(k, params), opts);
          validate_sim_result_finite(r);
        }
        if (memoize) store->store(key, r);
      }
      ++sweep_completed;
      if (!base) base = r;
      const EnergyBreakdown& e = r.l2_energy;
      t.add_row({scheme_name(k), format_percent(r.l2_miss_rate()),
                 format_count(r.cycles), format_double(r.cpi, 2),
                 format_double(e.leakage_nj / 1e3, 1),
                 format_double((e.read_nj + e.write_nj) / 1e3, 1),
                 format_double(e.refresh_nj / 1e3, 1),
                 format_double(e.dram_nj / 1e3, 1),
                 format_double(e.cache_nj() / base->l2_energy.cache_nj(), 3),
                 format_double(static_cast<double>(r.cycles) /
                                   static_cast<double>(base->cycles),
                               3)});
      if (faulted) {
        ft.add_row({scheme_name(k), format_count(r.l2.write_faults),
                    format_count(r.l2.transient_upsets),
                    format_count(r.l2.ecc_corrections),
                    format_count(r.l2.fault_losses),
                    format_count(r.l2.fault_lost_dirty),
                    format_count(r.l2.scrub_repairs),
                    format_count(r.l2.silent_faults),
                    format_count(r.l2_quarantined_ways)});
      }
    }
    t.print();
    std::printf("\n");
    if (faulted) {
      std::printf("resilience (fault rate %g, ecc %s)\n", flags.fault_rate,
                  std::string(to_string(flags.ecc)).c_str());
      ft.print();
      std::printf("\n");
    }
  }

  if (!flags.trace_out.empty()) {
    if (!sink.write_file(flags.trace_out)) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   flags.trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (%s)\n", sink.event_count(),
                flags.trace_out.c_str(),
                flags.trace_format == TraceFormat::Jsonl ? "jsonl" : "chrome");
  }

  if (flags.want_metrics) {
    MetricRegistry merged;
    for (const auto& tel : sessions) merged.merge(tel->metrics());
    if (store) {
      const ResultStoreStats st = store->stats();
      merged.counter("result_store.hits").add(st.hits);
      merged.counter("result_store.misses").add(st.misses);
      merged.counter("result_store.stores").add(st.stores);
      merged.counter("result_store.corrupt_skipped").add(st.corrupt_skipped);
      merged.counter("result_store.loaded").add(st.loaded);
      merged.counter("result_store.poisoned_loaded").add(st.poisoned_loaded);
      merged.counter("result_store.poison_hits").add(st.poison_hits);
      merged.counter("result_store.poison_stores").add(st.poison_stores);
    }
    // Sweep supervision counters (failure details: one stderr line each,
    // plus poison records when a store is attached).
    merged.counter("sweep.completed").add(sweep_completed);
    merged.counter("sweep.failed").add(sweep_failed);
    merged.counter("sweep.quarantined").add(sweep_quarantined);
    // Streaming-pipeline counters (docs/SWEEP_ENGINE.md): every generated
    // workload now flows through chunked TraceStreams, so chunks_generated
    // ticks even for materialized runs; high_water_chunk_bytes is the
    // constant-memory witness. fleet.* stays zero unless a fleet sweep ran
    // in this process (bench_e22_fleet), but the keys are part of the
    // registry contract either way.
    const StreamCounters stream = stream_counters();
    merged.counter("stream.chunks_generated").add(stream.chunks_generated);
    merged.counter("stream.chunk_reuse_hits").add(stream.chunk_reuse_hits);
    merged.counter("stream.high_water_chunk_bytes")
        .add(stream.high_water_chunk_bytes);
    const FleetCounters fleet = fleet_counters();
    merged.counter("fleet.sessions_simulated").add(fleet.sessions_simulated);
    merged.counter("fleet.session_records").add(fleet.session_records);
    merged.counter("fleet.shard_merges").add(fleet.shard_merges);
    if (flags.metrics_out.empty()) {
      std::printf("merged metrics (%zu runs)\n", sessions.size());
      print_metrics_table(merged);
    } else {
      const std::string doc = metrics_json_string(merged) + "\n";
      std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
      if (f == nullptr || std::fwrite(doc.data(), 1, doc.size(), f) !=
                              doc.size()) {
        if (f != nullptr) std::fclose(f);
        std::fprintf(stderr, "cannot write metrics to '%s'\n",
                     flags.metrics_out.c_str());
        return 1;
      }
      std::fclose(f);
      std::printf("wrote metrics JSON to %s\n", flags.metrics_out.c_str());
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  // Signal handlers on: simrun drives resumable sweeps, so SIGINT/SIGTERM
  // drain in-flight points, keep the store consistent, and exit 75.
  return guarded_main("mobcache_simrun", /*install_signals=*/true, argc, argv,
                      tool_main);
}
