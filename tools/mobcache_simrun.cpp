/// \file mobcache_simrun.cpp
/// CLI: run a trace (generated or from a .mct file) through one or all L2
/// schemes and print the full result sheet. The scripting workhorse —
/// everything the bench binaries compute is reachable from here.
///
/// Usage:
///   mobcache_simrun <trace.mct|app-name> [scheme|all] [records] [seed]
/// Schemes: base shrunk sharedstt sp spmrstt dp dpstt all (default: all)

#include <cstdio>
#include <cstring>
#include <optional>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_compress.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::optional<SchemeKind> parse_scheme(const char* s) {
  if (std::strcmp(s, "base") == 0) return SchemeKind::BaselineSram;
  if (std::strcmp(s, "shrunk") == 0) return SchemeKind::ShrunkSram;
  if (std::strcmp(s, "sharedstt") == 0) return SchemeKind::SharedStt;
  if (std::strcmp(s, "sp") == 0) return SchemeKind::StaticPartSram;
  if (std::strcmp(s, "spmrstt") == 0) return SchemeKind::StaticPartMrstt;
  if (std::strcmp(s, "dp") == 0) return SchemeKind::DynamicSram;
  if (std::strcmp(s, "dpstt") == 0) return SchemeKind::DynamicStt;
  return std::nullopt;
}

Trace load_or_generate(const char* spec, std::uint64_t records,
                       std::uint64_t seed) {
  if (auto t = read_trace_any(spec)) return std::move(*t);
  for (AppId id : all_apps()) {
    if (std::strcmp(spec, app_name(id)) == 0)
      return generate_app_trace(id, records, seed);
  }
  std::fprintf(stderr, "'%s' is neither a readable .mct nor an app name\n",
               spec);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.mct|app> [scheme|all] [records] [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::uint64_t records =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  const Trace trace = load_or_generate(argv[1], records, seed);

  std::vector<SchemeKind> kinds;
  if (argc <= 2 || std::strcmp(argv[2], "all") == 0) {
    kinds = headline_schemes();
  } else if (auto k = parse_scheme(argv[2])) {
    kinds = {SchemeKind::BaselineSram};
    if (*k != SchemeKind::BaselineSram) kinds.push_back(*k);
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", argv[2]);
    return 2;
  }

  std::printf("trace '%s' (%s records, kernel %s)\n\n", trace.name().c_str(),
              format_count(trace.size()).c_str(),
              format_percent(trace.summarize().kernel_fraction()).c_str());

  TablePrinter t({"scheme", "L2 miss", "cycles", "CPI", "leak uJ", "dyn uJ",
                  "refresh uJ", "DRAM uJ", "cache E vs base", "time vs base"});
  std::optional<SimResult> base;
  for (SchemeKind k : kinds) {
    const SimResult r = simulate(trace, build_scheme(k));
    if (!base) base = r;
    const EnergyBreakdown& e = r.l2_energy;
    t.add_row({scheme_name(k), format_percent(r.l2_miss_rate()),
               format_count(r.cycles), format_double(r.cpi, 2),
               format_double(e.leakage_nj / 1e3, 1),
               format_double((e.read_nj + e.write_nj) / 1e3, 1),
               format_double(e.refresh_nj / 1e3, 1),
               format_double(e.dram_nj / 1e3, 1),
               format_double(e.cache_nj() / base->l2_energy.cache_nj(), 3),
               format_double(static_cast<double>(r.cycles) /
                                 static_cast<double>(base->cycles),
                             3)});
  }
  t.print();
  return 0;
}
