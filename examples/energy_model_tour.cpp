/// \file energy_model_tour.cpp
/// Tour of the analytical technology model: how SRAM and the three
/// STT-RAM retention classes trade leakage, access energy and latency
/// across capacities — and where the break-even points that drive the
/// paper's design choices come from.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "energy/technology.hpp"

using namespace mobcache;

int main() {
  std::printf("=== mobcache technology model tour (1 GHz, 64 B lines) ===\n\n");

  // 1. The raw parameter table (the NVSim/CACTI substitute).
  TablePrinter t({"tech", "capacity", "leakage", "read", "write",
                  "read lat", "write lat", "retention"});
  for (std::uint64_t kb : {256ull, 512ull, 1024ull, 2048ull}) {
    const std::uint64_t bytes = kb << 10;
    auto add = [&](const char* name, const TechParams& p) {
      t.add_row({name, format_bytes(bytes),
                 format_double(p.leakage_mw, 1) + " mW",
                 format_double(p.read_energy_nj, 3) + " nJ",
                 format_double(p.write_energy_nj, 3) + " nJ",
                 std::to_string(p.read_latency) + " cyc",
                 std::to_string(p.write_latency) + " cyc",
                 p.retention_cycles == 0
                     ? "inf"
                     : format_double(
                           static_cast<double>(p.retention_cycles) / 1e6, 0) +
                           " ms"});
    };
    add("SRAM", make_sram(bytes));
    add("STT LO", make_sttram(bytes, RetentionClass::Lo));
    add("STT MID", make_sttram(bytes, RetentionClass::Mid));
    add("STT HI", make_sttram(bytes, RetentionClass::Hi));
  }
  t.print();

  // 2. Break-even: at what write intensity does STT-RAM stop paying off?
  // Cache power = leakage + write_rate × E_write. STT wins while its
  // leakage saving exceeds its extra write cost.
  std::printf("\nSTT-RAM vs SRAM break-even write rate (writes/s where the "
              "leakage saving is spent):\n");
  TablePrinter b({"capacity", "vs STT LO", "vs STT MID", "vs STT HI"});
  for (std::uint64_t kb : {256ull, 1024ull, 2048ull}) {
    const std::uint64_t bytes = kb << 10;
    const TechParams sram = make_sram(bytes);
    auto breakeven = [&](RetentionClass r) {
      const TechParams stt = make_sttram(bytes, r);
      const double leak_saving_mw = sram.leakage_mw - stt.leakage_mw;
      const double extra_write_nj = stt.write_energy_nj - sram.write_energy_nj;
      // mW = 1e6 nJ/s.
      const double rate = leak_saving_mw * 1e6 / extra_write_nj;
      return format_double(rate / 1e6, 1) + " M/s";
    };
    b.add_row({format_bytes(bytes), breakeven(RetentionClass::Lo),
               breakeven(RetentionClass::Mid), breakeven(RetentionClass::Hi)});
  }
  b.print();

  // 3. Refresh overhead of finite retention: steady-state scrub power for a
  // full segment of dirty blocks.
  std::printf("\nworst-case scrub power (every block dirty, rewritten once "
              "per retention period):\n");
  TablePrinter r({"capacity", "class", "blocks", "scrub power",
                  "vs its own leakage"});
  for (RetentionClass rc : {RetentionClass::Lo, RetentionClass::Mid}) {
    const std::uint64_t bytes = 512ull << 10;
    const TechParams p = make_sttram(bytes, rc);
    const double blocks = static_cast<double>(bytes / kLineSize);
    const double period_s =
        static_cast<double>(p.retention_cycles) / kClockHz;
    const double scrub_mw =
        blocks * p.write_energy_nj / period_s / 1e6;  // nJ/s → mW
    r.add_row({format_bytes(bytes), std::string(to_string(rc)),
               format_count(static_cast<unsigned long long>(blocks)),
               format_double(scrub_mw, 3) + " mW",
               format_percent(scrub_mw / p.leakage_mw)});
  }
  r.print();

  std::printf(
      "\nTakeaways: (1) SRAM leakage dwarfs everything at L2 sizes — the "
      "paper's target;\n(2) mobile L2 write rates (well under a million "
      "lines/s) sit far below the STT\nbreak-even, so STT-RAM wins; (3) "
      "even LO-retention scrub power is negligible\nagainst the leakage it "
      "eliminates, which is why short retention is worth it\nwherever block "
      "lifetimes allow.\n");
  return 0;
}
