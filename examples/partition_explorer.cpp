/// \file partition_explorer.cpp
/// Interactive design-space tool: evaluate any user/kernel segment sizing
/// and technology pairing on any app from the command line.
///
/// Usage:
///   partition_explorer [app] [user_kb] [user_assoc] [kernel_kb]
///                      [kernel_assoc] [tech] [user_ret] [kernel_ret]
///   partition_explorer auto [max_slowdown]   — run the autosizer instead
///   app:   launcher|browser|game|video|audio|email|maps|social|fft|matmul
///          |camera|messenger
///   tech:  sram|stt        ret: lo|mid|hi
/// Examples:
///   partition_explorer browser 768 12 256 8 stt mid lo
///   partition_explorer auto 1.03

#include <cstdio>
#include <cstring>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/partition_autosizer.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

AppId parse_app(const char* s) {
  for (AppId id : all_apps()) {
    if (std::strcmp(s, app_name(id)) == 0) return id;
  }
  std::fprintf(stderr, "unknown app '%s', using browser\n", s);
  return AppId::Browser;
}

RetentionClass parse_ret(const char* s) {
  if (std::strcmp(s, "lo") == 0) return RetentionClass::Lo;
  if (std::strcmp(s, "mid") == 0) return RetentionClass::Mid;
  return RetentionClass::Hi;
}

}  // namespace

int run_autosizer(int argc, char** argv) {
  AutosizerConfig cfg;
  cfg.tech = TechKind::SttRam;
  if (argc > 2) cfg.max_slowdown = std::strtod(argv[2], nullptr);
  std::printf("autosizing a multi-retention STT partition for the primary "
              "suite (time budget %.2fx)...\n\n",
              cfg.max_slowdown);
  std::vector<Trace> traces;
  for (AppId id : interactive_apps())
    traces.push_back(generate_app_trace(id, 400'000, 42));
  const CandidateScore best = PartitionAutosizer(cfg).best(traces);
  std::printf("chosen: user %s %u-way + kernel %s %u-way  (total %s)\n"
              "  normalized cache energy %.3f, exec time %.3f, miss %.1f%%, "
              "budget %s\n",
              format_bytes(best.candidate.user_bytes).c_str(),
              best.candidate.user_assoc,
              format_bytes(best.candidate.kernel_bytes).c_str(),
              best.candidate.kernel_assoc,
              format_bytes(best.candidate.total_bytes()).c_str(),
              best.norm_cache_energy, best.norm_exec_time,
              best.avg_miss_rate * 100,
              best.feasible ? "met" : "NOT met (least-bad fallback)");
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "auto") == 0) {
    return run_autosizer(argc, argv);
  }
  const AppId app = argc > 1 ? parse_app(argv[1]) : AppId::Browser;
  const std::uint64_t user_kb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  const std::uint32_t user_assoc =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10)) : 8;
  const std::uint64_t kernel_kb = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 256;
  const std::uint32_t kernel_assoc =
      argc > 5 ? static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10)) : 8;
  const bool stt = argc > 6 && std::strcmp(argv[6], "stt") == 0;
  const RetentionClass user_ret = argc > 7 ? parse_ret(argv[7]) : RetentionClass::Mid;
  const RetentionClass kernel_ret = argc > 8 ? parse_ret(argv[8]) : RetentionClass::Lo;

  std::printf("exploring: app=%s user=%lluK/%u kernel=%lluK/%u tech=%s\n\n",
              app_name(app), static_cast<unsigned long long>(user_kb),
              user_assoc, static_cast<unsigned long long>(kernel_kb),
              kernel_assoc, stt ? "STT-RAM" : "SRAM");

  const Trace trace = generate_app_trace(app, 1'500'000, 7);
  const SimResult base =
      simulate(trace, build_scheme(SchemeKind::BaselineSram));

  StaticPartitionConfig pc;
  if (stt) {
    pc.user = sttram_segment(user_kb << 10, user_assoc, user_ret);
    pc.kernel = sttram_segment(kernel_kb << 10, kernel_assoc, kernel_ret);
  } else {
    pc.user = sram_segment(user_kb << 10, user_assoc);
    pc.kernel = sram_segment(kernel_kb << 10, kernel_assoc);
  }

  std::unique_ptr<L2Interface> l2;
  try {
    l2 = std::make_unique<StaticPartitionedL2>(pc);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid geometry: %s\n", e.what());
    std::fprintf(stderr, "hint: size/(64*assoc) must be a power of two "
                         "(e.g. 768K needs 12-way, 512K works 8-way)\n");
    return 1;
  }
  const std::string design = l2->describe();
  const SimResult r = simulate(trace, std::move(l2));

  TablePrinter t({"metric", "baseline 2MB SRAM", "your design"});
  t.add_row({"description", "shared 2048KB 16-way SRAM", design});
  t.add_row({"L2 miss rate", format_percent(base.l2_miss_rate()),
             format_percent(r.l2_miss_rate())});
  t.add_row({"user miss rate", format_percent(base.l2.miss_rate(Mode::User)),
             format_percent(r.l2.miss_rate(Mode::User))});
  t.add_row({"kernel miss rate",
             format_percent(base.l2.miss_rate(Mode::Kernel)),
             format_percent(r.l2.miss_rate(Mode::Kernel))});
  t.add_row({"cache energy (uJ)",
             format_double(base.l2_energy.cache_nj() / 1e3, 1),
             format_double(r.l2_energy.cache_nj() / 1e3, 1)});
  t.add_row({"  leakage (uJ)",
             format_double(base.l2_energy.leakage_nj / 1e3, 1),
             format_double(r.l2_energy.leakage_nj / 1e3, 1)});
  t.add_row({"  writes+refresh (uJ)",
             format_double((base.l2_energy.write_nj +
                            base.l2_energy.refresh_nj) / 1e3, 1),
             format_double((r.l2_energy.write_nj + r.l2_energy.refresh_nj) /
                           1e3, 1)});
  t.add_row({"DRAM energy (uJ)",
             format_double(base.l2_energy.dram_nj / 1e3, 1),
             format_double(r.l2_energy.dram_nj / 1e3, 1)});
  t.add_row({"exec cycles", format_count(base.cycles),
             format_count(r.cycles)});
  t.add_row({"vs baseline", "1.000 / 1.000",
             format_double(r.l2_energy.cache_nj() /
                           base.l2_energy.cache_nj(), 3) + " energy, " +
             format_double(static_cast<double>(r.cycles) /
                           static_cast<double>(base.cycles), 3) + " time"});
  t.print();
  return 0;
}
