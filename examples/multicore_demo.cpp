/// \file multicore_demo.cpp
/// Two phone cores, one L2: shows the future-work extension end to end.
/// Core 0 runs the browser, core 1 plays music; the grouped dynamic L2
/// gives each core its own user segment and shares one kernel segment.
///
/// Usage: multicore_demo [records-per-core]

#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "sim/multicore.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

int main(int argc, char** argv) {
  const std::uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800'000;

  std::printf("=== multicore demo: browser on core 0, audio on core 1 ===\n\n");
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Browser, records, 42));
  traces.push_back(generate_app_trace(AppId::AudioPlayer, records, 43));

  // The conventional SoC: one mode-oblivious 2 MB SRAM L2.
  auto shared = std::make_unique<ModeOnlyL2Adapter>(
      build_scheme(SchemeKind::BaselineSram));
  const MulticoreResult base = simulate_multicore(traces, std::move(shared));

  // The extension: shared kernel segment + per-core user segments, all
  // short-retention STT-RAM, resized per epoch.
  MulticoreL2Config mc;
  mc.cache.name = "L2";
  mc.cache.size_bytes = 2ull << 20;
  mc.cache.assoc = 16;
  mc.cores = 2;
  MulticoreDynamicL2 grouped(mc);
  const MulticoreResult dp = simulate_multicore(traces, grouped);

  TablePrinter t({"metric", "shared SRAM 2MB", "grouped dynamic STT"});
  t.add_row({"L2 miss rate", format_percent(base.l2_miss_rate()),
             format_percent(dp.l2_miss_rate())});
  t.add_row({"makespan (cycles)", format_count(base.makespan),
             format_count(dp.makespan)});
  t.add_row({"avg enabled capacity", format_bytes(2ull << 20),
             format_bytes(static_cast<std::uint64_t>(
                 dp.l2_avg_enabled_bytes))});
  t.add_row({"cache energy (uJ)",
             format_double(base.l2_energy.cache_nj() / 1e3, 1),
             format_double(dp.l2_energy.cache_nj() / 1e3, 1)});
  t.add_row({"cache energy vs shared", "1.000",
             format_double(dp.l2_energy.cache_nj() /
                               base.l2_energy.cache_nj(), 3)});
  t.print();

  std::printf("\nfinal allocation: kernel %u ways", grouped.group_ways(0));
  for (std::uint32_t c = 0; c < mc.cores; ++c)
    std::printf(", core%u user %u ways", c, grouped.group_ways(1 + c));
  std::printf(", %u ways off (%s reconfigurations)\n",
              16 - grouped.group_ways(0) - grouped.group_ways(1) -
                  grouped.group_ways(2),
              format_count(grouped.reconfigurations()).c_str());

  std::printf("\nper-core view:\n");
  TablePrinter pc({"core", "workload", "cycles", "L1D miss"});
  for (std::size_t c = 0; c < dp.cores.size(); ++c) {
    pc.add_row({std::to_string(c), dp.cores[c].workload,
                format_count(dp.cores[c].cycles),
                format_percent(dp.cores[c].l1d.miss_rate())});
  }
  pc.print();
  return 0;
}
