/// \file browser_session.cpp
/// Domain scenario: a browsing session on a 2015-class phone. Walks the
/// full analysis pipeline the paper performs on one app — kernel share,
/// interference, lifetimes, then the three proposed designs.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/multi_retention_l2.hpp"
#include "core/scheme.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

int main(int argc, char** argv) {
  const std::uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  std::printf("=== browser session study (%s records) ===\n\n",
              format_count(records).c_str());
  const Trace trace = generate_app_trace(AppId::Browser, records, 2015);

  // 1. Workload anatomy.
  const TraceSummary ts = trace.summarize();
  std::printf("workload: %s records, %.1f%% kernel, %.1f%% stores, "
              "%s distinct user lines, %s distinct kernel lines\n\n",
              format_count(ts.total).c_str(), ts.kernel_fraction() * 100,
              100.0 * static_cast<double>(ts.writes) /
                  static_cast<double>(ts.total),
              format_count(ts.distinct_lines_user).c_str(),
              format_count(ts.distinct_lines_kernel).c_str());

  // 2. The baseline and its interference problem, with lifetimes recorded.
  LifetimeRecorder rec;
  SimOptions opts;
  opts.l2_eviction_observer = rec.observer();
  const SimResult base =
      simulate(trace, build_scheme(SchemeKind::BaselineSram), opts);

  std::printf("shared 2 MB SRAM L2: miss %.1f%%, kernel share of L2 "
              "accesses %.1f%%, cross-mode evictions %s (%.0f%% of all "
              "evictions)\n",
              base.l2_miss_rate() * 100, base.l2_kernel_fraction() * 100,
              format_count(base.l2.cross_mode_evictions).c_str(),
              100.0 * static_cast<double>(base.l2.cross_mode_evictions) /
                  static_cast<double>(base.l2.evictions));
  std::printf("block lifetimes (median fill→last-use): user %.2f ms, "
              "kernel %.2f ms → advisor: user %s, kernel %s\n\n",
              static_cast<double>(
                  rec.liveness(Mode::User).quantile_upper_bound(0.5)) / 1e6,
              static_cast<double>(
                  rec.liveness(Mode::Kernel).quantile_upper_bound(0.5)) / 1e6,
              std::string(to_string(RetentionAdvisor::recommend(
                  rec.liveness(Mode::User)))).c_str(),
              std::string(to_string(RetentionAdvisor::recommend(
                  rec.liveness(Mode::Kernel)))).c_str());

  // 3. The three proposed designs.
  TablePrinter t({"design", "capacity", "avg enabled", "L2 miss",
                  "cache energy", "exec time", "battery story"});
  auto add = [&](SchemeKind k, const char* story) {
    const SimResult r = simulate(trace, build_scheme(k));
    t.add_row({scheme_name(k), format_bytes(r.l2_capacity_bytes),
               format_bytes(static_cast<std::uint64_t>(r.l2_avg_enabled_bytes)),
               format_percent(r.l2_miss_rate()),
               format_percent(r.l2_energy.cache_nj() /
                              base.l2_energy.cache_nj()),
               format_double(static_cast<double>(r.cycles) /
                                 static_cast<double>(base.cycles),
                             3),
               story});
  };
  add(SchemeKind::BaselineSram, "stock phone");
  add(SchemeKind::StaticPartSram, "partition + shrink");
  add(SchemeKind::StaticPartMrstt, "+ multi-retention STT-RAM");
  add(SchemeKind::DynamicStt, "+ dynamic sizing");
  t.print();

  std::printf("\nThe L2's energy bill for this session drops to a fraction "
              "of the stock design's\nwhile page loads stay within a few "
              "percent of their original time.\n");
  return 0;
}
