/// \file quickstart.cpp
/// Minimal tour of the mobcache API:
///   1. generate a synthetic mobile workload trace,
///   2. run it through an L2 design,
///   3. read back miss rate, energy and timing.
///
/// Usage: quickstart [records-per-app]   (default 1,000,000)

#include <cstdlib>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

int main(int argc, char** argv) {
  const std::uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;

  std::cout << "mobcache quickstart: every app through the stock shared "
               "2 MB SRAM L2 and the paper's DP-STT design\n\n";

  TablePrinter table({"app", "kernel L2 share", "base miss", "dpstt miss",
                      "cache energy vs base", "exec time vs base"});

  for (AppId id : all_apps()) {
    // 1. Workload: a synthetic interactive-app trace (user + kernel
    //    interleaved), deterministic in the seed.
    const Trace trace = generate_app_trace(id, records, /*seed=*/42);

    // 2. Designs: factory defaults follow the paper's configuration.
    SimResult base = simulate(trace, build_scheme(SchemeKind::BaselineSram));
    SimResult dpstt = simulate(trace, build_scheme(SchemeKind::DynamicStt));

    // 3. Results.
    const double e_ratio =
        dpstt.l2_energy.cache_nj() / base.l2_energy.cache_nj();
    const double t_ratio = static_cast<double>(dpstt.cycles) /
                           static_cast<double>(base.cycles);
    table.add_row({app_name(id), format_percent(base.l2_kernel_fraction()),
                   format_percent(base.l2_miss_rate()),
                   format_percent(dpstt.l2_miss_rate()),
                   format_double(e_ratio, 3), format_double(t_ratio, 3)});
  }

  table.print();
  std::cout << "\nInteractive apps should show >40% kernel L2 share "
               "(the paper's motivating observation) and a large cache-"
               "energy reduction under DP-STT.\n";
  return 0;
}
