# Empty dependencies file for mobcache_tests.
# This may be replaced when dependencies are built.
