
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autosizer.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_autosizer.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_autosizer.cpp.o.d"
  "/root/repo/tests/test_bank_model.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_bank_model.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_bank_model.cpp.o.d"
  "/root/repo/tests/test_bypass.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_bypass.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_bypass.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cache_retention.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_cache_retention.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_cache_retention.cpp.o.d"
  "/root/repo/tests/test_drowsy.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_drowsy.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_drowsy.cpp.o.d"
  "/root/repo/tests/test_dvfs.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_dvfs.cpp.o.d"
  "/root/repo/tests/test_dynamic_controller.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_dynamic_controller.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_dynamic_controller.cpp.o.d"
  "/root/repo/tests/test_dynamic_l2.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_dynamic_l2.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_dynamic_l2.cpp.o.d"
  "/root/repo/tests/test_energy_accounting.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_energy_accounting.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_energy_accounting.cpp.o.d"
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_fault.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_inclusion.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_inclusion.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_inclusion.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json_export.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_json_export.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_json_export.cpp.o.d"
  "/root/repo/tests/test_kernel_equiv.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_kernel_equiv.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_kernel_equiv.cpp.o.d"
  "/root/repo/tests/test_kernel_model.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_kernel_model.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_kernel_model.cpp.o.d"
  "/root/repo/tests/test_multi_retention.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_multi_retention.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_multi_retention.cpp.o.d"
  "/root/repo/tests/test_multicore.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_multicore.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_multicore.cpp.o.d"
  "/root/repo/tests/test_multiseed.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_multiseed.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_multiseed.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_paper_bands.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_paper_bands.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_paper_bands.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_prefetcher.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_prefetcher.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_refresh.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_refresh.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_refresh.cpp.o.d"
  "/root/repo/tests/test_replacement.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_replacement.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_replacement.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_scheme.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_scheme.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_scheme.cpp.o.d"
  "/root/repo/tests/test_shadow_monitor.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_shadow_monitor.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_shadow_monitor.cpp.o.d"
  "/root/repo/tests/test_shared_l2.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_shared_l2.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_shared_l2.cpp.o.d"
  "/root/repo/tests/test_static_partitioned.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_static_partitioned.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_static_partitioned.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_technology.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_technology.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_technology.cpp.o.d"
  "/root/repo/tests/test_technology_config.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_technology_config.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_technology_config.cpp.o.d"
  "/root/repo/tests/test_temperature.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_temperature.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_temperature.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_cache.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_trace_cache.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_trace_cache.cpp.o.d"
  "/root/repo/tests/test_trace_compress.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_trace_compress.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_trace_compress.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_victim_cache.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_victim_cache.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_victim_cache.cpp.o.d"
  "/root/repo/tests/test_wear.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_wear.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_wear.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/mobcache_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/mobcache_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/mobcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
