# Empty dependencies file for bench_e19_temperature.
# This may be replaced when dependencies are built.
