file(REMOVE_RECURSE
  "CMakeFiles/bench_e19_temperature.dir/bench_e19_temperature.cpp.o"
  "CMakeFiles/bench_e19_temperature.dir/bench_e19_temperature.cpp.o.d"
  "bench_e19_temperature"
  "bench_e19_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e19_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
