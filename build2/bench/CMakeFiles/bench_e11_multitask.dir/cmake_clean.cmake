file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_multitask.dir/bench_e11_multitask.cpp.o"
  "CMakeFiles/bench_e11_multitask.dir/bench_e11_multitask.cpp.o.d"
  "bench_e11_multitask"
  "bench_e11_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
