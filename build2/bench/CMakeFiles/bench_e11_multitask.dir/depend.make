# Empty dependencies file for bench_e11_multitask.
# This may be replaced when dependencies are built.
