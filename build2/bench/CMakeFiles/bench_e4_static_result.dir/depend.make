# Empty dependencies file for bench_e4_static_result.
# This may be replaced when dependencies are built.
