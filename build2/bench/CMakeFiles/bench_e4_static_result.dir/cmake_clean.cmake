file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_static_result.dir/bench_e4_static_result.cpp.o"
  "CMakeFiles/bench_e4_static_result.dir/bench_e4_static_result.cpp.o.d"
  "bench_e4_static_result"
  "bench_e4_static_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_static_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
