# Empty dependencies file for bench_e20_endurance.
# This may be replaced when dependencies are built.
