file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_endurance.dir/bench_e20_endurance.cpp.o"
  "CMakeFiles/bench_e20_endurance.dir/bench_e20_endurance.cpp.o.d"
  "bench_e20_endurance"
  "bench_e20_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
