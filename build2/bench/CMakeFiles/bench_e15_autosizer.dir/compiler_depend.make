# Empty compiler generated dependencies file for bench_e15_autosizer.
# This may be replaced when dependencies are built.
