file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_autosizer.dir/bench_e15_autosizer.cpp.o"
  "CMakeFiles/bench_e15_autosizer.dir/bench_e15_autosizer.cpp.o.d"
  "bench_e15_autosizer"
  "bench_e15_autosizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_autosizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
