file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_dvfs.dir/bench_e17_dvfs.cpp.o"
  "CMakeFiles/bench_e17_dvfs.dir/bench_e17_dvfs.cpp.o.d"
  "bench_e17_dvfs"
  "bench_e17_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
