# Empty dependencies file for bench_e3_static_sweep.
# This may be replaced when dependencies are built.
