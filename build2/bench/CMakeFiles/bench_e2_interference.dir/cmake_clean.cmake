file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_interference.dir/bench_e2_interference.cpp.o"
  "CMakeFiles/bench_e2_interference.dir/bench_e2_interference.cpp.o.d"
  "bench_e2_interference"
  "bench_e2_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
