# Empty dependencies file for bench_e2_interference.
# This may be replaced when dependencies are built.
