file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_multicore.dir/bench_e16_multicore.cpp.o"
  "CMakeFiles/bench_e16_multicore.dir/bench_e16_multicore.cpp.o.d"
  "bench_e16_multicore"
  "bench_e16_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
