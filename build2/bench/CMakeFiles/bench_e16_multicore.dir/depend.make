# Empty dependencies file for bench_e16_multicore.
# This may be replaced when dependencies are built.
