# Empty dependencies file for bench_e12_prefetch.
# This may be replaced when dependencies are built.
