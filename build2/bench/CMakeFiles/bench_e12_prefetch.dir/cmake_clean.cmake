file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_prefetch.dir/bench_e12_prefetch.cpp.o"
  "CMakeFiles/bench_e12_prefetch.dir/bench_e12_prefetch.cpp.o.d"
  "bench_e12_prefetch"
  "bench_e12_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
