# Empty compiler generated dependencies file for bench_e13_sensitivity.
# This may be replaced when dependencies are built.
