file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_sensitivity.dir/bench_e13_sensitivity.cpp.o"
  "CMakeFiles/bench_e13_sensitivity.dir/bench_e13_sensitivity.cpp.o.d"
  "bench_e13_sensitivity"
  "bench_e13_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
