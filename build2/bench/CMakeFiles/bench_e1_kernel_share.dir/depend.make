# Empty dependencies file for bench_e1_kernel_share.
# This may be replaced when dependencies are built.
