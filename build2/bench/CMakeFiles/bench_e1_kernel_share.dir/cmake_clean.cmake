file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_kernel_share.dir/bench_e1_kernel_share.cpp.o"
  "CMakeFiles/bench_e1_kernel_share.dir/bench_e1_kernel_share.cpp.o.d"
  "bench_e1_kernel_share"
  "bench_e1_kernel_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_kernel_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
