# Empty compiler generated dependencies file for bench_e6_retention_sweep.
# This may be replaced when dependencies are built.
