file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_retention_sweep.dir/bench_e6_retention_sweep.cpp.o"
  "CMakeFiles/bench_e6_retention_sweep.dir/bench_e6_retention_sweep.cpp.o.d"
  "bench_e6_retention_sweep"
  "bench_e6_retention_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_retention_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
