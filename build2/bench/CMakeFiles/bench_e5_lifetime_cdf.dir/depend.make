# Empty dependencies file for bench_e5_lifetime_cdf.
# This may be replaced when dependencies are built.
