file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_lifetime_cdf.dir/bench_e5_lifetime_cdf.cpp.o"
  "CMakeFiles/bench_e5_lifetime_cdf.dir/bench_e5_lifetime_cdf.cpp.o.d"
  "bench_e5_lifetime_cdf"
  "bench_e5_lifetime_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_lifetime_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
