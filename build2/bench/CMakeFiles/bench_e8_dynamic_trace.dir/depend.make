# Empty dependencies file for bench_e8_dynamic_trace.
# This may be replaced when dependencies are built.
