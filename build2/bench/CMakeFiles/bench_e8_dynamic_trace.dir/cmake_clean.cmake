file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_dynamic_trace.dir/bench_e8_dynamic_trace.cpp.o"
  "CMakeFiles/bench_e8_dynamic_trace.dir/bench_e8_dynamic_trace.cpp.o.d"
  "bench_e8_dynamic_trace"
  "bench_e8_dynamic_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_dynamic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
