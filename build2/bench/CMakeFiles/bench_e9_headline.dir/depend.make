# Empty dependencies file for bench_e9_headline.
# This may be replaced when dependencies are built.
