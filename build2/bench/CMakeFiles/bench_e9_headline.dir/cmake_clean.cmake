file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_headline.dir/bench_e9_headline.cpp.o"
  "CMakeFiles/bench_e9_headline.dir/bench_e9_headline.cpp.o.d"
  "bench_e9_headline"
  "bench_e9_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
