file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_energy_breakdown.dir/bench_e7_energy_breakdown.cpp.o"
  "CMakeFiles/bench_e7_energy_breakdown.dir/bench_e7_energy_breakdown.cpp.o.d"
  "bench_e7_energy_breakdown"
  "bench_e7_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
