file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_ablation.dir/bench_e10_ablation.cpp.o"
  "CMakeFiles/bench_e10_ablation.dir/bench_e10_ablation.cpp.o.d"
  "bench_e10_ablation"
  "bench_e10_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
