file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_seeds.dir/bench_e14_seeds.cpp.o"
  "CMakeFiles/bench_e14_seeds.dir/bench_e14_seeds.cpp.o.d"
  "bench_e14_seeds"
  "bench_e14_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
