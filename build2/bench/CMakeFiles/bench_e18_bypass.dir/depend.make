# Empty dependencies file for bench_e18_bypass.
# This may be replaced when dependencies are built.
