file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_bypass.dir/bench_e18_bypass.cpp.o"
  "CMakeFiles/bench_e18_bypass.dir/bench_e18_bypass.cpp.o.d"
  "bench_e18_bypass"
  "bench_e18_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
