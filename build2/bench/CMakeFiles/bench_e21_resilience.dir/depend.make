# Empty dependencies file for bench_e21_resilience.
# This may be replaced when dependencies are built.
