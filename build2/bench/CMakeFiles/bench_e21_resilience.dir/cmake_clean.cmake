file(REMOVE_RECURSE
  "CMakeFiles/bench_e21_resilience.dir/bench_e21_resilience.cpp.o"
  "CMakeFiles/bench_e21_resilience.dir/bench_e21_resilience.cpp.o.d"
  "bench_e21_resilience"
  "bench_e21_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e21_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
