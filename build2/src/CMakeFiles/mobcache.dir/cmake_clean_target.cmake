file(REMOVE_RECURSE
  "libmobcache.a"
)
