# Empty dependencies file for mobcache.
# This may be replaced when dependencies are built.
