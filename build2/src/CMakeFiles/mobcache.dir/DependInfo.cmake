
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/bank_model.cpp" "src/CMakeFiles/mobcache.dir/cache/bank_model.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/bank_model.cpp.o.d"
  "/root/repo/src/cache/bypass_predictor.cpp" "src/CMakeFiles/mobcache.dir/cache/bypass_predictor.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/bypass_predictor.cpp.o.d"
  "/root/repo/src/cache/prefetcher.cpp" "src/CMakeFiles/mobcache.dir/cache/prefetcher.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/prefetcher.cpp.o.d"
  "/root/repo/src/cache/replacement.cpp" "src/CMakeFiles/mobcache.dir/cache/replacement.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/replacement.cpp.o.d"
  "/root/repo/src/cache/set_assoc_cache.cpp" "src/CMakeFiles/mobcache.dir/cache/set_assoc_cache.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/set_assoc_cache.cpp.o.d"
  "/root/repo/src/cache/shadow_monitor.cpp" "src/CMakeFiles/mobcache.dir/cache/shadow_monitor.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/cache/shadow_monitor.cpp.o.d"
  "/root/repo/src/common/json_writer.cpp" "src/CMakeFiles/mobcache.dir/common/json_writer.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/common/json_writer.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/mobcache.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/mobcache.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/mobcache.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/common/table.cpp.o.d"
  "/root/repo/src/core/drowsy_l2.cpp" "src/CMakeFiles/mobcache.dir/core/drowsy_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/drowsy_l2.cpp.o.d"
  "/root/repo/src/core/dynamic_controller.cpp" "src/CMakeFiles/mobcache.dir/core/dynamic_controller.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/dynamic_controller.cpp.o.d"
  "/root/repo/src/core/dynamic_partitioned_l2.cpp" "src/CMakeFiles/mobcache.dir/core/dynamic_partitioned_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/dynamic_partitioned_l2.cpp.o.d"
  "/root/repo/src/core/l2_interface.cpp" "src/CMakeFiles/mobcache.dir/core/l2_interface.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/l2_interface.cpp.o.d"
  "/root/repo/src/core/multi_retention_l2.cpp" "src/CMakeFiles/mobcache.dir/core/multi_retention_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/multi_retention_l2.cpp.o.d"
  "/root/repo/src/core/multicore_l2.cpp" "src/CMakeFiles/mobcache.dir/core/multicore_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/multicore_l2.cpp.o.d"
  "/root/repo/src/core/partition_autosizer.cpp" "src/CMakeFiles/mobcache.dir/core/partition_autosizer.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/partition_autosizer.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/CMakeFiles/mobcache.dir/core/scheme.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/scheme.cpp.o.d"
  "/root/repo/src/core/shared_l2.cpp" "src/CMakeFiles/mobcache.dir/core/shared_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/shared_l2.cpp.o.d"
  "/root/repo/src/core/static_partitioned_l2.cpp" "src/CMakeFiles/mobcache.dir/core/static_partitioned_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/static_partitioned_l2.cpp.o.d"
  "/root/repo/src/core/victim_cache_l2.cpp" "src/CMakeFiles/mobcache.dir/core/victim_cache_l2.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/core/victim_cache_l2.cpp.o.d"
  "/root/repo/src/energy/energy_accountant.cpp" "src/CMakeFiles/mobcache.dir/energy/energy_accountant.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/energy/energy_accountant.cpp.o.d"
  "/root/repo/src/energy/refresh.cpp" "src/CMakeFiles/mobcache.dir/energy/refresh.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/energy/refresh.cpp.o.d"
  "/root/repo/src/energy/technology.cpp" "src/CMakeFiles/mobcache.dir/energy/technology.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/energy/technology.cpp.o.d"
  "/root/repo/src/exp/bench_harness.cpp" "src/CMakeFiles/mobcache.dir/exp/bench_harness.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/exp/bench_harness.cpp.o.d"
  "/root/repo/src/exp/json_export.cpp" "src/CMakeFiles/mobcache.dir/exp/json_export.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/exp/json_export.cpp.o.d"
  "/root/repo/src/exp/parallel.cpp" "src/CMakeFiles/mobcache.dir/exp/parallel.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/exp/parallel.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/mobcache.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/mobcache.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/exp/runner.cpp.o.d"
  "/root/repo/src/fault/fault_injector.cpp" "src/CMakeFiles/mobcache.dir/fault/fault_injector.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/fault/fault_injector.cpp.o.d"
  "/root/repo/src/fault/fault_model.cpp" "src/CMakeFiles/mobcache.dir/fault/fault_model.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/fault/fault_model.cpp.o.d"
  "/root/repo/src/fault/repair_controller.cpp" "src/CMakeFiles/mobcache.dir/fault/repair_controller.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/fault/repair_controller.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/mobcache.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/telemetry.cpp" "src/CMakeFiles/mobcache.dir/obs/telemetry.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/obs/telemetry.cpp.o.d"
  "/root/repo/src/obs/trace_export.cpp" "src/CMakeFiles/mobcache.dir/obs/trace_export.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/obs/trace_export.cpp.o.d"
  "/root/repo/src/sim/cpi_model.cpp" "src/CMakeFiles/mobcache.dir/sim/cpi_model.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/sim/cpi_model.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/CMakeFiles/mobcache.dir/sim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/multicore.cpp" "src/CMakeFiles/mobcache.dir/sim/multicore.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/sim/multicore.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/mobcache.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/mobcache.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_cache.cpp" "src/CMakeFiles/mobcache.dir/trace/trace_cache.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/trace/trace_cache.cpp.o.d"
  "/root/repo/src/trace/trace_compress.cpp" "src/CMakeFiles/mobcache.dir/trace/trace_compress.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/trace/trace_compress.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/mobcache.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/workload/app_model.cpp" "src/CMakeFiles/mobcache.dir/workload/app_model.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/workload/app_model.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/mobcache.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/kernel_model.cpp" "src/CMakeFiles/mobcache.dir/workload/kernel_model.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/workload/kernel_model.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/CMakeFiles/mobcache.dir/workload/scenario.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/workload/scenario.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/CMakeFiles/mobcache.dir/workload/suite.cpp.o" "gcc" "src/CMakeFiles/mobcache.dir/workload/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
