# Empty compiler generated dependencies file for mobcache_compare.
# This may be replaced when dependencies are built.
