file(REMOVE_RECURSE
  "CMakeFiles/mobcache_compare.dir/mobcache_compare.cpp.o"
  "CMakeFiles/mobcache_compare.dir/mobcache_compare.cpp.o.d"
  "mobcache_compare"
  "mobcache_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobcache_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
