file(REMOVE_RECURSE
  "CMakeFiles/mobcache_simrun.dir/mobcache_simrun.cpp.o"
  "CMakeFiles/mobcache_simrun.dir/mobcache_simrun.cpp.o.d"
  "mobcache_simrun"
  "mobcache_simrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobcache_simrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
