# Empty compiler generated dependencies file for mobcache_simrun.
# This may be replaced when dependencies are built.
