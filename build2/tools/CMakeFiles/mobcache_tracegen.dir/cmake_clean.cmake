file(REMOVE_RECURSE
  "CMakeFiles/mobcache_tracegen.dir/mobcache_tracegen.cpp.o"
  "CMakeFiles/mobcache_tracegen.dir/mobcache_tracegen.cpp.o.d"
  "mobcache_tracegen"
  "mobcache_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobcache_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
