# Empty compiler generated dependencies file for mobcache_tracegen.
# This may be replaced when dependencies are built.
