file(REMOVE_RECURSE
  "CMakeFiles/mobcache_tracestat.dir/mobcache_tracestat.cpp.o"
  "CMakeFiles/mobcache_tracestat.dir/mobcache_tracestat.cpp.o.d"
  "mobcache_tracestat"
  "mobcache_tracestat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobcache_tracestat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
