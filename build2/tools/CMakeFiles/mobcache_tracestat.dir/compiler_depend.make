# Empty compiler generated dependencies file for mobcache_tracestat.
# This may be replaced when dependencies are built.
