file(REMOVE_RECURSE
  "CMakeFiles/mobcache_appcheck.dir/mobcache_appcheck.cpp.o"
  "CMakeFiles/mobcache_appcheck.dir/mobcache_appcheck.cpp.o.d"
  "mobcache_appcheck"
  "mobcache_appcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobcache_appcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
