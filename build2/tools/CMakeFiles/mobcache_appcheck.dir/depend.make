# Empty dependencies file for mobcache_appcheck.
# This may be replaced when dependencies are built.
