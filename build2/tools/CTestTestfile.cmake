# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_tracegen_roundtrip "/root/repo/build2/tools/mobcache_tracegen" "browser" "50000" "/root/repo/build2/tools/smoke.mctz" "7")
set_tests_properties(tool_tracegen_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_tracestat "/root/repo/build2/tools/mobcache_tracestat" "/root/repo/build2/tools/smoke.mctz")
set_tests_properties(tool_tracestat PROPERTIES  DEPENDS "tool_tracegen_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simrun "/root/repo/build2/tools/mobcache_simrun" "/root/repo/build2/tools/smoke.mctz" "spmrstt")
set_tests_properties(tool_simrun PROPERTIES  DEPENDS "tool_tracegen_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_appcheck "/root/repo/build2/tools/mobcache_appcheck" "launcher" "60000")
set_tests_properties(tool_appcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
