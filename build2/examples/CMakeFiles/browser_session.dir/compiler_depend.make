# Empty compiler generated dependencies file for browser_session.
# This may be replaced when dependencies are built.
