file(REMOVE_RECURSE
  "CMakeFiles/browser_session.dir/browser_session.cpp.o"
  "CMakeFiles/browser_session.dir/browser_session.cpp.o.d"
  "browser_session"
  "browser_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
