# Empty compiler generated dependencies file for multicore_demo.
# This may be replaced when dependencies are built.
