file(REMOVE_RECURSE
  "CMakeFiles/multicore_demo.dir/multicore_demo.cpp.o"
  "CMakeFiles/multicore_demo.dir/multicore_demo.cpp.o.d"
  "multicore_demo"
  "multicore_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
