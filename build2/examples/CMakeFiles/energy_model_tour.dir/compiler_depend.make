# Empty compiler generated dependencies file for energy_model_tour.
# This may be replaced when dependencies are built.
