file(REMOVE_RECURSE
  "CMakeFiles/energy_model_tour.dir/energy_model_tour.cpp.o"
  "CMakeFiles/energy_model_tour.dir/energy_model_tour.cpp.o.d"
  "energy_model_tour"
  "energy_model_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
