#pragma once
/// \file batch.hpp
/// Single-pass multi-config sweep kernel: decode the trace and run the L1
/// front end ONCE, then drive N independent L2 designs ("lanes") from the
/// captured demand stream.
///
/// Why this is sound: with the default hierarchy (non-inclusive L2, no
/// prefetcher, no telemetry, no eviction observer) the L1 arrays never see
/// anything the L2 produced — the only L2→L1 channel is the inclusion
/// back-invalidation observer, and the replacement policies (common to every
/// lane) advance on their own internal tick, never on the cycle clock. The
/// L1 hit/miss sequence, victim choices, writeback lines and stat counters
/// are therefore *identical across all L2 configurations*, and a sweep that
/// re-simulates them per point is paying (points ×) for one shared
/// computation. build_demand_stream() runs that shared computation through
/// the real MemoryHierarchy (the same code the per-point path executes, so
/// L1 behaviour cannot drift), recording one compact record per L2 demand
/// access; simulate_batch() then replays the stream into each lane with a
/// per-lane reconstruction of the CpiModel clock:
///
///   now_i = Cycle(double(record_index) * base_cpi) + lane_stall_sum
///
/// which is bit-for-bit the value CpiModel::now() would have produced at
/// that access in a per-point run. The resulting SimResults are
/// byte-identical to simulate() — tests/test_batch.cpp pins this for every
/// scheme, and the ExperimentRunner keys them into the same result store
/// records (docs/SWEEP_ENGINE.md).
///
/// Sizes not worth a full lane can be *estimated* from the same stream via
/// the auxiliary-tag ShadowConfigBatch (cache/config_batch.hpp) —
/// estimate_demand_miss_rates() below is the seam.

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "cache/config_batch.hpp"
#include "sim/simulator.hpp"

namespace mobcache {

/// The L2-visible residue of one trace + one L1 front end, in SoA layout:
/// one entry per L2 demand access (i.e. per L1 miss), plus everything the
/// shared pass fixes for every lane (L1 stats, L1 dynamic energy, timing
/// constants). Building it costs one full L1 simulation; replaying it costs
/// only the L2 work, which is what makes an N-lane sweep cheaper than N
/// full runs.
struct DemandStream {
  /// Demand-record flag bits (flags[e]).
  static constexpr std::uint8_t kKernelMode = 1u << 0;  ///< Mode::Kernel
  static constexpr std::uint8_t kWrite = 1u << 1;       ///< store miss (posted)
  static constexpr std::uint8_t kWriteback = 1u << 2;   ///< dirty L1 victim follows
  static constexpr std::uint8_t kWbKernel = 1u << 3;    ///< victim owner mode

  std::vector<std::uint64_t> record;  ///< trace-record index of the access
  std::vector<Addr> line;             ///< line-aligned demand address
  std::vector<std::uint8_t> flags;    ///< kKernelMode | kWrite | kWriteback...
  std::vector<Addr> wb_line;          ///< victim line when kWriteback (else 0)

  // Shared per-trace state, identical for every lane.
  std::string workload;
  std::uint64_t total_records = 0;  ///< trace length (== per-lane records)
  CacheStats l1i;
  CacheStats l1d;
  double l1_dynamic_nj = 0.0;  ///< L1 array energy, accumulated in trace order
  TechParams l1_tech;          ///< per-lane leakage is charged at the lane's end
  Cycle l1_hit_latency = 1;
  double base_cpi = 2.0;

  std::size_t size() const { return line.size(); }
};

/// True when `opts` is in the regime where the L1 front end is provably
/// lane-invariant: non-inclusive L2, prefetcher off, no telemetry session
/// and no eviction observer. Everything else must take the per-point path
/// (the ExperimentRunner falls back automatically).
bool batch_eligible(const SimOptions& opts);

/// Runs the shared L1 pass for `trace` under `opts.hierarchy`/`opts.timing`
/// and returns the captured demand stream. Polls `opts.cancel` (or the
/// global token) at kCancelPollStride records, like simulate().
/// Precondition: batch_eligible(opts).
DemandStream build_demand_stream(const Trace& trace, const SimOptions& opts);

class TraceStream;

/// Streaming front end: same shared L1 pass fed chunk by chunk from a
/// TraceStream, so the source trace never exists in memory (the captured
/// DemandStream still does — it is the compact L2-visible residue). The
/// captured stream is byte-identical to the Trace overload's
/// (tests/test_trace_stream.cpp); the stream is consumed.
DemandStream build_demand_stream(TraceStream& stream, const SimOptions& opts);

/// One lane's outcome: exactly one of result/error is set. Lane errors
/// (e.g. a design throwing mid-replay) are confined to their lane so a
/// keep-going sweep loses one point, not the batch; cancellation and
/// deadline expiry are whole-batch conditions and throw out of
/// simulate_batch_lanes itself.
struct BatchLaneOutcome {
  std::optional<SimResult> result;
  std::exception_ptr error;
  bool ok() const { return result.has_value(); }
};

/// Replays `stream` into every lane of `lanes` (non-owning; one fresh L2
/// design per lane) and returns per-lane SimResults byte-identical to what
/// simulate(trace, *lanes[i], opts) would have produced. The replay is
/// chunk-blocked: all lanes advance through one kCancelPollStride-sized
/// block of demand records before the next block starts, so supervision
/// (cancellation, and the per-point deadline reinterpreted per batch —
/// docs/SWEEP_ENGINE.md) is polled once per block like the per-point loop.
std::vector<BatchLaneOutcome> simulate_batch_lanes(
    const DemandStream& stream, const std::vector<L2Interface*>& lanes,
    const SimOptions& opts);

/// Convenience: build the stream and replay, rethrowing the lowest-indexed
/// lane error (fail-fast). Precondition: batch_eligible(opts).
std::vector<SimResult> simulate_batch(const Trace& trace,
                                      const std::vector<L2Interface*>& lanes,
                                      const SimOptions& opts = {});

/// Auxiliary-tag estimation seam (Mittal-style single-pass profiling): feeds
/// every demand line of `stream` through `shadow` and returns, per geometry
/// lane, the estimated L2 miss rate at that lane's full associativity.
/// Estimates are *approximations* (LRU stacks, sampled sets — accuracy
/// bounds in docs/SWEEP_ENGINE.md), for triaging which sizes deserve a real
/// simulation lane.
std::vector<double> estimate_demand_miss_rates(const DemandStream& stream,
                                               ShadowConfigBatch& shadow);

}  // namespace mobcache
