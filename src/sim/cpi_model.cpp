#include "sim/cpi_model.hpp"

// Header-only today; anchor TU.
