#include "sim/multicore.hpp"

#include "workload/scenario.hpp"  // kAppSlotStride

namespace mobcache {

namespace {

/// Private per-core front end: L1I + L1D in front of the shared L2.
struct CoreFrontEnd {
  CoreFrontEnd(const HierarchyConfig& cfg)
      : l1i(cfg.l1i), l1d(cfg.l1d) {}

  SetAssocCache l1i;
  SetAssocCache l1d;
  CpiModel cpu;
};

}  // namespace

MulticoreResult simulate_multicore(const std::vector<Trace>& per_core,
                                   MulticoreL2Interface& l2,
                                   const MulticoreOptions& opts) {
  MulticoreResult res;
  res.scheme = l2.describe();
  res.l2_capacity_bytes = l2.capacity_bytes();

  const auto cores = static_cast<std::uint32_t>(per_core.size());
  std::vector<CoreFrontEnd> fe;
  fe.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) fe.emplace_back(opts.hierarchy);
  std::vector<std::size_t> cursor(cores, 0);
  std::vector<CpiModel> cpu(cores, CpiModel(opts.timing));

  bool any = true;
  while (any) {
    any = false;
    for (std::uint32_t c = 0; c < cores; ++c) {
      if (cursor[c] >= per_core[c].size()) continue;
      any = true;
      Access a = per_core[c][cursor[c]++];
      // Per-process physical slot for user addresses.
      if (a.mode == Mode::User) a.addr += kAppSlotStride * c;

      const Cycle now = cpu[c].now();
      SetAssocCache& l1 = a.is_ifetch() ? fe[c].l1i : fe[c].l1d;
      const Addr line = line_addr(a.addr);
      const AccessResult r = l1.access(line, a.type, a.mode, now);

      Cycle stall = 0;
      if (!r.hit) {
        const L2Result l2r = l2.access(line, AccessType::Read, a.mode, c, now);
        if (r.evicted_valid && r.victim_dirty) {
          l2.writeback(r.victim_line, r.victim_owner, c, now);
        }
        if (!a.is_write()) stall = opts.hierarchy.l1_hit_latency + l2r.latency;
      }
      cpu[c].retire(stall);
    }
  }

  for (std::uint32_t c = 0; c < cores; ++c) {
    CoreResult cr;
    cr.workload = per_core[c].name();
    cr.records = cpu[c].records();
    cr.cycles = cpu[c].now();
    cr.l1i = fe[c].l1i.stats();
    cr.l1d = fe[c].l1d.stats();
    res.makespan = std::max(res.makespan, cr.cycles);
    res.cores.push_back(std::move(cr));
  }

  l2.finalize(res.makespan);
  res.l2 = l2.aggregate_stats();
  res.l2_energy = l2.energy();
  res.l2_avg_enabled_bytes = l2.avg_enabled_bytes();
  return res;
}

MulticoreResult simulate_multicore(const std::vector<Trace>& per_core,
                                   std::unique_ptr<MulticoreL2Interface> l2,
                                   const MulticoreOptions& opts) {
  return simulate_multicore(per_core, *l2, opts);
}

}  // namespace mobcache
