#pragma once
/// \file hierarchy.hpp
/// Two-level memory hierarchy: split L1I/L1D (SRAM, identical across all
/// compared designs) in front of a pluggable L2 organization.

#include <memory>

#include "cache/prefetcher.hpp"
#include "cache/set_assoc_cache.hpp"
#include "core/l2_interface.hpp"
#include "energy/technology.hpp"
#include "trace/trace.hpp"

namespace mobcache {

struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I",
                  .size_bytes = 32ull << 10,
                  .assoc = 2,
                  .line_size = kLineSize,
                  .repl = ReplKind::Lru};
  CacheConfig l1d{.name = "L1D",
                  .size_bytes = 32ull << 10,
                  .assoc = 4,
                  .line_size = kLineSize,
                  .repl = ReplKind::Lru};
  Cycle l1_hit_latency = 1;  ///< pipelined; charged only on the L2 path
  /// L2-side stream prefetcher (off by default; experiment E12).
  PrefetchConfig prefetch;
  /// Inclusive L2: an L2 eviction back-invalidates any L1 copy (the
  /// coherence-friendly policy; costs extra L1 misses). Default:
  /// non-inclusive, as in the paper's platform. Ablated in E10.
  bool inclusive_l2 = false;
};

class MemoryHierarchy {
 public:
  /// Non-owning: `l2` must outlive the hierarchy (lets callers inspect the
  /// design after the run — allocation history, victim-hit counters, ...).
  MemoryHierarchy(const HierarchyConfig& cfg, L2Interface& l2);

  /// Runs one reference at time `now`; returns the stall cycles it adds on
  /// top of the core's base CPI (0 on L1 hits and for posted stores).
  Cycle access(const Access& a, Cycle now);

  /// Must be called once after the last access.
  void finalize(Cycle end);

  const CacheStats& l1i_stats() const { return l1i_.stats(); }
  const CacheStats& l1d_stats() const { return l1d_.stats(); }
  L2Interface& l2() { return l2_; }
  const L2Interface& l2() const { return l2_; }

  /// Dynamic + leakage energy of the two L1s (identical across schemes,
  /// reported for completeness).
  double l1_energy_nj() const { return l1_energy_nj_; }

  /// Prefetch lines issued to the L2 so far.
  std::uint64_t prefetches_issued() const { return prefetcher_.issued(); }

  /// Stall-cycle decomposition (the CPI stack above base CPI).
  Cycle stall_l2_hit_cycles() const { return stall_l2_hit_; }
  Cycle stall_l2_miss_cycles() const { return stall_l2_miss_; }

  /// L1 lines dropped by inclusion back-invalidation (0 when
  /// non-inclusive).
  std::uint64_t back_invalidations() const { return back_invalidations_; }

 private:
  HierarchyConfig cfg_;
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  TechParams l1_tech_;
  StridePrefetcher prefetcher_;
  L2Interface& l2_;
  double l1_energy_nj_ = 0.0;
  Cycle stall_l2_hit_ = 0;
  Cycle stall_l2_miss_ = 0;
  std::uint64_t back_invalidations_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
