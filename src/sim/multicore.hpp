#pragma once
/// \file multicore.hpp
/// Multicore simulation driver: N cores, each with private L1I/L1D running
/// its own trace, sharing one L2 (future-work extension of the paper).
///
/// Interleaving model: cores retire records round-robin; each core keeps
/// its own cycle clock (base CPI + its stalls), and the shared L2 is probed
/// at the accessing core's local time. Core clocks of equal-length traces
/// stay within a few percent of each other, so the approximation error in
/// time-dependent L2 state (retention, epochs) is small; the makespan is
/// the slowest core's clock.
///
/// User address disambiguation: independent per-core traces reuse the same
/// virtual address layout, so the driver relocates each core's user
/// addresses into a private slot (as a per-process physical mapping would).

#include <memory>
#include <vector>

#include "core/multicore_l2.hpp"
#include "sim/cpi_model.hpp"
#include "sim/hierarchy.hpp"
#include "trace/trace.hpp"

namespace mobcache {

struct CoreResult {
  std::string workload;
  std::uint64_t records = 0;
  Cycle cycles = 0;
  CacheStats l1i;
  CacheStats l1d;
};

struct MulticoreResult {
  std::vector<CoreResult> cores;
  Cycle makespan = 0;  ///< slowest core's clock
  CacheStats l2;
  EnergyBreakdown l2_energy;
  std::uint64_t l2_capacity_bytes = 0;
  double l2_avg_enabled_bytes = 0.0;
  std::string scheme;

  double l2_miss_rate() const { return l2.miss_rate(); }
};

struct MulticoreOptions {
  HierarchyConfig hierarchy;  ///< per-core L1 geometry (prefetch ignored)
  TimingParams timing;
};

/// Runs one trace per core against the shared L2 (non-owning). Traces
/// should be of comparable length (see interleaving model).
MulticoreResult simulate_multicore(const std::vector<Trace>& per_core,
                                   MulticoreL2Interface& l2,
                                   const MulticoreOptions& opts = {});

/// Owning convenience overload; the design is destroyed on return.
MulticoreResult simulate_multicore(const std::vector<Trace>& per_core,
                                   std::unique_ptr<MulticoreL2Interface> l2,
                                   const MulticoreOptions& opts = {});

}  // namespace mobcache
