#include "sim/hierarchy.hpp"

namespace mobcache {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& cfg, L2Interface& l2)
    : cfg_(cfg),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d),
      l1_tech_(make_sram(cfg.l1i.size_bytes + cfg.l1d.size_bytes)),
      prefetcher_(cfg.prefetch),
      l2_(l2) {
  if (cfg_.inclusive_l2) {
    // Inclusion: whenever the L2 drops a line, any L1 copy must go too.
    // Dirty L1 data superseding the L2 victim rides the victim's own DRAM
    // writeback (charged by the L2), so only the invalidation is modeled.
    l2_.add_eviction_observer([this](const EvictionEvent& e) {
      bool dirty = false;
      if (l1i_.invalidate_line(e.line, &dirty)) ++back_invalidations_;
      if (l1d_.invalidate_line(e.line, &dirty)) ++back_invalidations_;
    });
  }
}

Cycle MemoryHierarchy::access(const Access& a, Cycle now) {
  SetAssocCache& l1 = a.is_ifetch() ? l1i_ : l1d_;
  const Addr line = line_addr(a.addr);

  const AccessResult r = l1.access(line, a.type, a.mode, now);
  if (r.hit) {
    l1_energy_nj_ += a.is_write() ? l1_tech_.write_energy_nj
                                  : l1_tech_.read_energy_nj;
    return 0;  // L1 hits are pipelined
  }

  // L1 miss: probe + fill are both array operations.
  l1_energy_nj_ += l1_tech_.read_energy_nj + l1_tech_.write_energy_nj;

  // Demand-fetch the line from L2. Even store misses fetch first
  // (write-allocate); the fill above already marked the line dirty for
  // stores via a.type.
  const L2Result l2r = l2_.access(line, AccessType::Read, a.mode, now);

  // Train the stream prefetcher on L2 demand misses and issue its
  // candidates off the critical path.
  if (!l2r.hit) {
    for (Addr p : prefetcher_.observe_miss(line, a.mode)) {
      l2_.prefetch(p, a.mode, now);
    }
  }

  // Cast out the displaced dirty L1 line, attributed to its producer mode.
  if (r.evicted_valid && r.victim_dirty) {
    l2_.writeback(r.victim_line, r.victim_owner, now);
  }

  // Loads and fetches stall the core; stores retire through the write
  // buffer.
  if (a.is_write()) return 0;
  const Cycle stall = cfg_.l1_hit_latency + l2r.latency;
  (l2r.hit ? stall_l2_hit_ : stall_l2_miss_) += stall;
  return stall;
}

void MemoryHierarchy::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  l2_.finalize(end);
  l1_energy_nj_ += l1_tech_.leakage_nj(end);
}

}  // namespace mobcache
