#include "sim/batch.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "trace/trace_stream.hpp"

namespace mobcache {

namespace {

/// Stub L2 the shared L1 pass runs against: answers every demand access as a
/// zero-latency hit (so the prefetcher-training branch never fires and no
/// stall feeds back into the clock — irrelevant anyway, because L1 outcomes
/// are clock-invariant) while appending one DemandStream record per access.
/// A writeback always arrives inside the same MemoryHierarchy::access() call
/// as the demand access that displaced the victim, so it annotates the record
/// just pushed.
class RecorderL2 final : public L2Interface {
 public:
  explicit RecorderL2(DemandStream& s) : s_(s) {}

  /// Must be called before each MemoryHierarchy::access() so the record
  /// carries the trace index (for clock reconstruction) and the store flag
  /// (stores are posted — no stall on replay).
  void begin_record(std::uint64_t trace_index, bool is_write) {
    index_ = trace_index;
    write_ = is_write;
  }

  L2Result access(Addr line, AccessType /*type*/, Mode mode,
                  Cycle /*now*/) override {
    s_.record.push_back(index_);
    s_.line.push_back(line);
    std::uint8_t f = 0;
    if (mode == Mode::Kernel) f |= DemandStream::kKernelMode;
    if (write_) f |= DemandStream::kWrite;
    s_.flags.push_back(f);
    s_.wb_line.push_back(0);
    return {.hit = true, .latency = 0};
  }

  void writeback(Addr line, Mode owner, Cycle /*now*/) override {
    s_.flags.back() |= DemandStream::kWriteback;
    if (owner == Mode::Kernel) s_.flags.back() |= DemandStream::kWbKernel;
    s_.wb_line.back() = line;
  }

  void prefetch(Addr /*line*/, Mode /*mode*/, Cycle /*now*/) override {}
  void finalize(Cycle /*end*/) override {}
  const EnergyBreakdown& energy() const override { return energy_; }
  CacheStats aggregate_stats() const override { return {}; }
  std::uint64_t capacity_bytes() const override { return 0; }
  std::string describe() const override { return "l1-demand-recorder"; }
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> /*obs*/) override {}
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> /*obs*/) override {}

 private:
  DemandStream& s_;
  EnergyBreakdown energy_;
  std::uint64_t index_ = 0;
  bool write_ = false;
};

using SimClock = std::chrono::steady_clock;

/// Chunk-boundary supervision, identical in cadence and error context to the
/// simulate() loop (scheme context is omitted: the L1 pass and the replay
/// serve every lane at once).
struct Supervisor {
  Supervisor(const SimOptions& opts, const std::string& workload)
      : cancel(opts.cancel != nullptr ? *opts.cancel : global_cancel_token()),
        workload(workload),
        has_deadline(opts.point_deadline_ms != 0),
        deadline_ms(opts.point_deadline_ms),
        deadline(SimClock::now() +
                 std::chrono::milliseconds(opts.point_deadline_ms)) {}

  void poll() const {
    if (cancel.cancel_requested()) {
      try {
        cancel.check();
      } catch (SimError& e) {
        e.with_workload(workload);
        throw;
      }
    }
    if (has_deadline && SimClock::now() >= deadline) {
      DeadlineExceeded err("point exceeded deadline of " +
                           std::to_string(deadline_ms) + " ms");
      err.with_workload(workload);
      throw err;
    }
  }

  const CancelToken& cancel;
  const std::string& workload;
  bool has_deadline;
  std::uint64_t deadline_ms;
  SimClock::time_point deadline;
};

}  // namespace

bool batch_eligible(const SimOptions& opts) {
  // The L1 front end is lane-invariant only when nothing flows back from the
  // L2 (no inclusion back-invalidation) and no per-lane side channel
  // (prefetcher training, telemetry, eviction observers) is attached.
  return !opts.hierarchy.inclusive_l2 && !opts.hierarchy.prefetch.enabled &&
         opts.telemetry == nullptr && !opts.l2_eviction_observer;
}

namespace {

/// Shared L1 pass over any chunk provider. Supervision polls at chunk
/// boundaries — the exact positions of the pre-streaming loop when fed
/// kCancelPollStride-sized subspans, and a pure check in any case, so the
/// captured stream is identical however the records arrive.
template <typename NextChunk>
DemandStream build_demand_stream_chunked(const std::string& workload,
                                         NextChunk&& next_chunk,
                                         const SimOptions& opts) {
  DemandStream s;
  s.workload = workload;
  s.l1_hit_latency = opts.hierarchy.l1_hit_latency;
  s.base_cpi = opts.timing.base_cpi;
  s.l1_tech = make_sram(opts.hierarchy.l1i.size_bytes +
                        opts.hierarchy.l1d.size_bytes);

  RecorderL2 recorder(s);
  MemoryHierarchy hier(opts.hierarchy, recorder);
  const Supervisor sup(opts, s.workload);

  // Same chunked shape as the simulate() demand loop. The clock passed down
  // is irrelevant to L1 outcomes (replacement state advances on an internal
  // tick; retention/fault hooks are L2-only), so the pass runs at now = 0 —
  // per-lane clocks are reconstructed at replay time.
  std::uint64_t index = 0;
  bool first = true;
  for (;;) {
    const std::span<const Access> chunk = next_chunk();
    if (chunk.empty()) break;
    if (!first) sup.poll();
    first = false;
    for (const Access& a : chunk) {
      recorder.begin_record(index++, a.is_write());
      hier.access(a, /*now=*/0);
    }
  }
  s.total_records = index;

  // Deliberately no hier.finalize(): finalize would fold L1 leakage (a
  // function of each lane's end cycle) into l1_energy_nj. The pure dynamic
  // part captured here is lane-invariant; leakage is charged per lane.
  s.l1i = hier.l1i_stats();
  s.l1d = hier.l1d_stats();
  s.l1_dynamic_nj = hier.l1_energy_nj();
  return s;
}

}  // namespace

DemandStream build_demand_stream(const Trace& trace, const SimOptions& opts) {
  const std::vector<Access>& accesses = trace.accesses();
  const std::size_t total = accesses.size();
  std::size_t i = 0;
  auto next_chunk = [&]() -> std::span<const Access> {
    if (i >= total) return {};
    const std::size_t end = std::min<std::size_t>(
        total, i + static_cast<std::size_t>(kCancelPollStride));
    const std::span<const Access> chunk(accesses.data() + i, end - i);
    i = end;
    return chunk;
  };
  return build_demand_stream_chunked(trace.name(), next_chunk, opts);
}

DemandStream build_demand_stream(TraceStream& stream, const SimOptions& opts) {
  return build_demand_stream_chunked(
      stream.name(), [&stream] { return stream.next_chunk(); }, opts);
}

std::vector<BatchLaneOutcome> simulate_batch_lanes(
    const DemandStream& stream, const std::vector<L2Interface*>& lanes,
    const SimOptions& opts) {
  const std::size_t n = lanes.size();
  std::vector<BatchLaneOutcome> out(n);

  // Captured before any replay, exactly where simulate() reads them.
  std::vector<std::string> schemes(n);
  std::vector<std::uint64_t> capacities(n);
  for (std::size_t l = 0; l < n; ++l) {
    schemes[l] = lanes[l]->describe();
    capacities[l] = lanes[l]->capacity_bytes();
  }

  std::vector<Cycle> stall_sum(n, 0);
  std::vector<Cycle> stall_hit(n, 0);
  std::vector<Cycle> stall_miss(n, 0);
  std::vector<char> dead(n, 0);

  const Supervisor sup(opts, stream.workload);
  const double base_cpi = stream.base_cpi;
  const Cycle l1_hit_latency = stream.l1_hit_latency;

  auto lane_failed = [&](std::size_t l) {
    out[l].error = std::current_exception();
    dead[l] = 1;
  };

  // Chunk-blocked, lane-major replay: every live lane advances through one
  // supervision-stride block of demand records before the next block starts.
  // Lane-major keeps each lane's tag arrays hot across the block; the block
  // boundary polls cancellation/deadline at the simulate() cadence. A lane
  // that throws is confined to its own outcome slot; cancellation and
  // deadline expiry abort the whole batch from the poll below.
  const std::size_t entries = stream.size();
  std::size_t begin = 0;
  while (begin < entries) {
    const std::size_t end = std::min<std::size_t>(
        entries, begin + static_cast<std::size_t>(kCancelPollStride));
    for (std::size_t l = 0; l < n; ++l) {
      if (dead[l]) continue;
      L2Interface* l2 = lanes[l];
      try {
        for (std::size_t e = begin; e < end; ++e) {
          const std::uint8_t f = stream.flags[e];
          // Bit-for-bit the CpiModel::now() a per-point run would pass to
          // this access: record[e] accesses retired, this lane's stalls.
          const Cycle now =
              static_cast<Cycle>(static_cast<double>(stream.record[e]) *
                                 base_cpi) +
              stall_sum[l];
          const L2Result r = l2->access(
              stream.line[e], AccessType::Read,
              (f & DemandStream::kKernelMode) != 0 ? Mode::Kernel : Mode::User,
              now);
          if ((f & DemandStream::kWriteback) != 0) {
            l2->writeback(stream.wb_line[e],
                          (f & DemandStream::kWbKernel) != 0 ? Mode::Kernel
                                                             : Mode::User,
                          now);
          }
          if ((f & DemandStream::kWrite) == 0) {
            const Cycle stall = l1_hit_latency + r.latency;
            (r.hit ? stall_hit[l] : stall_miss[l]) += stall;
            stall_sum[l] += stall;
          }
        }
      } catch (...) {
        lane_failed(l);
      }
    }
    begin = end;
    if (begin < entries) sup.poll();
  }

  for (std::size_t l = 0; l < n; ++l) {
    if (dead[l]) continue;
    L2Interface* l2 = lanes[l];
    try {
      const Cycle end_cycle =
          static_cast<Cycle>(static_cast<double>(stream.total_records) *
                             base_cpi) +
          stall_sum[l];
      l2->finalize(end_cycle);

      SimResult res;
      res.workload = stream.workload;
      res.scheme = schemes[l];
      res.l2_capacity_bytes = capacities[l];
      res.records = stream.total_records;
      res.cycles = end_cycle;
      res.cpi = stream.total_records == 0
                    ? 0.0
                    : static_cast<double>(end_cycle) /
                          static_cast<double>(stream.total_records);
      res.l1i = stream.l1i;
      res.l1d = stream.l1d;
      res.l2 = l2->aggregate_stats();
      res.l2_energy = l2->energy();
      res.l1_energy_nj =
          stream.l1_dynamic_nj + stream.l1_tech.leakage_nj(end_cycle);
      res.l2_avg_enabled_bytes = l2->avg_enabled_bytes();
      res.l2_quarantined_ways = l2->quarantined_ways();
      res.stall_l2_hit_cycles = stall_hit[l];
      res.stall_l2_miss_cycles = stall_miss[l];
      res.prefetches_issued = 0;  // batch_eligible ⇒ prefetcher disabled
      out[l].result = std::move(res);
    } catch (...) {
      lane_failed(l);
    }
  }
  return out;
}

std::vector<SimResult> simulate_batch(const Trace& trace,
                                      const std::vector<L2Interface*>& lanes,
                                      const SimOptions& opts) {
  const DemandStream stream = build_demand_stream(trace, opts);
  std::vector<BatchLaneOutcome> outcomes =
      simulate_batch_lanes(stream, lanes, opts);
  std::vector<SimResult> results;
  results.reserve(outcomes.size());
  for (BatchLaneOutcome& o : outcomes) {
    if (!o.ok()) std::rethrow_exception(o.error);
    results.push_back(std::move(*o.result));
  }
  return results;
}

std::vector<double> estimate_demand_miss_rates(const DemandStream& stream,
                                               ShadowConfigBatch& shadow) {
  for (std::size_t e = 0; e < stream.size(); ++e) {
    shadow.observe(stream.line[e]);
  }
  std::vector<double> rates(shadow.lanes());
  for (std::size_t g = 0; g < shadow.lanes(); ++g) {
    rates[g] = shadow.estimated_miss_rate(g);
  }
  return rates;
}

}  // namespace mobcache
