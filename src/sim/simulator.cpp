#include "sim/simulator.hpp"

namespace mobcache {

SimResult simulate(const Trace& trace, L2Interface& l2,
                   const SimOptions& opts) {
  SimResult res;
  res.workload = trace.name();
  res.scheme = l2.describe();
  res.l2_capacity_bytes = l2.capacity_bytes();

  if (opts.l2_eviction_observer) {
    l2.set_eviction_observer(opts.l2_eviction_observer);
  }

  MemoryHierarchy hier(opts.hierarchy, l2);
  CpiModel cpu(opts.timing);

  Cycle now = 0;
  for (const Access& a : trace.accesses()) {
    const Cycle stall = hier.access(a, now);
    now = cpu.retire(stall);
  }
  hier.finalize(now);

  res.records = cpu.records();
  res.cycles = cpu.now();
  res.cpi = cpu.cpi();
  res.l1i = hier.l1i_stats();
  res.l1d = hier.l1d_stats();
  res.l2 = hier.l2().aggregate_stats();
  res.l2_energy = hier.l2().energy();
  res.l1_energy_nj = hier.l1_energy_nj();
  res.l2_avg_enabled_bytes = hier.l2().avg_enabled_bytes();
  res.stall_l2_hit_cycles = hier.stall_l2_hit_cycles();
  res.stall_l2_miss_cycles = hier.stall_l2_miss_cycles();
  res.prefetches_issued = hier.prefetches_issued();
  return res;
}

SimResult simulate(const Trace& trace, std::unique_ptr<L2Interface> l2,
                   const SimOptions& opts) {
  return simulate(trace, *l2, opts);
}

}  // namespace mobcache
