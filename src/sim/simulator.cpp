#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "obs/telemetry.hpp"
#include "trace/trace_stream.hpp"

namespace mobcache {

namespace {

/// Trace-cadence sampler for schemes without an internal epoch notion: every
/// `interval` trace records it snapshots L2 aggregate/energy deltas plus
/// whatever the scheme reports via fill_sample(). Pure reader — it never
/// touches sim state, preserving bit-exact results.
class IntervalSampler {
 public:
  IntervalSampler(Telemetry* tel, const L2Interface& l2)
      : tel_(tel),
        l2_(l2),
        interval_(tel != nullptr ? tel->sample_interval() : 0) {}

  void tick(Cycle now) {
    if (interval_ == 0 || ++records_ < interval_) return;
    records_ = 0;
    const CacheStats cur = l2_.aggregate_stats();
    EpochSample s;
    s.epoch = epoch_++;
    s.cycle = now;
    s.accesses = cur.total_accesses() - last_accesses_;
    s.misses = cur.total_misses() - last_misses_;
    l2_.fill_sample(s);
    const EnergyBreakdown d = l2_.energy() - last_energy_;
    s.refresh_nj = d.refresh_nj;
    s.leakage_nj = d.leakage_nj;
    tel_->record(s);
    last_accesses_ = cur.total_accesses();
    last_misses_ = cur.total_misses();
    last_energy_ = l2_.energy();
  }

 private:
  Telemetry* tel_;
  const L2Interface& l2_;
  std::uint64_t interval_;
  std::uint64_t records_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_accesses_ = 0;
  std::uint64_t last_misses_ = 0;
  EnergyBreakdown last_energy_;
};

/// One simulation over any chunk provider. `next_chunk()` returns the next
/// span of records (empty = end of trace); the materialized overload feeds
/// kCancelPollStride-sized subspans of the trace vector (zero copy) and the
/// streaming overload whatever its generator produces. Supervision is
/// polled between chunks — for the materialized path that is the exact
/// cadence (and the exact poll positions) of the pre-streaming demand loop,
/// and polls are pure checks, so SimResults are bit-identical across chunk
/// geometries (tests/test_trace_stream.cpp pins streaming vs materialized
/// for every scheme).
template <typename NextChunk>
SimResult simulate_chunked(const std::string& workload, NextChunk&& next_chunk,
                           L2Interface& l2, const SimOptions& opts) {
  SimResult res;
  res.workload = workload;
  res.scheme = l2.describe();
  res.l2_capacity_bytes = l2.capacity_bytes();

  // Observer order matters: the legacy shim replaces (set_), the telemetry
  // bridge appends (add_), and the hierarchy's inclusion observer appends in
  // its constructor below.
  if (opts.l2_eviction_observer) {
    l2.set_eviction_observer(opts.l2_eviction_observer);
  }
  if (opts.telemetry != nullptr) {
    opts.telemetry->set_context(workload, res.scheme);
    l2.attach_telemetry(opts.telemetry);
    Telemetry* tel = opts.telemetry;
    l2.add_eviction_observer(
        [tel](const EvictionEvent& e) { tel->record(e); });
  }

  MemoryHierarchy hier(opts.hierarchy, l2);
  CpiModel cpu(opts.timing);

  // Cancellation/deadline supervision stays out of the per-record path:
  // the demand loops below run chunk by chunk (one chunk ≈ one
  // kCancelPollStride block) and only the chunk boundary polls the token /
  // the clock. With the default-off deadline that is one relaxed atomic
  // load per ~65k records — the BENCH_micro gate sees no inner-loop change
  // at all.
  const CancelToken& cancel =
      opts.cancel != nullptr ? *opts.cancel : global_cancel_token();
  using SimClock = std::chrono::steady_clock;
  const bool has_deadline = opts.point_deadline_ms != 0;
  const SimClock::time_point deadline =
      SimClock::now() + std::chrono::milliseconds(opts.point_deadline_ms);
  auto poll_supervision = [&]() {
    if (cancel.cancel_requested()) {
      try {
        cancel.check();
      } catch (SimError& e) {
        e.with_workload(res.workload).with_scheme(res.scheme);
        throw;
      }
    }
    if (has_deadline && SimClock::now() >= deadline) {
      DeadlineExceeded err("point exceeded deadline of " +
                           std::to_string(opts.point_deadline_ms) + " ms");
      err.with_workload(res.workload).with_scheme(res.scheme);
      throw err;
    }
  };

  // Demand loop, split once up front: the plain loop carries no sampler
  // call and no disabled-telemetry branch per record; the instrumented loop
  // is the same retire sequence plus the trace-cadence sampler tick. Both
  // produce bit-identical SimResults (the sampler is a pure reader) —
  // tests/test_kernel_equiv.cpp pins this.
  Cycle now = 0;
  bool first = true;
  if (opts.telemetry != nullptr && opts.telemetry->sample_interval() != 0) {
    IntervalSampler sampler(opts.telemetry, l2);
    for (;;) {
      const std::span<const Access> chunk = next_chunk();
      if (chunk.empty()) break;
      if (!first) poll_supervision();
      first = false;
      for (const Access& a : chunk) {
        now = cpu.retire(hier.access(a, now));
        sampler.tick(now);
      }
    }
  } else {
    for (;;) {
      const std::span<const Access> chunk = next_chunk();
      if (chunk.empty()) break;
      if (!first) poll_supervision();
      first = false;
      for (const Access& a : chunk) {
        now = cpu.retire(hier.access(a, now));
      }
    }
  }
  hier.finalize(now);
  if (opts.telemetry != nullptr) l2.attach_telemetry(nullptr);

  res.records = cpu.records();
  res.cycles = cpu.now();
  res.cpi = cpu.cpi();
  res.l1i = hier.l1i_stats();
  res.l1d = hier.l1d_stats();
  res.l2 = hier.l2().aggregate_stats();
  res.l2_energy = hier.l2().energy();
  res.l1_energy_nj = hier.l1_energy_nj();
  res.l2_avg_enabled_bytes = hier.l2().avg_enabled_bytes();
  res.l2_quarantined_ways = hier.l2().quarantined_ways();
  res.stall_l2_hit_cycles = hier.stall_l2_hit_cycles();
  res.stall_l2_miss_cycles = hier.stall_l2_miss_cycles();
  res.prefetches_issued = hier.prefetches_issued();
  return res;
}

}  // namespace

SimResult simulate(const Trace& trace, L2Interface& l2,
                   const SimOptions& opts) {
  const std::vector<Access>& accesses = trace.accesses();
  const std::size_t total = accesses.size();
  std::size_t i = 0;
  auto next_chunk = [&]() -> std::span<const Access> {
    if (i >= total) return {};
    const std::size_t end = std::min<std::size_t>(
        total, i + static_cast<std::size_t>(kCancelPollStride));
    const std::span<const Access> chunk(accesses.data() + i, end - i);
    i = end;
    return chunk;
  };
  return simulate_chunked(trace.name(), next_chunk, l2, opts);
}

SimResult simulate(const Trace& trace, std::unique_ptr<L2Interface> l2,
                   const SimOptions& opts) {
  return simulate(trace, *l2, opts);
}

SimResult simulate(TraceStream& stream, L2Interface& l2,
                   const SimOptions& opts) {
  return simulate_chunked(stream.name(),
                          [&stream] { return stream.next_chunk(); }, l2, opts);
}

}  // namespace mobcache
