#pragma once
/// \file simulator.hpp
/// Drives one trace through one hierarchy and collects everything the
/// evaluation needs.

#include <memory>
#include <string>

#include "energy/energy_accountant.hpp"
#include "sim/cpi_model.hpp"
#include "sim/hierarchy.hpp"
#include "trace/trace.hpp"

namespace mobcache {

struct SimResult {
  std::string workload;
  std::string scheme;

  std::uint64_t records = 0;
  Cycle cycles = 0;
  double cpi = 0.0;

  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  EnergyBreakdown l2_energy;
  double l1_energy_nj = 0.0;

  std::uint64_t l2_capacity_bytes = 0;
  double l2_avg_enabled_bytes = 0.0;
  /// Ways permanently disabled by fault repair (0 on fault-free runs).
  std::uint32_t l2_quarantined_ways = 0;

  /// CPI stack: stall cycles split by where the data came from.
  Cycle stall_l2_hit_cycles = 0;
  Cycle stall_l2_miss_cycles = 0;
  std::uint64_t prefetches_issued = 0;

  /// Energy-delay product of the L2 subsystem (nJ · cycles); compare as
  /// ratios between schemes.
  double edp() const {
    return l2_energy.cache_nj() * static_cast<double>(cycles);
  }

  double l2_miss_rate() const { return l2.miss_rate(); }
  double l2_kernel_fraction() const { return l2.kernel_access_fraction(); }
};

class Telemetry;
class CancelToken;

struct SimOptions {
  HierarchyConfig hierarchy;
  TimingParams timing;
  /// Wall-clock budget for this one run in milliseconds; 0 disables the
  /// deadline. Checked cooperatively at the cancellation-poll stride; on
  /// expiry the run throws DeadlineExceeded naming the workload and scheme.
  std::uint64_t point_deadline_ms = 0;
  /// Cancellation token the demand loop polls once per kCancelPollStride
  /// records (common/cancel.hpp). Null means the process-wide
  /// global_cancel_token() — the one SIGINT/SIGTERM flips — so every run is
  /// interruptible by default at one relaxed atomic load per ~65k accesses.
  const CancelToken* cancel = nullptr;
  /// Optional eviction observer installed on the L2 before the run.
  /// Deprecated shim: prefer `telemetry` + ObserverHub::on_eviction, which
  /// multicasts and carries the run context. Kept working — it is installed
  /// first (replacing direct observers), before any hub bridge.
  std::function<void(const EvictionEvent&)> l2_eviction_observer;
  /// Optional observability session (obs/telemetry.hpp). When set, the L2 is
  /// attached (scheme-internal events flow to it), evictions are bridged to
  /// the hub, and — if the session's sample_interval is nonzero — an
  /// EpochSample is pushed every that-many trace records. All instrumentation
  /// is read-only: SimResult is bit-identical with or without a session.
  Telemetry* telemetry = nullptr;
};

/// Runs `trace` against the given L2 design (non-owning: the caller keeps
/// the design and can inspect it after the run).
SimResult simulate(const Trace& trace, L2Interface& l2,
                   const SimOptions& opts = {});

/// Owning convenience overload; the design is destroyed on return.
SimResult simulate(const Trace& trace, std::unique_ptr<L2Interface> l2,
                   const SimOptions& opts = {});

class TraceStream;

/// Streaming overload: consumes `stream` chunk by chunk, so only one chunk
/// of records is live at a time — peak memory is O(chunk), independent of
/// session length. Byte-identical to materializing the stream and calling
/// the Trace overload (supervision polls move to chunk boundaries but are
/// pure checks); tests/test_trace_stream.cpp pins this for all schemes.
/// The stream is consumed (call reset() to reuse it).
SimResult simulate(TraceStream& stream, L2Interface& l2,
                   const SimOptions& opts = {});

}  // namespace mobcache
