#pragma once
/// \file cpi_model.hpp
/// In-order-core timing model.
///
/// The simulated core is a single-issue in-order mobile core (Cortex-A15 /
/// Krait class for 2015). Every trace record — an instruction fetch or the
/// memory op of an instruction — costs one base cycle; memory stalls from
/// the hierarchy add on top:
///
///   cycles = records · base_cpi + Σ stalls
///
/// Execution-time comparisons between schemes are ratios of these cycle
/// counts, which is exactly how the paper reports "performance loss".

#include <cstdint>

#include "common/types.hpp"

namespace mobcache {

struct TimingParams {
  /// Cycles per record before memory stalls. 2.0 models an in-order mobile
  /// core (IPC ≈ 0.5 on interactive code: branches, dependences, front-end
  /// bubbles) — the regime in which L2 leakage dominates L2 energy.
  double base_cpi = 2.0;
};

class CpiModel {
 public:
  explicit CpiModel(const TimingParams& p = {}) : params_(p) {}

  /// Advances time by one record plus its stall; returns the new now.
  Cycle retire(Cycle stall) {
    ++records_;
    stall_cycles_ += stall;
    return now();
  }

  Cycle now() const {
    return static_cast<Cycle>(static_cast<double>(records_) *
                              params_.base_cpi) +
           stall_cycles_;
  }

  std::uint64_t records() const { return records_; }
  Cycle stall_cycles() const { return stall_cycles_; }

  /// Cycles per record; degenerate (0) before any retire.
  double cpi() const {
    return records_ == 0 ? 0.0
                         : static_cast<double>(now()) /
                               static_cast<double>(records_);
  }

 private:
  TimingParams params_;
  std::uint64_t records_ = 0;
  Cycle stall_cycles_ = 0;
};

}  // namespace mobcache
