#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>

namespace mobcache {

namespace {

/// Simulated cycles → trace microseconds at the platform's 1 GHz clock.
double cycles_to_us(Cycle c) { return static_cast<double>(c) / 1000.0; }

std::string hex_addr(Addr a) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

}  // namespace

std::optional<TraceFormat> parse_trace_format(std::string_view s) {
  if (s == "jsonl" || s == "json") return TraceFormat::Jsonl;
  if (s == "chrome" || s == "trace" || s == "perfetto")
    return TraceFormat::ChromeTrace;
  return std::nullopt;
}

TraceSink::TraceSink(TraceFormat format, TraceSinkOptions opts)
    : format_(format), opts_(opts) {}

std::uint32_t TraceSink::track_of(const Telemetry& t) {
  std::string label = t.workload();
  if (!t.scheme().empty()) {
    if (!label.empty()) label += '/';
    label += t.scheme();
  }
  if (label.empty()) label = "run";
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == label) return i;
  }
  tracks_.push_back(std::move(label));
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceSink::add(const Telemetry& t, std::string name, char phase,
                    Cycle cycle, std::vector<Arg> args) {
  records_.push_back(
      {std::move(name), phase, cycle, track_of(t), std::move(args)});
}

void TraceSink::attach(Telemetry& t) {
  auto num = [](std::string key, double v) {
    return Arg{std::move(key), v, {}, true};
  };
  auto str = [](std::string key, std::string v) {
    return Arg{std::move(key), 0.0, std::move(v), false};
  };

  t.hub().on_partition_resize([this, &t, num](const PartitionResizeEvent& e) {
    add(t, "partition-resize", 'i', e.cycle,
        {num("old_user_ways", e.old_user_ways),
         num("old_kernel_ways", e.old_kernel_ways),
         num("new_user_ways", e.new_user_ways),
         num("new_kernel_ways", e.new_kernel_ways),
         num("flush_writebacks", static_cast<double>(e.flush_writebacks))});
  });
  t.hub().on_drowsy_transition([this, &t, num](const DrowsyTransitionEvent& e) {
    add(t, "drowsy-transition", 'i', e.cycle,
        {num("lines_drowsed", static_cast<double>(e.lines_drowsed)),
         num("wakeups", static_cast<double>(e.wakeups))});
  });
  t.hub().on_refresh_burst([this, &t, num](const RefreshBurstEvent& e) {
    add(t, "refresh-burst", 'i', e.cycle,
        {num("refreshed", static_cast<double>(e.refreshed)),
         num("expired_clean", static_cast<double>(e.expired_clean)),
         num("expired_dirty", static_cast<double>(e.expired_dirty)),
         num("repaired", static_cast<double>(e.repaired)),
         num("fault_lost", static_cast<double>(e.fault_lost))});
  });
  t.hub().on_fault([this, &t, num, str](const FaultEvent& e) {
    add(t, "fault", 'i', e.cycle,
        {str("line", hex_addr(e.line)),
         str("mode", std::string(to_string(e.mode))),
         str("outcome", e.outcome == FaultReadOutcome::Corrected
                            ? "corrected"
                            : (e.outcome == FaultReadOutcome::Lost ? "lost"
                                                                   : "silent")),
         num("dirty_lost", e.dirty_lost ? 1.0 : 0.0)});
  });
  t.hub().on_way_quarantine([this, &t, num, str](const WayQuarantineEvent& e) {
    add(t, "way-quarantine", 'i', e.cycle,
        {str("segment", e.segment), num("way", e.way),
         num("faults", e.faults), num("healthy_ways", e.healthy_ways),
         num("flush_writebacks", static_cast<double>(e.flush_writebacks))});
  });
  t.hub().on_bypass_decision(
      [this, &t, num, str](const BypassDecisionEvent& e) {
        add(t, "bypass-decision", 'i', e.cycle,
            {str("line", hex_addr(e.line)),
             str("mode", std::string(to_string(e.mode))),
             num("bypassed", e.bypassed ? 1.0 : 0.0)});
      });
  t.hub().on_epoch_sample([this, &t, num](const EpochSample& s) {
    add(t, "l2.ways", 'C', s.cycle,
        {num("user", s.user_ways), num("kernel", s.kernel_ways)});
    add(t, "l2.epoch", 'C', s.cycle,
        {num("miss_rate", s.miss_rate()),
         num("enabled_kb", s.enabled_bytes / 1024.0),
         num("awake_lines", static_cast<double>(s.drowsy_awake_lines))});
  });
  if (opts_.include_evictions) {
    t.hub().on_eviction([this, &t, num, str](const EvictionEvent& e) {
      add(t, "eviction", 'i', e.evict_cycle,
          {str("line", hex_addr(e.line)),
           str("owner", std::string(to_string(e.owner))),
           num("fill_cycle", static_cast<double>(e.fill_cycle)),
           num("access_count", e.access_count),
           num("dirty", e.dirty ? 1.0 : 0.0)});
    });
  }
}

namespace {

void write_arg_fields(JsonWriter& w, const std::string& key, bool is_num,
                      double num, const std::string& str) {
  w.key(key);
  if (is_num) {
    // Integral values print without a fraction for clean downstream parsing.
    if (num == static_cast<double>(static_cast<std::int64_t>(num))) {
      w.value(static_cast<std::int64_t>(num));
    } else {
      w.value(num);
    }
  } else {
    w.value(str);
  }
}

}  // namespace

std::string TraceSink::render_jsonl() const {
  std::string out;
  for (const Record& r : records_) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value(r.name);
    w.key("cycle").value(static_cast<std::uint64_t>(r.cycle));
    w.key("track").value(tracks_[r.track]);
    for (const Arg& a : r.args) write_arg_fields(w, a.key, a.is_num, a.num, a.str);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceSink::render_chrome() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents");
  w.begin_array();
  // One trace process per workload/scheme run so counter tracks (which
  // Chrome groups by pid) stay separate.
  for (std::uint32_t pid = 0; pid < tracks_.size(); ++pid) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(pid));
    w.key("tid").value(std::uint64_t{0});
    w.key("args");
    w.begin_object();
    w.key("name").value(tracks_[pid]);
    w.end_object();
    w.end_object();
  }
  for (const Record& r : records_) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("ph").value(std::string(1, r.phase));
    w.key("ts").value(cycles_to_us(r.cycle));
    w.key("pid").value(static_cast<std::uint64_t>(r.track));
    w.key("tid").value(std::uint64_t{0});
    if (r.phase == 'i') w.key("s").value("p");  // process-scoped instant
    w.key("args");
    w.begin_object();
    for (const Arg& a : r.args) write_arg_fields(w, a.key, a.is_num, a.num, a.str);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string TraceSink::render() const {
  return format_ == TraceFormat::Jsonl ? render_jsonl() : render_chrome();
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

void write_metrics_json(JsonWriter& w, const MetricRegistry& reg) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : reg.counters()) w.key(name).value(c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : reg.gauges()) w.key(name).value(g.value());
  w.end_object();
  w.key("stats");
  w.begin_object();
  for (const auto& [name, s] : reg.stats()) {
    w.key(name);
    w.begin_object();
    w.key("count").value(s.count());
    w.key("mean").value(s.mean());
    w.key("stddev").value(s.stddev());
    w.key("min").value(s.min());
    w.key("max").value(s.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : reg.histograms()) {
    w.key(name);
    w.begin_object();
    w.key("total").value(h.total());
    w.key("log2_buckets");
    w.begin_array();
    for (std::uint64_t b : h.buckets()) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string metrics_json_string(const MetricRegistry& reg) {
  JsonWriter w;
  write_metrics_json(w, reg);
  return w.str();
}

void write_epoch_series_json(JsonWriter& w, const EpochSeries& series) {
  w.begin_object();
  w.key("total_epochs").value(series.total_pushed());
  w.key("retained").value(static_cast<std::uint64_t>(series.size()));
  w.key("truncated").value(series.truncated());
  w.key("samples");
  w.begin_array();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const EpochSample& s = series.at(i);
    w.begin_object();
    w.key("epoch").value(s.epoch);
    w.key("cycle").value(static_cast<std::uint64_t>(s.cycle));
    w.key("accesses").value(s.accesses);
    w.key("misses").value(s.misses);
    w.key("miss_rate").value(s.miss_rate());
    w.key("user_ways").value(static_cast<std::uint64_t>(s.user_ways));
    w.key("kernel_ways").value(static_cast<std::uint64_t>(s.kernel_ways));
    w.key("enabled_bytes").value(s.enabled_bytes);
    w.key("drowsy_awake_lines").value(s.drowsy_awake_lines);
    w.key("refresh_nj").value(s.refresh_nj);
    w.key("leakage_nj").value(s.leakage_nj);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string telemetry_to_json(const Telemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.key("workload").value(t.workload());
  w.key("scheme").value(t.scheme());
  w.key("metrics");
  write_metrics_json(w, t.metrics());
  w.key("epoch_series");
  write_epoch_series_json(w, t.epochs());
  w.end_object();
  return w.str();
}

}  // namespace mobcache
