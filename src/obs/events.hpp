#pragma once
/// \file events.hpp
/// Structured simulation events and the ObserverHub that fans them out.
///
/// The hub generalizes the original one-off SimOptions::l2_eviction_observer
/// hook: any number of subscribers per event type, with O(1) "anyone
/// listening?" checks so un-observed emit sites cost one branch. Event
/// structs are plain data stamped with the simulated cycle; sinks
/// (obs/trace_export) translate them to JSONL or Chrome trace_event form.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hpp"  // EvictionEvent
#include "common/types.hpp"

namespace mobcache {

/// Dynamic-partition way reallocation (epoch boundary, technique 3).
struct PartitionResizeEvent {
  Cycle cycle = 0;
  std::uint32_t old_user_ways = 0;
  std::uint32_t old_kernel_ways = 0;
  std::uint32_t new_user_ways = 0;
  std::uint32_t new_kernel_ways = 0;
  /// Dirty blocks flushed because their way powered off.
  std::uint64_t flush_writebacks = 0;
};

/// Drowsy-cache window transition: lines dropped to the low-voltage state
/// at a window boundary, and how many had been woken during the window.
struct DrowsyTransitionEvent {
  Cycle cycle = 0;
  std::uint64_t lines_drowsed = 0;   ///< awake lines put back to sleep
  std::uint64_t wakeups = 0;         ///< wake transitions during the window
};

/// One maintenance pass of the STT-RAM scrub/expiry engine that did work.
struct RefreshBurstEvent {
  Cycle cycle = 0;
  std::uint64_t refreshed = 0;       ///< blocks rewritten in place
  std::uint64_t expired_clean = 0;
  std::uint64_t expired_dirty = 0;   ///< expiries that cost a DRAM writeback
  std::uint64_t repaired = 0;        ///< faulty blocks healed by the scrub
  std::uint64_t fault_lost = 0;      ///< uncorrectable blocks the scrub found
};

/// A detected fault consumed on the read path (fault subsystem; silent
/// corruptions are by definition not observable, so they never appear here).
struct FaultEvent {
  Cycle cycle = 0;
  Addr line = 0;
  Mode mode = Mode::User;                ///< requester that hit the fault
  FaultReadOutcome outcome = FaultReadOutcome::Corrected;
  bool dirty_lost = false;               ///< Lost block held dirty data
};

/// The RepairController took a weak way out of service.
struct WayQuarantineEvent {
  Cycle cycle = 0;
  std::string segment;                   ///< cache array name
  std::uint32_t way = 0;
  std::uint32_t faults = 0;              ///< fault count that triggered it
  std::uint32_t healthy_ways = 0;        ///< ways still in service after
  std::uint64_t flush_writebacks = 0;    ///< dirty blocks drained to DRAM
};

/// Stream write-bypass verdict for a predicted-dead fill (E18).
struct BypassDecisionEvent {
  Cycle cycle = 0;
  Addr line = 0;
  Mode mode = Mode::User;
  bool bypassed = false;  ///< false = probe install (predictor recovery)
};

/// Per-epoch time-series snapshot (see obs/timeseries.hpp for the series).
struct EpochSample {
  std::uint64_t epoch = 0;  ///< ordinal within the run
  Cycle cycle = 0;          ///< end of the sampled interval
  std::uint64_t accesses = 0;  ///< L2 demand accesses in the interval
  std::uint64_t misses = 0;
  double miss_rate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  std::uint32_t user_ways = 0;    ///< 0 for un-partitioned schemes
  std::uint32_t kernel_ways = 0;
  double enabled_bytes = 0.0;     ///< powered capacity at sample time
  std::uint64_t drowsy_awake_lines = 0;  ///< drowsy scheme only
  double refresh_nj = 0.0;        ///< energy spent in the interval
  double leakage_nj = 0.0;
};

/// Multicast dispatch for every structured event type. Subscribe with
/// on_*(); emit() forwards to all subscribers of that type.
class ObserverHub {
 public:
  using PartitionResizeFn = std::function<void(const PartitionResizeEvent&)>;
  using DrowsyFn = std::function<void(const DrowsyTransitionEvent&)>;
  using RefreshFn = std::function<void(const RefreshBurstEvent&)>;
  using BypassFn = std::function<void(const BypassDecisionEvent&)>;
  using EvictionFn = std::function<void(const EvictionEvent&)>;
  using EpochFn = std::function<void(const EpochSample&)>;
  using FaultFn = std::function<void(const FaultEvent&)>;
  using QuarantineFn = std::function<void(const WayQuarantineEvent&)>;

  void on_partition_resize(PartitionResizeFn fn) {
    resize_.push_back(std::move(fn));
  }
  void on_drowsy_transition(DrowsyFn fn) { drowsy_.push_back(std::move(fn)); }
  void on_refresh_burst(RefreshFn fn) { refresh_.push_back(std::move(fn)); }
  void on_bypass_decision(BypassFn fn) { bypass_.push_back(std::move(fn)); }
  void on_eviction(EvictionFn fn) { evict_.push_back(std::move(fn)); }
  void on_epoch_sample(EpochFn fn) { epoch_.push_back(std::move(fn)); }
  void on_fault(FaultFn fn) { fault_.push_back(std::move(fn)); }
  void on_way_quarantine(QuarantineFn fn) {
    quarantine_.push_back(std::move(fn));
  }

  void emit(const PartitionResizeEvent& e) const {
    for (const auto& fn : resize_) fn(e);
  }
  void emit(const DrowsyTransitionEvent& e) const {
    for (const auto& fn : drowsy_) fn(e);
  }
  void emit(const RefreshBurstEvent& e) const {
    for (const auto& fn : refresh_) fn(e);
  }
  void emit(const BypassDecisionEvent& e) const {
    for (const auto& fn : bypass_) fn(e);
  }
  void emit(const EvictionEvent& e) const {
    for (const auto& fn : evict_) fn(e);
  }
  void emit(const EpochSample& e) const {
    for (const auto& fn : epoch_) fn(e);
  }
  void emit(const FaultEvent& e) const {
    for (const auto& fn : fault_) fn(e);
  }
  void emit(const WayQuarantineEvent& e) const {
    for (const auto& fn : quarantine_) fn(e);
  }

  bool wants_evictions() const { return !evict_.empty(); }

  /// Adapter for SetAssocCache::add_eviction_observer — bridges the legacy
  /// per-array callback mechanism into the hub.
  EvictionFn eviction_bridge() {
    return [this](const EvictionEvent& e) { emit(e); };
  }

 private:
  std::vector<PartitionResizeFn> resize_;
  std::vector<DrowsyFn> drowsy_;
  std::vector<RefreshFn> refresh_;
  std::vector<BypassFn> bypass_;
  std::vector<EvictionFn> evict_;
  std::vector<EpochFn> epoch_;
  std::vector<FaultFn> fault_;
  std::vector<QuarantineFn> quarantine_;
};

}  // namespace mobcache
