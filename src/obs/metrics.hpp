#pragma once
/// \file metrics.hpp
/// Named-metric registry for in-simulation observability.
///
/// Schemes and the simulator register counters/gauges/histograms by
/// dotted name ("l2.partition.resizes", "l2.refresh.scrubbed") and bump
/// them during the run; exporters walk the registry afterwards. Metric
/// handles are stable for the registry's lifetime (node-based storage), so
/// instrumentation sites cache a pointer once and pay one predictable
/// null-check + increment per event — and nothing at all when no registry
/// is attached (see the inc()/set() helpers below).

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace mobcache {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_ += d; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written instantaneous value (way counts, occupancy, ...).
class Gauge {
 public:
  void set(double v) {
    v_ = v;
    set_ = true;
  }
  double value() const { return v_; }
  bool was_set() const { return set_; }

 private:
  double v_ = 0.0;
  bool set_ = false;
};

class MetricRegistry {
 public:
  /// Lookup-or-create; the returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Log2Histogram& histogram(const std::string& name) { return hists_[name]; }
  RunningStat& stat(const std::string& name) { return stats_[name]; }

  /// Cross-workload aggregation: counters add, histograms/stats merge
  /// (parallel Welford), gauges take the other side's last-written value
  /// (an instantaneous reading has no meaningful sum).
  void merge(const MetricRegistry& other);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Log2Histogram>& histograms() const {
    return hists_;
  }
  const std::map<std::string, RunningStat>& stats() const { return stats_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty() &&
           stats_.empty();
  }

 private:
  // std::map: node-based, so metric addresses survive later registrations.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Log2Histogram> hists_;
  std::map<std::string, RunningStat> stats_;
};

/// No-op-safe instrumentation helpers: sites keep a possibly-null handle
/// and the detached path costs one branch.
inline void inc(Counter* c, std::uint64_t d = 1) {
  if (c) c->add(d);
}
inline void set(Gauge* g, double v) {
  if (g) g->set(v);
}
inline void observe(RunningStat* s, double v) {
  if (s) s->add(v);
}
inline void observe(Log2Histogram* h, std::uint64_t v) {
  if (h) h->add(v);
}

}  // namespace mobcache
