#pragma once
/// \file timeseries.hpp
/// Ring-buffered epoch time series — bounded-memory storage for the
/// per-epoch EpochSample snapshots the schemes emit (way allocations,
/// interval miss rate, drowsy population, refresh/leakage energy).
///
/// A ring keeps the most recent `capacity` samples: long runs keep the
/// tail (the steady state the analyses care about) at fixed memory, and
/// total_pushed() reports how many fell off the front so exporters can
/// flag truncation instead of silently presenting a partial series.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace mobcache {

class EpochSeries {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit EpochSeries(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(const EpochSample& s) {
    if (ring_.size() < capacity_) {
      ring_.push_back(s);
    } else {
      ring_[head_] = s;
      head_ = (head_ + 1) % capacity_;
    }
    ++pushed_;
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return ring_.empty(); }
  /// Samples ever pushed; > size() means the ring dropped old epochs.
  std::uint64_t total_pushed() const { return pushed_; }
  bool truncated() const { return pushed_ > ring_.size(); }

  /// i-th retained sample in chronological order (0 = oldest retained).
  const EpochSample& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  /// Chronological copy of the retained window.
  std::vector<EpochSample> snapshot() const {
    std::vector<EpochSample> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(at(i));
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    pushed_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest sample once full
  std::uint64_t pushed_ = 0;
  std::vector<EpochSample> ring_;
};

}  // namespace mobcache
