#include "obs/metrics.hpp"

namespace mobcache {

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : other.gauges_) {
    if (g.was_set()) gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.hists_) hists_[name].merge(h);
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
}

}  // namespace mobcache
