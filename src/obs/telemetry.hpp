#pragma once
/// \file telemetry.hpp
/// Telemetry — the per-run observability session that ties the three obs
/// pieces together: a MetricRegistry (named aggregates), an EpochSeries
/// (ring-buffered time series), and an ObserverHub (structured event
/// fan-out to export sinks).
///
/// Instrumented code holds `Telemetry*` (null = detached) and calls
/// record(event); record() updates the standard metrics for that event
/// type, appends epoch samples to the series, and forwards to any hub
/// subscribers. With no Telemetry attached an instrumentation site costs
/// exactly one pointer test, keeping simulate() results and throughput
/// identical to an uninstrumented build.

#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace mobcache {

class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(std::size_t epoch_capacity) : epochs_(epoch_capacity) {}
  // Hub subscribers capture `this`-adjacent state; keep the session pinned.
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  ObserverHub& hub() { return hub_; }
  const ObserverHub& hub() const { return hub_; }
  EpochSeries& epochs() { return epochs_; }
  const EpochSeries& epochs() const { return epochs_; }

  /// Labels carried by exported events (set per simulate() call).
  void set_context(std::string workload, std::string scheme) {
    workload_ = std::move(workload);
    scheme_ = std::move(scheme);
  }
  const std::string& workload() const { return workload_; }
  const std::string& scheme() const { return scheme_; }

  /// Sim-level sampling cadence in L2 demand accesses for schemes without
  /// their own epoch notion (0 disables; the dynamic L2 always samples at
  /// its repartition epochs).
  void set_sample_interval(std::uint64_t accesses) {
    sample_interval_ = accesses;
  }
  std::uint64_t sample_interval() const { return sample_interval_; }

  void record(const PartitionResizeEvent& e);
  void record(const DrowsyTransitionEvent& e);
  void record(const RefreshBurstEvent& e);
  void record(const BypassDecisionEvent& e);
  void record(const EvictionEvent& e);
  void record(const EpochSample& s);
  void record(const FaultEvent& e);
  void record(const WayQuarantineEvent& e);

 private:
  MetricRegistry metrics_;
  EpochSeries epochs_;
  ObserverHub hub_;
  std::string workload_;
  std::string scheme_;
  std::uint64_t sample_interval_ = 0;
};

}  // namespace mobcache
