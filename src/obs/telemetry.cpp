#include "obs/telemetry.hpp"

namespace mobcache {

void Telemetry::record(const PartitionResizeEvent& e) {
  metrics_.counter("l2.partition.resizes").add();
  metrics_.counter("l2.partition.flush_writebacks").add(e.flush_writebacks);
  metrics_.gauge("l2.partition.user_ways").set(e.new_user_ways);
  metrics_.gauge("l2.partition.kernel_ways").set(e.new_kernel_ways);
  hub_.emit(e);
}

void Telemetry::record(const DrowsyTransitionEvent& e) {
  metrics_.counter("l2.drowsy.windows").add();
  metrics_.counter("l2.drowsy.wakeups").add(e.wakeups);
  metrics_.counter("l2.drowsy.lines_drowsed").add(e.lines_drowsed);
  hub_.emit(e);
}

void Telemetry::record(const RefreshBurstEvent& e) {
  metrics_.counter("l2.refresh.bursts").add();
  metrics_.counter("l2.refresh.scrubbed").add(e.refreshed);
  metrics_.counter("l2.refresh.expired_clean").add(e.expired_clean);
  metrics_.counter("l2.refresh.expired_dirty").add(e.expired_dirty);
  if (e.repaired != 0) metrics_.counter("l2.refresh.repaired").add(e.repaired);
  if (e.fault_lost != 0) {
    metrics_.counter("l2.refresh.fault_lost").add(e.fault_lost);
  }
  hub_.emit(e);
}

void Telemetry::record(const BypassDecisionEvent& e) {
  metrics_.counter("l2.bypass.decisions").add();
  if (e.bypassed) metrics_.counter("l2.bypass.bypassed").add();
  hub_.emit(e);
}

void Telemetry::record(const EvictionEvent& e) {
  metrics_.counter("l2.evictions").add();
  metrics_.histogram("l2.block.residency_cycles")
      .add(e.evict_cycle >= e.fill_cycle ? e.evict_cycle - e.fill_cycle : 0);
  hub_.emit(e);
}

void Telemetry::record(const FaultEvent& e) {
  if (e.outcome == FaultReadOutcome::Corrected) {
    metrics_.counter("l2.fault.ecc_corrected").add();
  } else if (e.outcome == FaultReadOutcome::Lost) {
    metrics_.counter("l2.fault.lost").add();
    if (e.dirty_lost) metrics_.counter("l2.fault.dirty_lost").add();
  }
  hub_.emit(e);
}

void Telemetry::record(const WayQuarantineEvent& e) {
  metrics_.counter("l2.repair.quarantines").add();
  metrics_.counter("l2.repair.flush_writebacks").add(e.flush_writebacks);
  metrics_.gauge("l2.repair.healthy_ways").set(e.healthy_ways);
  hub_.emit(e);
}

void Telemetry::record(const EpochSample& s) {
  epochs_.push(s);
  metrics_.counter("l2.epochs").add();
  metrics_.stat("l2.epoch.miss_rate").add(s.miss_rate());
  metrics_.stat("l2.epoch.enabled_bytes").add(s.enabled_bytes);
  hub_.emit(s);
}

}  // namespace mobcache
