#pragma once
/// \file trace_export.hpp
/// Export sinks for the observability layer, built on the shared JsonWriter:
///  - JSONL: one self-describing JSON object per line — trivially parsed
///    line-by-line by scripts (scripts/plot_timeline.py).
///  - Chrome trace_event: loads directly in chrome://tracing / Perfetto;
///    structured events become instants, epoch samples become counter
///    tracks (way allocation, miss rate) with one process per
///    workload/scheme run.
///
/// A TraceSink subscribes to a Telemetry session's ObserverHub and buffers
/// normalized records; render()/write_file() serializes them after the run.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.hpp"
#include "obs/telemetry.hpp"

namespace mobcache {

enum class TraceFormat : std::uint8_t { Jsonl, ChromeTrace };

/// Accepts "jsonl"/"json" and "chrome"/"trace"/"perfetto".
std::optional<TraceFormat> parse_trace_format(std::string_view s);

struct TraceSinkOptions {
  /// Per-block eviction events are high-volume; opt in explicitly.
  bool include_evictions = false;
};

class TraceSink {
 public:
  explicit TraceSink(TraceFormat format = TraceFormat::Jsonl,
                     TraceSinkOptions opts = {});

  /// Subscribes to every event channel of `t`'s hub. Events are labeled
  /// with the telemetry context (workload/scheme) current at emit time, so
  /// one sink can span a whole suite run. `t` must outlive the sink's use.
  void attach(Telemetry& t);

  std::size_t event_count() const { return records_.size(); }

  /// Serializes all buffered records in the sink's format.
  std::string render() const;
  bool write_file(const std::string& path) const;

 private:
  struct Arg {
    std::string key;
    double num = 0.0;
    std::string str;
    bool is_num = true;
  };
  struct Record {
    std::string name;  ///< event type ("partition-resize", "l2.ways", ...)
    char phase = 'i';  ///< Chrome ph: 'i' instant, 'C' counter
    Cycle cycle = 0;
    std::uint32_t track = 0;  ///< index into tracks_
    std::vector<Arg> args;
  };

  std::uint32_t track_of(const Telemetry& t);
  void add(const Telemetry& t, std::string name, char phase, Cycle cycle,
           std::vector<Arg> args);
  std::string render_jsonl() const;
  std::string render_chrome() const;

  TraceFormat format_;
  TraceSinkOptions opts_;
  std::vector<std::string> tracks_;  ///< "workload/scheme" labels
  std::vector<Record> records_;
};

/// Serializes a registry (counters, gauges, stats, histograms) as one JSON
/// object, e.g. for a --metrics-out file.
void write_metrics_json(JsonWriter& w, const MetricRegistry& reg);

/// write_metrics_json() into a fresh writer — the one-liner for callers
/// that want the document bytes (simrun --metrics=FILE, the daemon's
/// metrics.json snapshots).
std::string metrics_json_string(const MetricRegistry& reg);

/// Serializes the retained epoch window as a JSON array of sample objects
/// (plus a truncation marker when the ring dropped early epochs).
void write_epoch_series_json(JsonWriter& w, const EpochSeries& series);

/// Full telemetry dump: context + metrics + epoch series.
std::string telemetry_to_json(const Telemetry& t);

}  // namespace mobcache
