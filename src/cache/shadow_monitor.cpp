#include "cache/shadow_monitor.hpp"

#include <algorithm>

namespace mobcache {

ShadowTagMonitor::ShadowTagMonitor(std::uint32_t num_sets,
                                   std::uint32_t sample_shift,
                                   std::uint32_t depth)
    : sample_shift_(sample_shift),
      depth_(depth),
      sampled_sets_(std::max(1u, num_sets >> sample_shift)),
      stacks_(sampled_sets_),
      hits_at_depth_(depth, 0) {
  for (auto& st : stacks_) st.reserve(depth_);
}

void ShadowTagMonitor::access(Addr line, std::uint32_t set_index) {
  if (!sampled(set_index)) return;
  ++accesses_;
  auto& stack = stacks_[(set_index >> sample_shift_) % sampled_sets_];
  const auto it = std::find(stack.begin(), stack.end(), line);
  if (it != stack.end()) {
    const auto dpth = static_cast<std::size_t>(it - stack.begin());
    ++hits_at_depth_[dpth];
    stack.erase(it);
  } else if (stack.size() == depth_) {
    stack.pop_back();
  }
  stack.insert(stack.begin(), line);
}

std::uint64_t ShadowTagMonitor::hits_with_ways(std::uint32_t ways) const {
  std::uint64_t hits = 0;
  const std::uint32_t limit = std::min(ways, depth_);
  for (std::uint32_t d = 0; d < limit; ++d) hits += hits_at_depth_[d];
  return hits * (1ull << sample_shift_);
}

void ShadowTagMonitor::new_epoch() {
  std::fill(hits_at_depth_.begin(), hits_at_depth_.end(), 0);
  accesses_ = 0;
}

}  // namespace mobcache
