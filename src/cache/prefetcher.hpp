#pragma once
/// \file prefetcher.hpp
/// L2 stream/stride prefetch engine (extension beyond the paper).
///
/// Mobile SoCs of the paper's era shipped simple L2 stream prefetchers.
/// Prefetching interacts with partitioning in a non-obvious way: prefetched
/// kernel streams (page cache, network buffers) pollute a shared L2 even
/// harder, while in the partitioned designs the pollution stays inside the
/// owning segment. Experiment E12 quantifies this.
///
/// The engine is a classic region-based stride detector: per 4 KB region it
/// remembers the last miss line and the detected stride; after `kTrainHits`
/// consecutive confirmations it emits `degree` prefetch candidates.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

struct PrefetchConfig {
  bool enabled = false;
  std::uint32_t degree = 2;        ///< lines fetched ahead once trained
  std::uint32_t table_entries = 16;  ///< tracked regions per mode
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(const PrefetchConfig& cfg);

  /// Observes a demand L2 miss; returns the line addresses to prefetch
  /// (empty while training or when disabled).
  std::vector<Addr> observe_miss(Addr line, Mode mode);

  std::uint64_t issued() const { return issued_; }

 private:
  static constexpr std::uint64_t kRegionBytes = 4096;
  static constexpr std::uint32_t kTrainHits = 2;

  struct Entry {
    Addr region = 0;
    Addr last_line = 0;
    std::int64_t stride = 0;  ///< bytes between successive misses
    std::uint32_t confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  Entry& lookup(Addr region, Mode mode);

  PrefetchConfig cfg_;
  std::vector<Entry> table_[kModeCount];
  std::uint64_t tick_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace mobcache
