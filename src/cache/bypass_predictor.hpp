#pragma once
/// \file bypass_predictor.hpp
/// Stream write-bypass predictor for STT-RAM caches (extension).
///
/// STT-RAM turns every fill into an expensive write. Streaming data (page
/// cache, network buffers, frame buffers) is fetched once and never
/// re-referenced, so installing it buys nothing and costs a full write —
/// the classic fix is to predict dead-on-arrival fills and bypass them
/// (serve the requester straight from DRAM). The predictor is a tagless
/// table of 2-bit saturating counters indexed by a hash of the 4 KB region:
/// evictions of never-re-referenced blocks train toward "bypass", re-hits
/// train toward "install".

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

struct BypassPredictorConfig {
  bool enabled = false;
  std::uint32_t table_size = 256;  ///< counters (power of two)
  /// Counter value below which fills bypass (0..3; 1 = bypass only for
  /// strongly-dead regions).
  std::uint8_t bypass_below = 1;
};

class StreamBypassPredictor {
 public:
  explicit StreamBypassPredictor(const BypassPredictorConfig& cfg);

  /// True when a fill for this line should be bypassed (pure query).
  bool should_bypass(Addr line) const;

  /// Stateful decision used by the cache: like should_bypass, but every
  /// `kProbePeriod`-th would-be bypass installs anyway. Without probing, a
  /// small segment that evicts blocks before their re-reference trains
  /// everything toward bypass and can never recover (death spiral); probe
  /// installs give regions a chance to prove reuse.
  bool decide_bypass(Addr line);

  /// A resident block from this region was re-referenced: install-worthy.
  void train_reuse(Addr line);

  /// A block from this region left the cache; `was_reused` is whether it
  /// was touched again after its fill.
  void train_eviction(Addr line, bool was_reused);

  bool enabled() const { return cfg_.enabled; }
  std::uint64_t bypasses() const { return bypasses_; }
  /// Called by the owner when it acts on decide_bypass().
  void count_bypass() { ++bypasses_; }

  static constexpr std::uint64_t kProbePeriod = 8;

 private:
  static constexpr std::uint64_t kRegionBytes = 4096;
  static constexpr std::uint8_t kMax = 3;

  std::size_t index(Addr line) const {
    const std::uint64_t region = line / kRegionBytes;
    // Mix high bits so user and kernel regions spread across the table.
    const std::uint64_t h = region ^ (region >> 16) ^ (region >> 32);
    return static_cast<std::size_t>(h) & (table_.size() - 1);
  }

  BypassPredictorConfig cfg_;
  std::vector<std::uint8_t> table_;  ///< 2-bit counters, init weakly-install
  std::uint64_t bypasses_ = 0;
  std::uint64_t probe_tick_ = 0;
};

}  // namespace mobcache
