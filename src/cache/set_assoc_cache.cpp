#include "cache/set_assoc_cache.hpp"

#include <algorithm>
#include <bit>

namespace mobcache {

SetAssocCache::SetAssocCache(CacheConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), num_sets_(0) {
  cfg_.validate();
  num_sets_ = cfg_.num_sets();
  blocks_.resize(static_cast<std::size_t>(num_sets_) * cfg_.assoc);
  wear_.assign(blocks_.size(), 0);
  repl_ = make_replacement(cfg_.repl, num_sets_, cfg_.assoc, seed);
}

void SetAssocCache::notify_eviction(const BlockMeta& b, Cycle now) {
  if (observers_.empty()) return;
  EvictionEvent e;
  e.line = b.line;
  e.owner = b.owner;
  e.fill_cycle = b.fill_cycle;
  e.last_access = b.last_access;
  e.evict_cycle = now;
  e.dirty = b.dirty;
  e.access_count = b.access_count;
  for (const auto& obs : observers_) obs(e);
}

bool SetAssocCache::invalidate_line(Addr line, bool* was_dirty) {
  const std::uint32_t set = set_index(line);
  for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
    BlockMeta& b = block_mut(set, way);
    if (!b.valid || b.line != line) continue;
    if (was_dirty != nullptr) *was_dirty = b.dirty;
    notify_eviction(b, b.last_access);
    b.valid = false;
    repl_->on_invalidate(set, way);
    return true;
  }
  return false;
}

AccessResult SetAssocCache::access(Addr line, AccessType type, Mode mode,
                                   Cycle now, WayMask allowed, bool prefetch,
                                   bool no_alloc) {
  AccessResult r;
  const std::uint32_t set = set_index(line);
  if (!prefetch) ++stats_.accesses[static_cast<int>(mode)];

  // Lookup within the allowed ways.
  for (WayMask m = allowed; m != 0; m &= m - 1) {
    const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
    BlockMeta& b = block_mut(set, way);
    if (!b.valid || b.line != line) continue;
    if (expired(b, now)) {
      // Retention ran out before this re-reference: the data is gone. The
      // scrub hardware wrote dirty data back at expiry; surface that so the
      // owner design can charge the DRAM write.
      r.target_expired = true;
      r.expired_was_dirty = b.dirty;
      ++stats_.expired_blocks;
      if (b.dirty) ++stats_.expired_dirty;
      notify_eviction(b, now);
      b.valid = false;
      repl_->on_invalidate(set, way);
      break;  // fall through to the miss path
    }
    if (b.fault_bits != 0 && fault_hooks_ != nullptr) {
      const FaultReadOutcome out = fault_hooks_->read_check(line, b.fault_bits);
      if (out == FaultReadOutcome::Corrected) {
        b.fault_bits = 0;
        ++stats_.ecc_corrections;
        r.ecc_corrected = true;
      } else if (out == FaultReadOutcome::Lost) {
        // Detected but uncorrectable: the block is unusable. Dirty data
        // cannot be written back — the decayed copy was the only one.
        r.fault_lost = true;
        r.fault_lost_dirty = b.dirty;
        ++stats_.fault_losses;
        if (b.dirty) ++stats_.fault_lost_dirty;
        notify_eviction(b, now);
        b.valid = false;
        repl_->on_invalidate(set, way);
        break;  // fall through to the miss path
      } else {
        ++stats_.silent_faults;  // wrong data served; invisible to the host
      }
    }
    // Hit.
    r.hit = true;
    r.way = way;
    if (prefetch) return r;  // line already resident: prefetch is a no-op
    ++stats_.hits[static_cast<int>(mode)];
    if (b.prefetched) {
      ++stats_.useful_prefetches;
      b.prefetched = false;
    }
    b.last_access = now;
    ++b.access_count;
    if (type == AccessType::Write) {
      ++stats_.store_hits;
      b.dirty = true;
      b.last_write = now;
      count_wear(set, way);
      if (fault_hooks_ != nullptr) apply_write_faults(b, set, way);
      if (retention_period_ != 0)
        b.retention_deadline = now + effective_period(line);
    }
    repl_->on_hit(set, way);
    return r;
  }

  // Bypassed fill, or no ways left to fill into (every way of the segment
  // quarantined): the miss is counted and served straight from DRAM.
  if (no_alloc || allowed == 0) return r;

  // Miss: pick a fill way — an invalid/expired allowed way if any, else a
  // replacement victim among the allowed ways.
  std::uint32_t fill_way = cfg_.assoc;  // sentinel
  for (WayMask m = allowed; m != 0; m &= m - 1) {
    const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
    BlockMeta& b = block_mut(set, way);
    if (b.valid && expired(b, now)) {
      ++stats_.expired_blocks;
      if (b.dirty) {
        ++stats_.expired_dirty;
        r.expired_was_dirty = true;
      }
      notify_eviction(b, now);
      b.valid = false;
      repl_->on_invalidate(set, way);
    }
    if (!b.valid && fill_way == cfg_.assoc) fill_way = way;
  }

  if (fill_way == cfg_.assoc) {
    fill_way = repl_->choose_victim(set, allowed);
    BlockMeta& victim = block_mut(set, fill_way);
    r.evicted_valid = true;
    r.victim_dirty = victim.dirty;
    r.victim_line = victim.line;
    r.victim_owner = victim.owner;
    r.victim_access_count = victim.access_count;
    ++stats_.evictions;
    if (victim.dirty) ++stats_.writebacks;
    if (victim.owner != mode) ++stats_.cross_mode_evictions;
    notify_eviction(victim, now);
  }

  BlockMeta& b = block_mut(set, fill_way);
  b.line = line;
  b.valid = true;
  b.dirty = type == AccessType::Write;
  b.owner = mode;
  b.fill_cycle = now;
  b.last_access = now;
  b.last_write = now;
  b.retention_deadline =
      retention_period_ == 0 ? 0 : now + effective_period(line);
  b.access_count = 1;
  b.prefetched = prefetch;
  b.fault_bits = 0;
  if (fault_hooks_ != nullptr) apply_write_faults(b, set, fill_way);
  count_wear(set, fill_way);
  repl_->on_fill(set, fill_way);

  r.filled = true;
  r.way = fill_way;
  if (prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++stats_.fills;
  }
  return r;
}

bool SetAssocCache::refresh_block(std::uint32_t set, std::uint32_t way,
                                  Cycle now) {
  BlockMeta& b = block_mut(set, way);
  if (!b.valid) return false;
  if (b.fault_bits != 0 && fault_hooks_ != nullptr) {
    // The scrub reads the block before rewriting it, so the corrector runs
    // here too: this is how a scrub *repairs* decayed blocks it reaches in
    // time. Silent corruption is rewritten faithfully (bits stay wrong).
    const FaultReadOutcome out = fault_hooks_->read_check(b.line, b.fault_bits);
    if (out == FaultReadOutcome::Lost) {
      ++stats_.fault_losses;
      if (b.dirty) ++stats_.fault_lost_dirty;
      notify_eviction(b, now);
      b.valid = false;
      repl_->on_invalidate(set, way);
      return false;
    }
    if (out == FaultReadOutcome::Corrected) {
      b.fault_bits = 0;
      ++stats_.scrub_repairs;
    }
  }
  b.last_write = now;
  count_wear(set, way);
  if (fault_hooks_ != nullptr) apply_write_faults(b, set, way);
  if (retention_period_ != 0)
    b.retention_deadline = now + effective_period(b.line);
  ++stats_.refreshes;
  return true;
}

void SetAssocCache::apply_write_faults(BlockMeta& b, std::uint32_t set,
                                       std::uint32_t way) {
  const std::uint32_t upsets = fault_hooks_->write_upsets(b.line, set, way);
  if (upsets == 0) return;
  ++stats_.write_faults;
  b.fault_bits = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(b.fault_bits + upsets, 0xffffu));
}

bool SetAssocCache::corrupt_block(std::uint32_t set, std::uint32_t way,
                                  std::uint32_t bits) {
  BlockMeta& b = block_mut(set, way);
  if (!b.valid || bits == 0) return false;
  b.fault_bits = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(b.fault_bits + bits, 0xffffu));
  ++stats_.transient_upsets;
  return true;
}

std::uint64_t SetAssocCache::rotate_index(std::uint32_t new_xor_key) {
  const std::uint64_t dirty = invalidate_ways(full_way_mask(cfg_.assoc));
  index_rotation_ = new_xor_key & (num_sets_ - 1);
  return dirty;
}

WearSummary SetAssocCache::wear_summary() const {
  WearSummary w;
  std::vector<std::uint32_t> sorted = wear_;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t v : sorted) {
    w.total_writes += v;
    w.max_writes = std::max(w.max_writes, v);
  }
  w.mean_writes =
      static_cast<double>(w.total_writes) / static_cast<double>(wear_.size());
  w.p99_writes = sorted[sorted.size() - 1 - sorted.size() / 100];
  return w;
}

std::pair<std::uint64_t, std::uint64_t> SetAssocCache::expire_sweep(Cycle now) {
  std::uint64_t total = 0;
  std::uint64_t dirty = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
      BlockMeta& b = block_mut(set, way);
      if (!b.valid || !expired(b, now)) continue;
      ++total;
      ++stats_.expired_blocks;
      if (b.dirty) {
        ++dirty;
        ++stats_.expired_dirty;
      }
      notify_eviction(b, now);
      b.valid = false;
      repl_->on_invalidate(set, way);
    }
  }
  return {total, dirty};
}

std::uint64_t SetAssocCache::invalidate_ways(WayMask ways) {
  std::uint64_t dirty_flushed = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      BlockMeta& b = block_mut(set, way);
      if (!b.valid) continue;
      if (b.dirty) ++dirty_flushed;
      notify_eviction(b, b.last_access);
      b.valid = false;
      repl_->on_invalidate(set, way);
    }
  }
  return dirty_flushed;
}

std::uint64_t SetAssocCache::occupancy(WayMask ways, Cycle now) const {
  std::uint64_t count = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      const BlockMeta& b = block(set, way);
      if (b.valid && !expired(b, now)) ++count;
    }
  }
  return count;
}

std::uint64_t SetAssocCache::dirty_occupancy(WayMask ways, Cycle now) const {
  std::uint64_t count = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      const BlockMeta& b = block(set, way);
      if (b.valid && b.dirty && !expired(b, now)) ++count;
    }
  }
  return count;
}

void SetAssocCache::for_each_valid_block(
    const std::function<void(std::uint32_t, std::uint32_t, const BlockMeta&)>&
        fn) const {
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
      const BlockMeta& b = block(set, way);
      if (b.valid) fn(set, way, b);
    }
  }
}

bool SetAssocCache::contains(Addr line, Cycle now) const {
  const std::uint32_t set = set_index(line);
  for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
    const BlockMeta& b = block(set, way);
    if (b.valid && b.line == line && !expired(b, now)) return true;
  }
  return false;
}

}  // namespace mobcache
