#include "cache/set_assoc_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

namespace mobcache {

namespace {

/// Process-wide default kernel mode; 2 = not yet resolved from the
/// environment. Atomic because the parallel sweep executor constructs
/// caches from worker threads.
std::atomic<std::uint8_t> g_default_kernel_mode{2};

}  // namespace

KernelMode SetAssocCache::default_kernel_mode() {
  std::uint8_t v = g_default_kernel_mode.load(std::memory_order_relaxed);
  if (v == 2) {
    const char* e = std::getenv("MOBCACHE_REFERENCE_KERNEL");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 1 : 0;
    g_default_kernel_mode.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelMode>(v);
}

void SetAssocCache::set_default_kernel_mode(KernelMode m) {
  g_default_kernel_mode.store(static_cast<std::uint8_t>(m),
                              std::memory_order_relaxed);
}

SetAssocCache::SetAssocCache(CacheConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      num_sets_(0),
      kernel_mode_(default_kernel_mode()) {
  cfg_.validate();
  num_sets_ = cfg_.num_sets();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_size));
  sets_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(num_sets_)));
  const std::size_t n = static_cast<std::size_t>(num_sets_) * cfg_.assoc;
  tags_.assign(n, kNoTag);
  flags_.assign(n, 0);
  cold_.assign(n, ColdMeta{});
  wear_.assign(n, 0);
  repl_ = make_replacement(cfg_.repl, num_sets_, cfg_.assoc, seed);
  select_kernel();
}

void SetAssocCache::notify_eviction(std::size_t i, Cycle now) {
  if (observers_.empty()) return;
  EvictionEvent e;
  e.line = tags_[i];
  e.owner = owner_at(i);
  e.fill_cycle = cold_[i].fill_cycle;
  e.last_access = cold_[i].last_access;
  e.evict_cycle = now;
  e.dirty = (flags_[i] & kDirtyBit) != 0;
  e.access_count = cold_[i].access_count;
  for (const auto& obs : observers_) obs(e);
}

BlockMeta SetAssocCache::block(std::uint32_t set, std::uint32_t way) const {
  const std::size_t i = loc(set, way);
  BlockMeta b;
  b.line = tags_[i];
  b.valid = (flags_[i] & kValidBit) != 0;
  b.dirty = (flags_[i] & kDirtyBit) != 0;
  b.owner = owner_at(i);
  b.fill_cycle = cold_[i].fill_cycle;
  b.last_access = cold_[i].last_access;
  b.last_write = cold_[i].last_write;
  b.retention_deadline = cold_[i].deadline;
  b.access_count = cold_[i].access_count;
  b.prefetched = (flags_[i] & kPrefetchedBit) != 0;
  b.fault_bits = cold_[i].fault_bits;
  return b;
}

bool SetAssocCache::invalidate_line(Addr line, bool* was_dirty) {
  const std::uint32_t set = set_index(line);
  for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
    const std::size_t i = loc(set, way);
    if ((flags_[i] & kValidBit) == 0 || tags_[i] != line) continue;
    if (was_dirty != nullptr) *was_dirty = (flags_[i] & kDirtyBit) != 0;
    notify_eviction(i, cold_[i].last_access);
    invalidate_at(i);
    repl_->on_invalidate(set, way);
    return true;
  }
  return false;
}

template <typename Repl, bool HasRetention, bool HasFault, bool HasObs,
          std::uint32_t AssocT>
AccessResult SetAssocCache::access_kernel(Addr line, AccessType type,
                                          Mode mode, Cycle now,
                                          WayMask allowed, bool prefetch,
                                          bool no_alloc) {
  AccessResult r;
  // AssocT != 0 pins the trip count of every way loop below at compile
  // time (select_kernel only picks such a variant when cfg_.assoc matches).
  const std::uint32_t assoc = AssocT != 0 ? AssocT : cfg_.assoc;
  const std::uint32_t set = set_index(line);
  const std::size_t base = static_cast<std::size_t>(set) * assoc;
  // Repl == ReplacementPolicy keeps virtual dispatch (reference path); a
  // concrete final policy type turns every call below into a direct call on
  // the same state object.
  Repl& rp = static_cast<Repl&>(*repl_);
  if (!prefetch) ++stats_.accesses[static_cast<int>(mode)];

  // The metadata lanes below are only touched after the probe resolves;
  // issuing their loads now overlaps that latency with the tag scan on
  // sets that miss the host cache (random-set traffic).
  __builtin_prefetch(&flags_[base], 1);
  __builtin_prefetch(&cold_[base], 1);

  // Probe: branchless scan of the contiguous tag lane. Invalid blocks hold
  // kNoTag, so this is a pure tag compare — no flags load — and the
  // fixed-trip loop with no early exit vectorizes and carries no
  // data-dependent branch (an early-exit scan mispredicts on nearly every
  // hit, since the hit way is effectively random). Matches outside
  // `allowed` are masked off afterwards; countr_zero picks the lowest
  // allowed matching way, exactly what the old first-match loop returned.
  const Addr* const tag_row = tags_.data() + base;
  WayMask match = 0;
  for (std::uint32_t way = 0; way < assoc; ++way)
    match |= static_cast<WayMask>(tag_row[way] == line) << way;
  match &= allowed;
  const std::uint32_t hit_way =
      match != 0 ? static_cast<std::uint32_t>(std::countr_zero(match))
                 : assoc;

  if (hit_way != assoc) {
    const std::uint32_t way = hit_way;
    const std::size_t i = base + way;
    bool dropped = false;
    if (HasRetention && expired_at(i, now)) {
      // Retention ran out before this re-reference: the data is gone. The
      // scrub hardware wrote dirty data back at expiry; surface that so the
      // owner design can charge the DRAM write.
      const bool dirty = (flags_[i] & kDirtyBit) != 0;
      r.target_expired = true;
      r.expired_was_dirty = dirty;
      ++stats_.expired_blocks;
      if (dirty) ++stats_.expired_dirty;
      if constexpr (HasObs) notify_eviction(i, now);
      invalidate_at(i);
      rp.on_invalidate(set, way);
      dropped = true;  // fall through to the miss path
    } else if (HasFault && cold_[i].fault_bits != 0 && fault_hooks_ != nullptr) {
      const FaultReadOutcome out = fault_hooks_->read_check(line, cold_[i].fault_bits);
      if (out == FaultReadOutcome::Corrected) {
        cold_[i].fault_bits = 0;
        ++stats_.ecc_corrections;
        r.ecc_corrected = true;
      } else if (out == FaultReadOutcome::Lost) {
        // Detected but uncorrectable: the block is unusable. Dirty data
        // cannot be written back — the decayed copy was the only one.
        const bool dirty = (flags_[i] & kDirtyBit) != 0;
        r.fault_lost = true;
        r.fault_lost_dirty = dirty;
        ++stats_.fault_losses;
        if (dirty) ++stats_.fault_lost_dirty;
        if constexpr (HasObs) notify_eviction(i, now);
        invalidate_at(i);
        rp.on_invalidate(set, way);
        dropped = true;  // fall through to the miss path
      } else {
        ++stats_.silent_faults;  // wrong data served; invisible to the host
      }
    }
    if (!dropped) {
      // Hit.
      r.hit = true;
      r.way = way;
      if (prefetch) return r;  // line already resident: prefetch is a no-op
      ++stats_.hits[static_cast<int>(mode)];
      if ((flags_[i] & kPrefetchedBit) != 0) {
        ++stats_.useful_prefetches;
        flags_[i] &= static_cast<std::uint8_t>(~kPrefetchedBit);
      }
      cold_[i].last_access = now;
      ++cold_[i].access_count;
      if (type == AccessType::Write) {
        ++stats_.store_hits;
        flags_[i] |= kDirtyBit;
        cold_[i].last_write = now;
        ++wear_[i];
        if (HasFault && fault_hooks_ != nullptr) apply_write_faults(i, set, way);
        if (HasRetention && retention_period_ != 0)
          cold_[i].deadline = now + effective_period(line);
      }
      rp.on_hit(set, way);
      return r;
    }
  }

  // Bypassed fill, or no ways left to fill into (every way of the segment
  // quarantined): the miss is counted and served straight from DRAM.
  if (no_alloc || allowed == 0) return r;

  // Miss: pick a fill way — an invalid/expired allowed way if any, else a
  // replacement victim among the allowed ways.
  std::uint32_t fill_way = assoc;  // sentinel
  if constexpr (HasRetention) {
    for (WayMask m = allowed; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      const std::size_t i = base + way;
      if ((flags_[i] & kValidBit) != 0 && expired_at(i, now)) {
        ++stats_.expired_blocks;
        if ((flags_[i] & kDirtyBit) != 0) {
          ++stats_.expired_dirty;
          r.expired_was_dirty = true;
        }
        if constexpr (HasObs) notify_eviction(i, now);
        invalidate_at(i);
        rp.on_invalidate(set, way);
      }
      if ((flags_[i] & kValidBit) == 0 && fill_way == assoc)
        fill_way = way;
    }
  } else {
    // No expiry side effects: invalid ⇔ kNoTag in the (already hot) tag
    // row, so the first-invalid scan is branchless like the probe.
    WayMask invalid = 0;
    for (std::uint32_t way = 0; way < assoc; ++way)
      invalid |= static_cast<WayMask>(tag_row[way] == kNoTag) << way;
    invalid &= allowed;
    if (invalid != 0)
      fill_way = static_cast<std::uint32_t>(std::countr_zero(invalid));
  }

  if (fill_way == assoc) {
    fill_way = rp.choose_victim(set, allowed);
    const std::size_t v = base + fill_way;
    const bool victim_dirty = (flags_[v] & kDirtyBit) != 0;
    r.evicted_valid = true;
    r.victim_dirty = victim_dirty;
    r.victim_line = tags_[v];
    r.victim_owner = owner_at(v);
    r.victim_access_count = cold_[v].access_count;
    ++stats_.evictions;
    if (victim_dirty) ++stats_.writebacks;
    if (r.victim_owner != mode) ++stats_.cross_mode_evictions;
    if constexpr (HasObs) notify_eviction(v, now);
  }

  const std::size_t i = base + fill_way;
  tags_[i] = line;
  flags_[i] = static_cast<std::uint8_t>(
      kValidBit | (type == AccessType::Write ? kDirtyBit : 0) |
      (mode == Mode::Kernel ? kKernelBit : 0) |
      (prefetch ? kPrefetchedBit : 0));
  cold_[i].fill_cycle = now;
  cold_[i].last_access = now;
  cold_[i].last_write = now;
  cold_[i].deadline = retention_period_ == 0 ? 0 : now + effective_period(line);
  cold_[i].access_count = 1;
  cold_[i].fault_bits = 0;
  if (HasFault && fault_hooks_ != nullptr) apply_write_faults(i, set, fill_way);
  ++wear_[i];
  rp.on_fill(set, fill_way);

  r.filled = true;
  r.way = fill_way;
  if (prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++stats_.fills;
  }
  return r;
}

template <typename Repl>
SetAssocCache::AccessFn SetAssocCache::kernel_for_flags(bool retention,
                                                        bool fault,
                                                        bool obs) const {
  if (retention) {
    if (fault)
      return obs ? &SetAssocCache::access_kernel<Repl, true, true, true>
                 : &SetAssocCache::access_kernel<Repl, true, true, false>;
    return obs ? &SetAssocCache::access_kernel<Repl, true, false, true>
               : &SetAssocCache::access_kernel<Repl, true, false, false>;
  }
  if (fault)
    return obs ? &SetAssocCache::access_kernel<Repl, false, true, true>
               : &SetAssocCache::access_kernel<Repl, false, true, false>;
  if (obs) return &SetAssocCache::access_kernel<Repl, false, false, true>;
  // The feature-free kernel is the hottest instantiation by far; pin the
  // associativity at compile time for the two the modeled hierarchies use
  // so the probe and fill-way scans fully unroll.
  switch (cfg_.assoc) {
    case 8:
      return &SetAssocCache::access_kernel<Repl, false, false, false, 8>;
    case 16:
      return &SetAssocCache::access_kernel<Repl, false, false, false, 16>;
    default:
      return &SetAssocCache::access_kernel<Repl, false, false, false>;
  }
}

void SetAssocCache::select_kernel() {
  if (retention_period_ != 0) retention_ever_ = true;
  if (kernel_mode_ == KernelMode::Reference) {
    // The generic always-checking kernel through the virtual policy
    // interface: the behavioral baseline.
    kernel_ = &SetAssocCache::access_kernel<ReplacementPolicy, true, true, true>;
    return;
  }
  const bool ret = retention_ever_;
  const bool fault = fault_hooks_ != nullptr;
  const bool obs = !observers_.empty();
  switch (cfg_.repl) {
    case ReplKind::Lru:
    case ReplKind::Fifo:  // FIFO shares LruPolicy (update_on_hit=false)
      kernel_ = kernel_for_flags<LruPolicy>(ret, fault, obs);
      break;
    case ReplKind::Random:
      kernel_ = kernel_for_flags<RandomPolicy>(ret, fault, obs);
      break;
    case ReplKind::Plru:
      kernel_ = kernel_for_flags<PlruPolicy>(ret, fault, obs);
      break;
    case ReplKind::Srrip:
      kernel_ = kernel_for_flags<SrripPolicy>(ret, fault, obs);
      break;
  }
}

std::string SetAssocCache::kernel_name() const {
  if (kernel_mode_ == KernelMode::Reference) return "reference";
  std::string n = "fast/";
  n += to_string(cfg_.repl);
  if (retention_ever_) n += "+retention";
  if (fault_hooks_ != nullptr) n += "+fault";
  if (!observers_.empty()) n += "+obs";
  return n;
}

bool SetAssocCache::refresh_block(std::uint32_t set, std::uint32_t way,
                                  Cycle now) {
  const std::size_t i = loc(set, way);
  if ((flags_[i] & kValidBit) == 0) return false;
  if (cold_[i].fault_bits != 0 && fault_hooks_ != nullptr) {
    // The scrub reads the block before rewriting it, so the corrector runs
    // here too: this is how a scrub *repairs* decayed blocks it reaches in
    // time. Silent corruption is rewritten faithfully (bits stay wrong).
    const FaultReadOutcome out =
        fault_hooks_->read_check(tags_[i], cold_[i].fault_bits);
    if (out == FaultReadOutcome::Lost) {
      ++stats_.fault_losses;
      if ((flags_[i] & kDirtyBit) != 0) ++stats_.fault_lost_dirty;
      notify_eviction(i, now);
      invalidate_at(i);
      repl_->on_invalidate(set, way);
      return false;
    }
    if (out == FaultReadOutcome::Corrected) {
      cold_[i].fault_bits = 0;
      ++stats_.scrub_repairs;
    }
  }
  cold_[i].last_write = now;
  ++wear_[i];
  if (fault_hooks_ != nullptr) apply_write_faults(i, set, way);
  if (retention_period_ != 0)
    cold_[i].deadline = now + effective_period(tags_[i]);
  ++stats_.refreshes;
  return true;
}

void SetAssocCache::apply_write_faults(std::size_t i, std::uint32_t set,
                                       std::uint32_t way) {
  const std::uint32_t upsets = fault_hooks_->write_upsets(tags_[i], set, way);
  if (upsets == 0) return;
  ++stats_.write_faults;
  cold_[i].fault_bits = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(cold_[i].fault_bits + upsets, 0xffffu));
}

bool SetAssocCache::corrupt_block(std::uint32_t set, std::uint32_t way,
                                  std::uint32_t bits) {
  const std::size_t i = loc(set, way);
  if ((flags_[i] & kValidBit) == 0 || bits == 0) return false;
  cold_[i].fault_bits = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(cold_[i].fault_bits + bits, 0xffffu));
  ++stats_.transient_upsets;
  return true;
}

std::uint64_t SetAssocCache::rotate_index(std::uint32_t new_xor_key) {
  const std::uint64_t dirty = invalidate_ways(full_way_mask(cfg_.assoc));
  index_rotation_ = new_xor_key & (num_sets_ - 1);
  return dirty;
}

WearSummary SetAssocCache::wear_summary() const {
  WearSummary w;
  std::vector<std::uint32_t> sorted = wear_;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t v : sorted) {
    w.total_writes += v;
    w.max_writes = std::max(w.max_writes, v);
  }
  w.mean_writes =
      static_cast<double>(w.total_writes) / static_cast<double>(wear_.size());
  w.p99_writes = sorted[sorted.size() - 1 - sorted.size() / 100];
  return w;
}

std::pair<std::uint64_t, std::uint64_t> SetAssocCache::expire_sweep(Cycle now) {
  std::uint64_t total = 0;
  std::uint64_t dirty = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
      const std::size_t i = loc(set, way);
      if ((flags_[i] & kValidBit) == 0 || !expired_at(i, now)) continue;
      ++total;
      ++stats_.expired_blocks;
      if ((flags_[i] & kDirtyBit) != 0) {
        ++dirty;
        ++stats_.expired_dirty;
      }
      notify_eviction(i, now);
      invalidate_at(i);
      repl_->on_invalidate(set, way);
    }
  }
  return {total, dirty};
}

std::uint64_t SetAssocCache::invalidate_ways(WayMask ways) {
  std::uint64_t dirty_flushed = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      const std::size_t i = loc(set, way);
      if ((flags_[i] & kValidBit) == 0) continue;
      if ((flags_[i] & kDirtyBit) != 0) ++dirty_flushed;
      notify_eviction(i, cold_[i].last_access);
      invalidate_at(i);
      repl_->on_invalidate(set, way);
    }
  }
  return dirty_flushed;
}

std::uint64_t SetAssocCache::occupancy(WayMask ways, Cycle now) const {
  std::uint64_t count = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      const std::size_t i = loc(set, way);
      if ((flags_[i] & kValidBit) != 0 && !expired_at(i, now)) ++count;
    }
  }
  return count;
}

std::uint64_t SetAssocCache::dirty_occupancy(WayMask ways, Cycle now) const {
  std::uint64_t count = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (WayMask m = ways; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (way >= cfg_.assoc) break;
      const std::size_t i = loc(set, way);
      if ((flags_[i] & (kValidBit | kDirtyBit)) == (kValidBit | kDirtyBit) &&
          !expired_at(i, now))
        ++count;
    }
  }
  return count;
}

void SetAssocCache::for_each_valid_block(
    const std::function<void(std::uint32_t, std::uint32_t, const BlockMeta&)>&
        fn) const {
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
      if ((flags_[loc(set, way)] & kValidBit) == 0) continue;
      const BlockMeta b = block(set, way);
      fn(set, way, b);
    }
  }
}

bool SetAssocCache::contains(Addr line, Cycle now) const {
  const std::uint32_t set = set_index(line);
  for (std::uint32_t way = 0; way < cfg_.assoc; ++way) {
    const std::size_t i = loc(set, way);
    if ((flags_[i] & kValidBit) != 0 && tags_[i] == line &&
        !expired_at(i, now))
      return true;
  }
  return false;
}

}  // namespace mobcache
