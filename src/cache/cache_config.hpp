#pragma once
/// \file cache_config.hpp
/// Geometry + policy description for one set-associative cache array.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace mobcache {

/// Replacement policy selector. LRU is the paper's configuration; the rest
/// exist for the E10 ablation.
enum class ReplKind : std::uint8_t { Lru, Fifo, Random, Plru, Srrip };

constexpr std::string_view to_string(ReplKind k) {
  switch (k) {
    case ReplKind::Lru: return "LRU";
    case ReplKind::Fifo: return "FIFO";
    case ReplKind::Random: return "Random";
    case ReplKind::Plru: return "PLRU";
    case ReplKind::Srrip: return "SRRIP";
  }
  return "?";
}

/// Bitmask over ways; bit w set ⇔ way w may be used. Supports up to 64 ways.
using WayMask = std::uint64_t;

constexpr WayMask full_way_mask(std::uint32_t assoc) {
  return assoc >= 64 ? ~0ull : ((1ull << assoc) - 1);
}

/// Contiguous way range [first, first+count) as a mask.
constexpr WayMask way_range_mask(std::uint32_t first, std::uint32_t count) {
  return count == 0 ? 0 : full_way_mask(count) << first;
}

/// Mask with only way `w` set.
constexpr WayMask way_bit(std::uint32_t w) { return 1ull << w; }

/// The `count` lowest-numbered set bits of `from` (fewer if `from` has
/// fewer). Used to carve partition allocations out of a healthy-way mask
/// that may have holes after way-disable repair.
constexpr WayMask lowest_ways(WayMask from, std::uint32_t count) {
  WayMask out = 0;
  for (std::uint32_t w = 0; w < 64 && count > 0; ++w) {
    if ((from & way_bit(w)) != 0) {
      out |= way_bit(w);
      --count;
    }
  }
  return out;
}

/// The `count` highest-numbered set bits of `from` (fewer if `from` has
/// fewer).
constexpr WayMask highest_ways(WayMask from, std::uint32_t count) {
  WayMask out = 0;
  for (std::int32_t w = 63; w >= 0 && count > 0; --w) {
    if ((from & way_bit(static_cast<std::uint32_t>(w))) != 0) {
      out |= way_bit(static_cast<std::uint32_t>(w));
      --count;
    }
  }
  return out;
}

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 2ull << 20;
  std::uint32_t assoc = 16;
  std::uint64_t line_size = kLineSize;
  ReplKind repl = ReplKind::Lru;
  /// XOR-fold the tag bits into the set index (classic conflict-miss
  /// mitigation; E10 ablates its interaction with partitioning).
  bool xor_index = false;

  std::uint32_t num_sets() const {
    return static_cast<std::uint32_t>(size_bytes / (line_size * assoc));
  }

  std::uint64_t num_lines() const { return size_bytes / line_size; }

  /// Throws std::invalid_argument on inconsistent geometry (non-power-of-two
  /// sets/line size, zero sizes, assoc > 64).
  void validate() const {
    auto pow2 = [](std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
    if (line_size == 0 || !pow2(line_size))
      throw std::invalid_argument(name + ": line size must be a power of two");
    if (assoc == 0 || assoc > 64)
      throw std::invalid_argument(name + ": associativity must be in [1,64]");
    if (size_bytes == 0 || size_bytes % (line_size * assoc) != 0)
      throw std::invalid_argument(name +
                                  ": size must be a multiple of line*assoc");
    if (!pow2(num_sets()))
      throw std::invalid_argument(name + ": set count must be a power of two");
    if (repl == ReplKind::Plru && !pow2(assoc))
      throw std::invalid_argument(name + ": PLRU needs power-of-two assoc");
  }
};

}  // namespace mobcache
