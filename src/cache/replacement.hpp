#pragma once
/// \file replacement.hpp
/// Pluggable replacement policies, all way-mask aware.
///
/// The mask-awareness is essential: the partitioned L2 designs restrict
/// victim selection to the ways owned by the accessing mode's segment, and
/// the dynamic design additionally excludes power-gated ways.

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"

namespace mobcache {

/// Per-array replacement state. One instance per SetAssocCache.
///
/// Contract: choose_victim is only called with a non-empty candidate mask
/// whose ways are all valid (the cache fills invalid ways first); the
/// returned way is always a set bit of the mask.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_hit(std::uint32_t set, std::uint32_t way) = 0;
  virtual void on_fill(std::uint32_t set, std::uint32_t way) = 0;
  virtual std::uint32_t choose_victim(std::uint32_t set,
                                      WayMask candidates) = 0;

  /// Forget state for a way (used when the dynamic controller flushes a way
  /// during repartitioning). Default: nothing, policies that age out state
  /// naturally may ignore it.
  virtual void on_invalidate(std::uint32_t set, std::uint32_t way);
};

/// Factory. `seed` feeds the Random policy (other kinds ignore it).
std::unique_ptr<ReplacementPolicy> make_replacement(ReplKind kind,
                                                    std::uint32_t num_sets,
                                                    std::uint32_t assoc,
                                                    std::uint64_t seed = 1);

}  // namespace mobcache
