#pragma once
/// \file replacement.hpp
/// Pluggable replacement policies, all way-mask aware.
///
/// The mask-awareness is essential: the partitioned L2 designs restrict
/// victim selection to the ways owned by the accessing mode's segment, and
/// the dynamic design additionally excludes power-gated ways.
///
/// The concrete policies are defined here (not hidden in the .cpp) so the
/// specialized access kernels in set_assoc_cache.cpp can downcast the
/// polymorphic handle and call them without virtual dispatch: every class is
/// `final`, so a call through the concrete type is a direct, inlinable call
/// on the *same* state object the virtual reference path uses — the two
/// dispatch styles are bit-identical by construction.

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"
#include "common/rng.hpp"

namespace mobcache {

/// Per-array replacement state. One instance per SetAssocCache.
///
/// Contract: choose_victim is only called with a non-empty candidate mask
/// whose ways are all valid (the cache fills invalid ways first); the
/// returned way is always a set bit of the mask.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_hit(std::uint32_t set, std::uint32_t way) = 0;
  virtual void on_fill(std::uint32_t set, std::uint32_t way) = 0;
  virtual std::uint32_t choose_victim(std::uint32_t set,
                                      WayMask candidates) = 0;

  /// Forget state for a way (used when the dynamic controller flushes a way
  /// during repartitioning). Default: nothing, policies that age out state
  /// naturally may ignore it.
  virtual void on_invalidate(std::uint32_t set, std::uint32_t way);
};

/// Exact LRU via monotone stamps: victim = smallest stamp among candidates.
/// With update_on_hit=false the stamps only move on fill — FIFO.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint32_t num_sets, std::uint32_t assoc, bool update_on_hit)
      : assoc_(assoc),
        update_on_hit_(update_on_hit),
        stamp_(static_cast<std::size_t>(num_sets) * assoc, 0) {}

  void on_hit(std::uint32_t set, std::uint32_t way) final {
    if (update_on_hit_) stamp_[idx(set, way)] = ++tick_;
  }

  void on_fill(std::uint32_t set, std::uint32_t way) final {
    stamp_[idx(set, way)] = ++tick_;
  }

  std::uint32_t choose_victim(std::uint32_t set, WayMask candidates) final {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t victim = 0;
    for (WayMask m = candidates; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      if (stamp_[idx(set, way)] < best) {
        best = stamp_[idx(set, way)];
        victim = way;
      }
    }
    return victim;
  }

  void on_invalidate(std::uint32_t set, std::uint32_t way) final {
    stamp_[idx(set, way)] = 0;
  }

 private:
  std::size_t idx(std::uint32_t set, std::uint32_t way) const {
    return static_cast<std::size_t>(set) * assoc_ + way;
  }

  std::uint32_t assoc_;
  bool update_on_hit_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  void on_hit(std::uint32_t, std::uint32_t) final {}
  void on_fill(std::uint32_t, std::uint32_t) final {}

  std::uint32_t choose_victim(std::uint32_t, WayMask candidates) final {
    const int n = std::popcount(candidates);
    auto pick = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n)));
    for (WayMask m = candidates; m != 0; m &= m - 1) {
      if (pick-- == 0) return static_cast<std::uint32_t>(std::countr_zero(m));
    }
    return static_cast<std::uint32_t>(std::countr_zero(candidates));
  }

 private:
  Rng rng_;
};

/// Tree-PLRU. One bit per internal node of a binary tree over the ways;
/// bit==0 means "LRU side is the left subtree". Mask-aware traversal: when
/// the pointed-to subtree contains no candidate way, take the other side.
class PlruPolicy final : public ReplacementPolicy {
 public:
  PlruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
      : assoc_(assoc),
        bits_(static_cast<std::size_t>(num_sets) * assoc, false) {}

  void on_hit(std::uint32_t set, std::uint32_t way) final { touch(set, way); }
  void on_fill(std::uint32_t set, std::uint32_t way) final { touch(set, way); }

  std::uint32_t choose_victim(std::uint32_t set, WayMask candidates) final {
    // Descend from the root; node i has children 2i+1, 2i+2; leaves map to
    // ways in order.
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t span = assoc_;
    while (span > 1) {
      const bool go_right = bit(set, node);
      const std::uint32_t half = span / 2;
      const WayMask left_mask = way_range_mask(lo, half) & candidates;
      const WayMask right_mask = way_range_mask(lo + half, half) & candidates;
      bool right = go_right;
      if (right && right_mask == 0) right = false;
      if (!right && left_mask == 0) right = true;
      node = 2 * node + (right ? 2 : 1);
      if (right) lo += half;
      span = half;
    }
    return lo;
  }

 private:
  bool bit(std::uint32_t set, std::uint32_t node) const {
    return bits_[static_cast<std::size_t>(set) * assoc_ + node];
  }

  /// Flip path bits so the tree points *away* from `way`.
  void touch(std::uint32_t set, std::uint32_t way) {
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t span = assoc_;
    while (span > 1) {
      const std::uint32_t half = span / 2;
      const bool in_right = way >= lo + half;
      bits_[static_cast<std::size_t>(set) * assoc_ + node] = !in_right;
      node = 2 * node + (in_right ? 2 : 1);
      if (in_right) lo += half;
      span = half;
    }
  }

  std::uint32_t assoc_;
  std::vector<bool> bits_;  // assoc-1 nodes used per set; sized assoc for simplicity
};

/// Static RRIP (SRRIP-HP) with 2-bit re-reference prediction values.
class SrripPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::uint8_t kMaxRrpv = 3;

  SrripPolicy(std::uint32_t num_sets, std::uint32_t assoc)
      : assoc_(assoc),
        rrpv_(static_cast<std::size_t>(num_sets) * assoc, kMaxRrpv) {}

  void on_hit(std::uint32_t set, std::uint32_t way) final {
    rrpv_[idx(set, way)] = 0;
  }

  void on_fill(std::uint32_t set, std::uint32_t way) final {
    rrpv_[idx(set, way)] = kMaxRrpv - 1;  // "long" re-reference interval
  }

  std::uint32_t choose_victim(std::uint32_t set, WayMask candidates) final {
    for (;;) {
      for (WayMask m = candidates; m != 0; m &= m - 1) {
        const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
        if (rrpv_[idx(set, way)] == kMaxRrpv) return way;
      }
      for (WayMask m = candidates; m != 0; m &= m - 1) {
        const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
        ++rrpv_[idx(set, way)];
      }
    }
  }

  void on_invalidate(std::uint32_t set, std::uint32_t way) final {
    rrpv_[idx(set, way)] = kMaxRrpv;
  }

 private:
  std::size_t idx(std::uint32_t set, std::uint32_t way) const {
    return static_cast<std::size_t>(set) * assoc_ + way;
  }

  std::uint32_t assoc_;
  std::vector<std::uint8_t> rrpv_;
};

/// Factory. `seed` feeds the Random policy (other kinds ignore it).
std::unique_ptr<ReplacementPolicy> make_replacement(ReplKind kind,
                                                    std::uint32_t num_sets,
                                                    std::uint32_t assoc,
                                                    std::uint64_t seed = 1);

}  // namespace mobcache
