#include "cache/bypass_predictor.hpp"

namespace mobcache {

StreamBypassPredictor::StreamBypassPredictor(
    const BypassPredictorConfig& cfg)
    : cfg_(cfg) {
  std::uint32_t size = cfg_.table_size;
  if (size == 0) size = 1;
  // Round up to a power of two for the mask-index.
  while ((size & (size - 1)) != 0) ++size;
  table_.assign(size, 2);  // weakly install: new regions get cached
}

bool StreamBypassPredictor::should_bypass(Addr line) const {
  if (!cfg_.enabled) return false;
  return table_[index(line)] < cfg_.bypass_below;
}

bool StreamBypassPredictor::decide_bypass(Addr line) {
  if (!should_bypass(line)) return false;
  if (++probe_tick_ % kProbePeriod == 0) return false;  // probe install
  return true;
}

void StreamBypassPredictor::train_reuse(Addr line) {
  std::uint8_t& c = table_[index(line)];
  if (c < kMax) ++c;
}

void StreamBypassPredictor::train_eviction(Addr line, bool was_reused) {
  std::uint8_t& c = table_[index(line)];
  if (was_reused) {
    if (c < kMax) ++c;
  } else if (c > 0) {
    --c;
  }
}

}  // namespace mobcache
