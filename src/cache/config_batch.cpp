#include "cache/config_batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobcache {

namespace {

/// Line addresses are kLineSize-aligned, so an all-ones word can never be a
/// real tag — same trick as the kNoTag sentinel in SetAssocCache.
constexpr Addr kEmptyTag = ~Addr{0};

}  // namespace

ShadowConfigBatch::ShadowConfigBatch(std::vector<ShadowGeometry> geometries,
                                     std::uint32_t sample_shift)
    : geoms_(std::move(geometries)), sample_shift_(sample_shift) {
  meta_.reserve(geoms_.size());
  std::size_t tag_total = 0;
  std::size_t depth_total = 0;
  for (const ShadowGeometry& g : geoms_) {
    if (g.num_sets == 0 || g.assoc == 0) {
      throw std::invalid_argument(
          "ShadowConfigBatch: geometry needs num_sets > 0 and assoc > 0");
    }
    LaneMeta m;
    m.sampled_sets = std::max(1u, g.num_sets >> sample_shift_);
    m.assoc = g.assoc;
    m.tag_base = tag_total;
    m.depth_base = depth_total;
    meta_.push_back(m);
    tag_total += static_cast<std::size_t>(m.sampled_sets) * m.assoc;
    depth_total += m.assoc;
  }
  tags_.assign(tag_total, kEmptyTag);
  hits_at_depth_.assign(depth_total, 0);
  accesses_.assign(geoms_.size(), 0);
}

void ShadowConfigBatch::observe(Addr line) {
  const Addr l = line_addr(line);
  const Addr block = l / kLineSize;
  for (std::size_t g = 0; g < geoms_.size(); ++g) {
    const std::uint32_t set =
        static_cast<std::uint32_t>(block % geoms_[g].num_sets);
    if ((set & ((1u << sample_shift_) - 1u)) != 0) continue;
    const LaneMeta& m = meta_[g];
    ++accesses_[g];
    Addr* row = tags_.data() + m.tag_base +
                static_cast<std::size_t>((set >> sample_shift_) %
                                         m.sampled_sets) *
                    m.assoc;
    // MRU-first stack update in place: find the hit depth (or the end of the
    // row), shift everything above it down one slot, insert at MRU.
    std::uint32_t depth = m.assoc - 1;  // miss: the LRU entry falls off
    for (std::uint32_t d = 0; d < m.assoc; ++d) {
      if (row[d] == l) {
        ++hits_at_depth_[m.depth_base + d];
        depth = d;
        break;
      }
    }
    for (std::uint32_t d = depth; d > 0; --d) row[d] = row[d - 1];
    row[0] = l;
  }
}

std::uint64_t ShadowConfigBatch::observed_accesses(std::size_t g) const {
  return accesses_[g] * (1ull << sample_shift_);
}

std::uint64_t ShadowConfigBatch::hits_with_ways(std::size_t g,
                                                std::uint32_t ways) const {
  const LaneMeta& m = meta_[g];
  const std::uint32_t limit = std::min(ways, m.assoc);
  std::uint64_t hits = 0;
  for (std::uint32_t d = 0; d < limit; ++d) {
    hits += hits_at_depth_[m.depth_base + d];
  }
  return hits * (1ull << sample_shift_);
}

double ShadowConfigBatch::estimated_miss_rate(std::size_t g) const {
  return estimated_miss_rate(g, meta_[g].assoc);
}

double ShadowConfigBatch::estimated_miss_rate(std::size_t g,
                                              std::uint32_t ways) const {
  if (accesses_[g] == 0) return 0.0;
  const double hits = static_cast<double>(hits_with_ways(g, ways));
  const double acc = static_cast<double>(observed_accesses(g));
  return 1.0 - hits / acc;
}

}  // namespace mobcache
