#pragma once
/// \file set_assoc_cache.hpp
/// Way-mask-aware set-associative cache array with write-back/write-allocate
/// semantics, per-block owner-mode tracking, and optional finite retention
/// (STT-RAM block expiry).
///
/// This one class backs every L2 organization in the paper reproduction:
///  - the shared baseline uses the full way mask,
///  - the static partitioned design instantiates two arrays,
///  - the dynamic design uses one array with per-mode way masks that the
///    controller rewrites at epoch boundaries,
///  - the STT-RAM designs additionally set a retention period so blocks not
///    rewritten in time expire (or are scrubbed by the RefreshController).
///
/// Storage is structure-of-arrays: the hit probe scans a contiguous per-set
/// tag lane (plus one packed flag byte per block) instead of striding
/// through ~64-byte AoS records, and the cold per-block state (retention
/// deadlines, lifetime cycles, fault bits) lives in separate lanes touched
/// only on the paths that need them. The per-access kernel is additionally
/// specialized at run start: one member-function-pointer dispatch selects a
/// kernel templated on the concrete replacement policy (devirtualizing
/// on_hit/on_fill/choose_victim) and on whether retention, fault hooks and
/// eviction observers are live, so disabled features cost nothing per
/// access. The generic virtual-dispatch kernel is retained as the reference
/// implementation (KernelMode::Reference); the two are bit-identical, which
/// the golden-equivalence suite (tests/test_kernel_equiv.cpp) pins.
/// See docs/PERFORMANCE.md.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/replacement.hpp"
#include "common/types.hpp"

namespace mobcache {

/// Materialized view of one cache block's metadata, assembled from the SoA
/// lanes. Returned by value from block() / passed to for_each_valid_block
/// visitors; mutating it does not touch the array.
struct BlockMeta {
  Addr line = 0;  ///< full line address (tag and index combined)
  bool valid = false;
  bool dirty = false;
  Mode owner = Mode::User;   ///< mode that filled the block
  Cycle fill_cycle = 0;
  Cycle last_access = 0;
  Cycle last_write = 0;          ///< array write: fill, store hit, or refresh
  Cycle retention_deadline = 0;  ///< 0 = non-volatile
  std::uint32_t access_count = 0;
  bool prefetched = false;  ///< filled by a prefetch, not yet demand-hit
  /// Accumulated faulty bits (write failures + transient upsets) awaiting an
  /// ECC verdict on the next read of the block. 0 = pristine.
  std::uint16_t fault_bits = 0;
};

/// Verdict of the ECC check run when a block with fault_bits != 0 is read.
enum class FaultReadOutcome : std::uint8_t {
  Corrected,  ///< ECC repaired the data in place (fault bits cleared)
  Lost,       ///< uncorrectable but detected: the block must be dropped
  Silent,     ///< undetected: corrupted data is consumed as-is
};

/// Seam between the cache array and the fault subsystem (src/fault/). The
/// array owns the block state; the hooks own the randomness and the ECC
/// policy. A null hook pointer — the default — keeps every code path
/// bit-identical to a fault-free build.
class ArrayFaultHooks {
 public:
  virtual ~ArrayFaultHooks() = default;
  /// Per-block retention period sampled at write time (process variation +
  /// thermal noise around the nominal class period).
  virtual Cycle effective_retention(Addr line, Cycle nominal) = 0;
  /// Bits corrupted by one array write at (set, way); 0 = clean write.
  virtual std::uint32_t write_upsets(Addr line, std::uint32_t set,
                                     std::uint32_t way) = 0;
  /// ECC verdict for a read of a block carrying `fault_bits` faulty bits.
  virtual FaultReadOutcome read_check(Addr line, std::uint32_t fault_bits) = 0;
};

/// Per-array counters, split by requester mode where meaningful.
struct CacheStats {
  std::uint64_t accesses[kModeCount] = {0, 0};
  std::uint64_t hits[kModeCount] = {0, 0};
  std::uint64_t store_hits = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;             ///< dirty evictions
  std::uint64_t cross_mode_evictions = 0;   ///< victim owner != requester mode
  std::uint64_t expired_blocks = 0;         ///< retention-expiry invalidations
  std::uint64_t expired_dirty = 0;          ///< ... of which were dirty
  std::uint64_t refreshes = 0;              ///< scrub rewrites
  std::uint64_t prefetch_fills = 0;         ///< lines installed by prefetch
  std::uint64_t useful_prefetches = 0;      ///< prefetched lines demand-hit
  // Fault/ECC counters (all zero unless fault hooks are installed).
  std::uint64_t write_faults = 0;       ///< array writes that left faulty bits
  std::uint64_t transient_upsets = 0;   ///< upsets landed on live blocks
  std::uint64_t ecc_corrections = 0;    ///< reads repaired in place by ECC
  std::uint64_t fault_losses = 0;       ///< uncorrectable blocks dropped
  std::uint64_t fault_lost_dirty = 0;   ///< ... of which held dirty data
  std::uint64_t scrub_repairs = 0;      ///< faulty blocks healed by a scrub
  std::uint64_t silent_faults = 0;      ///< undetected corrupted reads served

  std::uint64_t total_accesses() const { return accesses[0] + accesses[1]; }
  std::uint64_t total_hits() const { return hits[0] + hits[1]; }
  std::uint64_t total_misses() const { return total_accesses() - total_hits(); }
  std::uint64_t misses(Mode m) const {
    return accesses[static_cast<int>(m)] - hits[static_cast<int>(m)];
  }

  double miss_rate() const {
    const auto a = total_accesses();
    return a == 0 ? 0.0 : static_cast<double>(total_misses()) /
                              static_cast<double>(a);
  }
  double miss_rate(Mode m) const {
    const auto a = accesses[static_cast<int>(m)];
    return a == 0 ? 0.0
                  : static_cast<double>(misses(m)) / static_cast<double>(a);
  }
  double kernel_access_fraction() const {
    const auto a = total_accesses();
    return a == 0 ? 0.0 : static_cast<double>(accesses[1]) /
                              static_cast<double>(a);
  }

  void reset() { *this = CacheStats{}; }
};

/// What one access did to the array; the L2 wrappers translate this into
/// energy events and downstream traffic.
struct AccessResult {
  bool hit = false;
  std::uint32_t way = 0;
  bool filled = false;          ///< a block was installed (== miss serviced)
  bool evicted_valid = false;   ///< a live block was displaced for the fill
  bool victim_dirty = false;    ///< displaced block needed a writeback
  Addr victim_line = 0;
  Mode victim_owner = Mode::User;
  std::uint32_t victim_access_count = 0;  ///< touches the victim had seen
  bool target_expired = false;       ///< block was present but past deadline
  bool expired_was_dirty = false;    ///< expired block held dirty data
  bool ecc_corrected = false;        ///< hit needed an in-place ECC repair
  bool fault_lost = false;           ///< block dropped: uncorrectable fault
  bool fault_lost_dirty = false;     ///< ... and its dirty data is gone
};

/// Wear statistics over the physical (set, way) locations of one array —
/// STT-RAM endurance is finite (~1e12 writes/cell), and partitioning
/// concentrates the kernel's write traffic into a small segment
/// (experiment E20).
struct WearSummary {
  std::uint64_t total_writes = 0;  ///< array writes: fills, stores, scrubs
  std::uint32_t max_writes = 0;    ///< hottest location
  double mean_writes = 0.0;
  std::uint32_t p99_writes = 0;
  /// max/mean — 1.0 would be perfectly even wear.
  double imbalance() const {
    return mean_writes <= 0.0 ? 0.0 : max_writes / mean_writes;
  }
};

/// Block-eviction notification for lifetime studies (experiment E5).
struct EvictionEvent {
  Addr line = 0;
  Mode owner = Mode::User;
  Cycle fill_cycle = 0;
  Cycle last_access = 0;
  Cycle evict_cycle = 0;
  bool dirty = false;
  std::uint32_t access_count = 0;
};

/// Which access kernel a SetAssocCache dispatches to.
enum class KernelMode : std::uint8_t {
  Fast,       ///< policy-devirtualized, feature-specialized kernel
  Reference,  ///< generic kernel: virtual replacement calls, all branches
};

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg, std::uint64_t seed = 1);

  const CacheConfig& config() const { return cfg_; }

  /// Probe-and-update. Lookup, victim choice and fill are all restricted to
  /// `allowed` ways. `now` drives recency, lifetimes and retention.
  /// `prefetch` requests fill like misses but are accounted separately
  /// (prefetch_fills) and never perturb the demand hit/miss counters.
  /// `no_alloc` misses count normally but do not install the line (write
  /// bypass: the requester is served straight from DRAM).
  AccessResult access(Addr line, AccessType type, Mode mode, Cycle now,
                      WayMask allowed, bool prefetch = false,
                      bool no_alloc = false) {
    return (this->*kernel_)(line, type, mode, now, allowed, prefetch,
                            no_alloc);
  }

  /// Convenience overload using every way.
  AccessResult access(Addr line, AccessType type, Mode mode, Cycle now) {
    return access(line, type, mode, now, full_way_mask(cfg_.assoc));
  }

  /// Retention period applied to blocks on fill/store/refresh; 0 = infinite
  /// (SRAM / high-retention STT-RAM).
  void set_retention_period(Cycle period) {
    retention_period_ = period;
    select_kernel();
  }
  Cycle retention_period() const { return retention_period_; }

  /// Rewrites a live block in place (scrub), extending its deadline. With
  /// fault hooks installed, the scrub first runs the corrector over any
  /// faulty bits: correctable blocks are healed (scrub_repairs), detected
  /// uncorrectable blocks are dropped instead of rewritten (fault_losses).
  /// Returns false when the block was dropped or absent.
  bool refresh_block(std::uint32_t set, std::uint32_t way, Cycle now);

  /// Fault injection seam (src/fault/). Null (the default) disables every
  /// fault code path and keeps behavior bit-identical to a fault-free run.
  void set_fault_hooks(ArrayFaultHooks* hooks) {
    fault_hooks_ = hooks;
    select_kernel();
  }

  /// Lands `bits` transiently-upset bits on (set, way) if it holds a valid
  /// block (radiation-style upset). Returns true when a block was hit.
  bool corrupt_block(std::uint32_t set, std::uint32_t way, std::uint32_t bits);

  /// Walks the array invalidating blocks whose deadline has passed.
  /// Returns {expired_total, expired_dirty}. Dirty expiries are counted so
  /// the caller can charge the eager writeback the scrub hardware performs.
  std::pair<std::uint64_t, std::uint64_t> expire_sweep(Cycle now);

  /// Invalidates every block in `ways` (across all sets), e.g. when the
  /// dynamic controller power-gates or reassigns ways. Returns the number of
  /// dirty blocks flushed (each one is a writeback the caller must account).
  std::uint64_t invalidate_ways(WayMask ways);

  /// Valid (non-expired as of `now`) blocks within `ways`.
  std::uint64_t occupancy(WayMask ways, Cycle now) const;
  /// Valid + dirty blocks within `ways`.
  std::uint64_t dirty_occupancy(WayMask ways, Cycle now) const;

  /// Visits every valid block: fn(set, way, meta). The BlockMeta argument is
  /// a materialized snapshot of the SoA lanes, valid only for the call.
  void for_each_valid_block(
      const std::function<void(std::uint32_t, std::uint32_t,
                               const BlockMeta&)>& fn) const;

  bool contains(Addr line, Cycle now) const;

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return cfg_.assoc; }
  /// Line size and set count are validated powers of two, so indexing is
  /// pure shift/mask work — no division on the per-access path.
  std::uint32_t set_index(Addr line) const {
    const Addr n = line >> line_shift_;
    const Addr idx = cfg_.xor_index ? n ^ (n >> sets_shift_) : n;
    return static_cast<std::uint32_t>((idx ^ index_rotation_) &
                                      (num_sets_ - 1));
  }

  /// Wear leveling: re-keys the set mapping (hot lines move to fresh
  /// physical sets) and flushes the array, since every resident block's
  /// location would otherwise be wrong. Returns the number of dirty blocks
  /// flushed (DRAM writebacks the caller must account). See E20.
  std::uint64_t rotate_index(std::uint32_t new_xor_key);
  std::uint32_t index_rotation() const { return index_rotation_; }

  /// Snapshot of one block's metadata, assembled from the lanes.
  BlockMeta block(std::uint32_t set, std::uint32_t way) const;

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Per-location write-wear accounting (always on; one counter per line).
  WearSummary wear_summary() const;
  const std::vector<std::uint32_t>& location_writes() const {
    return wear_;
  }

  /// Observers invoked whenever a valid block leaves the cache
  /// (replacement, way flush or expiry). set_ replaces all observers
  /// (nullptr clears); add_ appends (multicast — e.g. a lifetime recorder
  /// plus the hierarchy's inclusion back-invalidation).
  void set_eviction_observer(std::function<void(const EvictionEvent&)> obs) {
    observers_.clear();
    if (obs) observers_.push_back(std::move(obs));
    select_kernel();
  }
  void add_eviction_observer(std::function<void(const EvictionEvent&)> obs) {
    if (obs) observers_.push_back(std::move(obs));
    select_kernel();
  }

  /// Invalidates one line if present (inclusion back-invalidation).
  /// Returns true when a block was dropped; `was_dirty` reports its state.
  bool invalidate_line(Addr line, bool* was_dirty = nullptr);

  /// Kernel dispatch control. The fast kernel is selected by default; the
  /// reference kernel is the generic always-checking implementation kept as
  /// the equivalence baseline (forced process-wide by the
  /// MOBCACHE_REFERENCE_KERNEL=1 environment variable).
  void set_kernel_mode(KernelMode m) {
    kernel_mode_ = m;
    select_kernel();
  }
  KernelMode kernel_mode() const { return kernel_mode_; }
  /// Human-readable name of the currently selected kernel, e.g.
  /// "fast/LRU+retention" or "reference" (for tests and diagnostics).
  std::string kernel_name() const;

  /// Process-wide default for newly constructed arrays. Initialized from
  /// MOBCACHE_REFERENCE_KERNEL on first use; settable for tests.
  static void set_default_kernel_mode(KernelMode m);
  static KernelMode default_kernel_mode();

 private:
  // Packed per-block flag bits (flags_ lane).
  static constexpr std::uint8_t kValidBit = 0x1;
  static constexpr std::uint8_t kDirtyBit = 0x2;
  static constexpr std::uint8_t kKernelBit = 0x4;  ///< owner == Mode::Kernel
  static constexpr std::uint8_t kPrefetchedBit = 0x8;

  /// Tag-lane value of an invalid block. Line addresses are line-aligned,
  /// so all-ones can never match a real line — the hit probe compares tags
  /// alone, with no flags load (the invariant: valid ⇔ tags_[i] != kNoTag
  /// for probe purposes, maintained by invalidate_at and the fill path).
  static constexpr Addr kNoTag = ~Addr{0};

  using AccessFn = AccessResult (SetAssocCache::*)(Addr, AccessType, Mode,
                                                   Cycle, WayMask, bool, bool);

  /// The one access kernel, specialized on the concrete replacement policy
  /// (Repl = ReplacementPolicy keeps virtual dispatch — the reference path)
  /// and on which feature lanes are live. All instantiations run the same
  /// statements over the same state; the template parameters only delete
  /// provably-dead branches. AssocT pins the associativity at compile time
  /// (0 = read it from cfg_ at runtime) so the probe loop fully unrolls;
  /// only the hottest feature-free variants are instantiated per-assoc.
  template <typename Repl, bool HasRetention, bool HasFault, bool HasObs,
            std::uint32_t AssocT = 0>
  AccessResult access_kernel(Addr line, AccessType type, Mode mode, Cycle now,
                             WayMask allowed, bool prefetch, bool no_alloc);

  template <typename Repl>
  AccessFn kernel_for_flags(bool retention, bool fault, bool obs) const;
  void select_kernel();

  std::size_t loc(std::uint32_t set, std::uint32_t way) const {
    return static_cast<std::size_t>(set) * cfg_.assoc + way;
  }
  Mode owner_at(std::size_t i) const {
    return (flags_[i] & kKernelBit) != 0 ? Mode::Kernel : Mode::User;
  }
  bool expired_at(std::size_t i, Cycle now) const {
    return cold_[i].deadline != 0 && now >= cold_[i].deadline;
  }
  void invalidate_at(std::size_t i) {
    flags_[i] &= ~kValidBit;
    tags_[i] = kNoTag;  // keeps the tag-only probe honest
  }

  void notify_eviction(std::size_t i, Cycle now);

  /// Retention period for a block being (re)written now; hooks may shorten
  /// or stretch the nominal class period per block.
  Cycle effective_period(Addr line) const {
    return (fault_hooks_ == nullptr || retention_period_ == 0)
               ? retention_period_
               : fault_hooks_->effective_retention(line, retention_period_);
  }

  /// Runs the write-upset hook for one array write into lane index `i`.
  void apply_write_faults(std::size_t i, std::uint32_t set, std::uint32_t way);

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_ = 0;  ///< log2(line_size)
  std::uint32_t sets_shift_ = 0;  ///< log2(num_sets)
  std::uint32_t index_rotation_ = 0;
  Cycle retention_period_ = 0;
  /// True once any nonzero retention period was ever configured: blocks may
  /// carry deadlines even after retention is reset to 0, so the
  /// retention-free kernel specialization stays off the table.
  bool retention_ever_ = false;

  /// Per-block bookkeeping that is only touched after the probe resolves.
  /// Packed into one 40-byte record so a hit (last_access / access_count)
  /// or a fill (every field) dirties one or two host cache lines instead
  /// of up to six parallel arrays.
  struct ColdMeta {
    Cycle deadline = 0;  ///< retention deadline; 0 = non-volatile
    Cycle fill_cycle = 0;
    Cycle last_access = 0;
    Cycle last_write = 0;
    std::uint32_t access_count = 0;
    std::uint16_t fault_bits = 0;
  };

  // Structure-of-arrays block state, all indexed by loc(set, way).
  // Hot probe lanes:
  std::vector<Addr> tags_;            ///< line address (valid bit gates use)
  std::vector<std::uint8_t> flags_;   ///< kValidBit | kDirtyBit | ...
  // Everything else, one record per block:
  std::vector<ColdMeta> cold_;

  std::vector<std::uint32_t> wear_;
  std::unique_ptr<ReplacementPolicy> repl_;
  CacheStats stats_;
  std::vector<std::function<void(const EvictionEvent&)>> observers_;
  ArrayFaultHooks* fault_hooks_ = nullptr;  ///< non-owning; null = fault-free
  KernelMode kernel_mode_;
  AccessFn kernel_ = nullptr;
};

}  // namespace mobcache
