#include "cache/replacement.hpp"

namespace mobcache {

void ReplacementPolicy::on_invalidate(std::uint32_t, std::uint32_t) {}

std::unique_ptr<ReplacementPolicy> make_replacement(ReplKind kind,
                                                    std::uint32_t num_sets,
                                                    std::uint32_t assoc,
                                                    std::uint64_t seed) {
  switch (kind) {
    case ReplKind::Lru:
      return std::make_unique<LruPolicy>(num_sets, assoc, /*update_on_hit=*/true);
    case ReplKind::Fifo:
      return std::make_unique<LruPolicy>(num_sets, assoc, /*update_on_hit=*/false);
    case ReplKind::Random:
      return std::make_unique<RandomPolicy>(seed);
    case ReplKind::Plru:
      return std::make_unique<PlruPolicy>(num_sets, assoc);
    case ReplKind::Srrip:
      return std::make_unique<SrripPolicy>(num_sets, assoc);
  }
  return nullptr;
}

}  // namespace mobcache
