#include "cache/prefetcher.hpp"

namespace mobcache {

StridePrefetcher::StridePrefetcher(const PrefetchConfig& cfg) : cfg_(cfg) {
  for (auto& t : table_) t.resize(cfg_.table_entries);
}

StridePrefetcher::Entry& StridePrefetcher::lookup(Addr region, Mode mode) {
  auto& table = table_[static_cast<int>(mode)];
  Entry* victim = &table[0];
  for (Entry& e : table) {
    if (e.valid && e.region == region) return e;
    if (e.lru < victim->lru) victim = &e;
  }
  *victim = Entry{};
  victim->region = region;
  return *victim;
}

std::vector<Addr> StridePrefetcher::observe_miss(Addr line, Mode mode) {
  std::vector<Addr> out;
  if (!cfg_.enabled) return out;

  const Addr region = line / kRegionBytes;
  Entry& e = lookup(region, mode);
  e.lru = ++tick_;

  if (e.valid) {
    const auto delta = static_cast<std::int64_t>(line) -
                       static_cast<std::int64_t>(e.last_line);
    if (delta != 0 && delta == e.stride) {
      if (e.confidence < kTrainHits) ++e.confidence;
    } else {
      e.stride = delta;
      e.confidence = delta != 0 ? 1 : 0;
    }
  } else {
    e.valid = true;
  }
  e.last_line = line;

  if (e.confidence >= kTrainHits && e.stride != 0) {
    out.reserve(cfg_.degree);
    Addr next = line;
    for (std::uint32_t d = 0; d < cfg_.degree; ++d) {
      next = static_cast<Addr>(static_cast<std::int64_t>(next) + e.stride);
      // Never cross into the other half of the address space: a user
      // stream must not fabricate kernel prefetches (and vice versa).
      if (is_kernel_addr(next) != (mode == Mode::Kernel)) break;
      out.push_back(line_addr(next));
    }
    issued_ += out.size();
  }
  return out;
}

}  // namespace mobcache
