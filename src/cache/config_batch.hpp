#pragma once
/// \file config_batch.hpp
/// Lane-per-config SoA shadow-tag batch: one pass over an access stream
/// evaluates many cache geometries at once.
///
/// Generalizes ShadowTagMonitor (one geometry, per-mode utility) to a batch
/// of geometries profiled side by side — the auxiliary-tag / set-sampling
/// technique of Mittal's DCR line of work. Each geometry lane keeps a flat
/// tag array (sampled_sets × assoc, MRU-first within a set) in one shared
/// SoA allocation, mirroring the tag-lane layout of the PR 4 SetAssocCache
/// overhaul: the probe loop touches only contiguous Addr words, with an
/// explicit invalid-tag sentinel instead of valid bits.
///
/// The stack-distance property makes one pass serve every way count: a hit
/// at MRU depth d would hit any allocation of more than d ways, so
/// hits_at_depth histograms answer "what would a W-way cache of this set
/// count have done" for all W ≤ assoc simultaneously. This is an
/// *estimator* — true LRU stacks, no retention/fault/bank effects, sampled
/// sets — used to triage which geometries deserve a real simulation lane
/// (sim/batch.hpp); accuracy bounds are documented in docs/SWEEP_ENGINE.md.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

/// One profiled cache geometry: `num_sets` must be a power of two; `assoc`
/// is the stack depth (== the largest way count the lane can answer for).
struct ShadowGeometry {
  std::uint32_t num_sets = 1;
  std::uint32_t assoc = 1;
};

class ShadowConfigBatch {
 public:
  /// Profiles 1-in-2^sample_shift sets of every geometry. sample_shift 0
  /// monitors every set (exact LRU-stack behaviour); larger shifts trade
  /// accuracy for memory/time, scaling counters back up by the sampling
  /// factor. A geometry with fewer than 2^sample_shift sets degrades to
  /// monitoring set 0 only.
  explicit ShadowConfigBatch(std::vector<ShadowGeometry> geometries,
                             std::uint32_t sample_shift = 0);

  /// Advances every geometry lane by one access to `line` (line-aligned or
  /// not; the set index uses line_addr()/kLineSize like SetAssocCache).
  void observe(Addr line);

  std::size_t lanes() const { return geoms_.size(); }
  const ShadowGeometry& geometry(std::size_t g) const { return geoms_[g]; }

  /// Accesses lane `g` observed, scaled up by the sampling factor.
  std::uint64_t observed_accesses(std::size_t g) const;

  /// Hits a `ways`-way allocation of lane g's sets would have served
  /// (scaled up by the sampling factor). ways is clamped to the lane's
  /// assoc. Nondecreasing in `ways` by construction.
  std::uint64_t hits_with_ways(std::size_t g, std::uint32_t ways) const;

  /// 1 - hits/accesses at the lane's full associativity (0 when the lane
  /// sampled nothing).
  double estimated_miss_rate(std::size_t g) const;
  double estimated_miss_rate(std::size_t g, std::uint32_t ways) const;

 private:
  struct LaneMeta {
    std::uint32_t sampled_sets = 1;
    std::uint32_t assoc = 1;
    std::size_t tag_base = 0;    ///< offset into tags_ (sampled_sets × assoc)
    std::size_t depth_base = 0;  ///< offset into hits_at_depth_
  };

  std::vector<ShadowGeometry> geoms_;
  std::vector<LaneMeta> meta_;
  std::uint32_t sample_shift_;
  /// All lanes' tag arrays, concatenated; MRU-first within each set row.
  std::vector<Addr> tags_;
  std::vector<std::uint64_t> hits_at_depth_;
  std::vector<std::uint64_t> accesses_;  ///< per lane, unscaled
};

}  // namespace mobcache
