#pragma once
/// \file bank_model.hpp
/// Banked write-buffer timing model for the L2 arrays.
///
/// Long STT-RAM writes are the designs' main timing liability. The earlier
/// approximation (a read waits out the whole write backlog of its bank) is
/// pessimistic: real controllers give reads priority — a read waits at most
/// for the write currently committed to the array, while further writes sit
/// in the bank's write queue. Writes themselves are posted and only stall
/// the requester when that queue is full.
///
/// Per bank the model keeps one quantity, `next_free` (when the last queued
/// write completes); queue occupancy and the in-flight write's remaining
/// time are derived from it and the write latency.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

class BankModel {
 public:
  /// `banks` must be a power of two; `queue_depth` is writes per bank.
  explicit BankModel(std::uint32_t banks = 4, std::uint32_t queue_depth = 4);

  std::uint32_t bank_of(Addr line) const {
    return static_cast<std::uint32_t>((line / kLineSize) &
                                      (banks_.size() - 1));
  }

  /// Stall a read arriving at `now` observes: the remainder of the write
  /// currently occupying the array (at most one `write_latency`).
  Cycle read_stall(Addr line, Cycle now, Cycle write_latency) const;

  /// Enqueues a write. Returns the requester-visible stall: zero while the
  /// queue has room, otherwise the wait until a slot frees.
  Cycle write_enqueue(Addr line, Cycle now, Cycle write_latency);

  /// Writes still queued in the bank at `now` (tests/telemetry).
  std::uint32_t queue_depth(Addr line, Cycle now, Cycle write_latency) const;

 private:
  struct Bank {
    Cycle next_free = 0;
  };

  std::uint32_t max_queue_;
  std::vector<Bank> banks_;
};

}  // namespace mobcache
