#include "cache/bank_model.hpp"

#include <algorithm>

namespace mobcache {

BankModel::BankModel(std::uint32_t banks, std::uint32_t queue_depth)
    : max_queue_(std::max(1u, queue_depth)),
      banks_(std::max(1u, banks)) {}

Cycle BankModel::read_stall(Addr line, Cycle now,
                            Cycle write_latency) const {
  const Bank& b = banks_[bank_of(line)];
  if (b.next_free <= now || write_latency == 0) return 0;
  const Cycle pending = b.next_free - now;
  // The in-flight write's remaining time: pending modulo one write slot
  // (mapped to (0, write_latency]).
  return (pending - 1) % write_latency + 1;
}

Cycle BankModel::write_enqueue(Addr line, Cycle now, Cycle write_latency) {
  Bank& b = banks_[bank_of(line)];
  if (b.next_free <= now) {
    b.next_free = now + write_latency;
    return 0;
  }
  const Cycle pending = b.next_free - now;
  const Cycle capacity =
      static_cast<Cycle>(max_queue_) * write_latency;
  Cycle stall = 0;
  if (pending >= capacity) {
    // Queue full: the requester waits until one slot drains.
    stall = pending - (capacity - write_latency);
  }
  b.next_free += write_latency;
  return stall;
}

std::uint32_t BankModel::queue_depth(Addr line, Cycle now,
                                     Cycle write_latency) const {
  const Bank& b = banks_[bank_of(line)];
  if (b.next_free <= now || write_latency == 0) return 0;
  const Cycle pending = b.next_free - now;
  return static_cast<std::uint32_t>((pending + write_latency - 1) /
                                    write_latency);
}

}  // namespace mobcache
