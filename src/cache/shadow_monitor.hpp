#pragma once
/// \file shadow_monitor.hpp
/// UMON-style sampled shadow-tag utility monitor (Qureshi & Patt, UCP).
///
/// The dynamic partition controller needs, per mode, the marginal utility of
/// granting the segment 1..A ways. A shadow tag directory with a full-depth
/// LRU stack over *sampled* sets records, for every access, at which stack
/// depth it would have hit. hits_at_depth[d] summed over d < W is then the
/// number of hits a W-way allocation would have captured.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

class ShadowTagMonitor {
 public:
  /// Monitors 1-in-2^sample_shift sets of a cache with `num_sets` sets;
  /// stacks are `depth` entries deep (== max ways the segment could get).
  ShadowTagMonitor(std::uint32_t num_sets, std::uint32_t sample_shift,
                   std::uint32_t depth);

  /// Records the access if its set is sampled.
  void access(Addr line, std::uint32_t set_index);

  /// Hits this epoch that an allocation of `ways` ways would have served
  /// (scaled up by the sampling factor).
  std::uint64_t hits_with_ways(std::uint32_t ways) const;

  /// Accesses observed this epoch (scaled up by the sampling factor).
  std::uint64_t observed_accesses() const {
    return accesses_ * (1ull << sample_shift_);
  }

  std::uint32_t depth() const { return depth_; }

  /// Clears the per-epoch counters but keeps the stacks warm, so the next
  /// epoch's measurements are not polluted by cold-start misses.
  void new_epoch();

 private:
  bool sampled(std::uint32_t set_index) const {
    return (set_index & ((1u << sample_shift_) - 1)) == 0;
  }

  std::uint32_t sample_shift_;
  std::uint32_t depth_;
  std::uint32_t sampled_sets_;
  /// stacks_[s] is an MRU-first vector of line addresses, <= depth_ long.
  std::vector<std::vector<Addr>> stacks_;
  std::vector<std::uint64_t> hits_at_depth_;
  std::uint64_t accesses_ = 0;
};

}  // namespace mobcache
