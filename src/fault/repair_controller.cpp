#include "fault/repair_controller.hpp"

#include <algorithm>
#include <bit>

namespace mobcache {

RepairController::RepairController(std::uint32_t assoc,
                                   std::uint32_t threshold)
    : faults_(assoc, 0),
      healthy_(full_way_mask(assoc)),
      threshold_(threshold) {}

std::uint32_t RepairController::healthy_ways() const {
  return static_cast<std::uint32_t>(std::popcount(healthy_));
}

bool RepairController::record_fault(std::uint32_t way) {
  if (way >= faults_.size()) return false;
  ++faults_[way];
  if (threshold_ == 0 || faults_[way] != threshold_) return false;
  // Already quarantined or queued ways don't re-trigger.
  if ((healthy_ & way_bit(way)) == 0) return false;
  if (std::find(pending_.begin(), pending_.end(), way) != pending_.end()) {
    return false;
  }
  // Keep at least one way in service, counting ones already queued.
  if (healthy_ways() <= 1 + static_cast<std::uint32_t>(pending_.size())) {
    return false;
  }
  pending_.push_back(way);
  return true;
}

std::uint32_t RepairController::take_pending() {
  const std::uint32_t way = pending_.front();
  pending_.erase(pending_.begin());
  healthy_ &= ~way_bit(way);
  ++quarantined_;
  return way;
}

}  // namespace mobcache
