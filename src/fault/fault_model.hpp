#pragma once
/// \file fault_model.hpp
/// Reliability model for short-retention STT-RAM caches: fault sources,
/// ECC schemes, and the knobs that tie them together.
///
/// The paper's headline saving leans on *relaxed-retention* STT-RAM, which
/// deliberately shrinks the thermal stability factor Δ — exactly the regime
/// where three fault mechanisms stop being corner cases:
///   1. Retention decay: a cell's actual retention time is lognormally
///      distributed around the class nominal; the left tail expires early.
///   2. Write failures: the stochastic switching of the MTJ means a write
///      pulse occasionally leaves bits unswitched.
///   3. Transient upsets: particle strikes / read disturb flip resting
///      cells at a small constant rate per bit·second.
/// An ECC scheme per segment turns raw bit faults into one of three
/// outcomes per read: corrected (latency+energy), detected-lost (the block
/// is dropped; dirty data is unrecoverable), or silent corruption.

#include <cstdint>
#include <optional>
#include <string_view>

#include "cache/set_assoc_cache.hpp"  // FaultReadOutcome
#include "common/types.hpp"

namespace mobcache {

/// Per-line error protection scheme of a cache segment.
enum class EccKind : std::uint8_t {
  None,    ///< no protection: every fault is silent corruption
  Parity,  ///< detects odd bit counts; corrects nothing
  Secded,  ///< single-error-correct, double-error-detect (Hamming+parity)
  Dected,  ///< double-error-correct, triple-error-detect (BCH-class)
};

constexpr std::string_view to_string(EccKind k) {
  switch (k) {
    case EccKind::None: return "none";
    case EccKind::Parity: return "parity";
    case EccKind::Secded: return "secded";
    case EccKind::Dected: return "dected";
  }
  return "?";
}

/// Parses the CLI spelling ("none" | "parity" | "secded" | "dected").
std::optional<EccKind> parse_ecc_kind(std::string_view s);

/// Decode behavior + correction costs of one ECC scheme. The per-line
/// checker runs on every read for free (it is part of the sense path); only
/// an actual correction costs extra latency and energy.
class EccModel {
 public:
  explicit EccModel(EccKind kind) : kind_(kind) {}

  EccKind kind() const { return kind_; }

  /// Verdict for a line carrying `fault_bits` bad bits (>= 1).
  FaultReadOutcome evaluate(std::uint32_t fault_bits) const;

  /// Extra cycles a corrected read spends in the corrector.
  Cycle correction_latency() const;
  /// Energy of one correction (nJ), charged via EnergyAccountant::add_ecc.
  double correction_energy_nj() const;

 private:
  EccKind kind_;
};

/// All fault-injection knobs of one cache segment. Default-constructed (or
/// FaultConfig::from_rate(0.0)) means *disabled*: no injector is built and
/// the simulation is bit-identical to a fault-free binary.
struct FaultConfig {
  /// Probability that one array write leaves faulty bits in the line.
  double write_fault_prob = 0.0;
  /// Expected transient upsets per million cycles over the whole array.
  double transient_per_mcycle = 0.0;
  /// Sigma (ln-space) of the lognormal per-block retention factor at the
  /// nominal 318 K; scaled by (T/318)^2 at hotter junction temperatures.
  double retention_sigma = 0.0;
  EccKind ecc = EccKind::Secded;
  /// Faults recorded against one way before the RepairController
  /// quarantines it (0 = never quarantine).
  std::uint32_t way_disable_threshold = 0;
  std::uint64_t seed = 1;

  bool enabled() const {
    return write_fault_prob > 0.0 || transient_per_mcycle > 0.0 ||
           retention_sigma > 0.0;
  }

  /// Maps one headline error-rate knob (the CLI's --fault-rate) onto the
  /// three mechanisms: `rate` is the per-write fault probability; transient
  /// and retention-variation intensities scale along with it. rate = 0
  /// returns a disabled config.
  static FaultConfig from_rate(double rate, EccKind ecc = EccKind::Secded,
                               std::uint32_t way_disable_threshold = 0,
                               std::uint64_t seed = 1);
};

}  // namespace mobcache
