#include "fault/fault_model.hpp"

namespace mobcache {

std::optional<EccKind> parse_ecc_kind(std::string_view s) {
  if (s == "none") return EccKind::None;
  if (s == "parity") return EccKind::Parity;
  if (s == "secded") return EccKind::Secded;
  if (s == "dected") return EccKind::Dected;
  return std::nullopt;
}

FaultReadOutcome EccModel::evaluate(std::uint32_t fault_bits) const {
  switch (kind_) {
    case EccKind::None:
      // No check bits at all: corruption is always consumed silently.
      return FaultReadOutcome::Silent;
    case EccKind::Parity:
      // Parity detects any odd number of bad bits but corrects nothing;
      // even counts cancel and slip through.
      return (fault_bits & 1u) != 0 ? FaultReadOutcome::Lost
                                    : FaultReadOutcome::Silent;
    case EccKind::Secded:
      if (fault_bits == 1) return FaultReadOutcome::Corrected;
      if (fault_bits == 2) return FaultReadOutcome::Lost;
      // >= 3 bad bits alias into a valid-looking syndrome (miscorrection).
      return FaultReadOutcome::Silent;
    case EccKind::Dected:
      if (fault_bits <= 2) return FaultReadOutcome::Corrected;
      if (fault_bits == 3) return FaultReadOutcome::Lost;
      return FaultReadOutcome::Silent;
  }
  return FaultReadOutcome::Silent;
}

Cycle EccModel::correction_latency() const {
  switch (kind_) {
    case EccKind::None:
    case EccKind::Parity:
      return 0;  // nothing is ever corrected
    case EccKind::Secded:
      return 3;  // syndrome decode + bit flip in the read pipeline
    case EccKind::Dected:
      return 7;  // BCH-class iterative decode
  }
  return 0;
}

double EccModel::correction_energy_nj() const {
  switch (kind_) {
    case EccKind::None:
    case EccKind::Parity:
      return 0.0;
    case EccKind::Secded:
      return 0.02;  // XOR tree + flip, small vs a 0.28 nJ array read
    case EccKind::Dected:
      return 0.06;
  }
  return 0.0;
}

FaultConfig FaultConfig::from_rate(double rate, EccKind ecc,
                                   std::uint32_t way_disable_threshold,
                                   std::uint64_t seed) {
  FaultConfig c;
  if (rate > 0.0) {
    c.write_fault_prob = rate;
    // Transient upsets are orders of magnitude rarer than write faults in
    // relaxed-retention parts, but scale with the same cell margins.
    c.transient_per_mcycle = rate * 50.0;
    c.retention_sigma = 0.25;
  }
  c.ecc = ecc;
  c.way_disable_threshold = way_disable_threshold;
  c.seed = seed;
  return c;
}

}  // namespace mobcache
