#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "energy/technology.hpp"

namespace mobcache {

FaultInjector::FaultInjector(const FaultConfig& cfg, SetAssocCache& array)
    : cfg_(cfg),
      ecc_(cfg.ecc),
      array_(array),
      repair_(array.assoc(), cfg.way_disable_threshold),
      rng_(cfg.seed) {
  // Δ = E_b/(k_B·T): hotter silicon both shortens the mean retention (the
  // array already models that via retention_cycles_of) and widens the
  // spread, since the same process variation in E_b moves Δ further.
  const double t_ratio = technology().temperature_k / kNominalTempK;
  sigma_eff_ = cfg_.retention_sigma * t_ratio * t_ratio;
  array_.set_fault_hooks(this);
}

Cycle FaultInjector::effective_retention(Addr /*line*/, Cycle nominal) {
  if (sigma_eff_ <= 0.0) return nominal;
  // Lognormal factor, median 1: retention time is exponential in Δ, so a
  // normal spread in Δ is a lognormal spread in t_ret. Box-Muller; the
  // second variate is discarded to keep the draw count per write fixed.
  const double u1 = 1.0 - rng_.uniform();  // (0, 1]
  const double u2 = rng_.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  const double factor =
      std::clamp(std::exp(sigma_eff_ * z), 0.02, 4.0);
  const auto cycles =
      static_cast<Cycle>(static_cast<double>(nominal) * factor);
  return std::max<Cycle>(cycles, 1);
}

std::uint32_t FaultInjector::write_upsets(Addr /*line*/, std::uint32_t /*set*/,
                                          std::uint32_t way) {
  if (cfg_.write_fault_prob <= 0.0 || !rng_.chance(cfg_.write_fault_prob)) {
    return 0;
  }
  // Mostly single-bit failures; multi-bit tails decay geometrically.
  const auto bits =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(rng_.geometric(0.75), 8));
  // Write failures are the durable evidence of a weak way (transients are
  // not location-correlated), so only they feed the repair policy.
  repair_.record_fault(way);
  return bits;
}

FaultReadOutcome FaultInjector::read_check(Addr /*line*/,
                                           std::uint32_t fault_bits) {
  return ecc_.evaluate(fault_bits);
}

std::uint32_t FaultInjector::sample_poisson(double lambda) {
  // Knuth's product-of-uniforms method; lambda here is O(1) per window even
  // at extreme --fault-rate settings, so no normal approximation is needed.
  const double limit = std::exp(-lambda);
  std::uint32_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.uniform();
  } while (p > limit && k < 4096);
  return k - 1;
}

void FaultInjector::place_upset() {
  const auto set = static_cast<std::uint32_t>(rng_.below(array_.num_sets()));
  const auto way = static_cast<std::uint32_t>(rng_.below(array_.assoc()));
  const auto bits =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(rng_.geometric(0.75), 8));
  // Strikes on empty locations are harmless; corrupt_block reports whether a
  // live block absorbed the upset.
  array_.corrupt_block(set, way, bits);
}

void FaultInjector::tick(Cycle now) {
  if (cfg_.transient_per_mcycle <= 0.0) return;
  const double lambda =
      cfg_.transient_per_mcycle * static_cast<double>(kCheckInterval) / 1e6;
  while (now >= next_check_) {
    for (std::uint32_t n = sample_poisson(lambda); n > 0; --n) place_upset();
    next_check_ += kCheckInterval;
  }
}

}  // namespace mobcache
