#pragma once
/// \file repair_controller.hpp
/// Way-disable repair policy: tracks per-way fault evidence and quarantines
/// ways that keep producing faulty writes.
///
/// Real STT-RAM arrays ship with spare columns and way-disable fuses; at
/// runtime the equivalent knob is dropping a weak way from the allocation
/// masks. The controller only *decides*; the owning L2 wrapper performs the
/// actual drain (invalidate + write back dirty blocks) at a safe point and
/// emits the WayQuarantineEvent, because only it can account the energy.

#include <cstdint>
#include <vector>

#include "cache/cache_config.hpp"
#include "common/types.hpp"

namespace mobcache {

class RepairController {
 public:
  /// `threshold` faults on one way trigger quarantine; 0 disables repair.
  RepairController(std::uint32_t assoc, std::uint32_t threshold);

  /// Records one fault observed on `way`. Returns true when this crossed the
  /// threshold and the way is now pending quarantine. The last remaining
  /// healthy way is never quarantined — a cache that degraded to one way is
  /// still a cache.
  bool record_fault(std::uint32_t way);

  bool has_pending() const { return !pending_.empty(); }

  /// Pops one pending way and marks it quarantined (removed from the healthy
  /// mask). Call only when has_pending().
  std::uint32_t take_pending();

  /// Ways still trusted with data. Starts as full_way_mask(assoc).
  WayMask healthy_mask() const { return healthy_; }
  std::uint32_t healthy_ways() const;
  std::uint32_t quarantined_ways() const { return quarantined_; }

  std::uint32_t fault_count(std::uint32_t way) const {
    return faults_[way];
  }

 private:
  std::vector<std::uint32_t> faults_;
  std::vector<std::uint32_t> pending_;
  WayMask healthy_;
  std::uint32_t threshold_;
  std::uint32_t quarantined_ = 0;
};

}  // namespace mobcache
