#pragma once
/// \file fault_injector.hpp
/// Deterministic seeded fault source for one cache array.
///
/// One FaultInjector is attached to one SetAssocCache (it installs itself as
/// the array's ArrayFaultHooks) and owns all reliability randomness for that
/// array: per-block retention variation, per-write bit errors, and Poisson
/// transient upsets. All draws come from one xoshiro256** stream seeded from
/// FaultConfig::seed, so a (trace, config, seed) triple replays exactly —
/// including the fault-event stream.

#include <cstdint>

#include "cache/set_assoc_cache.hpp"
#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "fault/repair_controller.hpp"

namespace mobcache {

class FaultInjector final : public ArrayFaultHooks {
 public:
  /// Installs itself as `array`'s fault hooks. The injector must outlive the
  /// array's use (the owning L2 wrapper holds both).
  FaultInjector(const FaultConfig& cfg, SetAssocCache& array);

  // ArrayFaultHooks --------------------------------------------------------
  Cycle effective_retention(Addr line, Cycle nominal) override;
  std::uint32_t write_upsets(Addr line, std::uint32_t set,
                             std::uint32_t way) override;
  FaultReadOutcome read_check(Addr line, std::uint32_t fault_bits) override;

  /// Advances transient-upset time to `now`: upsets arrive as a Poisson
  /// process over the whole array, sampled in coarse windows so the RNG cost
  /// stays negligible. Call from the owning wrapper before each access.
  void tick(Cycle now);

  const FaultConfig& config() const { return cfg_; }
  const EccModel& ecc() const { return ecc_; }
  RepairController& repair() { return repair_; }
  const RepairController& repair() const { return repair_; }

 private:
  /// Poisson window for transient sampling. Coarse is fine: upsets are rare
  /// and nothing observes their sub-window placement.
  static constexpr Cycle kCheckInterval = 100'000;

  std::uint32_t sample_poisson(double lambda);
  void place_upset();

  FaultConfig cfg_;
  EccModel ecc_;
  SetAssocCache& array_;
  RepairController repair_;
  Rng rng_;
  double sigma_eff_ = 0.0;  ///< retention sigma scaled to the active T
  Cycle next_check_ = kCheckInterval;
};

}  // namespace mobcache
