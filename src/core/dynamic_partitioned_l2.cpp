#include "core/dynamic_partitioned_l2.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/telemetry.hpp"

namespace mobcache {

namespace {

Cycle clamp_interval(Cycle requested, Cycle retention) {
  if (retention == 0) return requested;
  return std::min(requested, retention / 2);
}

ControllerConfig tuned_controller(const DynamicL2Config& cfg,
                                  const TechParams& tech) {
  ControllerConfig c = cfg.controller;
  c.total_ways = cfg.cache.assoc;
  // Energy criterion: one way's static power; the controller multiplies by
  // the measured epoch span to decide whether a way's hits pay its leakage.
  c.way_leak_mw = tech.leakage_mw / static_cast<double>(cfg.cache.assoc);
  c.dram_nj_per_miss = tech_constants::kDramAccessNj;
  return c;
}

}  // namespace

DynamicPartitionedL2::DynamicPartitionedL2(const DynamicL2Config& cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      tech_(cfg.tech == TechKind::Sram
                ? make_sram(cfg.cache.size_bytes)
                : make_sttram(cfg.cache.size_bytes, cfg.retention)),
      refresher_(cfg.refresh, clamp_interval(cfg.refresh_check_interval,
                                             tech_.retention_cycles)),
      controller_(tuned_controller(cfg, tech_)),
      alloc_(controller_.current()),
      user_monitor_(cfg.cache.num_sets(), cfg.monitor_sample_shift,
                    cfg.cache.assoc),
      kernel_monitor_(cfg.cache.num_sets(), cfg.monitor_sample_shift,
                      cfg.cache.assoc) {
  cache_.set_retention_period(tech_.retention_cycles);
  if (cfg.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(cfg.fault, cache_);
  }
  rescale_active_tech();
}

double DynamicPartitionedL2::enabled_fraction() const {
  if (fault_ == nullptr) {
    return static_cast<double>(alloc_.total()) /
           static_cast<double>(cache_.assoc());
  }
  const auto masks = masks_for(alloc_);
  return static_cast<double>(std::popcount(masks[0] | masks[1])) /
         static_cast<double>(cache_.assoc());
}

WayAllocation DynamicPartitionedL2::clamp_to_healthy(WayAllocation a) const {
  if (fault_ == nullptr) return a;
  const std::uint32_t h = fault_->repair().healthy_ways();
  while (a.user_ways + a.kernel_ways > h) {
    if (a.user_ways > a.kernel_ways) {
      --a.user_ways;
    } else if (a.kernel_ways > 1) {
      --a.kernel_ways;
    } else if (a.user_ways > 0) {
      --a.user_ways;
    } else {
      --a.kernel_ways;  // unreachable: repair never drains the last way
    }
  }
  return a;
}

void DynamicPartitionedL2::service_faults(Cycle now) {
  fault_->tick(now);
  auto& rep = fault_->repair();
  while (rep.has_pending()) {
    // Settle at the old enabled fraction before the way leaves the mask.
    settle_leakage(now);
    const std::uint32_t way = rep.take_pending();
    const std::uint64_t dirty = cache_.invalidate_ways(way_bit(way));
    reconfig_writebacks_ += dirty;
    acct_.add_dram(dirty);
    if (telemetry_ != nullptr) {
      telemetry_->record(WayQuarantineEvent{now, cache_.config().name, way,
                                            rep.fault_count(way),
                                            rep.healthy_ways(), dirty});
    }
    // The budget shrank: renegotiate the live split instead of asserting.
    alloc_ = clamp_to_healthy(alloc_);
    rescale_active_tech();
  }
}

void DynamicPartitionedL2::rescale_active_tech() {
  // Power-gated ways neither precharge bitlines nor fire sense amps, and an
  // access only probes the ways of its own segment, so per-access dynamic
  // energy follows the same ~sqrt(capacity) law as a standalone array of
  // the segment's size. Leakage keeps using the full-array params scaled by
  // enabled_fraction (see settle_leakage).
  const std::uint32_t ways[kModeCount] = {alloc_.user_ways,
                                          alloc_.kernel_ways};
  for (int m = 0; m < kModeCount; ++m) {
    seg_tech_[m] = tech_;
    const double frac = static_cast<double>(ways[m]) /
                        static_cast<double>(cache_.assoc());
    const double s = std::sqrt(std::max(frac, 1e-9));
    seg_tech_[m].read_energy_nj *= s;
    seg_tech_[m].write_energy_nj *= s;
  }
}

void DynamicPartitionedL2::settle_leakage(Cycle now) {
  if (now <= last_change_) return;
  const auto span = static_cast<double>(now - last_change_);
  enabled_byte_cycles_ +=
      span * enabled_fraction() *
      static_cast<double>(cache_.config().size_bytes);
  acct_.add_leakage(tech_, now - last_change_, enabled_fraction());
  last_change_ = now;
}

void DynamicPartitionedL2::apply_allocation(WayAllocation next, Cycle now) {
  if (next.user_ways == alloc_.user_ways &&
      next.kernel_ways == alloc_.kernel_ways) {
    return;
  }
  settle_leakage(now);

  // Only ways that power off must be written back and invalidated. A way
  // transferred between segments keeps its contents: user and kernel
  // address spaces are disjoint, so the new owner can never falsely hit a
  // stale block — it just evicts them on demand (lazy handover, far cheaper
  // than a bulk flush on every phase change).
  const auto old_masks = masks_for(alloc_);
  const auto new_masks = masks_for(next);
  const WayMask old_on = old_masks[0] | old_masks[1];
  const WayMask new_on = new_masks[0] | new_masks[1];
  const WayMask to_flush = old_on & ~new_on;
  std::uint64_t flushed = 0;
  if (to_flush != 0) {
    flushed = cache_.invalidate_ways(to_flush);
    reconfig_writebacks_ += flushed;
    acct_.add_dram(flushed);
  }

  if (telemetry_) {
    telemetry_->record(PartitionResizeEvent{now, alloc_.user_ways,
                                            alloc_.kernel_ways, next.user_ways,
                                            next.kernel_ways, flushed});
  }

  alloc_ = next;
  rescale_active_tech();
  history_.push_back({now, alloc_.user_ways, alloc_.kernel_ways});
}

void DynamicPartitionedL2::maybe_epoch(Cycle now) {
  if (epoch_access_count_ < cfg_.epoch_accesses) return;

  auto demand_of = [&](ShadowTagMonitor& mon, int mode_idx) {
    ModeDemand d;
    d.hits_with.resize(cache_.assoc() + 1, 0);
    for (std::uint32_t w = 1; w <= cache_.assoc(); ++w)
      d.hits_with[w] = mon.hits_with_ways(w);
    d.monitor_accesses = mon.observed_accesses();
    d.accesses = epoch_accesses_[mode_idx];
    d.misses = epoch_misses_[mode_idx];
    d.epoch_cycles = now > epoch_start_cycle_ ? now - epoch_start_cycle_ : 0;
    return d;
  };

  const ModeDemand user = demand_of(user_monitor_, 0);
  const ModeDemand kernel = demand_of(kernel_monitor_, 1);
  apply_allocation(clamp_to_healthy(controller_.decide(user, kernel)), now);

  // Settle leakage at every epoch boundary (idempotent when the allocation
  // just changed) so the telemetry sample below attributes the interval's
  // static energy to this epoch rather than whenever the next resize lands.
  settle_leakage(now);
  if (telemetry_) {
    EpochSample s;
    s.epoch = epoch_index_;
    s.cycle = now;
    s.accesses = epoch_accesses_[0] + epoch_accesses_[1];
    s.misses = epoch_misses_[0] + epoch_misses_[1];
    fill_sample(s);
    const EnergyBreakdown d = acct_.breakdown() - last_epoch_energy_;
    s.refresh_nj = d.refresh_nj;
    s.leakage_nj = d.leakage_nj;
    telemetry_->record(s);
  }
  ++epoch_index_;
  last_epoch_energy_ = acct_.breakdown();

  user_monitor_.new_epoch();
  kernel_monitor_.new_epoch();
  epoch_access_count_ = 0;
  epoch_misses_[0] = epoch_misses_[1] = 0;
  epoch_accesses_[0] = epoch_accesses_[1] = 0;
  epoch_start_cycle_ = now;
}

L2Result DynamicPartitionedL2::do_access(Addr line, AccessType type,
                                         Mode mode, Cycle now, bool demand,
                                         bool prefetch) {
  if (fault_ != nullptr) service_faults(now);
  if (tech_.retention_cycles != 0 && refresher_.due(now)) {
    const RefreshTickResult rt =
        refresher_.tick(cache_, now, refresh_tech(), acct_);
    if (telemetry_ && (rt.refreshed | rt.expired_clean | rt.expired_dirty |
                       rt.repaired | rt.fault_lost)) {
      telemetry_->record(RefreshBurstEvent{now, rt.refreshed, rt.expired_clean,
                                           rt.expired_dirty, rt.repaired,
                                           rt.fault_lost});
    }
  }

  if (demand) {
    (mode == Mode::User ? user_monitor_ : kernel_monitor_)
        .access(line, cache_.set_index(line));
    ++epoch_access_count_;
    ++epoch_accesses_[static_cast<int>(mode)];
  }

  const AccessResult r =
      cache_.access(line, type, mode, now, mask_of(mode), prefetch);
  if (fault_ != nullptr) {
    if (r.ecc_corrected) acct_.add_ecc(fault_->ecc().correction_energy_nj());
    if (telemetry_ != nullptr && (r.ecc_corrected || r.fault_lost)) {
      telemetry_->record(FaultEvent{
          now, line, mode,
          r.fault_lost ? FaultReadOutcome::Lost : FaultReadOutcome::Corrected,
          r.fault_lost_dirty});
    }
  }

  L2Result out;
  out.hit = r.hit;
  const Cycle stall = banks_.read_stall(line, now, tech_.write_latency);

  const TechParams& seg = seg_tech_[static_cast<int>(mode)];
  if (prefetch) {
    acct_.add_read(seg);  // tag probe
    if (r.filled) {
      acct_.add_dram(1);
      acct_.add_write(seg);
      if (r.victim_dirty) acct_.add_dram(1);
      if (r.expired_was_dirty) acct_.add_dram(1);
    }
    return out;
  }
  if (r.hit) {
    if (type == AccessType::Write) {
      acct_.add_write(seg);
      banks_.write_enqueue(line, now, tech_.write_latency);
    } else {
      acct_.add_read(seg);
      out.latency = stall + tech_.read_latency;
      if (r.ecc_corrected) out.latency += fault_->ecc().correction_latency();
    }
  } else {
    if (demand) ++epoch_misses_[static_cast<int>(mode)];
    acct_.add_read(seg);
    acct_.add_dram(1);
    acct_.add_write(seg);
    if (r.victim_dirty) acct_.add_dram(1);
    if (r.expired_was_dirty) acct_.add_dram(1);
    // Fill writes drain through the fill buffer, overlapped with DRAM.
    out.latency = type == AccessType::Write
                      ? 0
                      : stall + tech_.read_latency +
                            dram_visible_stall_cycles();
  }

  if (demand) maybe_epoch(now);
  return out;
}

L2Result DynamicPartitionedL2::access(Addr line, AccessType type, Mode mode,
                                      Cycle now) {
  return do_access(line, type, mode, now, /*demand=*/true);
}

void DynamicPartitionedL2::writeback(Addr line, Mode owner, Cycle now) {
  do_access(line, AccessType::Write, owner, now, /*demand=*/false);
}

void DynamicPartitionedL2::prefetch(Addr line, Mode mode, Cycle now) {
  do_access(line, AccessType::Read, mode, now, /*demand=*/false,
            /*prefetch=*/true);
}

void DynamicPartitionedL2::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  if (fault_ != nullptr) service_faults(end);
  // Same-cycle re-entry after the last access is idempotent inside tick().
  if (tech_.retention_cycles != 0)
    refresher_.tick(cache_, end, refresh_tech(), acct_);
  acct_.add_dram(
      cache_.dirty_occupancy(full_way_mask(cache_.assoc()), end));
  settle_leakage(end);
  final_cycle_ = end;
}

double DynamicPartitionedL2::avg_enabled_bytes() const {
  if (final_cycle_ == 0) return static_cast<double>(capacity_bytes());
  return enabled_byte_cycles_ / static_cast<double>(final_cycle_);
}

const TechParams& DynamicPartitionedL2::refresh_tech() const {
  // Scrub rewrites happen inside whichever segment holds the block; charge
  // the larger segment's (costlier) write energy as a conservative bound.
  return seg_tech_[alloc_.user_ways >= alloc_.kernel_ways ? 0 : 1];
}

std::string DynamicPartitionedL2::describe() const {
  std::string d = "dynamic-partitioned ";
  d += std::to_string(cache_.config().size_bytes >> 10);
  d += "KB ";
  d += std::to_string(cache_.assoc());
  d += "-way ";
  d += to_string(tech_.kind);
  if (tech_.kind == TechKind::SttRam) {
    d += " ";
    d += to_string(tech_.retention);
  }
  d += " (";
  d += to_string(controller_.config().monitor);
  d += ")";
  return d;
}

}  // namespace mobcache
