#include "core/shared_l2.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"

namespace mobcache {

namespace {

Cycle clamp_interval(Cycle requested, Cycle retention) {
  if (retention == 0) return requested;
  return std::min(requested, retention / 2);
}

}  // namespace

SharedL2::SharedL2(const SharedL2Config& cfg)
    : cache_(cfg.cache),
      tech_(cfg.tech == TechKind::Sram
                ? make_sram(cfg.cache.size_bytes)
                : make_sttram(cfg.cache.size_bytes, cfg.retention)),
      refresher_(cfg.refresh,
                 clamp_interval(cfg.refresh_check_interval,
                                tech_.retention_cycles)),
      bypass_(cfg.bypass),
      wear_rotate_writes_(cfg.wear_rotate_writes) {
  cache_.set_retention_period(tech_.retention_cycles);
  if (cfg.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(cfg.fault, cache_);
  }
}

void SharedL2::settle_leakage(Cycle now) {
  if (now < leak_mark_) return;
  const double enabled =
      fault_ == nullptr
          ? 1.0
          : static_cast<double>(fault_->repair().healthy_ways()) /
                static_cast<double>(cache_.assoc());
  acct_.add_leakage(tech_, now - leak_mark_, enabled);
  enabled_byte_cycles_ += enabled * static_cast<double>(now - leak_mark_) *
                          static_cast<double>(cache_.config().size_bytes);
  leak_mark_ = now;
}

void SharedL2::service_faults(Cycle now) {
  fault_->tick(now);
  auto& rep = fault_->repair();
  while (rep.has_pending()) {
    // The way is about to power off: settle leakage at the old enabled
    // fraction first, so the piecewise integral stays exact.
    settle_leakage(now);
    const std::uint32_t way = rep.take_pending();
    // Quarantined blocks are still readable; dirty ones drain to DRAM.
    const std::uint64_t dirty = cache_.invalidate_ways(way_bit(way));
    acct_.add_dram(dirty);
    if (telemetry_ != nullptr) {
      telemetry_->record(WayQuarantineEvent{now, cache_.config().name, way,
                                            rep.fault_count(way),
                                            rep.healthy_ways(), dirty});
    }
  }
}

void SharedL2::account_faults(const AccessResult& r, Addr line, Mode mode,
                              Cycle now) {
  if (r.ecc_corrected) acct_.add_ecc(fault_->ecc().correction_energy_nj());
  if (telemetry_ == nullptr || !(r.ecc_corrected || r.fault_lost)) return;
  FaultEvent e;
  e.cycle = now;
  e.line = line;
  e.mode = mode;
  e.outcome =
      r.fault_lost ? FaultReadOutcome::Lost : FaultReadOutcome::Corrected;
  e.dirty_lost = r.fault_lost_dirty;
  telemetry_->record(e);
}

void SharedL2::count_array_write() {
  if (wear_rotate_writes_ == 0) return;
  if (++writes_since_rotation_ < wear_rotate_writes_) return;
  writes_since_rotation_ = 0;
  ++rotations_;
  // Golden-ratio key spreads hot indices across the whole array.
  const auto key = static_cast<std::uint32_t>(rotations_ * 0x9E3779B1u);
  const std::uint64_t dirty = cache_.rotate_index(key);
  acct_.add_dram(dirty);
}

void SharedL2::maybe_refresh(Cycle now) {
  if (tech_.retention_cycles != 0 && refresher_.due(now)) {
    const RefreshTickResult rt = refresher_.tick(cache_, now, tech_, acct_);
    if (telemetry_ && (rt.refreshed | rt.expired_clean | rt.expired_dirty |
                       rt.repaired | rt.fault_lost)) {
      telemetry_->record(RefreshBurstEvent{now, rt.refreshed, rt.expired_clean,
                                           rt.expired_dirty, rt.repaired,
                                           rt.fault_lost});
    }
  }
}

L2Result SharedL2::access(Addr line, AccessType type, Mode mode, Cycle now) {
  if (fault_ != nullptr) service_faults(now);
  maybe_refresh(now);
  // Bypass decision must precede the array update: a fill predicted dead is
  // not installed at all.
  const bool bypass_fill =
      type == AccessType::Read && bypass_.decide_bypass(line);
  const AccessResult r =
      cache_.access(line, type, mode, now, active_mask(),
                    /*prefetch=*/false, /*no_alloc=*/bypass_fill);
  if (fault_ != nullptr) account_faults(r, line, mode, now);

  L2Result out;
  out.hit = r.hit;
  // Bank-occupancy stall: a read waits out at most the write currently
  // committed to its bank's array (queued writes yield to reads).
  const Cycle stall = banks_.read_stall(line, now, tech_.write_latency);

  if (r.hit) {
    bypass_.train_reuse(line);
    if (type == AccessType::Write) {
      acct_.add_write(tech_);
      count_array_write();
      banks_.write_enqueue(line, now, tech_.write_latency);
      out.latency = 0;  // posted through the write queue
    } else {
      acct_.add_read(tech_);
      out.latency = stall + tech_.read_latency;
      if (r.ecc_corrected) out.latency += fault_->ecc().correction_latency();
    }
    return out;
  }

  // Every demand-read miss is a bypass verdict when the predictor runs:
  // either the fill was skipped or it was installed (possibly as a probe).
  if (telemetry_ && bypass_.enabled() && type == AccessType::Read) {
    telemetry_->record(
        BypassDecisionEvent{now, line, mode, bypass_fill && !r.filled});
  }

  if (bypass_fill && !r.filled) {
    // Predicted-dead fill skipped: serve straight from DRAM, save the
    // array write entirely.
    bypass_.count_bypass();
    acct_.add_read(tech_);  // tag probe still happened
    acct_.add_dram(1);
    out.latency = type == AccessType::Write
                      ? 0
                      : stall + tech_.read_latency +
                            dram_visible_stall_cycles();
    return out;
  }

  // Miss: tag probe read, DRAM fetch (unless the block decayed dirty — the
  // scrub logic already streamed it out, charged below), fill write, and a
  // victim writeback when a dirty block was displaced.
  acct_.add_read(tech_);
  acct_.add_dram(1);                    // line fetch
  acct_.add_write(tech_);               // fill
  count_array_write();
  if (r.evicted_valid) {
    bypass_.train_eviction(r.victim_line, r.victim_access_count > 1);
  }
  if (r.victim_dirty) acct_.add_dram(1);
  if (r.expired_was_dirty) acct_.add_dram(1);  // expiry writeback (lazy discovery)
  // The fill write is overlapped with the DRAM fetch through the fill
  // buffer, so it does not occupy the bank for later reads.
  out.latency = type == AccessType::Write
                    ? 0
                    : stall + tech_.read_latency + dram_visible_stall_cycles();
  return out;
}

void SharedL2::writeback(Addr line, Mode owner, Cycle now) {
  // An L1 castout is an array write; it allocates on (rare) miss.
  if (fault_ != nullptr) service_faults(now);
  maybe_refresh(now);
  const AccessResult r =
      cache_.access(line, AccessType::Write, owner, now, active_mask());
  if (fault_ != nullptr) account_faults(r, line, owner, now);
  acct_.add_write(tech_);
  count_array_write();
  if (!r.hit) {
    if (r.victim_dirty) acct_.add_dram(1);
    if (r.expired_was_dirty) acct_.add_dram(1);
  }
  banks_.write_enqueue(line, now, tech_.write_latency);
}

void SharedL2::prefetch(Addr line, Mode mode, Cycle now) {
  if (fault_ != nullptr) service_faults(now);
  maybe_refresh(now);
  const AccessResult r = cache_.access(line, AccessType::Read, mode, now,
                                       active_mask(), /*prefetch=*/true);
  acct_.add_read(tech_);  // tag probe
  if (r.filled) {
    acct_.add_dram(1);
    acct_.add_write(tech_);
    count_array_write();
    if (r.victim_dirty) acct_.add_dram(1);
    if (r.expired_was_dirty) acct_.add_dram(1);
  }
}

void SharedL2::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  if (fault_ != nullptr) service_faults(end);
  maybe_refresh(end);
  // Dirty blocks still resident flush to DRAM at program end so schemes with
  // different residual dirty state compare fairly.
  acct_.add_dram(cache_.dirty_occupancy(full_way_mask(cache_.assoc()), end));
  settle_leakage(end);
  final_cycle_ = end;
}

std::string SharedL2::describe() const {
  std::string d = "shared ";
  d += std::to_string(cache_.config().size_bytes >> 10);
  d += "KB ";
  d += std::to_string(cache_.assoc());
  d += "-way ";
  d += to_string(tech_.kind);
  if (tech_.kind == TechKind::SttRam) {
    d += " ";
    d += to_string(tech_.retention);
  }
  return d;
}

}  // namespace mobcache
