#include "core/l2_interface.hpp"

// Interface anchor TU (keyed virtual table emission).
