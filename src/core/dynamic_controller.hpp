#pragma once
/// \file dynamic_controller.hpp
/// Epoch-based way-allocation policy for the dynamically partitioned L2
/// (paper technique 3), factored out of the cache so it is unit-testable.
///
/// Primary policy (ShadowUtility): per mode, a sampled shadow-tag monitor
/// reports how many hits an allocation of w ways would have captured this
/// epoch. The controller picks, per mode, the smallest w whose miss count
/// stays within `miss_slack` of what the full depth would achieve — the
/// paper's "minimize overall cache size while maintaining similar miss
/// rate" objective stated directly on misses. An optional energy criterion
/// additionally trims ways whose marginal hits no longer pay their leakage.
/// If demands collide, ways go to whichever mode gains more hits per way
/// (UCP-style greedy arbitration).
///
/// Ablation policy (HillClimb): ±1-way feedback on per-mode miss rates,
/// no shadow tags — cheaper hardware, slower to converge (experiment E10).

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

enum class MonitorKind : std::uint8_t { ShadowUtility, HillClimb };

constexpr std::string_view to_string(MonitorKind m) {
  return m == MonitorKind::ShadowUtility ? "shadow-utility" : "hill-climb";
}

/// Per-mode demand measured over one epoch.
struct ModeDemand {
  /// hits_with[w] = hits a w-way allocation would have captured (w = 0 must
  /// be 0; size = max ways + 1).
  std::vector<std::uint64_t> hits_with;
  /// Accesses as seen by the same monitor that produced hits_with (same
  /// sampling/scaling, so hits and misses are directly comparable).
  std::uint64_t monitor_accesses = 0;
  std::uint64_t accesses = 0;   ///< demand accesses this epoch
  std::uint64_t misses = 0;     ///< actual misses this epoch (HillClimb)
  Cycle epoch_cycles = 0;       ///< measured cycle span of the epoch
};

struct WayAllocation {
  std::uint32_t user_ways = 0;
  std::uint32_t kernel_ways = 0;
  std::uint32_t total() const { return user_ways + kernel_ways; }
};

struct ControllerConfig {
  std::uint32_t total_ways = 16;
  std::uint32_t min_ways_per_mode = 1;
  MonitorKind monitor = MonitorKind::ShadowUtility;
  /// Allowed relative growth in (shadow-projected) misses vs. the
  /// full-depth allocation: w is the smallest way count with
  /// misses(w) <= misses(full) * (1 + miss_slack).
  double miss_slack = 0.08;
  /// Optional criterion (b): trim ways whose marginal hits no longer pay
  /// their leakage. Off by default — it deliberately trades miss rate for
  /// energy, beyond the paper's "similar miss rate" constraint (E10 ablates
  /// it). way_leak_mw is the static power of one way (mW); the per-epoch
  /// threshold is way_leak_mw × measured epoch cycles (1 GHz ⇒ mW·cycle =
  /// pJ).
  bool use_energy_criterion = false;
  double way_leak_mw = 0.0;
  double dram_nj_per_miss = 18.0;
  /// Damping: each segment moves toward its target by at most this many
  /// ways per epoch, avoiding bulk flushes on phase changes (set to
  /// total_ways to disable; E10 ablates this).
  std::uint32_t max_step = 1;
  /// HillClimb: relative miss-rate degradation that triggers growth, and
  /// epochs between trial shrinks.
  double hill_tolerance = 0.05;
  std::uint32_t hill_shrink_period = 4;
};

class DynamicPartitionController {
 public:
  explicit DynamicPartitionController(const ControllerConfig& cfg);

  const ControllerConfig& config() const { return cfg_; }

  /// Computes next epoch's allocation from this epoch's demands.
  WayAllocation decide(const ModeDemand& user, const ModeDemand& kernel);

  /// Last decision (initial allocation before any decide(): an even split).
  WayAllocation current() const { return current_; }

 private:
  std::uint32_t utility_ways(const ModeDemand& d) const;
  WayAllocation decide_utility(const ModeDemand& user,
                               const ModeDemand& kernel) const;
  WayAllocation decide_hill(const ModeDemand& user, const ModeDemand& kernel);

  ControllerConfig cfg_;
  WayAllocation current_;
  // HillClimb state.
  double best_miss_rate_[2] = {1.0, 1.0};
  std::uint32_t epochs_since_shrink_ = 0;
};

}  // namespace mobcache
