#include "core/multicore_l2.hpp"

#include <algorithm>
#include <cmath>

namespace mobcache {

namespace {

Cycle clamp_interval(Cycle requested, Cycle retention) {
  if (retention == 0) return requested;
  return std::min(requested, retention / 2);
}

}  // namespace

MulticoreDynamicL2::MulticoreDynamicL2(const MulticoreL2Config& cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      tech_(cfg.tech == TechKind::Sram
                ? make_sram(cfg.cache.size_bytes)
                : make_sttram(cfg.cache.size_bytes, cfg.retention)),
      refresher_(cfg.refresh, clamp_interval(cfg.refresh_check_interval,
                                             tech_.retention_cycles)) {
  cache_.set_retention_period(tech_.retention_cycles);
  const std::uint32_t groups = cfg_.cores + 1;
  // Even initial split across groups.
  ways_.assign(groups, std::max(cfg_.min_ways_per_group,
                                cfg_.cache.assoc / groups));
  while (enabled_ways() > cfg_.cache.assoc) {
    auto it = std::max_element(ways_.begin(), ways_.end());
    --*it;
  }
  // Initial stable ownership: group g takes the next ways_[g] ways.
  way_owner_.assign(cfg_.cache.assoc, -1);
  std::uint32_t next_way = 0;
  for (std::uint32_t g = 0; g < groups; ++g) {
    for (std::uint32_t i = 0; i < ways_[g]; ++i)
      way_owner_[next_way++] = static_cast<int>(g);
  }
  rebuild_masks();
  epoch_accesses_.assign(groups, 0);
  monitors_.reserve(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    monitors_.emplace_back(cfg_.cache.num_sets(), cfg_.monitor_sample_shift,
                           cfg_.cache.assoc);
  }
}

void MulticoreDynamicL2::rebuild_masks() {
  group_mask_.assign(ways_.size(), 0);
  for (std::uint32_t w = 0; w < cfg_.cache.assoc; ++w) {
    if (way_owner_[w] >= 0)
      group_mask_[static_cast<std::uint32_t>(way_owner_[w])] |= 1ull << w;
  }
}

std::uint32_t MulticoreDynamicL2::enabled_ways() const {
  std::uint32_t total = 0;
  for (std::uint32_t w : ways_) total += w;
  return total;
}

void MulticoreDynamicL2::settle_leakage(Cycle now) {
  if (now <= last_change_) return;
  const double frac = static_cast<double>(enabled_ways()) /
                      static_cast<double>(cache_.assoc());
  const Cycle span = now - last_change_;
  enabled_byte_cycles_ += static_cast<double>(span) * frac *
                          static_cast<double>(cache_.config().size_bytes);
  acct_.add_leakage(tech_, span, frac);
  last_change_ = now;
}

void MulticoreDynamicL2::decide_and_apply(Cycle now) {
  const std::uint32_t groups = static_cast<std::uint32_t>(ways_.size());

  // Per-group target from the miss-slack criterion (same math as the
  // two-group controller).
  std::vector<std::uint32_t> target(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    const ShadowTagMonitor& mon = monitors_[g];
    const std::uint64_t full_hits = mon.hits_with_ways(cache_.assoc());
    const std::uint64_t accesses =
        std::max(mon.observed_accesses(), full_hits);
    if (accesses == 0) {
      target[g] = cfg_.min_ways_per_group;
      continue;
    }
    const double full_misses =
        static_cast<double>(accesses) - static_cast<double>(full_hits);
    const double required =
        static_cast<double>(full_hits) - cfg_.miss_slack * full_misses;
    std::uint32_t w = cache_.assoc();
    for (std::uint32_t c = cfg_.min_ways_per_group; c <= cache_.assoc();
         ++c) {
      if (static_cast<double>(mon.hits_with_ways(c)) >= required) {
        w = c;
        break;
      }
    }
    target[g] = std::max(w, cfg_.min_ways_per_group);
  }

  // Damped approach toward the targets.
  std::vector<std::uint32_t> next(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    const std::uint32_t cur = ways_[g];
    const std::uint32_t tgt = target[g];
    next[g] = tgt > cur ? cur + std::min(tgt - cur, cfg_.max_step)
                        : cur - std::min(cur - tgt, cfg_.max_step);
  }

  // Budget: trim the group with the weakest marginal utility until it fits.
  auto marginal = [&](std::uint32_t g) {
    const std::uint32_t w = next[g];
    if (w <= cfg_.min_ways_per_group) return 1e18;  // cannot shrink
    return static_cast<double>(monitors_[g].hits_with_ways(w) -
                               monitors_[g].hits_with_ways(w - 1));
  };
  std::uint32_t total = 0;
  for (std::uint32_t w : next) total += w;
  while (total > cache_.assoc()) {
    std::uint32_t weakest = 0;
    double weakest_marginal = 1e18;
    for (std::uint32_t g = 0; g < groups; ++g) {
      const double m = marginal(g);
      if (m < weakest_marginal) {
        weakest_marginal = m;
        weakest = g;
      }
    }
    if (weakest_marginal >= 1e18) break;  // everyone at minimum
    --next[weakest];
    --total;
  }

  if (next == ways_) return;
  settle_leakage(now);

  // Move ownership with stable assignment: shrinking groups release their
  // highest-index ways into a free pool; growing groups claim from the pool
  // (or from previously-off ways). Unclaimed releases power off and flush.
  std::vector<std::uint32_t> freed;
  for (std::uint32_t g = 0; g < groups; ++g) {
    std::uint32_t to_release = ways_[g] > next[g] ? ways_[g] - next[g] : 0;
    for (std::uint32_t w = cfg_.cache.assoc; w-- > 0 && to_release > 0;) {
      if (way_owner_[w] == static_cast<int>(g)) {
        way_owner_[w] = -1;
        freed.push_back(w);
        --to_release;
      }
    }
  }
  for (std::uint32_t w = 0; w < cfg_.cache.assoc; ++w) {
    if (way_owner_[w] == -1 &&
        std::find(freed.begin(), freed.end(), w) == freed.end()) {
      freed.push_back(w);  // previously-off ways are claimable too
    }
  }
  for (std::uint32_t g = 0; g < groups; ++g) {
    std::uint32_t to_claim = next[g] > ways_[g] ? next[g] - ways_[g] : 0;
    while (to_claim > 0 && !freed.empty()) {
      way_owner_[freed.back()] = static_cast<int>(g);
      freed.pop_back();
      --to_claim;
    }
  }
  ways_ = next;
  rebuild_masks();
  // Whatever is left in the pool is powered off: flush it.
  WayMask off = 0;
  for (std::uint32_t w = 0; w < cfg_.cache.assoc; ++w) {
    if (way_owner_[w] == -1) off |= 1ull << w;
  }
  if (off != 0) {
    const std::uint64_t dirty = cache_.invalidate_ways(off);
    acct_.add_dram(dirty);
  }
  ++reconfigs_;
}

void MulticoreDynamicL2::maybe_epoch(Cycle now) {
  if (epoch_total_ < cfg_.epoch_accesses) return;
  decide_and_apply(now);
  for (auto& m : monitors_) m.new_epoch();
  std::fill(epoch_accesses_.begin(), epoch_accesses_.end(), 0);
  epoch_total_ = 0;
}

L2Result MulticoreDynamicL2::access(Addr line, AccessType type, Mode mode,
                                    std::uint32_t core, Cycle now) {
  if (tech_.retention_cycles != 0 && refresher_.due(now)) {
    refresher_.tick(cache_, now, tech_, acct_);
  }

  const std::uint32_t g = group_of(mode, core);
  monitors_[g].access(line, cache_.set_index(line));
  ++epoch_accesses_[g];
  ++epoch_total_;

  const AccessResult r = cache_.access(line, type, mode, now, mask_of(g));
  const double seg_frac = static_cast<double>(ways_[g]) /
                          static_cast<double>(cache_.assoc());
  TechParams seg = tech_;
  const double scale = std::sqrt(std::max(seg_frac, 1e-9));
  seg.read_energy_nj *= scale;
  seg.write_energy_nj *= scale;

  L2Result out;
  out.hit = r.hit;
  if (r.hit) {
    if (type == AccessType::Write) {
      acct_.add_write(seg);
    } else {
      acct_.add_read(seg);
      out.latency = tech_.read_latency;
    }
  } else {
    acct_.add_read(seg);
    acct_.add_dram(1);
    acct_.add_write(seg);
    if (r.victim_dirty) acct_.add_dram(1);
    if (r.expired_was_dirty) acct_.add_dram(1);
    out.latency = type == AccessType::Write
                      ? 0
                      : tech_.read_latency +
                            dram_visible_stall_cycles();
  }

  maybe_epoch(now);
  return out;
}

void MulticoreDynamicL2::writeback(Addr line, Mode owner, std::uint32_t core,
                                   Cycle now) {
  const std::uint32_t g = group_of(owner, core);
  const AccessResult r =
      cache_.access(line, AccessType::Write, owner, now, mask_of(g));
  acct_.add_write(tech_);
  if (!r.hit) {
    if (r.victim_dirty) acct_.add_dram(1);
    if (r.expired_was_dirty) acct_.add_dram(1);
  }
}

void MulticoreDynamicL2::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  if (tech_.retention_cycles != 0) refresher_.tick(cache_, end, tech_, acct_);
  acct_.add_dram(cache_.dirty_occupancy(full_way_mask(cache_.assoc()), end));
  settle_leakage(end);
  final_cycle_ = end;
}

double MulticoreDynamicL2::avg_enabled_bytes() const {
  if (final_cycle_ == 0) return static_cast<double>(capacity_bytes());
  return enabled_byte_cycles_ / static_cast<double>(final_cycle_);
}

std::string MulticoreDynamicL2::describe() const {
  std::string d = "multicore-dynamic ";
  d += std::to_string(cache_.config().size_bytes >> 10);
  d += "KB ";
  d += std::to_string(cfg_.cores);
  d += "-core (";
  d += std::to_string(groups());
  d += " groups) ";
  d += to_string(tech_.kind);
  return d;
}

}  // namespace mobcache
