#include "core/partition_autosizer.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "core/shared_l2.hpp"

namespace mobcache {

std::vector<PartitionCandidate> PartitionAutosizer::candidates() {
  // Sizes paired with associativities that keep the set count a power of
  // two at 64 B lines (size / (64·assoc) ∈ 2^k).
  struct Leg {
    std::uint64_t kb;
    std::uint32_t assoc;
  };
  const std::vector<Leg> user_legs = {{256, 8},  {384, 12}, {512, 8},
                                      {768, 12}, {1024, 8}, {1536, 12}};
  const std::vector<Leg> kernel_legs = {{128, 8}, {192, 12}, {256, 8},
                                        {384, 12}, {512, 8}};
  std::vector<PartitionCandidate> out;
  out.reserve(user_legs.size() * kernel_legs.size());
  for (const Leg& u : user_legs) {
    for (const Leg& k : kernel_legs) {
      out.push_back({u.kb << 10, u.assoc, k.kb << 10, k.assoc});
    }
  }
  return out;
}

StaticPartitionConfig PartitionAutosizer::renegotiate_after_faults(
    const StaticPartitionConfig& built, std::uint32_t user_healthy_ways,
    std::uint32_t kernel_healthy_ways) {
  StaticPartitionConfig out = built;
  auto shrink = [](SegmentSpec& s, std::uint32_t healthy) {
    healthy = std::clamp(healthy, 1u, s.assoc);
    // Dropping whole ways keeps the set count intact, so the shrunken
    // geometry passes CacheConfig::validate() by construction.
    s.size_bytes = s.size_bytes / s.assoc * healthy;
    s.assoc = healthy;
  };
  shrink(out.user, user_healthy_ways);
  shrink(out.kernel, kernel_healthy_ways);
  return out;
}

std::unique_ptr<L2Interface> PartitionAutosizer::build(
    const PartitionCandidate& c) const {
  StaticPartitionConfig pc;
  if (cfg_.tech == TechKind::Sram) {
    pc.user = sram_segment(c.user_bytes, c.user_assoc);
    pc.kernel = sram_segment(c.kernel_bytes, c.kernel_assoc);
  } else {
    pc.user = sttram_segment(c.user_bytes, c.user_assoc, cfg_.user_retention);
    pc.kernel =
        sttram_segment(c.kernel_bytes, c.kernel_assoc, cfg_.kernel_retention);
  }
  return std::make_unique<StaticPartitionedL2>(pc);
}

std::vector<CandidateScore> PartitionAutosizer::score_all(
    const std::vector<Trace>& traces,
    const std::vector<PartitionCandidate>& grid) const {
  // Baseline reference, simulated once per trace.
  std::vector<SimResult> base;
  base.reserve(traces.size());
  for (const Trace& t : traces) {
    SharedL2Config bc;
    bc.cache.name = "L2";
    bc.cache.size_bytes = cfg_.baseline_bytes;
    bc.cache.assoc = cfg_.baseline_assoc;
    base.push_back(simulate(t, std::make_unique<SharedL2>(bc), cfg_.sim));
  }

  std::vector<CandidateScore> scores;
  scores.reserve(grid.size());
  for (const PartitionCandidate& c : grid) {
    CandidateScore s;
    s.candidate = c;
    std::vector<double> e_ratios;
    std::vector<double> t_ratios;
    double miss_sum = 0.0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const SimResult r = simulate(traces[i], build(c), cfg_.sim);
      e_ratios.push_back(r.l2_energy.cache_nj() /
                         base[i].l2_energy.cache_nj());
      t_ratios.push_back(static_cast<double>(r.cycles) /
                         static_cast<double>(base[i].cycles));
      miss_sum += r.l2_miss_rate();
    }
    s.norm_cache_energy = geomean(e_ratios);
    s.norm_exec_time = geomean(t_ratios);
    s.avg_miss_rate = miss_sum / static_cast<double>(traces.size());
    s.feasible = s.norm_exec_time <= cfg_.max_slowdown;
    scores.push_back(s);
  }

  std::sort(scores.begin(), scores.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              if (a.candidate.total_bytes() != b.candidate.total_bytes())
                return a.candidate.total_bytes() < b.candidate.total_bytes();
              return a.norm_cache_energy < b.norm_cache_energy;
            });
  return scores;
}

CandidateScore PartitionAutosizer::best(
    const std::vector<Trace>& traces) const {
  const std::vector<CandidateScore> scores = score_all(traces);
  const CandidateScore* best = nullptr;
  for (const CandidateScore& s : scores) {
    if (!s.feasible) continue;
    if (best == nullptr || s.norm_cache_energy < best->norm_cache_energy)
      best = &s;
  }
  if (best == nullptr) {
    // Nothing meets the budget: return the least-bad slowdown.
    for (const CandidateScore& s : scores) {
      if (best == nullptr || s.norm_exec_time < best->norm_exec_time)
        best = &s;
    }
  }
  return *best;
}

}  // namespace mobcache
