#pragma once
/// \file shared_l2.hpp
/// Conventional mode-oblivious L2: the paper's baseline (SRAM, any size) and
/// the unpartitioned-STT-RAM comparison point.

#include <memory>

#include "cache/bank_model.hpp"
#include "cache/bypass_predictor.hpp"
#include "core/l2_interface.hpp"
#include "energy/refresh.hpp"
#include "energy/technology.hpp"
#include "fault/fault_injector.hpp"

namespace mobcache {

struct SharedL2Config {
  CacheConfig cache;                     ///< geometry + replacement
  TechKind tech = TechKind::Sram;
  RetentionClass retention = RetentionClass::Hi;  ///< STT-RAM only
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;
  /// Maintenance cadence; clamped to t_ret/2 when retention is finite.
  Cycle refresh_check_interval = 2'000'000;
  /// Optional stream write-bypass (meaningful for STT-RAM: skips the
  /// expensive install for predicted-dead fills; experiment E18).
  BypassPredictorConfig bypass;
  /// Wear leveling: rotate the set mapping after this many array writes
  /// (0 = off). Production values are billions of writes (days apart);
  /// experiment E20 uses small values to demonstrate the flattening.
  std::uint64_t wear_rotate_writes = 0;
  /// Fault injection + ECC + way-disable repair. Disabled by default; a
  /// disabled config builds no injector and leaves every result bit-identical
  /// to a fault-free binary.
  FaultConfig fault;
};

class SharedL2 final : public L2Interface {
 public:
  explicit SharedL2(const SharedL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes;
  }
  double avg_enabled_bytes() const override {
    if (fault_ == nullptr || final_cycle_ == 0) {
      return static_cast<double>(capacity_bytes());
    }
    return enabled_byte_cycles_ / static_cast<double>(final_cycle_);
  }
  std::uint32_t quarantined_ways() const override {
    return fault_ == nullptr ? 0 : fault_->repair().quarantined_ways();
  }
  std::string describe() const override;
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.add_eviction_observer(std::move(obs));
  }

  const SetAssocCache& array() const { return cache_; }
  const TechParams& tech() const { return tech_; }
  /// Fills skipped by the stream write-bypass predictor.
  std::uint64_t bypassed_fills() const { return bypass_.bypasses(); }
  /// Wear-leveling rotations performed so far.
  std::uint64_t rotations() const { return rotations_; }
  /// Fault subsystem (null when SharedL2Config::fault is disabled).
  const FaultInjector* fault_injector() const { return fault_.get(); }
  /// Ways currently in service (excludes quarantined ways).
  WayMask active_mask() const {
    const WayMask full = full_way_mask(cache_.assoc());
    return fault_ == nullptr ? full : (full & fault_->repair().healthy_mask());
  }

 private:
  void maybe_refresh(Cycle now);
  /// Advances transient injection and drains pending way quarantines.
  void service_faults(Cycle now);
  /// Charges leakage for [leak_mark_, now) at the current enabled fraction.
  void settle_leakage(Cycle now);
  /// Translates a fault outcome on `r` into energy/events.
  void account_faults(const AccessResult& r, Addr line, Mode mode, Cycle now);

  SetAssocCache cache_;
  TechParams tech_;
  RefreshController refresher_;
  EnergyAccountant acct_;
  std::unique_ptr<FaultInjector> fault_;
  Cycle leak_mark_ = 0;               ///< leakage settled up to this cycle
  double enabled_byte_cycles_ = 0.0;  ///< ∫ enabled_bytes dt (fault runs)
  Cycle final_cycle_ = 0;
  /// Banked write-queue timing: reads wait out at most the in-flight write.
  void count_array_write();

  BankModel banks_;
  StreamBypassPredictor bypass_;
  std::uint64_t wear_rotate_writes_ = 0;
  std::uint64_t writes_since_rotation_ = 0;
  std::uint64_t rotations_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
