#pragma once
/// \file shared_l2.hpp
/// Conventional mode-oblivious L2: the paper's baseline (SRAM, any size) and
/// the unpartitioned-STT-RAM comparison point.

#include "cache/bank_model.hpp"
#include "cache/bypass_predictor.hpp"
#include "core/l2_interface.hpp"
#include "energy/refresh.hpp"
#include "energy/technology.hpp"

namespace mobcache {

struct SharedL2Config {
  CacheConfig cache;                     ///< geometry + replacement
  TechKind tech = TechKind::Sram;
  RetentionClass retention = RetentionClass::Hi;  ///< STT-RAM only
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;
  /// Maintenance cadence; clamped to t_ret/2 when retention is finite.
  Cycle refresh_check_interval = 2'000'000;
  /// Optional stream write-bypass (meaningful for STT-RAM: skips the
  /// expensive install for predicted-dead fills; experiment E18).
  BypassPredictorConfig bypass;
  /// Wear leveling: rotate the set mapping after this many array writes
  /// (0 = off). Production values are billions of writes (days apart);
  /// experiment E20 uses small values to demonstrate the flattening.
  std::uint64_t wear_rotate_writes = 0;
};

class SharedL2 final : public L2Interface {
 public:
  explicit SharedL2(const SharedL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes;
  }
  std::string describe() const override;
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.add_eviction_observer(std::move(obs));
  }

  const SetAssocCache& array() const { return cache_; }
  const TechParams& tech() const { return tech_; }
  /// Fills skipped by the stream write-bypass predictor.
  std::uint64_t bypassed_fills() const { return bypass_.bypasses(); }
  /// Wear-leveling rotations performed so far.
  std::uint64_t rotations() const { return rotations_; }

 private:
  void maybe_refresh(Cycle now);

  SetAssocCache cache_;
  TechParams tech_;
  RefreshController refresher_;
  EnergyAccountant acct_;
  /// Banked write-queue timing: reads wait out at most the in-flight write.
  void count_array_write();

  BankModel banks_;
  StreamBypassPredictor bypass_;
  std::uint64_t wear_rotate_writes_ = 0;
  std::uint64_t writes_since_rotation_ = 0;
  std::uint64_t rotations_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
