#include "core/static_partitioned_l2.hpp"

namespace mobcache {

namespace {

SharedL2Config to_shared_config(const SegmentSpec& s, const char* name) {
  SharedL2Config c;
  c.cache.name = name;
  c.cache.size_bytes = s.size_bytes;
  c.cache.assoc = s.assoc;
  c.cache.repl = s.repl;
  c.tech = s.tech;
  c.retention = s.retention;
  c.refresh = s.refresh;
  c.refresh_check_interval = s.refresh_check_interval;
  c.bypass = s.bypass;
  c.wear_rotate_writes = s.wear_rotate_writes;
  c.fault = s.fault;
  return c;
}

}  // namespace

StaticPartitionedL2::StaticPartitionedL2(const StaticPartitionConfig& cfg) {
  segments_[static_cast<int>(Mode::User)] =
      std::make_unique<SharedL2>(to_shared_config(cfg.user, "L2.user"));
  segments_[static_cast<int>(Mode::Kernel)] =
      std::make_unique<SharedL2>(to_shared_config(cfg.kernel, "L2.kernel"));
}

L2Result StaticPartitionedL2::access(Addr line, AccessType type, Mode mode,
                                     Cycle now) {
  return seg(mode).access(line, type, mode, now);
}

void StaticPartitionedL2::writeback(Addr line, Mode owner, Cycle now) {
  seg(owner).writeback(line, owner, now);
}

void StaticPartitionedL2::prefetch(Addr line, Mode mode, Cycle now) {
  seg(mode).prefetch(line, mode, now);
}

void StaticPartitionedL2::finalize(Cycle end) {
  for (auto& s : segments_) s->finalize(end);
}

const EnergyBreakdown& StaticPartitionedL2::energy() const {
  merged_ = EnergyBreakdown{};
  for (const auto& s : segments_) merged_ += s->energy();
  return merged_;
}

CacheStats StaticPartitionedL2::aggregate_stats() const {
  CacheStats out;
  for (const auto& s : segments_) {
    const CacheStats& c = s->aggregate_stats();
    for (int m = 0; m < kModeCount; ++m) {
      out.accesses[m] += c.accesses[m];
      out.hits[m] += c.hits[m];
    }
    out.store_hits += c.store_hits;
    out.fills += c.fills;
    out.evictions += c.evictions;
    out.writebacks += c.writebacks;
    out.cross_mode_evictions += c.cross_mode_evictions;
    out.expired_blocks += c.expired_blocks;
    out.expired_dirty += c.expired_dirty;
    out.refreshes += c.refreshes;
    out.prefetch_fills += c.prefetch_fills;
    out.useful_prefetches += c.useful_prefetches;
    out.write_faults += c.write_faults;
    out.transient_upsets += c.transient_upsets;
    out.ecc_corrections += c.ecc_corrections;
    out.fault_losses += c.fault_losses;
    out.fault_lost_dirty += c.fault_lost_dirty;
    out.scrub_repairs += c.scrub_repairs;
    out.silent_faults += c.silent_faults;
  }
  return out;
}

std::uint64_t StaticPartitionedL2::capacity_bytes() const {
  return segments_[0]->capacity_bytes() + segments_[1]->capacity_bytes();
}

std::string StaticPartitionedL2::describe() const {
  return "static-partitioned [user: " + segments_[0]->describe() +
         "] [kernel: " + segments_[1]->describe() + "]";
}

void StaticPartitionedL2::set_eviction_observer(
    std::function<void(const EvictionEvent&)> obs) {
  // Both segments share the observer; events carry the owner mode.
  segments_[0]->set_eviction_observer(obs);
  segments_[1]->set_eviction_observer(std::move(obs));
}

void StaticPartitionedL2::add_eviction_observer(
    std::function<void(const EvictionEvent&)> obs) {
  segments_[0]->add_eviction_observer(obs);
  segments_[1]->add_eviction_observer(std::move(obs));
}

void StaticPartitionedL2::attach_telemetry(Telemetry* t) {
  L2Interface::attach_telemetry(t);
  // Segments emit their own fault/refresh/quarantine events (tagged by
  // array name), so the session must reach them too.
  segments_[0]->attach_telemetry(t);
  segments_[1]->attach_telemetry(t);
}

double StaticPartitionedL2::avg_enabled_bytes() const {
  return segments_[0]->avg_enabled_bytes() + segments_[1]->avg_enabled_bytes();
}

SegmentSpec sram_segment(std::uint64_t size_bytes, std::uint32_t assoc) {
  SegmentSpec s;
  s.size_bytes = size_bytes;
  s.assoc = assoc;
  s.tech = TechKind::Sram;
  return s;
}

SegmentSpec sttram_segment(std::uint64_t size_bytes, std::uint32_t assoc,
                           RetentionClass r, RefreshPolicy p) {
  SegmentSpec s;
  s.size_bytes = size_bytes;
  s.assoc = assoc;
  s.tech = TechKind::SttRam;
  s.retention = r;
  s.refresh = p;
  return s;
}

}  // namespace mobcache
