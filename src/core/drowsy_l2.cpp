#include "core/drowsy_l2.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"

namespace mobcache {

DrowsyL2::DrowsyL2(const DrowsyL2Config& cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      tech_(make_sram(cfg.cache.size_bytes)),
      awake_(static_cast<std::size_t>(cache_.num_sets()) * cache_.assoc(),
             false) {}

void DrowsyL2::roll_windows(Cycle now) {
  while (now >= window_start_ + cfg_.window) {
    // Effective leakage fraction of the closing window: woken lines are
    // awake for roughly half the window (they wake uniformly over it),
    // the rest stay drowsy throughout.
    const double total = static_cast<double>(awake_.size());
    const double awake_frac = static_cast<double>(awake_count_) / total;
    const double eff = awake_frac * (0.5 + 0.5 * cfg_.drowsy_leak_factor) +
                       (1.0 - awake_frac) * cfg_.drowsy_leak_factor;
    acct_.add_leakage(tech_, cfg_.window, eff);
    leak_fraction_integral_ += static_cast<double>(cfg_.window) * eff;

    if (telemetry_ && (awake_count_ != 0 || window_wakeups_ != 0)) {
      telemetry_->record(DrowsyTransitionEvent{
          window_start_ + cfg_.window, awake_count_, window_wakeups_});
    }
    window_wakeups_ = 0;
    std::fill(awake_.begin(), awake_.end(), false);
    awake_count_ = 0;
    window_start_ += cfg_.window;
  }
}

bool DrowsyL2::wake(std::uint32_t set, std::uint32_t way) {
  const std::size_t idx =
      static_cast<std::size_t>(set) * cache_.assoc() + way;
  if (awake_[idx]) return false;
  awake_[idx] = true;
  ++awake_count_;
  ++wakeups_;
  ++window_wakeups_;
  return true;
}

L2Result DrowsyL2::access(Addr line, AccessType type, Mode mode, Cycle now) {
  roll_windows(now);
  const AccessResult r = cache_.access(line, type, mode, now);

  L2Result out;
  out.hit = r.hit;
  Cycle& busy = bank_busy_until_[(line / kLineSize) & 3];
  const Cycle stall = now < busy ? busy - now : 0;

  const bool woke = wake(cache_.set_index(line), r.way);
  const Cycle wake_pen = woke ? cfg_.wake_latency : 0;

  if (r.hit) {
    if (type == AccessType::Write) {
      acct_.add_write(tech_);
      busy = std::max(busy, now) + tech_.write_latency;
    } else {
      acct_.add_read(tech_);
      out.latency = stall + wake_pen + tech_.read_latency;
    }
    return out;
  }

  acct_.add_read(tech_);
  acct_.add_dram(1);
  acct_.add_write(tech_);
  if (r.victim_dirty) acct_.add_dram(1);
  out.latency = type == AccessType::Write
                    ? 0
                    : stall + wake_pen + tech_.read_latency +
                          dram_visible_stall_cycles();
  return out;
}

void DrowsyL2::writeback(Addr line, Mode owner, Cycle now) {
  roll_windows(now);
  const AccessResult r = cache_.access(line, AccessType::Write, owner, now);
  wake(cache_.set_index(line), r.way);
  acct_.add_write(tech_);
  if (!r.hit && r.victim_dirty) acct_.add_dram(1);
  Cycle& busy = bank_busy_until_[(line / kLineSize) & 3];
  busy = std::max(busy, now) + tech_.write_latency;
}

void DrowsyL2::prefetch(Addr line, Mode mode, Cycle now) {
  roll_windows(now);
  const AccessResult r = cache_.access(line, AccessType::Read, mode, now,
                                       full_way_mask(cache_.assoc()),
                                       /*prefetch=*/true);
  acct_.add_read(tech_);
  if (r.filled) {
    wake(cache_.set_index(line), r.way);
    acct_.add_dram(1);
    acct_.add_write(tech_);
    if (r.victim_dirty) acct_.add_dram(1);
  }
}

void DrowsyL2::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  roll_windows(end);
  // Partial tail window.
  if (end > window_start_) {
    const Cycle span = end - window_start_;
    const double total = static_cast<double>(awake_.size());
    const double awake_frac = static_cast<double>(awake_count_) / total;
    const double eff = awake_frac * (0.5 + 0.5 * cfg_.drowsy_leak_factor) +
                       (1.0 - awake_frac) * cfg_.drowsy_leak_factor;
    acct_.add_leakage(tech_, span, eff);
    leak_fraction_integral_ += static_cast<double>(span) * eff;
    if (telemetry_ && (awake_count_ != 0 || window_wakeups_ != 0)) {
      telemetry_->record(
          DrowsyTransitionEvent{end, awake_count_, window_wakeups_});
    }
  }
  acct_.add_dram(cache_.dirty_occupancy(full_way_mask(cache_.assoc()), end));
  final_cycle_ = end;
}

double DrowsyL2::avg_leak_fraction() const {
  if (final_cycle_ == 0) return 1.0;
  return leak_fraction_integral_ / static_cast<double>(final_cycle_);
}

std::string DrowsyL2::describe() const {
  return "drowsy " + std::to_string(cache_.config().size_bytes >> 10) +
         "KB " + std::to_string(cache_.assoc()) + "-way SRAM (window " +
         std::to_string(cfg_.window) + " cyc)";
}

}  // namespace mobcache
