#include "core/multi_retention_l2.hpp"

namespace mobcache {

std::function<void(const EvictionEvent&)> LifetimeRecorder::observer() {
  return [this](const EvictionEvent& e) { on_eviction(e); };
}

void LifetimeRecorder::on_eviction(const EvictionEvent& e) {
  const int m = static_cast<int>(e.owner);
  const Cycle res =
      e.evict_cycle >= e.fill_cycle ? e.evict_cycle - e.fill_cycle : 0;
  const Cycle live =
      e.last_access >= e.fill_cycle ? e.last_access - e.fill_cycle : 0;
  residency_[m].add(res);
  liveness_[m].add(live);
  dead_[m].add(res >= live ? res - live : 0);
  reuse_[m].add(static_cast<double>(e.access_count));
}

void LifetimeRecorder::export_metrics(MetricRegistry& reg,
                                      const std::string& prefix) const {
  static constexpr const char* kModeName[kModeCount] = {"user", "kernel"};
  for (int m = 0; m < kModeCount; ++m) {
    const std::string base = prefix + "." + kModeName[m] + ".";
    reg.histogram(base + "residency").merge(residency_[m]);
    reg.histogram(base + "liveness").merge(liveness_[m]);
    reg.histogram(base + "dead_time").merge(dead_[m]);
    reg.stat(base + "reuse").merge(reuse_[m]);
  }
}

RetentionClass RetentionAdvisor::recommend(const Log2Histogram& liveness,
                                           double coverage) {
  for (RetentionClass r : {RetentionClass::Lo, RetentionClass::Mid}) {
    const Cycle period = retention_cycles_of(r);
    if (liveness.fraction_below(period) >= coverage) return r;
  }
  return RetentionClass::Hi;
}

StaticPartitionConfig make_mrstt_config(std::uint64_t user_bytes,
                                        std::uint32_t user_assoc,
                                        RetentionClass user_r,
                                        std::uint64_t kernel_bytes,
                                        std::uint32_t kernel_assoc,
                                        RetentionClass kernel_r,
                                        RefreshPolicy policy) {
  StaticPartitionConfig cfg;
  cfg.user = sttram_segment(user_bytes, user_assoc, user_r, policy);
  cfg.kernel = sttram_segment(kernel_bytes, kernel_assoc, kernel_r, policy);
  return cfg;
}

}  // namespace mobcache
