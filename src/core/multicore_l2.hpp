#pragma once
/// \file multicore_l2.hpp
/// Multicore generalization of the dynamic partition (future-work
/// extension): one shared L2 whose ways are assigned per epoch to G groups —
/// group 0 is the *kernel* segment shared by all cores (there is one kernel,
/// and its hot structures are shared), groups 1..N are per-core *user*
/// segments (processes have disjoint address spaces, so cross-core user
/// interference is pure pollution the same way user/kernel interference is).
///
/// Timing note: unlike the single-core designs, this model omits bank
/// write-queue stalls (multicore timing is dominated by the interconnect
/// and per-core clocks in our driver); energies are fully accounted.
///
/// Way layout: *stable per-way ownership* (way → group), not contiguous
/// spans — with three or more groups, repacking spans on every reallocation
/// would shift every group's ways and orphan their contents. A reallocation
/// only moves the specific ways released by shrinking groups. Lazy handover
/// applies (all groups reference disjoint address sets, so a transferred
/// way's stale blocks are unreachable by the new owner); only ways that
/// power off are flushed.

#include <vector>

#include "cache/shadow_monitor.hpp"
#include "core/l2_interface.hpp"
#include "energy/refresh.hpp"
#include "energy/technology.hpp"

namespace mobcache {

struct MulticoreL2Config {
  CacheConfig cache;  ///< physical array (2 MB, 16-way by default)
  std::uint32_t cores = 2;
  TechKind tech = TechKind::SttRam;
  RetentionClass retention = RetentionClass::Lo;
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;
  Cycle refresh_check_interval = 2'000'000;
  std::uint64_t epoch_accesses = 10'000;
  std::uint32_t monitor_sample_shift = 4;
  double miss_slack = 0.05;
  std::uint32_t min_ways_per_group = 1;
  std::uint32_t max_step = 1;
};

/// Core-aware L2 interface (the single-core L2Interface does not carry a
/// core id). The multicore simulator drives this.
class MulticoreL2Interface {
 public:
  virtual ~MulticoreL2Interface() = default;
  virtual L2Result access(Addr line, AccessType type, Mode mode,
                          std::uint32_t core, Cycle now) = 0;
  virtual void writeback(Addr line, Mode owner, std::uint32_t core,
                         Cycle now) = 0;
  virtual void finalize(Cycle end) = 0;
  virtual const EnergyBreakdown& energy() const = 0;
  virtual CacheStats aggregate_stats() const = 0;
  virtual std::uint64_t capacity_bytes() const = 0;
  virtual double avg_enabled_bytes() const = 0;
  virtual std::string describe() const = 0;
};

/// Adapts any single-core L2 design (shared baseline, static partition) to
/// the multicore interface by ignoring the core id.
class ModeOnlyL2Adapter final : public MulticoreL2Interface {
 public:
  explicit ModeOnlyL2Adapter(std::unique_ptr<L2Interface> inner)
      : inner_(std::move(inner)) {}

  L2Result access(Addr line, AccessType type, Mode mode, std::uint32_t,
                  Cycle now) override {
    return inner_->access(line, type, mode, now);
  }
  void writeback(Addr line, Mode owner, std::uint32_t, Cycle now) override {
    inner_->writeback(line, owner, now);
  }
  void finalize(Cycle end) override { inner_->finalize(end); }
  const EnergyBreakdown& energy() const override { return inner_->energy(); }
  CacheStats aggregate_stats() const override {
    return inner_->aggregate_stats();
  }
  std::uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  double avg_enabled_bytes() const override {
    return inner_->avg_enabled_bytes();
  }
  std::string describe() const override { return inner_->describe(); }

 private:
  std::unique_ptr<L2Interface> inner_;
};

/// The (cores+1)-group dynamically partitioned L2.
class MulticoreDynamicL2 final : public MulticoreL2Interface {
 public:
  explicit MulticoreDynamicL2(const MulticoreL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, std::uint32_t core,
                  Cycle now) override;
  void writeback(Addr line, Mode owner, std::uint32_t core,
                 Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes;
  }
  double avg_enabled_bytes() const override;
  std::string describe() const override;

  std::uint32_t groups() const {
    return static_cast<std::uint32_t>(ways_.size());
  }
  /// Current way count of a group (0 = kernel, 1+core = that core's user).
  std::uint32_t group_ways(std::uint32_t g) const { return ways_[g]; }
  std::uint64_t reconfigurations() const { return reconfigs_; }
  const SetAssocCache& array() const { return cache_; }

 private:
  std::uint32_t group_of(Mode mode, std::uint32_t core) const {
    return mode == Mode::Kernel ? 0 : 1 + core;
  }
  WayMask mask_of(std::uint32_t group) const { return group_mask_[group]; }
  void rebuild_masks();
  std::uint32_t enabled_ways() const;
  void settle_leakage(Cycle now);
  void maybe_epoch(Cycle now);
  void decide_and_apply(Cycle now);

  MulticoreL2Config cfg_;
  SetAssocCache cache_;
  TechParams tech_;
  RefreshController refresher_;
  EnergyAccountant acct_;

  std::vector<std::uint32_t> ways_;      ///< way count per group
  std::vector<int> way_owner_;           ///< way → group index, -1 = off
  std::vector<WayMask> group_mask_;      ///< cached masks per group
  std::vector<ShadowTagMonitor> monitors_;
  std::vector<std::uint64_t> epoch_accesses_;
  std::uint64_t epoch_total_ = 0;

  Cycle last_change_ = 0;
  double enabled_byte_cycles_ = 0.0;
  Cycle final_cycle_ = 0;
  std::uint64_t reconfigs_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
