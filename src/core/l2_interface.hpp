#pragma once
/// \file l2_interface.hpp
/// Abstract L2 organization — the seam where the paper's designs plug into
/// the memory hierarchy.
///
/// Every scheme (shared baseline, static partitioned SRAM, multi-retention
/// STT-RAM, dynamic partitioned) implements this interface. The hierarchy
/// calls access()/writeback() and uses the returned latency for the timing
/// model; each design keeps its own energy accounting, including the DRAM
/// traffic it causes (misses, writebacks, expiry scrubs).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cache/set_assoc_cache.hpp"
#include "energy/energy_accountant.hpp"
#include "obs/events.hpp"

namespace mobcache {

class Telemetry;

/// Result of one L2 access as seen by the core.
struct L2Result {
  bool hit = false;
  /// Cycles until the requested line is available to the L1 (array latency
  /// + any bank stall, + DRAM on miss). The hierarchy adds this to loads
  /// and instruction fetches; stores are posted.
  Cycle latency = 0;
};

class L2Interface {
 public:
  virtual ~L2Interface() = default;

  /// Demand access from an L1 miss. `line` is line-aligned.
  virtual L2Result access(Addr line, AccessType type, Mode mode,
                          Cycle now) = 0;

  /// Dirty line cast out of an L1. `owner` is the mode that produced the
  /// data. Posted (no latency reported).
  virtual void writeback(Addr line, Mode owner, Cycle now) = 0;

  /// Installs a prefetched line on behalf of `mode`. Off the critical path
  /// (no latency); energy and pollution are fully accounted.
  virtual void prefetch(Addr line, Mode mode, Cycle now) = 0;

  /// Settles time-integrated costs (leakage, outstanding refresh) through
  /// `end`. Must be called exactly once, after the last access.
  virtual void finalize(Cycle end) = 0;

  /// Energy attributable to this L2 design (arrays + its DRAM traffic).
  virtual const EnergyBreakdown& energy() const = 0;

  /// Merged array counters (both segments for partitioned designs).
  virtual CacheStats aggregate_stats() const = 0;

  /// Nominal built capacity in bytes (what the design taped out).
  virtual std::uint64_t capacity_bytes() const = 0;

  /// Time-averaged powered capacity in bytes (≠ nominal when way gating is
  /// active). Only meaningful after finalize().
  virtual double avg_enabled_bytes() const {
    return static_cast<double>(capacity_bytes());
  }

  /// Ways permanently disabled by the fault-repair controller over the run
  /// (summed across segments). Zero for unfaulted designs.
  virtual std::uint32_t quarantined_ways() const { return 0; }

  /// Human-readable one-line description for reports.
  virtual std::string describe() const = 0;

  /// Forwards a block-eviction observer to the underlying arrays (used by
  /// the lifetime study). set_ replaces; add_ appends (multicast).
  virtual void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) = 0;
  virtual void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) = 0;

  /// Attaches a telemetry session (obs/telemetry.hpp) the design reports
  /// structured events and epoch samples into; nullptr detaches. The base
  /// implementation just stores the pointer — designs with nothing to
  /// report need no override, and instrumented designs guard every report
  /// with one null-check so a detached run stays on the fast path.
  virtual void attach_telemetry(Telemetry* t) { telemetry_ = t; }
  Telemetry* telemetry() const { return telemetry_; }

  /// Fills the design-specific fields of an interval sample taken by the
  /// simulator's time-series sampler (way allocation, drowsy population,
  /// powered capacity). The default reports the full built capacity.
  virtual void fill_sample(EpochSample& s) const {
    s.enabled_bytes = static_cast<double>(capacity_bytes());
  }

 protected:
  Telemetry* telemetry_ = nullptr;
};

}  // namespace mobcache
