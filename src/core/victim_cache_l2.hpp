#pragma once
/// \file victim_cache_l2.hpp
/// Shared L2 + fully-associative victim buffer (additional baseline).
///
/// A classic alternative answer to cache interference: instead of
/// partitioning, keep a small fully-associative victim cache next to the
/// L2 that catches recently evicted blocks, so a block bounced out by the
/// other mode gets a second chance. Comparing it against the paper's
/// designs quantifies why partitioning wins: the victim buffer recovers
/// *some* interference victims but does nothing about leakage — the actual
/// energy problem — and its capacity is trivial against kernel streaming.

#include <deque>

#include "core/l2_interface.hpp"
#include "energy/technology.hpp"

namespace mobcache {

struct VictimCacheL2Config {
  CacheConfig cache;            ///< main array (paper baseline: 2 MB 16-way)
  std::uint32_t victim_entries = 64;  ///< fully-associative victim lines
};

class VictimCacheL2 final : public L2Interface {
 public:
  explicit VictimCacheL2(const VictimCacheL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes +
           static_cast<std::uint64_t>(cfg_.victim_entries) * kLineSize;
  }
  std::string describe() const override;
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.add_eviction_observer(std::move(obs));
  }

  /// Hits served out of the victim buffer (the interference it recovered).
  std::uint64_t victim_hits() const { return victim_hits_; }
  /// ... of which the victim had been evicted by the other mode.
  std::uint64_t cross_mode_rescues() const { return cross_mode_rescues_; }

 private:
  struct VictimEntry {
    Addr line = 0;
    Mode owner = Mode::User;
    bool dirty = false;
    bool cross_mode_eviction = false;
  };

  /// Removes and returns the entry for `line` if buffered.
  bool pop_victim(Addr line, VictimEntry& out);
  void push_victim(const VictimEntry& e);

  VictimCacheL2Config cfg_;
  SetAssocCache cache_;
  TechParams tech_;
  TechParams victim_tech_;
  EnergyAccountant acct_;
  std::deque<VictimEntry> victims_;  ///< front = LRU, back = MRU
  std::uint64_t victim_hits_ = 0;
  std::uint64_t cross_mode_rescues_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
