#pragma once
/// \file static_partitioned_l2.hpp
/// The paper's first proposal: split the L2 into two independent segments,
/// one reachable only by user-mode references, one only by kernel-mode
/// references. Interference disappears, so the combined capacity can shrink
/// far below the shared baseline at similar miss rate. Each segment has its
/// own technology binding, which is exactly what the multi-retention
/// STT-RAM variant (SP-MRSTT) exploits: a short-retention kernel segment
/// and a longer-retention user segment.

#include <array>

#include "core/shared_l2.hpp"

namespace mobcache {

/// Per-segment specification.
struct SegmentSpec {
  std::uint64_t size_bytes = 256ull << 10;
  std::uint32_t assoc = 8;
  ReplKind repl = ReplKind::Lru;
  TechKind tech = TechKind::Sram;
  RetentionClass retention = RetentionClass::Hi;
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;
  Cycle refresh_check_interval = 2'000'000;
  BypassPredictorConfig bypass;  ///< stream write-bypass (E18)
  std::uint64_t wear_rotate_writes = 0;  ///< set-rotation wear leveling (E20)
  FaultConfig fault;  ///< per-segment fault injection (disabled by default)
};

struct StaticPartitionConfig {
  SegmentSpec user;
  SegmentSpec kernel;
};

class StaticPartitionedL2 final : public L2Interface {
 public:
  explicit StaticPartitionedL2(const StaticPartitionConfig& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override;
  CacheStats aggregate_stats() const override;
  std::uint64_t capacity_bytes() const override;
  std::string describe() const override;
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override;
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override;
  void attach_telemetry(Telemetry* t) override;
  double avg_enabled_bytes() const override;
  std::uint32_t quarantined_ways() const override {
    return segments_[0]->quarantined_ways() +
           segments_[1]->quarantined_ways();
  }

  /// Per-segment introspection for the evaluation (E2, E5, E6).
  const SharedL2& segment(Mode m) const {
    return *segments_[static_cast<int>(m)];
  }

 private:
  SharedL2& seg(Mode m) { return *segments_[static_cast<int>(m)]; }

  std::array<std::unique_ptr<SharedL2>, kModeCount> segments_;
  mutable EnergyBreakdown merged_;
};

/// Convenience builders used by the scheme factory and benches.
SegmentSpec sram_segment(std::uint64_t size_bytes, std::uint32_t assoc);
SegmentSpec sttram_segment(std::uint64_t size_bytes, std::uint32_t assoc,
                           RetentionClass r,
                           RefreshPolicy p = RefreshPolicy::ScrubDirty);

}  // namespace mobcache
