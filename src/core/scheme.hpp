#pragma once
/// \file scheme.hpp
/// Factory for the L2 designs compared in the evaluation (experiment E9's
/// columns). The default SchemeParams encode the paper-reconstructed
/// configuration choices; benches override fields to run sweeps.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/drowsy_l2.hpp"
#include "core/victim_cache_l2.hpp"
#include "core/dynamic_partitioned_l2.hpp"
#include "core/l2_interface.hpp"
#include "core/multi_retention_l2.hpp"
#include "core/shared_l2.hpp"
#include "core/static_partitioned_l2.hpp"

namespace mobcache {

enum class SchemeKind : std::uint8_t {
  BaselineSram,     ///< shared 2 MB 16-way SRAM (the phone's stock L2)
  ShrunkSram,       ///< naive shrink: shared 512 KB SRAM, still interfering
  SharedStt,        ///< unpartitioned 2 MB high-retention STT-RAM
  DrowsySram,       ///< 2 MB SRAM with drowsy (low-voltage standby) lines
  VictimSram,       ///< 2 MB SRAM + 64-entry victim buffer (anti-conflict)
  StaticPartSram,   ///< SP:    user + kernel SRAM segments, shrunk total
  StaticPartMrstt,  ///< SP-MRSTT: multi-retention STT-RAM segments
  DynamicSram,      ///< DP:    one array, way gating, SRAM
  DynamicStt,       ///< DP-STT: way gating + short-retention STT-RAM
};

inline constexpr int kSchemeCount = 9;

const char* scheme_name(SchemeKind k);

/// Tunables with paper-reconstructed defaults.
struct SchemeParams {
  // Shared baselines.
  std::uint64_t baseline_bytes = 2ull << 20;
  std::uint32_t baseline_assoc = 16;
  std::uint64_t shrunk_bytes = 512ull << 10;
  std::uint32_t shrunk_assoc = 8;

  // Static partition: interference-free segments can be far smaller than
  // the shared baseline (E3 sweeps this; defaults are the chosen point).
  std::uint64_t sp_user_bytes = 1024ull << 10;
  std::uint32_t sp_user_assoc = 8;
  std::uint64_t sp_kernel_bytes = 256ull << 10;
  std::uint32_t sp_kernel_assoc = 8;

  // Multi-retention choice (validated by E5/E6): kernel blocks die young →
  // short retention; user blocks persist → mid retention.
  RetentionClass mrstt_user = RetentionClass::Mid;
  RetentionClass mrstt_kernel = RetentionClass::Lo;
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;

  // Dynamic partition.
  std::uint64_t dp_epoch_accesses = 10'000;
  MonitorKind dp_monitor = MonitorKind::ShadowUtility;
  double dp_miss_slack = 0.05;
  RetentionClass dp_retention = RetentionClass::Lo;

  // Drowsy baseline.
  Cycle drowsy_window = 4000;

  ReplKind repl = ReplKind::Lru;
  bool xor_index = false;
  /// Stream write-bypass for the STT-RAM designs (E18).
  bool stt_write_bypass = false;

  /// Fault injection / ECC / way-disable repair (disabled by default — a
  /// disabled config keeps every scheme bit-identical to a fault-free
  /// build). Applied to all SharedL2-array schemes; partitioned designs get
  /// one injector per segment with derived seeds (kernel = seed + 1) so the
  /// two arrays draw independent fault streams. Drowsy and victim schemes
  /// are SRAM-only baselines and are left unfaulted (documented in
  /// docs/RELIABILITY.md).
  FaultConfig fault;
};

std::unique_ptr<L2Interface> build_scheme(SchemeKind kind,
                                          const SchemeParams& p = {});

/// The scheme list of the headline comparison (E9), baseline first.
std::vector<SchemeKind> headline_schemes();

/// The CLI scheme vocabulary, shared by simrun and the service protocol:
/// base shrunk sharedstt drowsy victim sp spmrstt dp dpstt. Returns nullopt
/// for anything else (including "all", which is a selection, not a kind).
std::optional<SchemeKind> parse_scheme_kind(std::string_view s);

}  // namespace mobcache
