#pragma once
/// \file multi_retention_l2.hpp
/// Multi-retention STT-RAM support for the partitioned L2 (paper technique 2).
///
/// The separated segments behave very differently: kernel blocks are
/// short-lived (service working sets churn), user blocks persist across UI
/// phases. The right retention class per segment is the cheapest one whose
/// retention period still covers (almost) all block residencies — anything
/// longer wastes write energy, anything shorter loses blocks and re-fetches
/// them from DRAM. LifetimeRecorder gathers the residency distributions
/// (experiment E5) and RetentionAdvisor turns them into a class choice
/// (experiment E6 sweeps all choices to validate it).

#include <array>

#include "cache/set_assoc_cache.hpp"
#include "common/stats.hpp"
#include "core/static_partitioned_l2.hpp"
#include "energy/technology.hpp"
#include "obs/metrics.hpp"

namespace mobcache {

/// Collects per-mode block-lifetime statistics from eviction events.
class LifetimeRecorder {
 public:
  /// Wire into any L2 via set_eviction_observer (the returned lambda keeps a
  /// reference to *this; the recorder must outlive the cache).
  std::function<void(const EvictionEvent&)> observer();

  void on_eviction(const EvictionEvent& e);

  /// Residency: cycles from fill to eviction.
  const Log2Histogram& residency(Mode m) const {
    return residency_[static_cast<int>(m)];
  }
  /// Liveness: cycles from fill to the block's last touch (the span the
  /// data actually needed to survive).
  const Log2Histogram& liveness(Mode m) const {
    return liveness_[static_cast<int>(m)];
  }
  /// Dead time: cycles between last touch and eviction (cache space wasted
  /// on dead blocks — large in the shared baseline).
  const Log2Histogram& dead_time(Mode m) const {
    return dead_[static_cast<int>(m)];
  }
  /// Accesses per block during residency.
  const RunningStat& reuse(Mode m) const { return reuse_[static_cast<int>(m)]; }

  std::uint64_t events(Mode m) const {
    return residency_[static_cast<int>(m)].total();
  }

  /// Merges the recorded distributions into `reg` under
  /// `<prefix>.<mode>.{residency,liveness,dead_time}` histograms and a
  /// `<prefix>.<mode>.reuse` stat, so lifetime data rides along with the
  /// rest of a run's telemetry (obs/metrics.hpp).
  void export_metrics(MetricRegistry& reg, const std::string& prefix) const;

 private:
  std::array<Log2Histogram, kModeCount> residency_;
  std::array<Log2Histogram, kModeCount> liveness_;
  std::array<Log2Histogram, kModeCount> dead_;
  std::array<RunningStat, kModeCount> reuse_;
};

/// Chooses the cheapest retention class covering the observed lifetimes.
class RetentionAdvisor {
 public:
  /// A class "covers" a block when its retention period exceeds the block's
  /// liveness. Returns the cheapest class covering at least `coverage`
  /// (default 95%) of blocks; Hi when none suffices.
  static RetentionClass recommend(const Log2Histogram& liveness,
                                  double coverage = 0.95);
};

/// SP-MRSTT configuration: STT-RAM segments with independently chosen
/// retention classes (paper's pick: short-retention kernel, mid user).
StaticPartitionConfig make_mrstt_config(
    std::uint64_t user_bytes, std::uint32_t user_assoc, RetentionClass user_r,
    std::uint64_t kernel_bytes, std::uint32_t kernel_assoc,
    RetentionClass kernel_r, RefreshPolicy policy = RefreshPolicy::ScrubDirty);

}  // namespace mobcache
