#include "core/victim_cache_l2.hpp"

#include <algorithm>

namespace mobcache {

VictimCacheL2::VictimCacheL2(const VictimCacheL2Config& cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      tech_(make_sram(cfg.cache.size_bytes)),
      victim_tech_(make_sram(std::max<std::uint64_t>(
          4096, static_cast<std::uint64_t>(cfg.victim_entries) * kLineSize))) {
}

bool VictimCacheL2::pop_victim(Addr line, VictimEntry& out) {
  const auto it =
      std::find_if(victims_.begin(), victims_.end(),
                   [&](const VictimEntry& e) { return e.line == line; });
  if (it == victims_.end()) return false;
  out = *it;
  victims_.erase(it);
  return true;
}

void VictimCacheL2::push_victim(const VictimEntry& e) {
  if (victims_.size() == cfg_.victim_entries && !victims_.empty()) {
    // Oldest victim leaves for good; dirty data goes to DRAM.
    if (victims_.front().dirty) acct_.add_dram(1);
    victims_.pop_front();
  }
  victims_.push_back(e);
  acct_.add_write(victim_tech_);
}

L2Result VictimCacheL2::access(Addr line, AccessType type, Mode mode,
                               Cycle now) {
  const AccessResult r = cache_.access(line, type, mode, now);

  L2Result out;
  out.hit = r.hit;
  if (r.hit) {
    acct_.add_read(tech_);
    out.latency = type == AccessType::Write ? 0 : tech_.read_latency;
    return out;
  }

  // Main-array miss: probe the victim buffer (searched in parallel with the
  // DRAM request issue; a hit cancels it).
  acct_.add_read(tech_);
  acct_.add_read(victim_tech_);
  VictimEntry rescued;
  const bool vhit = pop_victim(line, rescued);
  if (vhit) {
    ++victim_hits_;
    if (rescued.cross_mode_eviction) ++cross_mode_rescues_;
  } else {
    acct_.add_dram(1);
  }
  // The line (from buffer or DRAM) fills the main array; the block it
  // displaces drops into the victim buffer.
  acct_.add_write(tech_);
  if (r.evicted_valid) {
    VictimEntry v;
    v.line = r.victim_line;
    v.owner = r.victim_owner;
    v.dirty = r.victim_dirty;
    v.cross_mode_eviction = r.victim_owner != mode;
    push_victim(v);
  }
  // Note: the fill inherited `rescued.dirty` in real hardware; model the
  // conservative path by charging the eventual writeback now.
  if (vhit && rescued.dirty && type != AccessType::Write) acct_.add_dram(1);

  out.latency =
      type == AccessType::Write
          ? 0
          : tech_.read_latency +
                (vhit ? victim_tech_.read_latency
                      : dram_visible_stall_cycles());
  return out;
}

void VictimCacheL2::writeback(Addr line, Mode owner, Cycle now) {
  const AccessResult r = cache_.access(line, AccessType::Write, owner, now);
  acct_.add_write(tech_);
  if (!r.hit && r.evicted_valid) {
    VictimEntry v;
    v.line = r.victim_line;
    v.owner = r.victim_owner;
    v.dirty = r.victim_dirty;
    v.cross_mode_eviction = r.victim_owner != owner;
    push_victim(v);
  }
}

void VictimCacheL2::prefetch(Addr line, Mode mode, Cycle now) {
  const AccessResult r = cache_.access(line, AccessType::Read, mode, now,
                                       full_way_mask(cache_.assoc()),
                                       /*prefetch=*/true);
  acct_.add_read(tech_);
  if (r.filled) {
    acct_.add_dram(1);
    acct_.add_write(tech_);
    if (r.victim_dirty) acct_.add_dram(1);
  }
}

void VictimCacheL2::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  acct_.add_leakage(tech_, end);
  acct_.add_leakage(victim_tech_, end);
  acct_.add_dram(cache_.dirty_occupancy(full_way_mask(cache_.assoc()), end));
  for (const VictimEntry& e : victims_) {
    if (e.dirty) acct_.add_dram(1);
  }
}

std::string VictimCacheL2::describe() const {
  return "shared " + std::to_string(cache_.config().size_bytes >> 10) +
         "KB SRAM + " + std::to_string(cfg_.victim_entries) +
         "-entry victim buffer";
}

}  // namespace mobcache
