#include "core/dynamic_controller.hpp"

#include <algorithm>

namespace mobcache {

DynamicPartitionController::DynamicPartitionController(
    const ControllerConfig& cfg)
    : cfg_(cfg) {
  current_.user_ways = std::max(cfg_.min_ways_per_mode, cfg_.total_ways / 2);
  current_.kernel_ways =
      std::max(cfg_.min_ways_per_mode, cfg_.total_ways - current_.user_ways);
}

std::uint32_t DynamicPartitionController::utility_ways(
    const ModeDemand& d) const {
  if (d.hits_with.empty() || d.accesses == 0) return cfg_.min_ways_per_mode;
  const std::uint32_t depth =
      std::min<std::uint32_t>(cfg_.total_ways,
                              static_cast<std::uint32_t>(d.hits_with.size()) - 1);
  const auto full_hits = static_cast<double>(d.hits_with[depth]);
  const double accesses =
      std::max(static_cast<double>(d.monitor_accesses), full_hits);
  const double full_misses = accesses - full_hits;

  // (a) smallest w whose projected misses stay within the slack. Stated on
  // hits: misses(w) <= full_misses*(1+slack)  ⇔
  //       hits(w)  >= full_hits - slack*full_misses.
  const double required_hits = full_hits - cfg_.miss_slack * full_misses;
  std::uint32_t w = depth;
  for (std::uint32_t c = cfg_.min_ways_per_mode; c <= depth; ++c) {
    if (static_cast<double>(d.hits_with[c]) >= required_hits) {
      w = c;
      break;
    }
  }

  // (b) trim ways whose marginal hits no longer pay their leakage over the
  // measured epoch span (mW × cycles @1 GHz = pJ; /1e3 → nJ).
  if (cfg_.use_energy_criterion && cfg_.way_leak_mw > 0.0 &&
      d.epoch_cycles > 0) {
    const double way_leak_nj =
        cfg_.way_leak_mw * static_cast<double>(d.epoch_cycles) / 1e3;
    while (w > cfg_.min_ways_per_mode) {
      const double marginal =
          static_cast<double>(d.hits_with[w] - d.hits_with[w - 1]);
      if (marginal * cfg_.dram_nj_per_miss >= way_leak_nj) break;
      --w;
    }
  }
  return std::max(w, cfg_.min_ways_per_mode);
}

WayAllocation DynamicPartitionController::decide_utility(
    const ModeDemand& user, const ModeDemand& kernel) const {
  WayAllocation a;
  a.user_ways = utility_ways(user);
  a.kernel_ways = utility_ways(kernel);

  // Over-subscribed: repeatedly take a way from the mode losing fewer hits.
  while (a.total() > cfg_.total_ways) {
    auto marginal = [](const ModeDemand& d, std::uint32_t w) -> double {
      if (w == 0 || w >= d.hits_with.size()) return 0.0;
      return static_cast<double>(d.hits_with[w] - d.hits_with[w - 1]);
    };
    const bool can_shrink_user = a.user_ways > cfg_.min_ways_per_mode;
    const bool can_shrink_kernel = a.kernel_ways > cfg_.min_ways_per_mode;
    if (!can_shrink_user && !can_shrink_kernel) {
      a.user_ways = cfg_.total_ways - a.kernel_ways;  // give up gracefully
      break;
    }
    if (!can_shrink_kernel ||
        (can_shrink_user &&
         marginal(user, a.user_ways) <= marginal(kernel, a.kernel_ways))) {
      --a.user_ways;
    } else {
      --a.kernel_ways;
    }
  }
  return a;
}

WayAllocation DynamicPartitionController::decide_hill(const ModeDemand& user,
                                                      const ModeDemand& kernel) {
  WayAllocation a = current_;
  const ModeDemand* demands[2] = {&user, &kernel};
  std::uint32_t* ways[2] = {&a.user_ways, &a.kernel_ways};

  ++epochs_since_shrink_;
  const bool try_shrink = epochs_since_shrink_ >= cfg_.hill_shrink_period;

  for (int m = 0; m < 2; ++m) {
    const ModeDemand& d = *demands[m];
    if (d.accesses == 0) continue;
    const double mr =
        static_cast<double>(d.misses) / static_cast<double>(d.accesses);
    best_miss_rate_[m] = std::min(best_miss_rate_[m], mr);
    if (mr > best_miss_rate_[m] * (1.0 + cfg_.hill_tolerance)) {
      *ways[m] += 1;  // we hurt this mode; give the way back
    } else if (try_shrink && *ways[m] > cfg_.min_ways_per_mode) {
      *ways[m] -= 1;  // probe a smaller allocation
    }
  }
  if (try_shrink) epochs_since_shrink_ = 0;

  // Clamp into the physical budget.
  a.user_ways = std::clamp(a.user_ways, cfg_.min_ways_per_mode,
                           cfg_.total_ways - cfg_.min_ways_per_mode);
  a.kernel_ways = std::clamp(a.kernel_ways, cfg_.min_ways_per_mode,
                             cfg_.total_ways - a.user_ways);
  return a;
}

WayAllocation DynamicPartitionController::decide(const ModeDemand& user,
                                                 const ModeDemand& kernel) {
  WayAllocation target = cfg_.monitor == MonitorKind::ShadowUtility
                             ? decide_utility(user, kernel)
                             : decide_hill(user, kernel);
  // Damped approach: large jumps flush (or cold-start) whole ways, so creep
  // toward the target instead. HillClimb already moves one way at a time.
  auto step = [&](std::uint32_t cur, std::uint32_t tgt) {
    if (tgt > cur) return cur + std::min(tgt - cur, cfg_.max_step);
    return cur - std::min(cur - tgt, cfg_.max_step);
  };
  target.user_ways = step(current_.user_ways, target.user_ways);
  target.kernel_ways = step(current_.kernel_ways, target.kernel_ways);
  while (target.total() > cfg_.total_ways) {
    if (target.user_ways > target.kernel_ways) {
      --target.user_ways;
    } else {
      --target.kernel_ways;
    }
  }
  current_ = target;
  return current_;
}

}  // namespace mobcache
