#pragma once
/// \file partition_autosizer.hpp
/// Offline static-partition design-space search.
///
/// The paper picks its static (user, kernel) segment sizes by sweeping the
/// design space against a workload suite. This component automates that
/// step: given traces, it evaluates a geometry grid under a chosen
/// technology and returns the cheapest configuration whose execution time
/// stays within a budget of the 2 MB-baseline — i.e. it *derives* the
/// SchemeParams defaults instead of hand-tuning them (used by experiment
/// E3's "chosen point" and the partition_explorer example).

#include <functional>
#include <vector>

#include "core/static_partitioned_l2.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace mobcache {

/// One candidate geometry (sizes must satisfy power-of-two set counts;
/// candidates() only generates legal ones).
struct PartitionCandidate {
  std::uint64_t user_bytes = 0;
  std::uint32_t user_assoc = 0;
  std::uint64_t kernel_bytes = 0;
  std::uint32_t kernel_assoc = 0;

  std::uint64_t total_bytes() const { return user_bytes + kernel_bytes; }
};

/// Search result for one candidate.
struct CandidateScore {
  PartitionCandidate candidate;
  double norm_cache_energy = 0.0;  ///< geomean vs the baseline
  double norm_exec_time = 0.0;
  double avg_miss_rate = 0.0;
  bool feasible = false;  ///< meets the time budget
};

struct AutosizerConfig {
  /// Allowed slowdown vs the shared 2 MB SRAM baseline (paper: ~2%).
  double max_slowdown = 1.05;
  /// Segment technology used for the scored design.
  TechKind tech = TechKind::Sram;
  RetentionClass user_retention = RetentionClass::Mid;
  RetentionClass kernel_retention = RetentionClass::Lo;
  /// Baseline geometry.
  std::uint64_t baseline_bytes = 2ull << 20;
  std::uint32_t baseline_assoc = 16;
  SimOptions sim;
};

class PartitionAutosizer {
 public:
  explicit PartitionAutosizer(AutosizerConfig cfg) : cfg_(std::move(cfg)) {}

  /// Renegotiates a static split after way-disable repair: each segment
  /// keeps its set count but drops to its surviving associativity, so the
  /// degraded geometry is always legal (sets unchanged ⇒ still a power of
  /// two) and the SP schemes keep running instead of asserting. At least
  /// one way per segment survives.
  static StaticPartitionConfig renegotiate_after_faults(
      const StaticPartitionConfig& built, std::uint32_t user_healthy_ways,
      std::uint32_t kernel_healthy_ways);

  /// The default geometry grid: user segments 256 KB–1.5 MB, kernel
  /// segments 128 KB–512 KB, all with legal power-of-two set counts.
  static std::vector<PartitionCandidate> candidates();

  /// Scores every candidate against the traces (shared baseline simulated
  /// once). Results are sorted by total size, then energy.
  std::vector<CandidateScore> score_all(
      const std::vector<Trace>& traces,
      const std::vector<PartitionCandidate>& grid = candidates()) const;

  /// The cheapest-energy feasible candidate; falls back to the
  /// lowest-slowdown candidate when none meets the budget.
  CandidateScore best(const std::vector<Trace>& traces) const;

 private:
  std::unique_ptr<L2Interface> build(const PartitionCandidate& c) const;

  AutosizerConfig cfg_;
};

}  // namespace mobcache
