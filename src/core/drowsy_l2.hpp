#pragma once
/// \file drowsy_l2.hpp
/// Drowsy-SRAM shared L2 (additional baseline, beyond the paper).
///
/// Drowsy caches (Flautner et al.) are the classic circuit-level answer to
/// SRAM leakage: lines not recently used drop to a state-preserving
/// low-voltage mode that leaks ~4× less but costs a wake-up penalty on the
/// next access. Comparing against it answers the obvious reviewer
/// question — "why redesign the cache when drowsy mode already cuts
/// leakage?" — with numbers: drowsy saves a large share of leakage but
/// keeps the full 2 MB array and its dynamic energy, while the paper's
/// partition+shrink+STT designs go much further.
///
/// Policy modeled: the "simple" global policy — every `window` cycles all
/// lines are put drowsy; an access to a drowsy line pays `wake_latency`
/// and the line stays awake until the next window boundary. Leakage within
/// a window is integrated as: woken lines awake for half the window on
/// average, everything else drowsy.

#include <array>

#include "core/l2_interface.hpp"
#include "energy/technology.hpp"

namespace mobcache {

struct DrowsyL2Config {
  CacheConfig cache;              ///< geometry (paper baseline: 2 MB 16-way)
  Cycle window = 4000;            ///< global drowse period
  Cycle wake_latency = 2;         ///< extra cycles to access a drowsy line
  double drowsy_leak_factor = 0.25;  ///< leakage of a drowsy line vs awake
};

class DrowsyL2 final : public L2Interface {
 public:
  explicit DrowsyL2(const DrowsyL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes;
  }
  std::string describe() const override;
  void fill_sample(EpochSample& s) const override {
    s.enabled_bytes = static_cast<double>(cache_.config().size_bytes);
    s.drowsy_awake_lines = awake_count_;
  }
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.add_eviction_observer(std::move(obs));
  }

  /// Lines woken during the current window (tests/reports).
  std::uint64_t awake_lines() const { return awake_count_; }
  std::uint64_t wakeups() const { return wakeups_; }
  /// Time-averaged effective leakage fraction vs always-awake SRAM.
  double avg_leak_fraction() const;

 private:
  /// Closes any windows fully elapsed before `now`, integrating their
  /// leakage, and resets the awake set at each boundary.
  void roll_windows(Cycle now);
  /// True (and records the wake) when the line's way was drowsy.
  bool wake(std::uint32_t set, std::uint32_t way);

  DrowsyL2Config cfg_;
  SetAssocCache cache_;
  TechParams tech_;
  EnergyAccountant acct_;
  std::vector<bool> awake_;
  std::uint64_t awake_count_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t window_wakeups_ = 0;  ///< wakes within the current window
  Cycle window_start_ = 0;
  double leak_fraction_integral_ = 0.0;  ///< Σ window · effective fraction
  std::array<Cycle, 4> bank_busy_until_{};
  Cycle final_cycle_ = 0;
  bool finalized_ = false;
};

}  // namespace mobcache
