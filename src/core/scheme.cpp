#include "core/scheme.hpp"

namespace mobcache {

const char* scheme_name(SchemeKind k) {
  switch (k) {
    case SchemeKind::BaselineSram: return "Base-SRAM-2MB";
    case SchemeKind::ShrunkSram: return "Shrunk-SRAM-512KB";
    case SchemeKind::SharedStt: return "Shared-STT-2MB";
    case SchemeKind::DrowsySram: return "Drowsy-SRAM-2MB";
    case SchemeKind::VictimSram: return "Victim-SRAM-2MB";
    case SchemeKind::StaticPartSram: return "SP-SRAM";
    case SchemeKind::StaticPartMrstt: return "SP-MRSTT";
    case SchemeKind::DynamicSram: return "DP-SRAM";
    case SchemeKind::DynamicStt: return "DP-STT";
  }
  return "?";
}

std::optional<SchemeKind> parse_scheme_kind(std::string_view s) {
  if (s == "base") return SchemeKind::BaselineSram;
  if (s == "shrunk") return SchemeKind::ShrunkSram;
  if (s == "sharedstt") return SchemeKind::SharedStt;
  if (s == "drowsy") return SchemeKind::DrowsySram;
  if (s == "victim") return SchemeKind::VictimSram;
  if (s == "sp") return SchemeKind::StaticPartSram;
  if (s == "spmrstt") return SchemeKind::StaticPartMrstt;
  if (s == "dp") return SchemeKind::DynamicSram;
  if (s == "dpstt") return SchemeKind::DynamicStt;
  return std::nullopt;
}

namespace {

CacheConfig shared_geometry(const char* name, std::uint64_t bytes,
                            std::uint32_t assoc, ReplKind repl,
                            bool xor_index = false) {
  CacheConfig c;
  c.name = name;
  c.size_bytes = bytes;
  c.assoc = assoc;
  c.repl = repl;
  c.xor_index = xor_index;
  return c;
}

/// Per-segment fault config with a derived seed, so the two arrays of a
/// partitioned design draw independent (but reproducible) fault streams.
FaultConfig derived_fault(const FaultConfig& f, std::uint64_t salt) {
  FaultConfig out = f;
  out.seed = f.seed + salt;
  return out;
}

}  // namespace

std::unique_ptr<L2Interface> build_scheme(SchemeKind kind,
                                          const SchemeParams& p) {
  switch (kind) {
    case SchemeKind::BaselineSram: {
      SharedL2Config c;
      c.cache = shared_geometry("L2", p.baseline_bytes, p.baseline_assoc,
                                p.repl, p.xor_index);
      c.tech = TechKind::Sram;
      c.fault = p.fault;
      return std::make_unique<SharedL2>(c);
    }
    case SchemeKind::ShrunkSram: {
      SharedL2Config c;
      c.cache =
          shared_geometry("L2", p.shrunk_bytes, p.shrunk_assoc, p.repl);
      c.tech = TechKind::Sram;
      c.fault = p.fault;
      return std::make_unique<SharedL2>(c);
    }
    case SchemeKind::SharedStt: {
      SharedL2Config c;
      c.cache = shared_geometry("L2", p.baseline_bytes, p.baseline_assoc,
                                p.repl);
      c.tech = TechKind::SttRam;
      c.retention = RetentionClass::Hi;
      c.refresh = p.refresh;
      c.bypass.enabled = p.stt_write_bypass;
      c.fault = p.fault;
      return std::make_unique<SharedL2>(c);
    }
    case SchemeKind::DrowsySram: {
      DrowsyL2Config c;
      c.cache = shared_geometry("L2", p.baseline_bytes, p.baseline_assoc,
                                p.repl);
      c.window = p.drowsy_window;
      return std::make_unique<DrowsyL2>(c);
    }
    case SchemeKind::VictimSram: {
      VictimCacheL2Config c;
      c.cache = shared_geometry("L2", p.baseline_bytes, p.baseline_assoc,
                                p.repl);
      c.victim_entries = 64;
      return std::make_unique<VictimCacheL2>(c);
    }
    case SchemeKind::StaticPartSram: {
      StaticPartitionConfig c;
      c.user = sram_segment(p.sp_user_bytes, p.sp_user_assoc);
      c.kernel = sram_segment(p.sp_kernel_bytes, p.sp_kernel_assoc);
      c.user.repl = c.kernel.repl = p.repl;
      c.user.fault = p.fault;
      c.kernel.fault = derived_fault(p.fault, 1);
      return std::make_unique<StaticPartitionedL2>(c);
    }
    case SchemeKind::StaticPartMrstt: {
      StaticPartitionConfig c = make_mrstt_config(
          p.sp_user_bytes, p.sp_user_assoc, p.mrstt_user, p.sp_kernel_bytes,
          p.sp_kernel_assoc, p.mrstt_kernel, p.refresh);
      c.user.repl = c.kernel.repl = p.repl;
      c.user.bypass.enabled = c.kernel.bypass.enabled = p.stt_write_bypass;
      c.user.fault = p.fault;
      c.kernel.fault = derived_fault(p.fault, 1);
      return std::make_unique<StaticPartitionedL2>(c);
    }
    case SchemeKind::DynamicSram:
    case SchemeKind::DynamicStt: {
      DynamicL2Config c;
      c.cache = shared_geometry("L2", p.baseline_bytes, p.baseline_assoc,
                                p.repl);
      c.tech = kind == SchemeKind::DynamicStt ? TechKind::SttRam
                                              : TechKind::Sram;
      c.retention = p.dp_retention;
      c.refresh = p.refresh;
      c.epoch_accesses = p.dp_epoch_accesses;
      c.controller.monitor = p.dp_monitor;
      c.controller.miss_slack = p.dp_miss_slack;
      c.fault = p.fault;
      return std::make_unique<DynamicPartitionedL2>(c);
    }
  }
  return nullptr;
}

std::vector<SchemeKind> headline_schemes() {
  return {SchemeKind::BaselineSram,    SchemeKind::ShrunkSram,
          SchemeKind::SharedStt,       SchemeKind::DrowsySram,
          SchemeKind::VictimSram,      SchemeKind::StaticPartSram,
          SchemeKind::StaticPartMrstt, SchemeKind::DynamicSram,
          SchemeKind::DynamicStt};
}

}  // namespace mobcache
