#pragma once
/// \file dynamic_partitioned_l2.hpp
/// Dynamically partitioned L2 (paper technique 3): one physical array whose
/// ways are assigned per epoch to the user segment, the kernel segment, or
/// powered off entirely. Combined with short-retention STT-RAM this is the
/// paper's maximal-savings design (DP-STT, −85% cache energy).
///
/// Way plan: user ways grow from way 0 upward, kernel ways from the top
/// downward, the gap in the middle is power-gated. Growing one segment
/// therefore never flushes the other; only ways leaving a segment are
/// written back and invalidated.

#include <array>
#include <memory>
#include <vector>

#include "cache/bank_model.hpp"
#include "cache/shadow_monitor.hpp"
#include "core/dynamic_controller.hpp"
#include "core/l2_interface.hpp"
#include "energy/refresh.hpp"
#include "energy/technology.hpp"
#include "fault/fault_injector.hpp"

namespace mobcache {

struct DynamicL2Config {
  CacheConfig cache;  ///< physical array (paper: 2 MB, 16-way)
  TechKind tech = TechKind::Sram;
  RetentionClass retention = RetentionClass::Lo;  ///< STT-RAM only
  RefreshPolicy refresh = RefreshPolicy::ScrubDirty;
  Cycle refresh_check_interval = 2'000'000;
  /// Epoch length in L2 demand accesses between repartition decisions.
  std::uint64_t epoch_accesses = 10'000;
  std::uint32_t monitor_sample_shift = 4;  ///< shadow tags sample 1/16 sets
  ControllerConfig controller;
  /// Fault injection + ECC + way-disable repair (disabled by default).
  /// Quarantined ways shrink the controller's way budget: allocations are
  /// re-clamped to the healthy mask instead of asserting.
  FaultConfig fault;
};

/// One repartition event, kept for the E8 allocation-trace figure.
struct AllocationSample {
  Cycle cycle = 0;
  std::uint32_t user_ways = 0;
  std::uint32_t kernel_ways = 0;
};

class DynamicPartitionedL2 final : public L2Interface {
 public:
  explicit DynamicPartitionedL2(const DynamicL2Config& cfg);

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override;
  void writeback(Addr line, Mode owner, Cycle now) override;
  void prefetch(Addr line, Mode mode, Cycle now) override;
  void finalize(Cycle end) override;
  const EnergyBreakdown& energy() const override { return acct_.breakdown(); }
  CacheStats aggregate_stats() const override { return cache_.stats(); }
  std::uint64_t capacity_bytes() const override {
    return cache_.config().size_bytes;
  }
  double avg_enabled_bytes() const override;
  std::string describe() const override;
  void fill_sample(EpochSample& s) const override {
    s.user_ways = alloc_.user_ways;
    s.kernel_ways = alloc_.kernel_ways;
    s.enabled_bytes =
        enabled_fraction() * static_cast<double>(cache_.config().size_bytes);
  }
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    cache_.add_eviction_observer(std::move(obs));
  }

  WayAllocation allocation() const { return controller_.current(); }
  const std::vector<AllocationSample>& allocation_history() const {
    return history_;
  }
  std::uint64_t reconfigurations() const { return history_.size(); }
  std::uint64_t reconfig_writebacks() const { return reconfig_writebacks_; }
  const SetAssocCache& array() const { return cache_; }
  /// Fault subsystem (null when DynamicL2Config::fault is disabled).
  const FaultInjector* fault_injector() const { return fault_.get(); }
  std::uint32_t quarantined_ways() const override {
    return fault_ == nullptr ? 0 : fault_->repair().quarantined_ways();
  }

 private:
  /// Per-mode way masks for an allocation. Fault-free this is the
  /// contiguous user-from-bottom / kernel-from-top plan; with quarantined
  /// ways the same counts are carved out of the healthy mask instead (the
  /// remap: allocations skip dead ways rather than shrinking around them).
  std::array<WayMask, kModeCount> masks_for(const WayAllocation& a) const {
    if (fault_ == nullptr) {
      return {way_range_mask(0, a.user_ways),
              way_range_mask(cache_.assoc() - a.kernel_ways, a.kernel_ways)};
    }
    const WayMask healthy = fault_->repair().healthy_mask();
    return {lowest_ways(healthy, a.user_ways),
            highest_ways(healthy, a.kernel_ways)};
  }
  WayMask mask_of(Mode m) const {
    return masks_for(alloc_)[static_cast<int>(m)];
  }
  double enabled_fraction() const;
  /// Shrinks an allocation so it fits the healthy-way budget (no-op when
  /// fault injection is off). The kernel segment keeps its last way longest:
  /// kernel misses are the costlier ones in the paper's workloads.
  WayAllocation clamp_to_healthy(WayAllocation a) const;
  /// Advances transient injection and drains pending way quarantines.
  void service_faults(Cycle now);

  /// Accumulates leakage for [last_change_, now) at the current allocation.
  void settle_leakage(Cycle now);
  void maybe_epoch(Cycle now);
  void apply_allocation(WayAllocation next, Cycle now);
  void rescale_active_tech();
  const TechParams& refresh_tech() const;
  L2Result do_access(Addr line, AccessType type, Mode mode, Cycle now,
                     bool demand, bool prefetch = false);

  DynamicL2Config cfg_;
  SetAssocCache cache_;
  std::unique_ptr<FaultInjector> fault_;
  TechParams tech_;  ///< full-array parameters (leakage reference)
  /// Per-mode dynamic energies scaled to that segment's enabled capacity —
  /// an access only probes its own segment's ways, so its cost matches a
  /// standalone array of that size (same law as the static design).
  std::array<TechParams, kModeCount> seg_tech_{};
  RefreshController refresher_;
  EnergyAccountant acct_;
  DynamicPartitionController controller_;
  WayAllocation alloc_;
  ShadowTagMonitor user_monitor_;
  ShadowTagMonitor kernel_monitor_;

  std::uint64_t epoch_access_count_ = 0;
  std::uint64_t epoch_misses_[kModeCount] = {0, 0};
  std::uint64_t epoch_accesses_[kModeCount] = {0, 0};
  Cycle epoch_start_cycle_ = 0;

  std::uint64_t epoch_index_ = 0;
  EnergyBreakdown last_epoch_energy_;  ///< telemetry interval attribution

  Cycle last_change_ = 0;
  double enabled_byte_cycles_ = 0.0;
  Cycle final_cycle_ = 0;
  BankModel banks_;
  std::uint64_t reconfig_writebacks_ = 0;
  std::vector<AllocationSample> history_;
  bool finalized_ = false;
};

}  // namespace mobcache
