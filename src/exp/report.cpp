#include "exp/report.hpp"

#include <cstdlib>
#include <iostream>

#include "common/stats.hpp"

namespace mobcache {

void print_banner(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n"
            << "    (mobcache reproduction of Yan et al., energy-efficient "
               "mobile cache design, DATE'15 / TODAES'17)\n\n";
}

std::string results_path(const std::string& filename) {
  const char* dir = std::getenv("MOBCACHE_RESULTS_DIR");
  std::string base = dir != nullptr ? dir : "results";
  return base + "/" + filename;
}

TablePrinter headline_table(const std::vector<SchemeSuiteResult>& results) {
  TablePrinter t({"scheme", "capacity", "avg-enabled", "L2 miss rate",
                  "norm cache energy", "norm cache+DRAM energy",
                  "norm exec time", "norm EDP"});
  for (const SchemeSuiteResult& r : results) {
    double enabled = 0.0;
    std::uint64_t cap = 0;
    for (const SimResult& s : r.per_workload) {
      enabled += s.l2_avg_enabled_bytes;
      cap = s.l2_capacity_bytes;
    }
    if (!r.per_workload.empty())
      enabled /= static_cast<double>(r.per_workload.size());
    t.add_row({r.name, format_bytes(cap),
               format_bytes(static_cast<std::uint64_t>(enabled)),
               format_percent(r.avg_miss_rate),
               format_double(r.norm_cache_energy, 3),
               format_double(r.norm_total_energy, 3),
               format_double(r.norm_exec_time, 3),
               format_double(r.norm_cache_energy * r.norm_exec_time, 3)});
  }
  return t;
}

void emit(const TablePrinter& table, const std::string& csv_name) {
  table.print();
  const std::string path = results_path(csv_name);
  if (table.write_csv(path)) {
    std::cout << "[csv] " << path << "\n";
  } else {
    std::cout << "[csv] failed to write " << path << "\n";
  }
}

}  // namespace mobcache
