#pragma once
/// \file report.hpp
/// Shared report plumbing for the bench binaries: banner, results
/// directory, and the standard headline table rendering.

#include <string>
#include <vector>

#include "common/table.hpp"
#include "exp/runner.hpp"

namespace mobcache {

/// Prints the experiment banner (id + title + provenance line).
void print_banner(const std::string& experiment_id, const std::string& title);

/// Path under the results directory (MOBCACHE_RESULTS_DIR or ./results),
/// e.g. results_path("e9_headline.csv").
std::string results_path(const std::string& filename);

/// Renders the standard scheme-comparison table (E4/E9 shape): capacity,
/// avg enabled capacity, miss rate, normalized cache energy / total energy /
/// execution time.
TablePrinter headline_table(const std::vector<SchemeSuiteResult>& results);

/// Prints a table and also writes it as CSV; reports the CSV path.
void emit(const TablePrinter& table, const std::string& csv_name);

}  // namespace mobcache
