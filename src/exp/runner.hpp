#pragma once
/// \file runner.hpp
/// Workload-suite × scheme experiment driver with baseline normalization —
/// the engine behind every bench binary.
///
/// All suite/sweep execution flows through SweepExecutor (exp/parallel.hpp):
/// set `jobs` > 1 (or 0 = auto) and the (scheme × workload) cells of a run
/// are sharded across worker threads. Results are assembled in cell-index
/// order and every cell is a pure function of its index, so a parallel run
/// is bit-identical to `jobs = 1`. Traces come from the process-wide
/// TraceCache via cached_suite(): generated once, shared read-only.
///
/// Attach a ResultStore (exp/result_store.hpp) via `result_store` and every
/// deterministic (scheme × workload) cell is memoized across process
/// lifetimes: cells whose content key is already stored are served without
/// re-simulation, freshly computed cells are persisted as they finish, and a
/// killed sweep resumes from its last completed point.

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "exp/parallel.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {

class ResultStore;

/// One point of a multi-design sweep grid (ExperimentRunner::run_designs): a
/// named L2 factory plus its memoization identity. The factory is invoked
/// once per workload, possibly from worker threads — building fresh objects
/// from captured read-only state is the contract (same as run_custom's
/// builder). `design_hash` opts the point into result-store memoization;
/// `kind` is carried onto SchemeSuiteResult::kind when set.
struct DesignSpec {
  std::string name;
  std::function<std::unique_ptr<L2Interface>()> build;
  std::optional<std::uint64_t> design_hash;
  std::optional<SchemeKind> kind;
};

/// The DesignSpec equivalent of run_scheme(kind, params): same name, same
/// builder, same content hash — a grid built from these memoizes into the
/// same result-store records as per-point run_scheme calls.
DesignSpec scheme_design(SchemeKind kind, const SchemeParams& params = {});

/// Throws NumericError (naming the scheme and workload) when any
/// energy/timing lane of `r` is NaN or infinite. The runner calls this on
/// every simulate() return — before the result can reach a result store,
/// a JSON artifact, or a normalization divide — so numeric garbage fails
/// the point loudly instead of silently poisoning downstream aggregates.
void validate_sim_result_finite(const SimResult& r);

/// One scheme evaluated over a suite.
struct SchemeSuiteResult {
  SchemeKind kind = SchemeKind::BaselineSram;
  std::string name;
  std::vector<SimResult> per_workload;  ///< aligned with the suite order

  /// Per-workload observability sessions (aligned with per_workload); empty
  /// unless ExperimentRunner::collect_telemetry is on. shared_ptr because
  /// Telemetry is non-copyable while suite results get moved around freely.
  std::vector<std::shared_ptr<Telemetry>> per_workload_telemetry;

  /// Suite-wide metric rollup: all per-workload registries merged (counters
  /// add, histograms/stats combine). Empty registry when telemetry was off.
  MetricRegistry merged_metrics() const;

  /// Normalized-to-baseline aggregates (geomean over workloads); filled by
  /// ExperimentRunner when a baseline is present.
  double norm_cache_energy = 1.0;
  double norm_total_energy = 1.0;
  double norm_exec_time = 1.0;
  double avg_miss_rate = 0.0;
};

class ExperimentRunner {
 public:
  /// `apps` defines the suite; traces come from the TraceCache (generated
  /// once process-wide for this (apps, accesses, seed), shared read-only by
  /// all schemes and all concurrently-running runners).
  ExperimentRunner(std::vector<AppId> apps, std::uint64_t accesses,
                   std::uint64_t seed = 1);

  /// Uses pre-generated traces (e.g. loaded from disk) instead of
  /// synthesizing a suite.
  explicit ExperimentRunner(std::vector<Trace> traces);

  /// Runs one scheme (fresh L2 per workload via the factory).
  SchemeSuiteResult run_scheme(SchemeKind kind,
                               const SchemeParams& params = {}) const;

  /// Runs a custom design. The builder is invoked once per workload — from
  /// worker threads when jobs != 1, so it must be safe to call concurrently
  /// (building fresh objects from captured read-only state is fine).
  ///
  /// `design_hash` is the memoization opt-in for custom designs: a content
  /// hash covering every parameter the builder bakes into the design (use
  /// ContentHasher). Without it the runner cannot key the cells, so a
  /// custom run is never served from the result store.
  SchemeSuiteResult run_custom(
      const std::string& name,
      const std::function<std::unique_ptr<L2Interface>()>& builder,
      std::optional<std::uint64_t> design_hash = std::nullopt) const;

  /// Runs several schemes as one flat (scheme × workload) sweep — the
  /// maximum-parallelism path. No normalization is applied. When the runner
  /// is batchable() this delegates to run_designs(), which drives up to
  /// `sweep_batch` schemes per trace decode; results are byte-identical
  /// either way.
  std::vector<SchemeSuiteResult> run_schemes(
      const std::vector<SchemeKind>& kinds,
      const SchemeParams& params = {}) const;

  /// Runs a sweep grid of designs (one suite evaluation per spec), in spec
  /// order. With `sweep_batch` >= 2 and a batch-eligible configuration the
  /// grid executes on the single-pass engine (sim/batch.hpp): one demand
  /// stream per workload drives up to `sweep_batch` design lanes at once.
  /// Otherwise each spec runs exactly like
  /// `run_custom(spec.name, spec.build, spec.design_hash)` on a serial inner
  /// executor, with the specs sharded across `jobs` workers — the structure
  /// every sweep bench used before batching existed. Both paths produce
  /// byte-identical SchemeSuiteResults and result-store artifacts
  /// (docs/SWEEP_ENGINE.md). Fail-fast: the first failing point aborts the
  /// sweep.
  std::vector<SchemeSuiteResult> run_designs(
      const std::vector<DesignSpec>& specs) const;

  /// Keep-going flavour of run_designs(): a failing spec becomes a
  /// PointFailure in its outcome slot (index = spec index) instead of
  /// aborting; cancellation still propagates. `point_hook`, when set, runs
  /// at the start of every spec's work (chaos injection seam — a throwing
  /// hook fails that spec). With keep_going == false this *is*
  /// run_designs(), returned in outcome form.
  std::vector<PointOutcome<SchemeSuiteResult>> run_designs_outcomes(
      const std::vector<DesignSpec>& specs, bool keep_going,
      const std::function<void(std::size_t)>& point_hook = {}) const;

  /// True when run_designs()/run_schemes() will take the batched single-pass
  /// path: `sweep_batch` >= 2, no telemetry collection, and a
  /// batch-eligible SimOptions (batch_eligible() in sim/batch.hpp).
  bool batchable() const;

  /// Runs all headline schemes and normalizes against the first (baseline).
  std::vector<SchemeSuiteResult> run_headline(
      const SchemeParams& params = {}) const;

  /// Normalizes `results` in place against `results[0]` per workload, then
  /// geomeans across workloads.
  static void normalize(std::vector<SchemeSuiteResult>& results);

  const std::vector<std::shared_ptr<const Trace>>& traces() const {
    return traces_;
  }
  /// Convenience view of one suite trace.
  const Trace& trace(std::size_t i) const { return *traces_[i]; }
  const std::vector<AppId>& apps() const { return apps_; }

  /// Content fingerprints of the suite traces (aligned with traces()).
  /// Computed once per runner, on first use — only memoized paths pay for
  /// them. Thread-safe: run_* methods may race on the first call.
  const std::vector<std::uint64_t>& trace_hashes() const;

  SimOptions sim_options;  ///< shared hierarchy/timing configuration

  /// Worker threads for this runner's (scheme × workload) cells. 1 = serial
  /// (the default — library users opt in), 0 = auto (MOBCACHE_JOBS env,
  /// then hardware concurrency), N = exactly N. Results are identical for
  /// every value; only wall-clock changes.
  unsigned jobs = 1;

  /// When true, every simulate() call gets a fresh Telemetry session,
  /// returned on SchemeSuiteResult::per_workload_telemetry. Off by default:
  /// the no-sink fast path keeps sweeps at full speed. Sessions are created
  /// and filled on the worker that runs the cell (one session per cell, no
  /// cross-thread sharing), then handed back in suite order.
  bool collect_telemetry = false;
  /// Trace-record sampling cadence for the collected sessions (0 = only
  /// scheme-internal epochs sample; see Telemetry::set_sample_interval).
  std::uint64_t telemetry_sample_interval = 0;

  /// Persistent memoization of completed cells (null = off). Only plain
  /// result cells are memoized: runs collecting telemetry or carrying an
  /// eviction observer always simulate, because a cached SimResult cannot
  /// replay their side channels.
  ResultStore* result_store = nullptr;

  /// Design lanes driven per demand-stream replay in run_designs()/
  /// run_schemes(). 0/1 = per-point (the default — every spec simulates its
  /// own L1 pass), N >= 2 = decode each trace once and replay it into up to
  /// N design lanes. Benches wire this to --batch / MOBCACHE_SWEEP_BATCH
  /// (bench_sweep_batch). Results are byte-identical for every value; only
  /// wall-clock changes.
  unsigned sweep_batch = 1;

 private:
  bool memoizable() const;
  SchemeSuiteResult run_custom_impl(
      const std::string& name,
      const std::function<std::unique_ptr<L2Interface>()>& builder,
      std::optional<std::uint64_t> design_hash, unsigned exec_jobs) const;
  std::vector<PointOutcome<SchemeSuiteResult>> run_designs_batched(
      const std::vector<DesignSpec>& specs, bool keep_going,
      const std::function<void(std::size_t)>& point_hook) const;
  /// Per-cell content keys for a (design × workload) grid slice.
  std::vector<std::uint64_t> cell_keys(std::uint64_t design_hash) const;

  std::vector<AppId> apps_;
  std::vector<std::shared_ptr<const Trace>> traces_;
  mutable std::once_flag trace_hash_once_;
  mutable std::vector<std::uint64_t> trace_hashes_;
};

/// One point of the error-rate × energy/CPI resilience sweep (bench E21):
/// a scheme rerun with fault injection at `rate`, normalized against the
/// same scheme at rate 0 over the same traces. Absolute counters are summed
/// across the suite's workloads.
struct FaultSweepPoint {
  double rate = 0.0;
  double norm_cache_energy = 1.0;  ///< geomean vs the rate-0 run
  double norm_exec_time = 1.0;
  double avg_miss_rate = 0.0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t fault_losses = 0;     ///< uncorrectable detected losses
  std::uint64_t dirty_losses = 0;     ///< losses that dropped dirty data
  std::uint64_t scrub_repairs = 0;    ///< decayed blocks healed by scrub
  std::uint64_t quarantined_ways = 0; ///< summed over workload runs
};

/// Runs `kind` across `rates` (plus a rate-0 reference) over this runner's
/// traces. `tmpl.fault` supplies the non-rate fault knobs (ECC kind,
/// quarantine threshold, seed); each point swaps in
/// FaultConfig::from_rate(rate, ...) derived from it. rates containing 0.0
/// produce an exactly-1.0 normalized point — the bit-identity anchor.
/// Executes as one flat (rate × workload) sweep on `runner.jobs` workers.
std::vector<FaultSweepPoint> run_fault_sweep(const ExperimentRunner& runner,
                                             SchemeKind kind,
                                             const std::vector<double>& rates,
                                             const SchemeParams& tmpl = {});

/// Mean and sample standard deviation of a normalized metric across seeds.
struct SeedStat {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One scheme's cross-seed statistics.
struct MultiSeedResult {
  SchemeKind kind = SchemeKind::BaselineSram;
  std::string name;
  SeedStat cache_energy;
  SeedStat exec_time;
  SeedStat miss_rate;
};

/// Runs `schemes` over fresh suites generated from each seed, normalizing
/// against schemes.front() per seed, and aggregates across seeds. This is
/// the statistical-rigor pass: a conclusion that does not survive the seed
/// noise band is not a conclusion (bench E14).
///
/// Every (seed, scheme) cell is a pure function of its index — the suite
/// seed is seeds[cell / schemes.size()], never a running counter — and the
/// cross-seed statistics are accumulated in seed order after all cells
/// finish, so `jobs` does not change a single output bit. Use
/// derived_seeds(base, n) (exp/parallel.hpp) to build the seed list from
/// one base seed. `store` memoizes the inner (scheme × workload) cells of
/// every per-seed runner.
std::vector<MultiSeedResult> run_multi_seed(
    const std::vector<AppId>& apps, std::uint64_t accesses,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<SchemeKind>& schemes,
    const SchemeParams& params = {}, unsigned jobs = 1,
    ResultStore* store = nullptr);

}  // namespace mobcache
