#pragma once
/// \file runner.hpp
/// Workload-suite × scheme experiment driver with baseline normalization —
/// the engine behind every bench binary.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {

/// One scheme evaluated over a suite.
struct SchemeSuiteResult {
  SchemeKind kind = SchemeKind::BaselineSram;
  std::string name;
  std::vector<SimResult> per_workload;  ///< aligned with the suite order

  /// Per-workload observability sessions (aligned with per_workload); empty
  /// unless ExperimentRunner::collect_telemetry is on. shared_ptr because
  /// Telemetry is non-copyable while suite results get moved around freely.
  std::vector<std::shared_ptr<Telemetry>> per_workload_telemetry;

  /// Suite-wide metric rollup: all per-workload registries merged (counters
  /// add, histograms/stats combine). Empty registry when telemetry was off.
  MetricRegistry merged_metrics() const;

  /// Normalized-to-baseline aggregates (geomean over workloads); filled by
  /// ExperimentRunner when a baseline is present.
  double norm_cache_energy = 1.0;
  double norm_total_energy = 1.0;
  double norm_exec_time = 1.0;
  double avg_miss_rate = 0.0;
};

class ExperimentRunner {
 public:
  /// `apps` defines the suite; traces are generated once and shared by all
  /// schemes. `accesses` is records per app.
  ExperimentRunner(std::vector<AppId> apps, std::uint64_t accesses,
                   std::uint64_t seed = 1);

  /// Uses pre-generated traces (e.g. loaded from disk) instead of
  /// synthesizing a suite.
  explicit ExperimentRunner(std::vector<Trace> traces);

  /// Runs one scheme (fresh L2 per workload via the factory).
  SchemeSuiteResult run_scheme(SchemeKind kind, const SchemeParams& params = {});

  /// Runs a custom design (the builder is invoked once per workload).
  SchemeSuiteResult run_custom(
      const std::string& name,
      const std::function<std::unique_ptr<L2Interface>()>& builder);

  /// Runs all headline schemes and normalizes against the first (baseline).
  std::vector<SchemeSuiteResult> run_headline(const SchemeParams& params = {});

  /// Normalizes `results` in place against `results[0]` per workload, then
  /// geomeans across workloads.
  static void normalize(std::vector<SchemeSuiteResult>& results);

  const std::vector<Trace>& traces() const { return traces_; }
  const std::vector<AppId>& apps() const { return apps_; }

  SimOptions sim_options;  ///< shared hierarchy/timing configuration

  /// When true, every simulate() call gets a fresh Telemetry session,
  /// returned on SchemeSuiteResult::per_workload_telemetry. Off by default:
  /// the no-sink fast path keeps sweeps at full speed.
  bool collect_telemetry = false;
  /// Trace-record sampling cadence for the collected sessions (0 = only
  /// scheme-internal epochs sample; see Telemetry::set_sample_interval).
  std::uint64_t telemetry_sample_interval = 0;

 private:
  std::vector<AppId> apps_;
  std::vector<Trace> traces_;
};

/// One point of the error-rate × energy/CPI resilience sweep (bench E21):
/// a scheme rerun with fault injection at `rate`, normalized against the
/// same scheme at rate 0 over the same traces. Absolute counters are summed
/// across the suite's workloads.
struct FaultSweepPoint {
  double rate = 0.0;
  double norm_cache_energy = 1.0;  ///< geomean vs the rate-0 run
  double norm_exec_time = 1.0;
  double avg_miss_rate = 0.0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t fault_losses = 0;     ///< uncorrectable detected losses
  std::uint64_t dirty_losses = 0;     ///< losses that dropped dirty data
  std::uint64_t scrub_repairs = 0;    ///< decayed blocks healed by scrub
  std::uint64_t quarantined_ways = 0; ///< summed over workload runs
};

/// Runs `kind` across `rates` (plus a rate-0 reference) over this runner's
/// traces. `tmpl.fault` supplies the non-rate fault knobs (ECC kind,
/// quarantine threshold, seed); each point swaps in
/// FaultConfig::from_rate(rate, ...) derived from it. rates containing 0.0
/// produce an exactly-1.0 normalized point — the bit-identity anchor.
std::vector<FaultSweepPoint> run_fault_sweep(ExperimentRunner& runner,
                                             SchemeKind kind,
                                             const std::vector<double>& rates,
                                             const SchemeParams& tmpl = {});

/// Mean and sample standard deviation of a normalized metric across seeds.
struct SeedStat {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One scheme's cross-seed statistics.
struct MultiSeedResult {
  SchemeKind kind = SchemeKind::BaselineSram;
  std::string name;
  SeedStat cache_energy;
  SeedStat exec_time;
  SeedStat miss_rate;
};

/// Runs `schemes` over fresh suites generated from each seed, normalizing
/// against schemes.front() per seed, and aggregates across seeds. This is
/// the statistical-rigor pass: a conclusion that does not survive the seed
/// noise band is not a conclusion (bench E14).
std::vector<MultiSeedResult> run_multi_seed(
    const std::vector<AppId>& apps, std::uint64_t accesses,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<SchemeKind>& schemes,
    const SchemeParams& params = {});

}  // namespace mobcache
