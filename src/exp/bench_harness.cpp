#include "exp/bench_harness.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/cancel.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "exp/parallel.hpp"
#include "exp/report.hpp"

namespace mobcache {

unsigned bench_jobs(int argc, char** argv) {
  unsigned requested = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const unsigned long v = std::strtoul(argv[i] + 7, nullptr, 10);
      if (v > 0) requested = static_cast<unsigned>(v);
    }
  }
  return effective_jobs(requested);
}

std::unique_ptr<ResultStore> bench_result_store(int argc, char** argv) {
  std::string dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--store-dir=", 12) == 0) {
      dir = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    }
  }
  if (!dir.empty()) return std::make_unique<ResultStore>(dir);
  if (auto store = ResultStore::from_env()) return store;
  if (resume) return std::make_unique<ResultStore>(results_path("result_store"));
  return nullptr;
}

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

bool bench_keep_going(int argc, char** argv) {
  return has_flag(argc, argv, "--keep-going");
}

bool bench_retry_failed(int argc, char** argv) {
  return has_flag(argc, argv, "--retry-failed");
}

std::uint64_t bench_point_deadline_ms(int argc, char** argv) {
  std::uint64_t ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--point-deadline-ms=", 20) == 0)
      ms = std::strtoull(argv[i] + 20, nullptr, 10);
  }
  return ms;
}

std::vector<std::size_t> bench_fail_points(int argc, char** argv) {
  std::vector<std::size_t> points;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fail-points=", 14) != 0) continue;
    const char* p = argv[i] + 14;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) {
        throw ConfigError(std::string("bad --fail-points list: ") +
                          (argv[i] + 14));
      }
      points.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
      if (end == p && *end != '\0') {
        throw ConfigError(std::string("bad --fail-points list: ") +
                          (argv[i] + 14));
      }
    }
  }
  return points;
}

unsigned bench_sweep_batch(int argc, char** argv) {
  // The default lane cap when --batch is given bare: big enough to cover
  // every shipped sweep grid in one or two replays, small enough that lane
  // state stays cache-resident.
  constexpr unsigned kDefaultBatch = 16;
  std::optional<unsigned> from_flag;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[i] + 8, &end, 10);
      if (end == argv[i] + 8 || *end != '\0' || v > 4096) {
        throw ConfigError(std::string("bad --batch value: ") + (argv[i] + 8));
      }
      from_flag = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      from_flag = kDefaultBatch;
    }
  }
  unsigned batch = 1;
  if (from_flag) {
    batch = *from_flag;
  } else if (const auto env = env_u64("MOBCACHE_SWEEP_BATCH", 0, 4096)) {
    batch = static_cast<unsigned>(*env);
  }
  return batch < 1 ? 1u : batch;
}

void chaos_maybe_fail(const std::vector<std::size_t>& fail_points,
                      std::size_t index) {
  for (std::size_t p : fail_points) {
    if (p != index) continue;
    NumericError err("injected chaos fault");
    err.with_point(index);
    throw err;
  }
}

int guarded_main(const char* tool, bool install_signals, int argc, char** argv,
                 int (*real_main)(int, char**)) {
  if (install_signals) install_cancellation_handlers();
  try {
    return real_main(argc, argv);
  } catch (const SimError& e) {
    if (e.kind() == SimErrorKind::Cancelled) {
      std::fprintf(stderr, "%s: interrupted: %s\n", tool, e.what());
    } else {
      std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    }
    return exit_code_for(e);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    return exit_code_for(e);
  }
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

bool write_json_results(const JsonWriter& w, const std::string& filename) {
  const std::string path = results_path(filename);
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << w.str() << '\n';
  return static_cast<bool>(f);
}

BenchReport::BenchReport(std::string name, unsigned jobs)
    : name_(std::move(name)),
      jobs_(jobs),
      start_(std::chrono::steady_clock::now()) {}

void BenchReport::add_result(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

void BenchReport::add_run_fact(const std::string& key, double value) {
  run_facts_.emplace_back(key, value);
}

void BenchReport::add_point_failure(const PointFailure& f, std::string point) {
  ManifestEntry e;
  e.point = std::move(point);
  e.error_type = f.error_type;
  e.message = f.message;
  e.quarantined = f.quarantined;
  failures_.push_back(std::move(e));
}

double BenchReport::wall_ms() const {
  const auto dt = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(dt).count();
}

bool BenchReport::write() {
  const double ms = wall_ms();
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(name_);
  w.key("schema_version").value(std::uint64_t{1});
  w.key("jobs").value(static_cast<std::uint64_t>(jobs_));
  w.key("points").value(points_);
  w.key("wall_ms").value(ms);
  w.key("points_per_sec")
      .value(ms > 0.0 ? static_cast<double>(points_) * 1e3 / ms : 0.0);
  // A failed getrusage probe reports 0 — omit the key entirely rather than
  // publish a bogus measurement (check_bench.py treats absence as
  // "unmeasured" and skips the RSS checks with a warning).
  if (const std::uint64_t rss = peak_rss_bytes(); rss > 0)
    w.key("peak_rss_bytes").value(rss);
  for (const auto& [key, value] : run_facts_) w.key(key).value(value);
  w.key("result_store");
  w.begin_object();
  w.key("hits").value(store_stats_.hits);
  w.key("misses").value(store_stats_.misses);
  w.key("stores").value(store_stats_.stores);
  w.key("corrupt_skipped").value(store_stats_.corrupt_skipped);
  w.key("loaded").value(store_stats_.loaded);
  w.key("poisoned_loaded").value(store_stats_.poisoned_loaded);
  w.key("poison_hits").value(store_stats_.poison_hits);
  w.key("poison_stores").value(store_stats_.poison_stores);
  w.end_object();
  // Failure manifest + sweep counters. Green runs report an empty array and
  // failed = 0 — check_bench.py's validate asserts exactly that unless told
  // --allow-failures.
  std::uint64_t quarantined = 0;
  for (const ManifestEntry& e : failures_)
    if (e.quarantined) ++quarantined;
  const std::uint64_t failed =
      static_cast<std::uint64_t>(failures_.size());
  w.key("sweep");
  w.begin_object();
  w.key("completed").value(points_ > failed ? points_ - failed : 0);
  w.key("failed").value(failed);
  w.key("quarantined").value(quarantined);
  w.key("batch_size").value(static_cast<std::uint64_t>(sweep_batch_));
  w.key("batched").value(sweep_batched_);
  w.end_object();
  w.key("failures");
  w.begin_array();
  for (const ManifestEntry& e : failures_) {
    w.begin_object();
    w.key("point").value(e.point);
    w.key("error_type").value(e.error_type);
    w.key("message").value(e.message);
    w.key("quarantined").value(e.quarantined);
    w.end_object();
  }
  w.end_array();
  w.key("results");
  w.begin_object();
  for (const auto& [key, value] : results_) w.key(key).value(value);
  w.end_object();
  w.end_object();

  const std::string filename = "BENCH_" + name_ + ".json";
  const bool ok = write_json_results(w, filename);
  if (ok) {
    std::printf("[bench] %s (jobs=%u, %.0f ms, %.2f points/s)\n",
                results_path(filename).c_str(), jobs_, ms,
                ms > 0.0 ? static_cast<double>(points_) * 1e3 / ms : 0.0);
  } else {
    std::printf("[bench] failed to write %s\n", results_path(filename).c_str());
  }
  return ok;
}

}  // namespace mobcache
