#include "exp/bench_harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "exp/parallel.hpp"
#include "exp/report.hpp"

namespace mobcache {

unsigned bench_jobs(int argc, char** argv) {
  unsigned requested = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const unsigned long v = std::strtoul(argv[i] + 7, nullptr, 10);
      if (v > 0) requested = static_cast<unsigned>(v);
    }
  }
  return effective_jobs(requested);
}

std::unique_ptr<ResultStore> bench_result_store(int argc, char** argv) {
  std::string dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--store-dir=", 12) == 0) {
      dir = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    }
  }
  if (!dir.empty()) return std::make_unique<ResultStore>(dir);
  if (auto store = ResultStore::from_env()) return store;
  if (resume) return std::make_unique<ResultStore>(results_path("result_store"));
  return nullptr;
}

bool write_json_results(const JsonWriter& w, const std::string& filename) {
  const std::string path = results_path(filename);
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << w.str() << '\n';
  return static_cast<bool>(f);
}

BenchReport::BenchReport(std::string name, unsigned jobs)
    : name_(std::move(name)),
      jobs_(jobs),
      start_(std::chrono::steady_clock::now()) {}

void BenchReport::add_result(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

double BenchReport::wall_ms() const {
  const auto dt = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(dt).count();
}

bool BenchReport::write() {
  const double ms = wall_ms();
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(name_);
  w.key("schema_version").value(std::uint64_t{1});
  w.key("jobs").value(static_cast<std::uint64_t>(jobs_));
  w.key("points").value(points_);
  w.key("wall_ms").value(ms);
  w.key("points_per_sec")
      .value(ms > 0.0 ? static_cast<double>(points_) * 1e3 / ms : 0.0);
  w.key("result_store");
  w.begin_object();
  w.key("hits").value(store_stats_.hits);
  w.key("misses").value(store_stats_.misses);
  w.key("stores").value(store_stats_.stores);
  w.key("corrupt_skipped").value(store_stats_.corrupt_skipped);
  w.key("loaded").value(store_stats_.loaded);
  w.end_object();
  w.key("results");
  w.begin_object();
  for (const auto& [key, value] : results_) w.key(key).value(value);
  w.end_object();
  w.end_object();

  const std::string filename = "BENCH_" + name_ + ".json";
  const bool ok = write_json_results(w, filename);
  if (ok) {
    std::printf("[bench] %s (jobs=%u, %.0f ms, %.2f points/s)\n",
                results_path(filename).c_str(), jobs_, ms,
                ms > 0.0 ? static_cast<double>(points_) * 1e3 / ms : 0.0);
  } else {
    std::printf("[bench] failed to write %s\n", results_path(filename).c_str());
  }
  return ok;
}

}  // namespace mobcache
