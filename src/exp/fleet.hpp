#pragma once
/// \file fleet.hpp
/// E22 population sweep: stream sampled user sessions through an L2 design
/// and fold per-session metrics into mergeable accumulators, so fleet-level
/// p50/p95/p99 energy and CPI come out of one pass with O(shards) memory.
///
/// Determinism contract (what makes the BENCH "results" section identical
/// for every --jobs value):
///   * session i's configuration comes from
///     sample_session(mix, sweep_point_seed(seed, i)) — a pure function of
///     (mix, seed, i);
///   * sessions are carved into a FIXED shard count that depends only on
///     the session count, never on the worker count: shard s owns the
///     contiguous range [s·n/shards, (s+1)·n/shards);
///   * each shard folds its sessions in index order into its own
///     accumulator, and shard accumulators merge in shard-index order.
/// SweepExecutor only decides *when* each shard runs, never what it
/// computes, so the merged accumulator is bit-identical across jobs counts
/// (RunningStat's float merge sees the same operand order every time, and
/// QuantileSketch merges are exact regardless). tests/test_fleet.cpp pins
/// this; docs/SWEEP_ENGINE.md has the full story.

#include <cstdint>

#include "common/stats.hpp"
#include "core/scheme.hpp"
#include "exp/parallel.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

namespace mobcache {

/// One streamed fleet metric: exact-merge quantiles plus mean/extrema.
struct FleetMetric {
  RunningStat stat;
  QuantileSketch sketch;

  void add(double v) {
    stat.add(v);
    sketch.add(v);
  }
  void merge(const FleetMetric& o) {
    stat.merge(o.stat);
    sketch.merge(o.sketch);
  }
};

/// Mergeable per-shard (and merged fleet-wide) session statistics.
struct FleetAccumulator {
  std::uint64_t sessions = 0;
  std::uint64_t records = 0;        ///< total trace records simulated
  FleetMetric cache_energy_nj;      ///< per-session L2 cache energy (nJ)
  FleetMetric total_energy_nj;      ///< per-session L2+DRAM+L1 energy (nJ)
  FleetMetric cpi;                  ///< per-session mean CPI

  void add_session(const SimResult& r);
  void merge(const FleetAccumulator& o);
};

struct FleetConfig {
  PopulationModel mix = PopulationModel::default_mix();
  std::uint64_t sessions = 1000;
  /// Base seed; session i draws sweep_point_seed(seed, i).
  std::uint64_t seed = 1;
  SchemeKind scheme = SchemeKind::BaselineSram;
  SchemeParams params;
  SimOptions sim;
  /// Worker threads (0 = effective_jobs()); affects wall clock only.
  unsigned jobs = 0;
  /// Shard count override; 0 = fleet_shard_count(sessions). Results are a
  /// pure function of (mix, sessions, seed, scheme, params, sim, shards).
  std::size_t shards = 0;
};

/// The default shard count: enough shards to keep any plausible worker pool
/// busy, few enough that O(shards) accumulator memory is trivial. A pure
/// function of the session count — NEVER of the jobs value.
std::size_t fleet_shard_count(std::uint64_t sessions);

struct FleetResult {
  FleetAccumulator acc;
  std::size_t shards = 0;
};

/// Runs the population sweep: sessions stream through ScenarioStream +
/// simulate(TraceStream&), one live chunk per worker — peak RSS is bounded
/// by jobs · O(chunk), independent of session count or length.
FleetResult run_fleet(const FleetConfig& cfg);

/// Process-wide fleet counters, surfaced by `simrun --metrics` as the
/// fleet.* group.
struct FleetCounters {
  std::uint64_t sessions_simulated = 0;
  std::uint64_t session_records = 0;
  std::uint64_t shard_merges = 0;
};

FleetCounters fleet_counters();
void reset_fleet_counters();

}  // namespace mobcache
