#include "exp/fleet.hpp"

#include <algorithm>
#include <atomic>

#include "exp/runner.hpp"

namespace mobcache {

namespace {

std::atomic<std::uint64_t> g_sessions_simulated{0};
std::atomic<std::uint64_t> g_session_records{0};
std::atomic<std::uint64_t> g_shard_merges{0};

}  // namespace

FleetCounters fleet_counters() {
  FleetCounters c;
  c.sessions_simulated = g_sessions_simulated.load(std::memory_order_relaxed);
  c.session_records = g_session_records.load(std::memory_order_relaxed);
  c.shard_merges = g_shard_merges.load(std::memory_order_relaxed);
  return c;
}

void reset_fleet_counters() {
  g_sessions_simulated.store(0, std::memory_order_relaxed);
  g_session_records.store(0, std::memory_order_relaxed);
  g_shard_merges.store(0, std::memory_order_relaxed);
}

void FleetAccumulator::add_session(const SimResult& r) {
  ++sessions;
  records += r.records;
  cache_energy_nj.add(r.l2_energy.cache_nj());
  total_energy_nj.add(r.l2_energy.total_nj() + r.l1_energy_nj);
  cpi.add(r.cpi);
}

void FleetAccumulator::merge(const FleetAccumulator& o) {
  sessions += o.sessions;
  records += o.records;
  cache_energy_nj.merge(o.cache_energy_nj);
  total_energy_nj.merge(o.total_energy_nj);
  cpi.merge(o.cpi);
}

std::size_t fleet_shard_count(std::uint64_t sessions) {
  // 64 shards saturate any worker pool this repo targets while keeping the
  // merged state at a few hundred KB; tiny fleets get one shard per session.
  constexpr std::size_t kMaxShards = 64;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(sessions, kMaxShards));
}

FleetResult run_fleet(const FleetConfig& cfg) {
  FleetResult out;
  const std::size_t shards =
      cfg.shards != 0 ? cfg.shards : fleet_shard_count(cfg.sessions);
  out.shards = shards;
  if (cfg.sessions == 0 || shards == 0) return out;

  const SweepExecutor exec(cfg.jobs);
  std::vector<FleetAccumulator> parts =
      exec.map(shards, [&](std::size_t s) {
        FleetAccumulator acc;
        const std::uint64_t n = cfg.sessions;
        const std::uint64_t lo = n * s / shards;
        const std::uint64_t hi = n * (s + 1) / shards;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const ScenarioConfig sc =
              sample_session(cfg.mix, sweep_point_seed(cfg.seed, i));
          ScenarioStream stream(sc);
          const auto l2 = build_scheme(cfg.scheme, cfg.params);
          const SimResult r = simulate(stream, *l2, cfg.sim);
          validate_sim_result_finite(r);
          acc.add_session(r);
          g_sessions_simulated.fetch_add(1, std::memory_order_relaxed);
          g_session_records.fetch_add(r.records, std::memory_order_relaxed);
        }
        return acc;
      });

  // Shard-index order: the one merge sequence every jobs value produces.
  for (const FleetAccumulator& p : parts) {
    out.acc.merge(p);
    g_shard_merges.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace mobcache
