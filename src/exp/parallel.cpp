#include "exp/parallel.hpp"

#include <atomic>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>

#include "common/cancel.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "energy/technology.hpp"

namespace mobcache {

unsigned effective_jobs(unsigned requested) {
  if (requested > 0) return requested;
  // 0 keeps its historical meaning of "auto" (same as --jobs=0).
  if (const auto v = env_u64("MOBCACHE_JOBS", 0, 65536); v && *v > 0)
    return static_cast<unsigned>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_index) {
  // splitmix64 over a golden-ratio stride: adjacent indices land far apart
  // in state space, and index 0 does not collapse onto the base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (point_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::uint64_t> derived_seeds(std::uint64_t base_seed,
                                         std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(sweep_point_seed(base_seed, i));
  return seeds;
}

SweepExecutor::SweepExecutor(unsigned jobs) : jobs_(effective_jobs(jobs)) {}

namespace {

/// One worker's share of the point indices. A plain mutex per shard is
/// plenty: sweep points are whole simulations, so queue operations are
/// nanoseconds against milliseconds-to-seconds of work.
struct Shard {
  std::mutex m;
  std::deque<std::size_t> q;
};

}  // namespace

PointFailure point_failure_from(std::size_t index,
                                const std::exception_ptr& e) {
  PointFailure f;
  f.index = index;
  f.error_type = error_type_of(e);
  f.message = error_message_of(e);
  return f;
}

void SweepExecutor::for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  run(n, fn, nullptr);
}

void SweepExecutor::for_each_outcomes(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const std::function<void(PointFailure&&)>& on_failure) const {
  run(n, fn, &on_failure);
}

void SweepExecutor::run(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const std::function<void(PointFailure&&)>* on_failure) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(jobs_, n) > 0 ? std::min<std::size_t>(jobs_, n)
                                          : 1;
  // Whole-run cancellation (SIGINT/SIGTERM) is checked once per point —
  // cheap against whole-simulation points, and it makes the executor stop
  // *handing out* points the moment the flag fires even if no simulate loop
  // happens to be polling.
  const CancelToken& cancel = global_cancel_token();
  if (workers == 1) {
    // Serial reference path: in index order, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) {
      cancel.check();
      if (on_failure == nullptr) {
        fn(i);
        continue;
      }
      try {
        fn(i);
      } catch (...) {
        const std::exception_ptr e = std::current_exception();
        if (is_cancellation(e)) std::rethrow_exception(e);
        (*on_failure)(point_failure_from(i, e));
      }
    }
    return;
  }

  // Deterministic block sharding: worker w owns [w*n/W, (w+1)*n/W). The
  // assignment is a pure function of (n, workers); only the *stealing* is
  // timing-dependent, and results are keyed by index, so output never is.
  std::vector<Shard> shards(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * n / workers;
    const std::size_t hi = (w + 1) * n / workers;
    for (std::size_t i = lo; i < hi; ++i) shards[w].q.push_back(i);
  }

  std::atomic<bool> cancelled{false};
  std::atomic<std::size_t> done{0};
  std::mutex err_m;
  std::exception_ptr err;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();

  // Sweeps must see the submitting thread's technology overrides
  // (ScopedTechnology is thread-local); capture once, re-apply per worker.
  const TechnologyConfig tech = technology();

  auto take_own = [&](std::size_t w) -> std::optional<std::size_t> {
    std::lock_guard<std::mutex> lock(shards[w].m);
    if (shards[w].q.empty()) return std::nullopt;
    const std::size_t i = shards[w].q.front();
    shards[w].q.pop_front();
    return i;
  };
  auto steal = [&](std::size_t w) -> std::optional<std::size_t> {
    for (std::size_t off = 1; off < workers; ++off) {
      Shard& victim = shards[(w + off) % workers];
      std::lock_guard<std::mutex> lock(victim.m);
      if (victim.q.empty()) continue;
      const std::size_t i = victim.q.back();
      victim.q.pop_back();
      return i;
    }
    return std::nullopt;
  };

  auto worker = [&](std::size_t w) {
    ScopedTechnology scope(tech);
    while (!cancelled.load(std::memory_order_relaxed) &&
           !cancel.cancel_requested()) {
      std::optional<std::size_t> i = take_own(w);
      if (!i) i = steal(w);
      if (!i) return;  // every shard drained — done
      try {
        fn(*i);
        done.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        const std::exception_ptr e = std::current_exception();
        std::lock_guard<std::mutex> lock(err_m);
        if (on_failure != nullptr && !is_cancellation(e)) {
          // Keep-going: record the failure and let this worker continue.
          (*on_failure)(point_failure_from(*i, e));
          done.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (*i < err_index) {
          err_index = *i;
          err = e;
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : pool) t.join();
  if (err) std::rethrow_exception(err);
  // No point raised an error, but points were left unrun: the global token
  // fired and the sweep stopped handing out work. Surface that as
  // CancelledError so the caller flushes and exits resumable instead of
  // reporting a truncated sweep as a full result. (A token that fired
  // *after* the last point drained changes nothing — the sweep completed.)
  if (done.load(std::memory_order_relaxed) < n) cancel.check();
}

}  // namespace mobcache
