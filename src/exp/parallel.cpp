#include "exp/parallel.hpp"

#include <atomic>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "energy/technology.hpp"

namespace mobcache {

unsigned effective_jobs(unsigned requested) {
  if (requested > 0) return requested;
  // 0 keeps its historical meaning of "auto" (same as --jobs=0).
  if (const auto v = env_u64("MOBCACHE_JOBS", 0, 65536); v && *v > 0)
    return static_cast<unsigned>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_index) {
  // splitmix64 over a golden-ratio stride: adjacent indices land far apart
  // in state space, and index 0 does not collapse onto the base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (point_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::uint64_t> derived_seeds(std::uint64_t base_seed,
                                         std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(sweep_point_seed(base_seed, i));
  return seeds;
}

SweepExecutor::SweepExecutor(unsigned jobs) : jobs_(effective_jobs(jobs)) {}

namespace {

/// One worker's share of the point indices. A plain mutex per shard is
/// plenty: sweep points are whole simulations, so queue operations are
/// nanoseconds against milliseconds-to-seconds of work.
struct Shard {
  std::mutex m;
  std::deque<std::size_t> q;
};

}  // namespace

void SweepExecutor::for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(jobs_, n) > 0 ? std::min<std::size_t>(jobs_, n)
                                          : 1;
  if (workers == 1) {
    // Serial reference path: in index order, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Deterministic block sharding: worker w owns [w*n/W, (w+1)*n/W). The
  // assignment is a pure function of (n, workers); only the *stealing* is
  // timing-dependent, and results are keyed by index, so output never is.
  std::vector<Shard> shards(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * n / workers;
    const std::size_t hi = (w + 1) * n / workers;
    for (std::size_t i = lo; i < hi; ++i) shards[w].q.push_back(i);
  }

  std::atomic<bool> cancelled{false};
  std::mutex err_m;
  std::exception_ptr err;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();

  // Sweeps must see the submitting thread's technology overrides
  // (ScopedTechnology is thread-local); capture once, re-apply per worker.
  const TechnologyConfig tech = technology();

  auto take_own = [&](std::size_t w) -> std::optional<std::size_t> {
    std::lock_guard<std::mutex> lock(shards[w].m);
    if (shards[w].q.empty()) return std::nullopt;
    const std::size_t i = shards[w].q.front();
    shards[w].q.pop_front();
    return i;
  };
  auto steal = [&](std::size_t w) -> std::optional<std::size_t> {
    for (std::size_t off = 1; off < workers; ++off) {
      Shard& victim = shards[(w + off) % workers];
      std::lock_guard<std::mutex> lock(victim.m);
      if (victim.q.empty()) continue;
      const std::size_t i = victim.q.back();
      victim.q.pop_back();
      return i;
    }
    return std::nullopt;
  };

  auto worker = [&](std::size_t w) {
    ScopedTechnology scope(tech);
    while (!cancelled.load(std::memory_order_relaxed)) {
      std::optional<std::size_t> i = take_own(w);
      if (!i) i = steal(w);
      if (!i) return;  // every shard drained — done
      try {
        fn(*i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_m);
        if (*i < err_index) {
          err_index = *i;
          err = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace mobcache
