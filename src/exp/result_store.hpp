#pragma once
/// \file result_store.hpp
/// Crash-safe, content-addressed store of completed sweep points.
///
/// Every paper sweep in this repo is a grid of *deterministic* simulation
/// points: a SimResult is a pure function of (scheme + parameters, cache /
/// technology configuration, trace identity, per-point seed). That purity is
/// already load-bearing — it is what makes parallel sweeps bit-identical to
/// serial ones (exp/parallel.hpp) — so the same function can be memoized
/// across *process lifetimes*: hash the inputs into a 64-bit content key,
/// persist each finished point as an atomically-renamed record on disk, and
/// on the next run serve the hit set without re-simulating. A killed sweep
/// resumes from its last completed point; an edited sweep recomputes only
/// the points whose inputs changed.
///
/// Durability contract (docs/RESULT_STORE.md):
///  - One record per file under `<dir>/`, named `r<key-hex>.json`. Writers
///    stream to `.tmp-*`, fsync, then rename() into place — readers never
///    observe a half-written record under the final name.
///  - The directory listing *is* the manifest. Loading validates a per-record
///    FNV-1a checksum (plus schema version and self-named key); torn, truncated
///    or bit-rotted records are counted, skipped, and transparently recomputed
///    — corruption costs one point, never the sweep.
///  - kResultSchemaVersion participates in every key: bump it whenever
///    SimResult semantics change and all old records miss instead of lying.
///
/// Keys must be *normalized*: two configurations that simulate identically
/// must hash identically (cosmetic fields such as CacheConfig::name are
/// excluded), and any field that changes simulation output must be folded in.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scheme.hpp"
#include "exp/parallel.hpp"
#include "sim/simulator.hpp"

namespace mobcache {

/// Bump on ANY change to SimResult fields, their meaning, or the
/// simulation semantics behind them; stale records then miss by key.
inline constexpr std::uint64_t kResultSchemaVersion = 1;

/// Composable FNV-1a/64 accumulator used for all content keys. Field order
/// is significant; every mix() site is part of the key contract.
class ContentHasher {
 public:
  ContentHasher& mix(std::uint64_t v);
  ContentHasher& mix(double v);  ///< bit pattern, so -0.0 != 0.0
  ContentHasher& mix(const std::string& s);
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Normalized content hashes of the structures that determine a SimResult.
std::uint64_t hash_cache_config(const CacheConfig& c);      ///< excludes name
std::uint64_t hash_scheme_params(const SchemeParams& p);
std::uint64_t hash_sim_options(const SimOptions& o);        ///< configs only
std::uint64_t hash_technology(const TechnologyConfig& t);
/// Content fingerprint of a trace (name, length, and every record).
std::uint64_t hash_trace(const Trace& t);

/// One sweep point's full identity. Everything the simulation reads is
/// folded in, including the schema version.
std::uint64_t result_point_key(std::uint64_t design_hash,
                               std::uint64_t trace_hash,
                               std::uint64_t options_hash,
                               std::uint64_t technology_hash,
                               std::uint64_t point_seed = 0);

struct ResultStoreStats {
  std::uint64_t hits = 0;            ///< lookups served from the store
  std::uint64_t misses = 0;          ///< lookups that forced a simulation
  std::uint64_t stores = 0;          ///< records persisted this process
  std::uint64_t corrupt_skipped = 0; ///< records rejected at load time
  std::uint64_t loaded = 0;          ///< valid value records found at open
  std::uint64_t poisoned_loaded = 0; ///< poison records found at open
  std::uint64_t poison_hits = 0;     ///< lookups quarantined by a poison record
  std::uint64_t poison_stores = 0;   ///< poison records persisted this process
};

/// A persisted point failure — the payload of a poison record. Carries the
/// stable taxonomy label (error_type_of()) and the one-line message, so a
/// resumed sweep can re-report *why* the point is quarantined without
/// re-running it.
struct StoredFailure {
  std::string error_type;
  std::string message;
};

/// Thread-safe persistent map key -> SimResult. All methods may be called
/// concurrently from SweepExecutor workers.
class ResultStore {
 public:
  /// Opens (creating if needed) the store directory and loads the manifest;
  /// corrupt records are counted in stats().corrupt_skipped and skipped.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit ResultStore(std::string dir);

  /// The store named by MOBCACHE_RESULT_STORE, or null when unset.
  static std::unique_ptr<ResultStore> from_env();

  /// Returns the stored result and counts a hit; nullopt counts a miss.
  std::optional<SimResult> lookup(std::uint64_t key);

  /// Persists (temp + fsync + rename) and caches one completed point.
  /// Write failures throw std::runtime_error — a sweep that believes it
  /// checkpointed must actually have. Storing a value clears any poison
  /// record for the same key (retry succeeded: the rename overwrites the
  /// poison file in the same atomic step).
  void store(std::uint64_t key, const SimResult& r);

  /// Quarantines a point: persists a *poison record* (same file name,
  /// header, and checksum discipline as a value record, but a failure
  /// payload) so later runs skip the known-bad point instead of
  /// re-simulating it. Counts in stats().poison_stores.
  void store_failure(std::uint64_t key, const StoredFailure& f);

  /// The quarantine record for `key`, if any — unless retry_failed() is
  /// set, in which case poison records are ignored so the sweep recomputes
  /// the point (and replaces the poison on success). Counts a poison_hit
  /// when it returns a failure.
  std::optional<StoredFailure> lookup_failure(std::uint64_t key);

  /// The --retry-failed escape hatch: when true, lookup_failure() reports
  /// nothing so quarantined points re-run.
  void set_retry_failed(bool retry) { retry_failed_ = retry; }
  bool retry_failed() const { return retry_failed_; }

  const std::string& dir() const { return dir_; }
  ResultStoreStats stats() const;

 private:
  void load_existing();
  /// Shared tmp + fsync + rename path for value and poison records.
  void persist_record(std::uint64_t key, const std::string& payload);

  std::string dir_;
  mutable std::mutex m_;
  std::unordered_map<std::uint64_t, SimResult> mem_;
  std::unordered_map<std::uint64_t, StoredFailure> poison_;
  ResultStoreStats stats_;
  std::uint64_t tmp_counter_ = 0;
  bool retry_failed_ = false;
};

/// Exact-round-trip (de)serialization of one SimResult — the store's record
/// payload format, exposed for tests. Doubles are written with enough
/// digits to reparse to the identical bit pattern.
std::string result_to_record_json(const SimResult& r);
std::optional<SimResult> result_from_record_json(const std::string& json);

/// Poison-record payload (de)serialization, exposed for tests. A poison
/// payload is distinguished from a value payload by its `"poison":1` field;
/// pre-quarantine readers reject it as corrupt (and recompute) rather than
/// misread it as a result.
std::string failure_to_record_json(const StoredFailure& f);
std::optional<StoredFailure> failure_from_record_json(const std::string& json);

/// SweepExecutor::map with memoization: point i is served from `store` when
/// keys[i] is present, and only the missing points are simulated (through
/// `ex`, preserving index-ordered assembly; a throwing point still fails the
/// sweep with the lowest *observed* failing index, cached points never
/// throw). Each freshly computed point is persisted before the sweep
/// returns, so a killed run resumes from every completed point. With
/// store == nullptr this is exactly ex.map(keys.size(), fn).
std::vector<SimResult> memoized_map(
    const SweepExecutor& ex, ResultStore* store,
    const std::vector<std::uint64_t>& keys,
    const std::function<SimResult(std::size_t)>& fn);

/// Keep-going flavour of memoized_map(): returns one PointOutcome per key,
/// in key order. Point i resolves, in priority order, to
///  - a stored value (hit — never re-run),
///  - a stored poison record (quarantined failure, PointFailure::quarantined
///    set — never re-run unless store->retry_failed()),
///  - a fresh run through ex.map_outcomes(). The computing worker persists a
///    value record on success and a poison record on (non-cancellation)
///    failure *at the moment it happens*, so a SIGTERM drain or crash later
///    in the sweep loses neither.
/// Cancellation still aborts the whole sweep (CancelledError propagates);
/// with store == nullptr this is exactly ex.map_outcomes(keys.size(), fn).
std::vector<PointOutcome<SimResult>> memoized_map_outcomes(
    const SweepExecutor& ex, ResultStore* store,
    const std::vector<std::uint64_t>& keys,
    const std::function<SimResult(std::size_t)>& fn);

}  // namespace mobcache
