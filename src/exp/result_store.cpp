#include "exp/result_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/flat_json.hpp"
#include "common/json_writer.hpp"
#include "energy/technology.hpp"

namespace mobcache {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ContentHasher& ContentHasher::mix(std::uint64_t v) {
  unsigned char bytes[8];
  std::memcpy(bytes, &v, sizeof bytes);
  h_ = fnv1a(bytes, sizeof bytes, h_);
  return *this;
}

ContentHasher& ContentHasher::mix(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v, "binary64 expected");
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

ContentHasher& ContentHasher::mix(const std::string& s) {
  // Length first, so ("ab","c") never collides with ("a","bc").
  mix(static_cast<std::uint64_t>(s.size()));
  h_ = fnv1a(s.data(), s.size(), h_);
  return *this;
}

std::uint64_t hash_cache_config(const CacheConfig& c) {
  // `name` is cosmetic (it labels diagnostics) and deliberately excluded:
  // two geometrically identical caches simulate identically.
  return ContentHasher()
      .mix(c.size_bytes)
      .mix(std::uint64_t{c.assoc})
      .mix(c.line_size)
      .mix(static_cast<std::uint64_t>(c.repl))
      .mix(static_cast<std::uint64_t>(c.xor_index))
      .digest();
}

std::uint64_t hash_scheme_params(const SchemeParams& p) {
  return ContentHasher()
      .mix(p.baseline_bytes)
      .mix(std::uint64_t{p.baseline_assoc})
      .mix(p.shrunk_bytes)
      .mix(std::uint64_t{p.shrunk_assoc})
      .mix(p.sp_user_bytes)
      .mix(std::uint64_t{p.sp_user_assoc})
      .mix(p.sp_kernel_bytes)
      .mix(std::uint64_t{p.sp_kernel_assoc})
      .mix(static_cast<std::uint64_t>(p.mrstt_user))
      .mix(static_cast<std::uint64_t>(p.mrstt_kernel))
      .mix(static_cast<std::uint64_t>(p.refresh))
      .mix(p.dp_epoch_accesses)
      .mix(static_cast<std::uint64_t>(p.dp_monitor))
      .mix(p.dp_miss_slack)
      .mix(static_cast<std::uint64_t>(p.dp_retention))
      .mix(std::uint64_t{p.drowsy_window})
      .mix(static_cast<std::uint64_t>(p.repl))
      .mix(static_cast<std::uint64_t>(p.xor_index))
      .mix(static_cast<std::uint64_t>(p.stt_write_bypass))
      .mix(p.fault.write_fault_prob)
      .mix(p.fault.transient_per_mcycle)
      .mix(p.fault.retention_sigma)
      .mix(static_cast<std::uint64_t>(p.fault.ecc))
      .mix(std::uint64_t{p.fault.way_disable_threshold})
      .mix(p.fault.seed)
      .digest();
}

std::uint64_t hash_sim_options(const SimOptions& o) {
  return ContentHasher()
      .mix(hash_cache_config(o.hierarchy.l1i))
      .mix(hash_cache_config(o.hierarchy.l1d))
      .mix(std::uint64_t{o.hierarchy.l1_hit_latency})
      .mix(static_cast<std::uint64_t>(o.hierarchy.prefetch.enabled))
      .mix(std::uint64_t{o.hierarchy.prefetch.degree})
      .mix(std::uint64_t{o.hierarchy.prefetch.table_entries})
      .mix(static_cast<std::uint64_t>(o.hierarchy.inclusive_l2))
      .mix(o.timing.base_cpi)
      .digest();
}

std::uint64_t hash_technology(const TechnologyConfig& t) {
  return ContentHasher()
      .mix(t.sram_leak_mw_per_kb)
      .mix(t.sram_read_nj_2mb)
      .mix(t.sram_write_nj_2mb)
      .mix(t.stt_leak_factor)
      .mix(t.stt_read_factor)
      .mix(t.stt_write_nj_hi_2mb)
      .mix(t.write_energy_floor)
      .mix(t.dram_access_nj)
      .mix(t.cycle_ns)
      .mix(t.temperature_k)
      .digest();
}

std::uint64_t hash_trace(const Trace& t) {
  // Field-wise, not raw bytes: Access carries 4 padding bytes whose content
  // is unspecified. The fingerprint covers every record, so a trace loaded
  // from disk and a regenerated one key identically iff they really agree.
  ContentHasher h;
  h.mix(t.name());
  h.mix(static_cast<std::uint64_t>(t.size()));
  for (const Access& a : t.accesses()) {
    h.mix(a.addr);
    h.mix(static_cast<std::uint64_t>(a.thread) |
          (static_cast<std::uint64_t>(a.type) << 16) |
          (static_cast<std::uint64_t>(a.mode) << 24));
  }
  return h.digest();
}

std::uint64_t result_point_key(std::uint64_t design_hash,
                               std::uint64_t trace_hash,
                               std::uint64_t options_hash,
                               std::uint64_t technology_hash,
                               std::uint64_t point_seed) {
  return ContentHasher()
      .mix(kResultSchemaVersion)
      .mix(design_hash)
      .mix(trace_hash)
      .mix(options_hash)
      .mix(technology_hash)
      .mix(point_seed)
      .digest();
}

// ---------------------------------------------------------------------------
// Record (de)serialization — exact round trip
// ---------------------------------------------------------------------------

namespace {

void put_u64(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  out += ',';
}

void put_dbl(std::string& out, const char* key, double v) {
  // 17 significant digits uniquely identify a binary64; strtod's correct
  // rounding reproduces the exact bit pattern on parse.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
  out += ',';
}

void put_str(std::string& out, const char* key, const std::string& v) {
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += "\",";
}

void put_cache_stats(std::string& out, const char* prefix,
                     const CacheStats& s) {
  auto key = [&](const char* field) { return std::string(prefix) + field; };
  put_u64(out, key("accesses_user").c_str(), s.accesses[0]);
  put_u64(out, key("accesses_kernel").c_str(), s.accesses[1]);
  put_u64(out, key("hits_user").c_str(), s.hits[0]);
  put_u64(out, key("hits_kernel").c_str(), s.hits[1]);
  put_u64(out, key("store_hits").c_str(), s.store_hits);
  put_u64(out, key("fills").c_str(), s.fills);
  put_u64(out, key("evictions").c_str(), s.evictions);
  put_u64(out, key("writebacks").c_str(), s.writebacks);
  put_u64(out, key("cross_mode_evictions").c_str(), s.cross_mode_evictions);
  put_u64(out, key("expired_blocks").c_str(), s.expired_blocks);
  put_u64(out, key("expired_dirty").c_str(), s.expired_dirty);
  put_u64(out, key("refreshes").c_str(), s.refreshes);
  put_u64(out, key("prefetch_fills").c_str(), s.prefetch_fills);
  put_u64(out, key("useful_prefetches").c_str(), s.useful_prefetches);
  put_u64(out, key("write_faults").c_str(), s.write_faults);
  put_u64(out, key("transient_upsets").c_str(), s.transient_upsets);
  put_u64(out, key("ecc_corrections").c_str(), s.ecc_corrections);
  put_u64(out, key("fault_losses").c_str(), s.fault_losses);
  put_u64(out, key("fault_lost_dirty").c_str(), s.fault_lost_dirty);
  put_u64(out, key("scrub_repairs").c_str(), s.scrub_repairs);
  put_u64(out, key("silent_faults").c_str(), s.silent_faults);
}

// Record payloads parse with the shared FlatParser (common/flat_json.hpp) —
// the same grammar the daemon's request protocol reads, because both sides
// only ever consume JSON this codebase wrote itself.

bool read_cache_stats(const FlatParser& f, const char* prefix, CacheStats& s) {
  auto key = [&](const char* field) { return std::string(prefix) + field; };
  return f.get_u64(key("accesses_user").c_str(), s.accesses[0]) &&
         f.get_u64(key("accesses_kernel").c_str(), s.accesses[1]) &&
         f.get_u64(key("hits_user").c_str(), s.hits[0]) &&
         f.get_u64(key("hits_kernel").c_str(), s.hits[1]) &&
         f.get_u64(key("store_hits").c_str(), s.store_hits) &&
         f.get_u64(key("fills").c_str(), s.fills) &&
         f.get_u64(key("evictions").c_str(), s.evictions) &&
         f.get_u64(key("writebacks").c_str(), s.writebacks) &&
         f.get_u64(key("cross_mode_evictions").c_str(),
                   s.cross_mode_evictions) &&
         f.get_u64(key("expired_blocks").c_str(), s.expired_blocks) &&
         f.get_u64(key("expired_dirty").c_str(), s.expired_dirty) &&
         f.get_u64(key("refreshes").c_str(), s.refreshes) &&
         f.get_u64(key("prefetch_fills").c_str(), s.prefetch_fills) &&
         f.get_u64(key("useful_prefetches").c_str(), s.useful_prefetches) &&
         f.get_u64(key("write_faults").c_str(), s.write_faults) &&
         f.get_u64(key("transient_upsets").c_str(), s.transient_upsets) &&
         f.get_u64(key("ecc_corrections").c_str(), s.ecc_corrections) &&
         f.get_u64(key("fault_losses").c_str(), s.fault_losses) &&
         f.get_u64(key("fault_lost_dirty").c_str(), s.fault_lost_dirty) &&
         f.get_u64(key("scrub_repairs").c_str(), s.scrub_repairs) &&
         f.get_u64(key("silent_faults").c_str(), s.silent_faults);
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
  return buf;
}

}  // namespace

std::string result_to_record_json(const SimResult& r) {
  std::string out = "{";
  put_str(out, "workload", r.workload);
  put_str(out, "scheme", r.scheme);
  put_u64(out, "records", r.records);
  put_u64(out, "cycles", r.cycles);
  put_dbl(out, "cpi", r.cpi);
  put_cache_stats(out, "l1i.", r.l1i);
  put_cache_stats(out, "l1d.", r.l1d);
  put_cache_stats(out, "l2.", r.l2);
  put_dbl(out, "e.leakage_nj", r.l2_energy.leakage_nj);
  put_dbl(out, "e.read_nj", r.l2_energy.read_nj);
  put_dbl(out, "e.write_nj", r.l2_energy.write_nj);
  put_dbl(out, "e.refresh_nj", r.l2_energy.refresh_nj);
  put_dbl(out, "e.dram_nj", r.l2_energy.dram_nj);
  put_dbl(out, "e.ecc_nj", r.l2_energy.ecc_nj);
  put_dbl(out, "l1_energy_nj", r.l1_energy_nj);
  put_u64(out, "l2_capacity_bytes", r.l2_capacity_bytes);
  put_dbl(out, "l2_avg_enabled_bytes", r.l2_avg_enabled_bytes);
  put_u64(out, "l2_quarantined_ways", r.l2_quarantined_ways);
  put_u64(out, "stall_l2_hit_cycles", r.stall_l2_hit_cycles);
  put_u64(out, "stall_l2_miss_cycles", r.stall_l2_miss_cycles);
  put_u64(out, "prefetches_issued", r.prefetches_issued);
  out.back() = '}';  // replace the trailing comma
  return out;
}

std::optional<SimResult> result_from_record_json(const std::string& json) {
  FlatParser f;
  if (!f.parse(json)) return std::nullopt;
  SimResult r;
  std::uint64_t quarantined = 0;
  const bool ok =
      f.get_str("workload", r.workload) && f.get_str("scheme", r.scheme) &&
      f.get_u64("records", r.records) && f.get_u64("cycles", r.cycles) &&
      f.get_dbl("cpi", r.cpi) && read_cache_stats(f, "l1i.", r.l1i) &&
      read_cache_stats(f, "l1d.", r.l1d) &&
      read_cache_stats(f, "l2.", r.l2) &&
      f.get_dbl("e.leakage_nj", r.l2_energy.leakage_nj) &&
      f.get_dbl("e.read_nj", r.l2_energy.read_nj) &&
      f.get_dbl("e.write_nj", r.l2_energy.write_nj) &&
      f.get_dbl("e.refresh_nj", r.l2_energy.refresh_nj) &&
      f.get_dbl("e.dram_nj", r.l2_energy.dram_nj) &&
      f.get_dbl("e.ecc_nj", r.l2_energy.ecc_nj) &&
      f.get_dbl("l1_energy_nj", r.l1_energy_nj) &&
      f.get_u64("l2_capacity_bytes", r.l2_capacity_bytes) &&
      f.get_dbl("l2_avg_enabled_bytes", r.l2_avg_enabled_bytes) &&
      f.get_u64("l2_quarantined_ways", quarantined) &&
      f.get_u64("stall_l2_hit_cycles", r.stall_l2_hit_cycles) &&
      f.get_u64("stall_l2_miss_cycles", r.stall_l2_miss_cycles) &&
      f.get_u64("prefetches_issued", r.prefetches_issued);
  if (!ok || quarantined > UINT32_MAX) return std::nullopt;
  r.l2_quarantined_ways = static_cast<std::uint32_t>(quarantined);
  return r;
}

std::string failure_to_record_json(const StoredFailure& f) {
  std::string out = "{";
  // The marker field comes first and is what dispatches payload parsing; a
  // value payload can never contain it (no SimResult field is named
  // "poison").
  put_u64(out, "poison", 1);
  put_str(out, "error_type", f.error_type);
  put_str(out, "message", f.message);
  out.back() = '}';  // replace the trailing comma
  return out;
}

std::optional<StoredFailure> failure_from_record_json(const std::string& json) {
  FlatParser f;
  if (!f.parse(json)) return std::nullopt;
  std::uint64_t marker = 0;
  if (!f.get_u64("poison", marker) || marker != 1) return std::nullopt;
  StoredFailure out;
  if (!f.get_str("error_type", out.error_type) ||
      !f.get_str("message", out.message))
    return std::nullopt;
  return out;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

/// Record file layout: header line + payload line. The header names the key
/// and carries an FNV-1a checksum of the exact payload bytes; a record that
/// fails any check (torn write, truncation, bit rot, schema drift) is
/// treated as absent.
std::string render_record(std::uint64_t key, const std::string& payload) {
  std::string out = "{\"format\":\"mobcache-result-store\",\"schema\":";
  out += std::to_string(kResultSchemaVersion);
  out += ",\"key\":\"";
  out += key_hex(key);
  out += "\",\"payload_fnv\":\"";
  out += key_hex(fnv1a(payload.data(), payload.size()));
  out += "\"}\n";
  out += payload;
  out += '\n';
  return out;
}

/// A validated record: exactly one of result/failure is set (value record
/// vs poison record).
struct ParsedRecord {
  std::uint64_t key = 0;
  std::optional<SimResult> result;
  std::optional<StoredFailure> failure;
};

bool parse_record(const std::string& text, ParsedRecord& out) {
  std::uint64_t& key = out.key;
  const std::size_t nl = text.find('\n');
  if (nl == std::string::npos) return false;
  // The payload line must be newline-terminated — a record whose trailing
  // newline is missing was truncated mid-write.
  if (text.empty() || text.back() != '\n') return false;
  const std::string header = text.substr(0, nl);
  const std::string payload = text.substr(nl + 1, text.size() - nl - 2);

  FlatParser h;
  if (!h.parse(header)) return false;
  std::string format, key_text, fnv_text;
  std::uint64_t schema = 0;
  if (!h.get_str("format", format) || format != "mobcache-result-store")
    return false;
  if (!h.get_u64("schema", schema) || schema != kResultSchemaVersion)
    return false;
  if (!h.get_str("key", key_text) || !h.get_str("payload_fnv", fnv_text))
    return false;
  char* end = nullptr;
  key = std::strtoull(key_text.c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || key_text.size() != 16) return false;
  const std::uint64_t want_fnv = std::strtoull(fnv_text.c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || fnv_text.size() != 16) return false;
  if (fnv1a(payload.data(), payload.size()) != want_fnv) return false;

  // Checksum passed — dispatch on payload flavour. Poison first: its marker
  // check is cheap and unambiguous.
  if (std::optional<StoredFailure> f = failure_from_record_json(payload)) {
    out.failure = std::move(*f);
    return true;
  }
  std::optional<SimResult> r = result_from_record_json(payload);
  if (!r) return false;
  out.result = std::move(*r);
  return true;
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_, ec)) {
    throw std::runtime_error("result store: cannot create directory '" +
                             dir_ + "'");
  }
  load_existing();
}

std::unique_ptr<ResultStore> ResultStore::from_env() {
  if (const auto dir = env_string("MOBCACHE_RESULT_STORE"))
    return std::make_unique<ResultStore>(*dir);
  return nullptr;
}

void ResultStore::load_existing() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) {
      // Leftover from a killed writer; the rename never happened, so the
      // record it was building was re-queued anyway.
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.size() < 2 || name[0] != 'r' ||
        entry.path().extension() != ".json")
      continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    ParsedRecord rec;
    if (in && parse_record(buf.str(), rec)) {
      if (rec.result) {
        mem_.emplace(rec.key, std::move(*rec.result));
        ++stats_.loaded;
      } else {
        poison_.emplace(rec.key, std::move(*rec.failure));
        ++stats_.poisoned_loaded;
      }
    } else {
      ++stats_.corrupt_skipped;
    }
  }
}

std::optional<SimResult> ResultStore::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = mem_.find(key);
  if (it == mem_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void ResultStore::persist_record(std::uint64_t key,
                                 const std::string& payload) {
  const std::string record = render_record(key, payload);
  const std::string final_path =
      (fs::path(dir_) / ("r" + key_hex(key) + ".json")).string();

  std::string tmp_token;
  {
    // The counter keeps concurrent writers of the same key on distinct tmp
    // names; the key suffix keeps the orphan diagnosable.
    std::lock_guard<std::mutex> lock(m_);
    tmp_token = std::to_string(++tmp_counter_) + "-" + key_hex(key);
  }
  atomic_publish(final_path, record, tmp_token);
}

void ResultStore::store(std::uint64_t key, const SimResult& r) {
  persist_record(key, result_to_record_json(r));
  std::lock_guard<std::mutex> lock(m_);
  mem_.insert_or_assign(key, r);
  // Value and poison share one file per key; the rename that published the
  // value just overwrote any poison record on disk, so forget it in memory
  // too (a retried point has been rehabilitated).
  poison_.erase(key);
  ++stats_.stores;
}

void ResultStore::store_failure(std::uint64_t key, const StoredFailure& f) {
  persist_record(key, failure_to_record_json(f));
  std::lock_guard<std::mutex> lock(m_);
  poison_.insert_or_assign(key, f);
  mem_.erase(key);
  ++stats_.poison_stores;
}

std::optional<StoredFailure> ResultStore::lookup_failure(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(m_);
  if (retry_failed_) return std::nullopt;
  auto it = poison_.find(key);
  if (it == poison_.end()) return std::nullopt;
  ++stats_.poison_hits;
  return it->second;
}

ResultStoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Resumable sweep execution
// ---------------------------------------------------------------------------

std::vector<SimResult> memoized_map(
    const SweepExecutor& ex, ResultStore* store,
    const std::vector<std::uint64_t>& keys,
    const std::function<SimResult(std::size_t)>& fn) {
  const std::size_t n = keys.size();
  if (store == nullptr) return ex.map(n, fn);

  std::vector<std::optional<SimResult>> slots(n);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto hit = store->lookup(keys[i]))
      slots[i] = std::move(*hit);
    else
      missing.push_back(i);
  }

  // Only the missing points run — through the executor, so sharding,
  // index-ordered assembly and lowest-observed-index exception semantics
  // are inherited unchanged (the `missing` list is index-sorted, and cached
  // points cannot throw). Each fresh point is persisted by the worker that
  // computed it, before the sweep returns: a kill after this line costs at
  // most the points still in flight.
  std::vector<SimResult> fresh = ex.map(missing.size(), [&](std::size_t j) {
    SimResult r = fn(missing[j]);
    store->store(keys[missing[j]], r);
    return r;
  });

  for (std::size_t j = 0; j < missing.size(); ++j)
    slots[missing[j]] = std::move(fresh[j]);

  std::vector<SimResult> out;
  out.reserve(n);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

std::vector<PointOutcome<SimResult>> memoized_map_outcomes(
    const SweepExecutor& ex, ResultStore* store,
    const std::vector<std::uint64_t>& keys,
    const std::function<SimResult(std::size_t)>& fn) {
  const std::size_t n = keys.size();
  if (store == nullptr) return ex.map_outcomes(n, fn);

  std::vector<PointOutcome<SimResult>> slots(n);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto hit = store->lookup(keys[i])) {
      slots[i].value = std::move(*hit);
    } else if (auto poisoned = store->lookup_failure(keys[i])) {
      PointFailure f;
      f.index = i;
      f.error_type = std::move(poisoned->error_type);
      f.message = std::move(poisoned->message);
      f.quarantined = true;
      slots[i].failure = std::move(f);
    } else {
      missing.push_back(i);
    }
  }

  // Only the missing points run. The computing worker persists the outcome
  // — value or poison — at the moment it is known, so a drain or crash
  // later in the sweep loses nothing already decided. Cancellation is not
  // poisoned (the point did not fail; the run stopped) and propagates.
  std::vector<PointOutcome<SimResult>> fresh =
      ex.map_outcomes(missing.size(), [&](std::size_t j) -> SimResult {
        try {
          SimResult r = fn(missing[j]);
          store->store(keys[missing[j]], r);
          return r;
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (!is_cancellation(e)) {
            store->store_failure(
                keys[missing[j]],
                StoredFailure{error_type_of(e), error_message_of(e)});
          }
          throw;
        }
      });

  for (std::size_t j = 0; j < missing.size(); ++j) {
    PointOutcome<SimResult>& o = fresh[j];
    // Re-key the failure from sub-sweep index space into the caller's.
    if (o.failure) o.failure->index = missing[j];
    slots[missing[j]] = std::move(o);
  }
  return slots;
}

}  // namespace mobcache
