#pragma once
/// \file json_export.hpp
/// JSON serialization of simulation results — the machine-readable
/// counterpart of the console tables, for plotting scripts and downstream
/// analysis (scripts/plot_results.py consumes this).
///
/// The writer itself lives in common/json_writer.hpp so lower layers (the
/// observability sinks) can use it without depending on exp/.

#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "exp/runner.hpp"

namespace mobcache {

/// Serializes one workload's SimResult.
void write_sim_result(JsonWriter& w, const SimResult& r);

/// Serializes a full scheme-comparison experiment (per-workload results +
/// normalized aggregates).
std::string experiment_to_json(const std::string& experiment_id,
                               const std::vector<SchemeSuiteResult>& results);

/// Writes experiment_to_json() to results_path(filename); returns success.
bool write_experiment_json(const std::string& experiment_id,
                           const std::vector<SchemeSuiteResult>& results,
                           const std::string& filename);

}  // namespace mobcache
