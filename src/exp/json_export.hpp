#pragma once
/// \file json_export.hpp
/// JSON serialization of simulation results — the machine-readable
/// counterpart of the console tables, for plotting scripts and downstream
/// analysis (scripts/plot_results.py consumes this).
///
/// Hand-rolled writer (no third-party dependency): emits a strict subset of
/// JSON — objects, arrays, strings, finite doubles, integers, booleans.

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace mobcache {

/// Minimal JSON value builder. Values are appended in document order;
/// the writer validates nesting (object keys, array elements).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Starts a key inside an object; follow with exactly one value.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);

  /// The finished document. Must be called at nesting depth zero.
  const std::string& str() const;

 private:
  void comma_if_needed();
  std::string out_;
  /// Stack of 'o' (object) / 'a' (array) with a "has elements" flag.
  std::vector<std::pair<char, bool>> stack_;
  bool expecting_value_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

/// Serializes one workload's SimResult.
void write_sim_result(JsonWriter& w, const SimResult& r);

/// Serializes a full scheme-comparison experiment (per-workload results +
/// normalized aggregates).
std::string experiment_to_json(const std::string& experiment_id,
                               const std::vector<SchemeSuiteResult>& results);

/// Writes experiment_to_json() to results_path(filename); returns success.
bool write_experiment_json(const std::string& experiment_id,
                           const std::vector<SchemeSuiteResult>& results,
                           const std::string& filename);

}  // namespace mobcache
