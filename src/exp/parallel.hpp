#pragma once
/// \file parallel.hpp
/// Work-stealing sweep execution engine.
///
/// Every paper result in this repo is a sweep over independent points
/// (retention pairing × workload, fault rate × workload, seed × scheme, …).
/// SweepExecutor shards such a point vector across worker threads and
/// assembles results in *point-index* order, so a parallel run is
/// bit-identical to a serial one. Two disciplines make that hold:
///
///  1. **Index-pure points.** A point's work must be a pure function of its
///     index (and of state captured before the sweep starts). Any randomness
///     must be seeded via sweep_point_seed(base, index) — never from a
///     running counter or from execution order.
///  2. **Thread-confined state.** The active TechnologyConfig is
///     thread-local; the executor captures the submitting thread's
///     configuration and re-applies it on every worker, so ScopedTechnology
///     overrides (sensitivity/DVFS sweeps) compose with parallelism.
///
/// See docs/PARALLELISM.md for the full contract.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mobcache {

/// Resolves a worker count: `requested` when nonzero, else the MOBCACHE_JOBS
/// environment variable, else std::thread::hardware_concurrency() (min 1).
unsigned effective_jobs(unsigned requested = 0);

/// Deterministic per-point seed: a splitmix64-style mix of
/// (base_seed, point_index). Distinct indices give decorrelated streams and
/// the result never depends on which worker runs the point, or when.
std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_index);

/// `count` seeds derived from one base seed — the canonical way to build a
/// multi-seed sweep (seed i is a pure function of (base_seed, i), so the
/// serial and parallel paths agree by construction).
std::vector<std::uint64_t> derived_seeds(std::uint64_t base_seed,
                                         std::size_t count);

/// Shards [0, n) across workers. Worker w starts on the contiguous block
/// shard w and steals from the tail of other shards when its own runs dry,
/// so imbalanced sweeps (points with very different costs) still saturate
/// the pool. The calling thread participates as worker 0.
class SweepExecutor {
 public:
  /// jobs = 0 resolves via effective_jobs() (env override, then hardware).
  explicit SweepExecutor(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Runs fn(i) for every i in [0, n); results are returned in index order
  /// regardless of execution order. If any point throws, the sweep stops
  /// handing out new points, all workers are joined, and the exception from
  /// the lowest-indexed point *observed* to fail is rethrown (fail-fast:
  /// points not yet started are skipped, so an even lower-indexed point may
  /// never have run) — a throwing point fails the sweep, it never deadlocks
  /// it.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<std::optional<R>> slots(n);
    for_each(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Void flavour of map() with the same sharding/exception semantics.
  /// With jobs() == 1 (or n <= 1) everything runs inline on the caller —
  /// the serial path is the same code the parallel path must match.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

 private:
  unsigned jobs_ = 1;
};

}  // namespace mobcache
