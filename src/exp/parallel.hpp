#pragma once
/// \file parallel.hpp
/// Work-stealing sweep execution engine.
///
/// Every paper result in this repo is a sweep over independent points
/// (retention pairing × workload, fault rate × workload, seed × scheme, …).
/// SweepExecutor shards such a point vector across worker threads and
/// assembles results in *point-index* order, so a parallel run is
/// bit-identical to a serial one. Two disciplines make that hold:
///
///  1. **Index-pure points.** A point's work must be a pure function of its
///     index (and of state captured before the sweep starts). Any randomness
///     must be seeded via sweep_point_seed(base, index) — never from a
///     running counter or from execution order.
///  2. **Thread-confined state.** The active TechnologyConfig is
///     thread-local; the executor captures the submitting thread's
///     configuration and re-applies it on every worker, so ScopedTechnology
///     overrides (sensitivity/DVFS sweeps) compose with parallelism.
///
/// See docs/PARALLELISM.md for the full contract.

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mobcache {

/// One failed sweep point, captured as data instead of an in-flight
/// exception: the taxonomy label and message survive serialization into
/// failure manifests and poison records, the index keys the failure back
/// into the point vector.
struct PointFailure {
  std::size_t index = 0;
  std::string error_type;  ///< error_type_of(): "trace", "numeric", ...
  std::string message;
  /// True when the failure was *served from the result store* (a poison
  /// record from an earlier run) rather than observed live — the point was
  /// quarantined, not re-run.
  bool quarantined = false;
};

/// Converts an in-flight exception into a PointFailure record.
PointFailure point_failure_from(std::size_t index, const std::exception_ptr& e);

/// What one sweep point produced under the keep-going policy: exactly one
/// of value/failure is set.
template <typename R>
struct PointOutcome {
  std::optional<R> value;
  std::optional<PointFailure> failure;
  bool ok() const { return value.has_value(); }
};

/// Resolves a worker count: `requested` when nonzero, else the MOBCACHE_JOBS
/// environment variable, else std::thread::hardware_concurrency() (min 1).
unsigned effective_jobs(unsigned requested = 0);

/// Deterministic per-point seed: a splitmix64-style mix of
/// (base_seed, point_index). Distinct indices give decorrelated streams and
/// the result never depends on which worker runs the point, or when.
std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_index);

/// `count` seeds derived from one base seed — the canonical way to build a
/// multi-seed sweep (seed i is a pure function of (base_seed, i), so the
/// serial and parallel paths agree by construction).
std::vector<std::uint64_t> derived_seeds(std::uint64_t base_seed,
                                         std::size_t count);

/// Shards [0, n) across workers. Worker w starts on the contiguous block
/// shard w and steals from the tail of other shards when its own runs dry,
/// so imbalanced sweeps (points with very different costs) still saturate
/// the pool. The calling thread participates as worker 0.
class SweepExecutor {
 public:
  /// jobs = 0 resolves via effective_jobs() (env override, then hardware).
  explicit SweepExecutor(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Runs fn(i) for every i in [0, n); results are returned in index order
  /// regardless of execution order. If any point throws, the sweep stops
  /// handing out new points, all workers are joined, and the exception from
  /// the lowest-indexed point *observed* to fail is rethrown (fail-fast:
  /// points not yet started are skipped, so an even lower-indexed point may
  /// never have run) — a throwing point fails the sweep, it never deadlocks
  /// it.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<std::optional<R>> slots(n);
    for_each(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Void flavour of map() with the same sharding/exception semantics.
  /// With jobs() == 1 (or n <= 1) everything runs inline on the caller —
  /// the serial path is the same code the parallel path must match.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

  /// Keep-going flavour of map(): a throwing point no longer aborts the
  /// sweep — it becomes a PointFailure in that point's slot and the
  /// remaining points still run. Returns one PointOutcome per index, in
  /// index order. Two failure classes are still fail-fast by design:
  /// cancellation (CancelledError must stop the whole sweep, not be
  /// swallowed as one bad point) propagates out, and so does anything
  /// thrown by the on-failure bookkeeping itself.
  template <typename Fn>
  auto map_outcomes(std::size_t n, Fn&& fn) const
      -> std::vector<PointOutcome<decltype(fn(std::size_t{0}))>> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<PointOutcome<R>> slots(n);
    for_each_outcomes(
        n, [&](std::size_t i) { slots[i].value.emplace(fn(i)); },
        [&](PointFailure&& f) {
          const std::size_t i = f.index;
          slots[i].failure.emplace(std::move(f));
        });
    return slots;
  }

  /// Void flavour of map_outcomes(). on_failure is invoked under the
  /// executor's error lock (serialized, but from worker threads) once per
  /// failing point; point order within the callback stream is
  /// timing-dependent, so callers needing order must key by
  /// PointFailure::index — as map_outcomes() does.
  void for_each_outcomes(
      std::size_t n, const std::function<void(std::size_t)>& fn,
      const std::function<void(PointFailure&&)>& on_failure) const;

 private:
  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           const std::function<void(PointFailure&&)>* on_failure) const;

  unsigned jobs_ = 1;
};

}  // namespace mobcache
