#pragma once
/// \file bench_harness.hpp
/// Shared CLI + perf-report plumbing for the bench binaries: --jobs parsing
/// (with the MOBCACHE_JOBS environment override) and the machine-readable
/// BENCH_<name>.json consumed by CI's perf-regression gate
/// (scripts/check_bench.py, docs/PARALLELISM.md).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.hpp"
#include "exp/result_store.hpp"

namespace mobcache {

/// Worker count for a bench binary: --jobs=N from argv when present, else
/// effective_jobs(0) (MOBCACHE_JOBS, then hardware concurrency). Other
/// arguments are left alone so benches stay forgiving about extra flags.
unsigned bench_jobs(int argc, char** argv);

/// Resumable-sweep opt-in shared by the bench binaries (and simrun):
///   --store-dir=PATH   open (or create) the result store at PATH
///   --resume           open the default store: MOBCACHE_RESULT_STORE when
///                      set, else results_path("result_store")
///   MOBCACHE_RESULT_STORE=PATH   same as --store-dir=PATH, no flag needed
/// Returns null when none of the three are present (sweeps recompute
/// everything, exactly as before).
std::unique_ptr<ResultStore> bench_result_store(int argc, char** argv);

/// Fault-supervision CLI shared by sweep binaries (docs/RELIABILITY.md):
///   --keep-going           failing points become manifest entries instead
///                          of aborting the sweep
///   --retry-failed         ignore poison records — quarantined points re-run
///   --point-deadline-ms=N  per-point wall-clock budget (0 = off)
///   --fail-points=i,j,...  chaos injection: those point indices throw
///                          NumericError before simulating (testing/CI only)
bool bench_keep_going(int argc, char** argv);
bool bench_retry_failed(int argc, char** argv);
std::uint64_t bench_point_deadline_ms(int argc, char** argv);
std::vector<std::size_t> bench_fail_points(int argc, char** argv);

/// The --fail-points hook: throws NumericError("injected chaos fault") when
/// `index` is in `fail_points`. Call first thing in a sweep-point lambda.
void chaos_maybe_fail(const std::vector<std::size_t>& fail_points,
                      std::size_t index);

/// Single-pass sweep batching opt-in (docs/SWEEP_ENGINE.md), wired to
/// ExperimentRunner::sweep_batch by the sweep benches:
///   --batch=N              drive up to N design lanes per trace decode
///                          (0 or 1 = per-point, exactly as before)
///   --batch                shorthand for --batch=16 (the default lane cap)
///   MOBCACHE_SWEEP_BATCH=N same as --batch=N; the flag wins when both are
///                          given. Parsed with env_u64 — garbage is an
///                          EnvError (flag garbage a ConfigError), never a
///                          silent fallback.
/// Returns the resolved lane cap (>= 1); results are byte-identical for
/// every value.
unsigned bench_sweep_batch(int argc, char** argv);

/// Wraps a tool/bench main in the error-taxonomy contract: installs the
/// SIGINT/SIGTERM cancellation handlers when asked (sweep binaries only —
/// tools that should die on Ctrl-C pass false), runs `real_main`, and maps
/// any escaping exception to a one-line stderr diagnostic plus its
/// documented exit code (exit_code_for; cancellation exits 75, resumable).
int guarded_main(const char* tool, bool install_signals, int argc, char** argv,
                 int (*real_main)(int, char**));

/// Writes a finished JsonWriter document under the results directory
/// (results_path(filename)); returns success.
bool write_json_results(const JsonWriter& w, const std::string& filename);

/// Peak resident set size of this process so far, in bytes (getrusage
/// max_rss). Every BENCH_*.json records it — the E22 fleet gate compares it
/// across session counts to prove the streaming pipeline's memory ceiling is
/// independent of fleet size (docs/SWEEP_ENGINE.md).
std::uint64_t peak_rss_bytes();

/// Wall-clock + headline-metric record for one bench run, written as
/// results_path("BENCH_<name>.json").
///
/// Layout contract: the top-level timing fields (jobs, wall_ms,
/// points_per_sec) vary run to run; everything under "results" must be a
/// deterministic function of the sweep definition — check_bench.py asserts
/// the "results" objects of a --jobs=1 and a --jobs=N run are identical,
/// and computes the wall-clock speedup from the timing fields.
class BenchReport {
 public:
  /// Starts the wall clock. `name` becomes BENCH_<name>.json.
  BenchReport(std::string name, unsigned jobs);

  /// Number of sweep points executed (0 points fails the CI gate).
  void set_points(std::uint64_t points) { points_ = points; }

  /// Adds one deterministic headline metric to the "results" section.
  void add_result(const std::string& key, double value);

  /// Adds one top-level *run fact* — a number that, like wall_ms, describes
  /// this run rather than the sweep definition (e.g. E22's sessions_per_s).
  /// Run facts live outside "results" so check_bench.py's determinism
  /// compare never sees them.
  void add_run_fact(const std::string& key, double value);

  /// Result-store counters for this run, written as the top-level
  /// "result_store" object (hits/misses/stores/corrupt_skipped/loaded and
  /// the poison counters). Like the timing fields these vary run to run —
  /// a warm run reports hits where a cold one reported misses — so they
  /// live *outside* "results" and never break the determinism gate. Call
  /// with the store's stats() right before write(); without a store the
  /// object reports zeros.
  void set_store_stats(const ResultStoreStats& s) { store_stats_ = s; }

  /// Adds one keep-going point failure to the manifest. `point` is a
  /// human-stable label for the failing point (e.g. its pairing name).
  /// write() derives the "sweep" counters from the manifest:
  /// completed = points - failed, failed = manifest size, quarantined =
  /// entries served from poison records.
  void add_point_failure(const PointFailure& f, std::string point);

  /// Records the resolved sweep-batch configuration, written as
  /// sweep.batch_size / sweep.batched. Like jobs these are *run* facts, not
  /// sweep results — BENCH trajectory comparisons across PRs need to know
  /// whether a run was batched to stay apples-to-apples. Defaults to
  /// batch_size = 1, batched = false when never called.
  void set_sweep_batch(unsigned batch_size, bool batched) {
    sweep_batch_ = batch_size;
    sweep_batched_ = batched;
  }

  double wall_ms() const;

  /// Stops the clock and writes BENCH_<name>.json; returns success and
  /// prints the path (mirrors emit()'s [csv] line).
  bool write();

 private:
  struct ManifestEntry {
    std::string point;
    std::string error_type;
    std::string message;
    bool quarantined = false;
  };

  std::string name_;
  unsigned jobs_;
  unsigned sweep_batch_ = 1;
  bool sweep_batched_ = false;
  std::uint64_t points_ = 0;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::pair<std::string, double>> run_facts_;
  std::vector<ManifestEntry> failures_;
  ResultStoreStats store_stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mobcache
