#pragma once
/// \file bench_harness.hpp
/// Shared CLI + perf-report plumbing for the bench binaries: --jobs parsing
/// (with the MOBCACHE_JOBS environment override) and the machine-readable
/// BENCH_<name>.json consumed by CI's perf-regression gate
/// (scripts/check_bench.py, docs/PARALLELISM.md).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.hpp"
#include "exp/result_store.hpp"

namespace mobcache {

/// Worker count for a bench binary: --jobs=N from argv when present, else
/// effective_jobs(0) (MOBCACHE_JOBS, then hardware concurrency). Other
/// arguments are left alone so benches stay forgiving about extra flags.
unsigned bench_jobs(int argc, char** argv);

/// Resumable-sweep opt-in shared by the bench binaries (and simrun):
///   --store-dir=PATH   open (or create) the result store at PATH
///   --resume           open the default store: MOBCACHE_RESULT_STORE when
///                      set, else results_path("result_store")
///   MOBCACHE_RESULT_STORE=PATH   same as --store-dir=PATH, no flag needed
/// Returns null when none of the three are present (sweeps recompute
/// everything, exactly as before).
std::unique_ptr<ResultStore> bench_result_store(int argc, char** argv);

/// Writes a finished JsonWriter document under the results directory
/// (results_path(filename)); returns success.
bool write_json_results(const JsonWriter& w, const std::string& filename);

/// Wall-clock + headline-metric record for one bench run, written as
/// results_path("BENCH_<name>.json").
///
/// Layout contract: the top-level timing fields (jobs, wall_ms,
/// points_per_sec) vary run to run; everything under "results" must be a
/// deterministic function of the sweep definition — check_bench.py asserts
/// the "results" objects of a --jobs=1 and a --jobs=N run are identical,
/// and computes the wall-clock speedup from the timing fields.
class BenchReport {
 public:
  /// Starts the wall clock. `name` becomes BENCH_<name>.json.
  BenchReport(std::string name, unsigned jobs);

  /// Number of sweep points executed (0 points fails the CI gate).
  void set_points(std::uint64_t points) { points_ = points; }

  /// Adds one deterministic headline metric to the "results" section.
  void add_result(const std::string& key, double value);

  /// Result-store counters for this run, written as the top-level
  /// "result_store" object (hits/misses/stores/corrupt_skipped/loaded).
  /// Like the timing fields these vary run to run — a warm run reports
  /// hits where a cold one reported misses — so they live *outside*
  /// "results" and never break the determinism gate. Call with the store's
  /// stats() right before write(); without a store the object reports
  /// zeros.
  void set_store_stats(const ResultStoreStats& s) { store_stats_ = s; }

  double wall_ms() const;

  /// Stops the clock and writes BENCH_<name>.json; returns success and
  /// prints the path (mirrors emit()'s [csv] line).
  bool write();

 private:
  std::string name_;
  unsigned jobs_;
  std::uint64_t points_ = 0;
  std::vector<std::pair<std::string, double>> results_;
  ResultStoreStats store_stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mobcache
