#include "exp/json_export.hpp"

#include <filesystem>
#include <fstream>

#include "exp/report.hpp"

namespace mobcache {

namespace {

void write_cache_stats(JsonWriter& w, const CacheStats& s) {
  w.begin_object();
  w.key("accesses").value(s.total_accesses());
  w.key("hits").value(s.total_hits());
  w.key("miss_rate").value(s.miss_rate());
  w.key("kernel_fraction").value(s.kernel_access_fraction());
  w.key("writebacks").value(s.writebacks);
  w.key("cross_mode_evictions").value(s.cross_mode_evictions);
  w.key("expired_blocks").value(s.expired_blocks);
  w.key("refreshes").value(s.refreshes);
  w.key("prefetch_fills").value(s.prefetch_fills);
  w.key("useful_prefetches").value(s.useful_prefetches);
  w.key("write_faults").value(s.write_faults);
  w.key("transient_upsets").value(s.transient_upsets);
  w.key("ecc_corrections").value(s.ecc_corrections);
  w.key("fault_losses").value(s.fault_losses);
  w.key("fault_lost_dirty").value(s.fault_lost_dirty);
  w.key("scrub_repairs").value(s.scrub_repairs);
  w.key("silent_faults").value(s.silent_faults);
  w.end_object();
}

}  // namespace

void write_sim_result(JsonWriter& w, const SimResult& r) {
  w.begin_object();
  w.key("workload").value(r.workload);
  w.key("scheme").value(r.scheme);
  w.key("records").value(r.records);
  w.key("cycles").value(r.cycles);
  w.key("cpi").value(r.cpi);
  w.key("stall_l2_hit_cycles").value(r.stall_l2_hit_cycles);
  w.key("stall_l2_miss_cycles").value(r.stall_l2_miss_cycles);
  w.key("l2_capacity_bytes").value(r.l2_capacity_bytes);
  w.key("l2_avg_enabled_bytes").value(r.l2_avg_enabled_bytes);
  w.key("l2_quarantined_ways")
      .value(static_cast<std::uint64_t>(r.l2_quarantined_ways));
  w.key("edp").value(r.edp());
  w.key("energy_nj");
  w.begin_object();
  w.key("leakage").value(r.l2_energy.leakage_nj);
  w.key("read").value(r.l2_energy.read_nj);
  w.key("write").value(r.l2_energy.write_nj);
  w.key("refresh").value(r.l2_energy.refresh_nj);
  w.key("ecc").value(r.l2_energy.ecc_nj);
  w.key("dram").value(r.l2_energy.dram_nj);
  w.key("cache_total").value(r.l2_energy.cache_nj());
  w.key("l1").value(r.l1_energy_nj);
  w.end_object();
  w.key("l2");
  write_cache_stats(w, r.l2);
  w.key("l1i");
  write_cache_stats(w, r.l1i);
  w.key("l1d");
  write_cache_stats(w, r.l1d);
  w.end_object();
}

std::string experiment_to_json(const std::string& experiment_id,
                               const std::vector<SchemeSuiteResult>& results) {
  JsonWriter w;
  w.begin_object();
  w.key("experiment").value(experiment_id);
  w.key("schemes");
  w.begin_array();
  for (const SchemeSuiteResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("norm_cache_energy").value(r.norm_cache_energy);
    w.key("norm_total_energy").value(r.norm_total_energy);
    w.key("norm_exec_time").value(r.norm_exec_time);
    w.key("avg_miss_rate").value(r.avg_miss_rate);
    w.key("per_workload");
    w.begin_array();
    for (const SimResult& s : r.per_workload) write_sim_result(w, s);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_experiment_json(const std::string& experiment_id,
                           const std::vector<SchemeSuiteResult>& results,
                           const std::string& filename) {
  const std::string path = results_path(filename);
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << experiment_to_json(experiment_id, results);
  return static_cast<bool>(f);
}

}  // namespace mobcache
