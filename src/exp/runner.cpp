#include "exp/runner.hpp"

#include <cmath>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "energy/technology.hpp"
#include "exp/parallel.hpp"
#include "exp/result_store.hpp"
#include "sim/batch.hpp"

namespace mobcache {

namespace {

/// Content identity of a built-in scheme: kind + every SchemeParams field.
std::uint64_t scheme_design_hash(SchemeKind kind, const SchemeParams& p) {
  return ContentHasher()
      .mix(std::string("scheme"))
      .mix(static_cast<std::uint64_t>(kind))
      .mix(hash_scheme_params(p))
      .digest();
}

/// simulate() + the numeric invariant gate — the only simulate entry the
/// runner uses, so every aggregated cell has been validated.
SimResult checked_simulate(const Trace& trace, std::unique_ptr<L2Interface> l2,
                           const SimOptions& opts) {
  SimResult r = simulate(trace, std::move(l2), opts);
  validate_sim_result_finite(r);
  return r;
}

}  // namespace

void validate_sim_result_finite(const SimResult& r) {
  const struct {
    const char* name;
    double v;
  } lanes[] = {
      {"cpi", r.cpi},
      {"e.leakage_nj", r.l2_energy.leakage_nj},
      {"e.read_nj", r.l2_energy.read_nj},
      {"e.write_nj", r.l2_energy.write_nj},
      {"e.refresh_nj", r.l2_energy.refresh_nj},
      {"e.dram_nj", r.l2_energy.dram_nj},
      {"e.ecc_nj", r.l2_energy.ecc_nj},
      {"l1_energy_nj", r.l1_energy_nj},
      {"l2_avg_enabled_bytes", r.l2_avg_enabled_bytes},
  };
  for (const auto& lane : lanes) {
    if (std::isfinite(lane.v)) continue;
    NumericError err(std::string("result lane ") + lane.name +
                     " is not finite (" + std::to_string(lane.v) + ")");
    err.with_scheme(r.scheme).with_workload(r.workload);
    throw err;
  }
}

MetricRegistry SchemeSuiteResult::merged_metrics() const {
  MetricRegistry merged;
  for (const auto& tel : per_workload_telemetry) {
    if (tel) merged.merge(tel->metrics());
  }
  return merged;
}

ExperimentRunner::ExperimentRunner(std::vector<AppId> apps,
                                   std::uint64_t accesses, std::uint64_t seed)
    : apps_(std::move(apps)),
      traces_(cached_suite(apps_, accesses, seed)) {}

ExperimentRunner::ExperimentRunner(std::vector<Trace> traces) {
  traces_.reserve(traces.size());
  for (Trace& t : traces)
    traces_.push_back(std::make_shared<const Trace>(std::move(t)));
}

namespace {

/// One (scheme/design, workload) execution — the unit SweepExecutor shards.
struct SuiteCell {
  SimResult res;
  std::shared_ptr<Telemetry> tel;
};

}  // namespace

const std::vector<std::uint64_t>& ExperimentRunner::trace_hashes() const {
  std::call_once(trace_hash_once_, [&] {
    trace_hashes_.reserve(traces_.size());
    for (const auto& t : traces_) trace_hashes_.push_back(hash_trace(*t));
  });
  return trace_hashes_;
}

bool ExperimentRunner::memoizable() const {
  // Telemetry sessions and eviction observers are side channels a cached
  // SimResult cannot replay — those runs always simulate.
  return result_store != nullptr && !collect_telemetry &&
         !sim_options.l2_eviction_observer;
}

std::vector<std::uint64_t> ExperimentRunner::cell_keys(
    std::uint64_t design_hash) const {
  const std::uint64_t opts = hash_sim_options(sim_options);
  const std::uint64_t tech = hash_technology(technology());
  std::vector<std::uint64_t> keys;
  keys.reserve(traces_.size());
  for (std::uint64_t th : trace_hashes())
    keys.push_back(result_point_key(design_hash, th, opts, tech));
  return keys;
}

DesignSpec scheme_design(SchemeKind kind, const SchemeParams& params) {
  DesignSpec d;
  d.name = scheme_name(kind);
  d.build = [kind, params] { return build_scheme(kind, params); };
  d.design_hash = scheme_design_hash(kind, params);
  d.kind = kind;
  return d;
}

SchemeSuiteResult ExperimentRunner::run_scheme(SchemeKind kind,
                                               const SchemeParams& params) const {
  SchemeSuiteResult r =
      run_custom(scheme_name(kind), [&] { return build_scheme(kind, params); },
                 scheme_design_hash(kind, params));
  r.kind = kind;
  return r;
}

SchemeSuiteResult ExperimentRunner::run_custom(
    const std::string& name,
    const std::function<std::unique_ptr<L2Interface>()>& builder,
    std::optional<std::uint64_t> design_hash) const {
  return run_custom_impl(name, builder, design_hash, jobs);
}

SchemeSuiteResult ExperimentRunner::run_custom_impl(
    const std::string& name,
    const std::function<std::unique_ptr<L2Interface>()>& builder,
    std::optional<std::uint64_t> design_hash, unsigned exec_jobs) const {
  SchemeSuiteResult out;
  out.name = name;

  SweepExecutor ex(exec_jobs);
  if (design_hash && memoizable()) {
    std::vector<SimResult> results = memoized_map(
        ex, result_store, cell_keys(*design_hash), [&](std::size_t i) {
          return checked_simulate(*traces_[i], builder(), sim_options);
        });
    out.per_workload.reserve(results.size());
    double miss_sum = 0.0;
    for (SimResult& r : results) {
      miss_sum += r.l2_miss_rate();
      out.per_workload.push_back(std::move(r));
    }
    if (!traces_.empty())
      out.avg_miss_rate = miss_sum / static_cast<double>(traces_.size());
    return out;
  }

  std::vector<SuiteCell> cells = ex.map(traces_.size(), [&](std::size_t i) {
    SimOptions opts = sim_options;
    SuiteCell cell;
    if (collect_telemetry) {
      cell.tel = std::make_shared<Telemetry>();
      cell.tel->set_sample_interval(telemetry_sample_interval);
      opts.telemetry = cell.tel.get();
    }
    cell.res = checked_simulate(*traces_[i], builder(), opts);
    return cell;
  });

  out.per_workload.reserve(cells.size());
  double miss_sum = 0.0;
  for (SuiteCell& cell : cells) {
    miss_sum += cell.res.l2_miss_rate();
    out.per_workload.push_back(std::move(cell.res));
    if (collect_telemetry)
      out.per_workload_telemetry.push_back(std::move(cell.tel));
  }
  if (!traces_.empty())
    out.avg_miss_rate = miss_sum / static_cast<double>(traces_.size());
  return out;
}

bool ExperimentRunner::batchable() const {
  return sweep_batch >= 2 && !collect_telemetry && batch_eligible(sim_options);
}

std::vector<SchemeSuiteResult> ExperimentRunner::run_designs(
    const std::vector<DesignSpec>& specs) const {
  std::vector<PointOutcome<SchemeSuiteResult>> outcomes =
      run_designs_outcomes(specs, /*keep_going=*/false);
  std::vector<SchemeSuiteResult> out;
  out.reserve(outcomes.size());
  for (PointOutcome<SchemeSuiteResult>& o : outcomes)
    out.push_back(std::move(*o.value));
  return out;
}

std::vector<PointOutcome<SchemeSuiteResult>>
ExperimentRunner::run_designs_outcomes(
    const std::vector<DesignSpec>& specs, bool keep_going,
    const std::function<void(std::size_t)>& point_hook) const {
  const std::size_t n = specs.size();
  if (batchable()) return run_designs_batched(specs, keep_going, point_hook);

  // Per-point fallback: specs across `jobs` workers, each spec a serial
  // suite evaluation — exactly the outer-executor / inner-serial structure
  // the sweep benches ran before batching existed, so results AND
  // result-store traffic are unchanged.
  SweepExecutor ex(jobs);
  auto point = [&](std::size_t s) {
    if (point_hook) point_hook(s);
    SchemeSuiteResult r = run_custom_impl(specs[s].name, specs[s].build,
                                          specs[s].design_hash,
                                          /*exec_jobs=*/1);
    if (specs[s].kind) r.kind = *specs[s].kind;
    return r;
  };
  if (keep_going) return ex.map_outcomes(n, point);
  std::vector<SchemeSuiteResult> values = ex.map(n, point);
  std::vector<PointOutcome<SchemeSuiteResult>> out(n);
  for (std::size_t s = 0; s < n; ++s) out[s].value = std::move(values[s]);
  return out;
}

std::vector<PointOutcome<SchemeSuiteResult>>
ExperimentRunner::run_designs_batched(
    const std::vector<DesignSpec>& specs, bool keep_going,
    const std::function<void(std::size_t)>& point_hook) const {
  const std::size_t n = specs.size();
  const std::size_t w_count = traces_.size();
  std::vector<PointOutcome<SchemeSuiteResult>> out(n);

  // Point hooks (chaos injection) run up front in ascending spec order:
  // fail-fast therefore throws the lowest-indexed hook failure
  // deterministically, matching the serial per-point sweep.
  std::vector<char> live(n, 1);
  if (point_hook) {
    for (std::size_t s = 0; s < n; ++s) {
      try {
        point_hook(s);
      } catch (...) {
        if (!keep_going) throw;
        out[s].failure = point_failure_from(s, std::current_exception());
        live[s] = 0;
      }
    }
  }

  // Warm cells come straight from the store under the *same* content keys
  // the per-point path uses — a store written per-point resumes batched and
  // vice versa. Keep-going deliberately does not consult poison records
  // here: the per-point grid path (fail-fast memoized_map inside each
  // point) never does either, and equivalence wins over quarantine reuse.
  const bool memo = memoizable();
  std::vector<std::vector<std::uint64_t>> keys(n);
  std::vector<std::optional<SimResult>> cells(n * w_count);
  std::vector<std::vector<std::size_t>> unit_missing(w_count);
  for (std::size_t s = 0; s < n; ++s) {
    if (!live[s]) continue;
    const bool spec_memo = memo && specs[s].design_hash.has_value();
    if (spec_memo) keys[s] = cell_keys(*specs[s].design_hash);
    for (std::size_t w = 0; w < w_count; ++w) {
      if (spec_memo) {
        if (auto hit = result_store->lookup(keys[s][w])) {
          cells[s * w_count + w] = std::move(*hit);
          continue;
        }
      }
      unit_missing[w].push_back(s);
    }
  }

  // A spec's failure is attributed to its lowest failing workload — the
  // per-point path's serial inner sweep surfaces exactly that one. Units
  // run concurrently, so the (workload, error) pair is kept under a lock.
  std::mutex mu;
  std::vector<std::optional<std::pair<std::size_t, std::exception_ptr>>>
      spec_fail(n);
  auto note_failure = [&](std::size_t s, std::size_t w,
                          const std::exception_ptr& e) {
    std::lock_guard<std::mutex> lock(mu);
    auto& f = spec_fail[s];
    if (!f || w < f->first) f = std::make_pair(w, e);
  };

  // One unit per workload: decode/L1-simulate the trace once, then replay
  // its demand stream into the missing specs in chunks of <= sweep_batch
  // lanes. Units shard across the executor; lanes within a unit are serial.
  const std::size_t lane_cap = sweep_batch;
  SweepExecutor ex(jobs);
  ex.for_each(w_count, [&](std::size_t w) {
    const std::vector<std::size_t>& todo = unit_missing[w];
    if (todo.empty()) return;
    try {
      const DemandStream stream =
          build_demand_stream(*traces_[w], sim_options);
      std::size_t pos = 0;
      while (pos < todo.size()) {
        const std::size_t chunk_end =
            std::min(todo.size(), pos + lane_cap);
        std::vector<std::unique_ptr<L2Interface>> designs;
        std::vector<L2Interface*> lanes;
        std::vector<std::size_t> lane_spec;
        designs.reserve(chunk_end - pos);
        std::optional<std::pair<std::size_t, std::exception_ptr>> chunk_err;
        auto chunk_failed = [&](std::size_t s, const std::exception_ptr& e) {
          note_failure(s, w, e);
          if (!chunk_err || s < chunk_err->first)
            chunk_err = std::make_pair(s, e);
        };
        for (std::size_t j = pos; j < chunk_end; ++j) {
          const std::size_t s = todo[j];
          try {
            designs.push_back(specs[s].build());
            lanes.push_back(designs.back().get());
            lane_spec.push_back(s);
          } catch (...) {
            chunk_failed(s, std::current_exception());
          }
        }
        std::vector<BatchLaneOutcome> lane_out =
            simulate_batch_lanes(stream, lanes, sim_options);
        for (std::size_t l = 0; l < lane_out.size(); ++l) {
          const std::size_t s = lane_spec[l];
          if (lane_out[l].ok()) {
            try {
              SimResult r = std::move(*lane_out[l].result);
              validate_sim_result_finite(r);
              if (memo && !keys[s].empty()) result_store->store(keys[s][w], r);
              cells[s * w_count + w] = std::move(r);
              continue;
            } catch (...) {
              lane_out[l].error = std::current_exception();
            }
          }
          chunk_failed(s, lane_out[l].error);
        }
        // Fail-fast aborts after the chunk's completed lanes have been
        // persisted: a killed sweep still resumes from every finished cell.
        if (!keep_going && chunk_err)
          std::rethrow_exception(chunk_err->second);
        pos = chunk_end;
      }
    } catch (...) {
      const std::exception_ptr e = std::current_exception();
      if (!keep_going || is_cancellation(e)) throw;
      // Unit-level failure (stream build, batch-wide error): every spec of
      // this unit that has no cell yet fails at this workload.
      for (std::size_t s : todo) {
        if (!cells[s * w_count + w]) note_failure(s, w, e);
      }
    }
  });

  for (std::size_t s = 0; s < n; ++s) {
    if (!live[s]) continue;
    if (spec_fail[s]) {
      if (!keep_going) std::rethrow_exception(spec_fail[s]->second);
      out[s].failure = point_failure_from(s, spec_fail[s]->second);
      continue;
    }
    SchemeSuiteResult r;
    r.name = specs[s].name;
    if (specs[s].kind) r.kind = *specs[s].kind;
    r.per_workload.reserve(w_count);
    double miss_sum = 0.0;
    for (std::size_t w = 0; w < w_count; ++w) {
      SimResult& res = *cells[s * w_count + w];
      miss_sum += res.l2_miss_rate();
      r.per_workload.push_back(std::move(res));
    }
    if (w_count > 0)
      r.avg_miss_rate = miss_sum / static_cast<double>(w_count);
    out[s].value = std::move(r);
  }
  return out;
}

std::vector<SchemeSuiteResult> ExperimentRunner::run_schemes(
    const std::vector<SchemeKind>& kinds, const SchemeParams& params) const {
  if (batchable()) {
    std::vector<DesignSpec> specs;
    specs.reserve(kinds.size());
    for (SchemeKind kind : kinds) specs.push_back(scheme_design(kind, params));
    return run_designs(specs);
  }

  const std::size_t w_count = traces_.size();

  // One flat (scheme × workload) sweep: cell c = (kinds[c / W], c % W).
  SweepExecutor ex(jobs);
  std::vector<SuiteCell> cells;
  if (memoizable()) {
    std::vector<std::uint64_t> keys;
    keys.reserve(kinds.size() * w_count);
    for (SchemeKind kind : kinds) {
      for (std::uint64_t k : cell_keys(scheme_design_hash(kind, params)))
        keys.push_back(k);
    }
    std::vector<SimResult> results =
        memoized_map(ex, result_store, keys, [&](std::size_t c) {
          return checked_simulate(*traces_[c % w_count],
                                  build_scheme(kinds[c / w_count], params),
                                  sim_options);
        });
    cells.resize(results.size());
    for (std::size_t c = 0; c < results.size(); ++c)
      cells[c].res = std::move(results[c]);
  } else {
    cells = ex.map(kinds.size() * w_count, [&](std::size_t c) {
      const SchemeKind kind = kinds[c / w_count];
      const std::size_t w = c % w_count;
      SimOptions opts = sim_options;
      SuiteCell cell;
      if (collect_telemetry) {
        cell.tel = std::make_shared<Telemetry>();
        cell.tel->set_sample_interval(telemetry_sample_interval);
        opts.telemetry = cell.tel.get();
      }
      cell.res = checked_simulate(*traces_[w], build_scheme(kind, params), opts);
      return cell;
    });
  }

  std::vector<SchemeSuiteResult> out;
  out.reserve(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    SchemeSuiteResult r;
    r.kind = kinds[k];
    r.name = scheme_name(kinds[k]);
    r.per_workload.reserve(w_count);
    double miss_sum = 0.0;
    for (std::size_t w = 0; w < w_count; ++w) {
      SuiteCell& cell = cells[k * w_count + w];
      miss_sum += cell.res.l2_miss_rate();
      r.per_workload.push_back(std::move(cell.res));
      if (collect_telemetry)
        r.per_workload_telemetry.push_back(std::move(cell.tel));
    }
    if (w_count > 0) r.avg_miss_rate = miss_sum / static_cast<double>(w_count);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<SchemeSuiteResult> ExperimentRunner::run_headline(
    const SchemeParams& params) const {
  std::vector<SchemeSuiteResult> all = run_schemes(headline_schemes(), params);
  normalize(all);
  return all;
}

void ExperimentRunner::normalize(std::vector<SchemeSuiteResult>& results) {
  if (results.empty()) return;
  const SchemeSuiteResult& base = results[0];
  for (SchemeSuiteResult& r : results) {
    std::vector<double> e_cache, e_total, t_exec;
    for (std::size_t w = 0; w < r.per_workload.size(); ++w) {
      const SimResult& s = r.per_workload[w];
      const SimResult& b = base.per_workload[w];
      const double base_cache = b.l2_energy.cache_nj();
      const double base_total = b.l2_energy.total_nj();
      const double base_cycles = static_cast<double>(b.cycles);
      if (base_cache > 0) e_cache.push_back(s.l2_energy.cache_nj() / base_cache);
      if (base_total > 0) e_total.push_back(s.l2_energy.total_nj() / base_total);
      if (base_cycles > 0)
        t_exec.push_back(static_cast<double>(s.cycles) / base_cycles);
    }
    r.norm_cache_energy = geomean(e_cache);
    r.norm_total_energy = geomean(e_total);
    r.norm_exec_time = geomean(t_exec);
  }
}

std::vector<FaultSweepPoint> run_fault_sweep(const ExperimentRunner& runner,
                                             SchemeKind kind,
                                             const std::vector<double>& rates,
                                             const SchemeParams& tmpl) {
  // Per-rate parameter sets, rate-0 reference first: the sweep reports
  // degradation caused by faults, not by the scheme itself. Each is a pure
  // function of its index, so the flat (rate × workload) sweep below is
  // execution-order independent.
  std::vector<SchemeParams> per_rate;
  per_rate.reserve(rates.size() + 1);
  SchemeParams clean = tmpl;
  clean.fault = FaultConfig{};
  per_rate.push_back(clean);
  for (double rate : rates) {
    SchemeParams p = tmpl;
    p.fault = FaultConfig::from_rate(rate, tmpl.fault.ecc,
                                     tmpl.fault.way_disable_threshold,
                                     tmpl.fault.seed);
    per_rate.push_back(p);
  }

  const auto& traces = runner.traces();
  const std::size_t w_count = traces.size();
  SweepExecutor ex(runner.jobs);
  auto cell_fn = [&](std::size_t c) {
    const SchemeParams& p = per_rate[c / w_count];
    SimResult r = simulate(*traces[c % w_count], build_scheme(kind, p),
                           runner.sim_options);
    validate_sim_result_finite(r);
    return r;
  };
  std::vector<SimResult> cells;
  if (runner.result_store != nullptr &&
      !runner.sim_options.l2_eviction_observer) {
    const std::uint64_t opts = hash_sim_options(runner.sim_options);
    const std::uint64_t tech = hash_technology(technology());
    std::vector<std::uint64_t> keys;
    keys.reserve(per_rate.size() * w_count);
    for (const SchemeParams& p : per_rate) {
      const std::uint64_t dh = scheme_design_hash(kind, p);
      for (std::uint64_t th : runner.trace_hashes())
        keys.push_back(result_point_key(dh, th, opts, tech));
    }
    cells = memoized_map(ex, runner.result_store, keys, cell_fn);
  } else {
    cells = ex.map(per_rate.size() * w_count, cell_fn);
  }

  std::vector<FaultSweepPoint> out;
  out.reserve(rates.size());
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    FaultSweepPoint pt;
    pt.rate = rates[ri];
    std::vector<double> e_ratios, t_ratios;
    double miss_sum = 0.0;
    for (std::size_t w = 0; w < w_count; ++w) {
      const SimResult& s = cells[(ri + 1) * w_count + w];
      const SimResult& b = cells[w];  // rate-0 reference row
      if (b.l2_energy.cache_nj() > 0)
        e_ratios.push_back(s.l2_energy.cache_nj() / b.l2_energy.cache_nj());
      if (b.cycles > 0) {
        t_ratios.push_back(static_cast<double>(s.cycles) /
                           static_cast<double>(b.cycles));
      }
      miss_sum += s.l2_miss_rate();
      pt.ecc_corrections += s.l2.ecc_corrections;
      pt.fault_losses += s.l2.fault_losses;
      pt.dirty_losses += s.l2.fault_lost_dirty;
      pt.scrub_repairs += s.l2.scrub_repairs;
      pt.quarantined_ways += s.l2_quarantined_ways;
    }
    pt.norm_cache_energy = geomean(e_ratios);
    pt.norm_exec_time = geomean(t_ratios);
    if (w_count > 0)
      pt.avg_miss_rate = miss_sum / static_cast<double>(w_count);
    out.push_back(pt);
  }
  return out;
}

namespace {

SeedStat to_stat(const RunningStat& r) {
  return {r.mean(), r.stddev(), r.min(), r.max()};
}

}  // namespace

std::vector<MultiSeedResult> run_multi_seed(
    const std::vector<AppId>& apps, std::uint64_t accesses,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<SchemeKind>& schemes, const SchemeParams& params,
    unsigned jobs, ResultStore* store) {
  const std::size_t s_count = schemes.size();

  // Flat (seed × scheme) sweep. Each cell derives everything from its index
  // — suite seed seeds[c / S], scheme schemes[c % S] — and the TraceCache
  // makes concurrent cells of one seed share a single generated suite. The
  // per-seed runner inherits `store`, so the inner per-workload cells are
  // memoized (their keys fold in the seed via the trace fingerprints).
  SweepExecutor ex(jobs);
  std::vector<SchemeSuiteResult> cells =
      ex.map(seeds.size() * s_count, [&](std::size_t c) {
        ExperimentRunner runner(apps, accesses, seeds[c / s_count]);
        runner.result_store = store;
        return runner.run_scheme(schemes[c % s_count], params);
      });

  // Normalize per seed, then accumulate in seed order — deterministic
  // regardless of which worker finished first.
  std::vector<RunningStat> energy(s_count);
  std::vector<RunningStat> time(s_count);
  std::vector<RunningStat> miss(s_count);
  for (std::size_t si = 0; si < seeds.size(); ++si) {
    std::vector<SchemeSuiteResult> per_seed(
        std::make_move_iterator(cells.begin() + si * s_count),
        std::make_move_iterator(cells.begin() + (si + 1) * s_count));
    ExperimentRunner::normalize(per_seed);
    for (std::size_t i = 0; i < s_count; ++i) {
      energy[i].add(per_seed[i].norm_cache_energy);
      time[i].add(per_seed[i].norm_exec_time);
      miss[i].add(per_seed[i].avg_miss_rate);
    }
  }

  std::vector<MultiSeedResult> out;
  out.reserve(s_count);
  for (std::size_t i = 0; i < s_count; ++i) {
    MultiSeedResult r;
    r.kind = schemes[i];
    r.name = scheme_name(schemes[i]);
    r.cache_energy = to_stat(energy[i]);
    r.exec_time = to_stat(time[i]);
    r.miss_rate = to_stat(miss[i]);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace mobcache
