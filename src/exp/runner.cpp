#include "exp/runner.hpp"

#include "common/stats.hpp"

namespace mobcache {

MetricRegistry SchemeSuiteResult::merged_metrics() const {
  MetricRegistry merged;
  for (const auto& tel : per_workload_telemetry) {
    if (tel) merged.merge(tel->metrics());
  }
  return merged;
}

ExperimentRunner::ExperimentRunner(std::vector<AppId> apps,
                                   std::uint64_t accesses, std::uint64_t seed)
    : apps_(std::move(apps)),
      traces_(generate_suite(apps_, accesses, seed)) {}

ExperimentRunner::ExperimentRunner(std::vector<Trace> traces)
    : traces_(std::move(traces)) {}

SchemeSuiteResult ExperimentRunner::run_scheme(SchemeKind kind,
                                               const SchemeParams& params) {
  SchemeSuiteResult r = run_custom(
      scheme_name(kind), [&] { return build_scheme(kind, params); });
  r.kind = kind;
  return r;
}

SchemeSuiteResult ExperimentRunner::run_custom(
    const std::string& name,
    const std::function<std::unique_ptr<L2Interface>()>& builder) {
  SchemeSuiteResult out;
  out.name = name;
  out.per_workload.reserve(traces_.size());
  double miss_sum = 0.0;
  for (const Trace& t : traces_) {
    SimOptions opts = sim_options;
    std::shared_ptr<Telemetry> tel;
    if (collect_telemetry) {
      tel = std::make_shared<Telemetry>();
      tel->set_sample_interval(telemetry_sample_interval);
      opts.telemetry = tel.get();
    }
    SimResult res = simulate(t, builder(), opts);
    miss_sum += res.l2_miss_rate();
    out.per_workload.push_back(std::move(res));
    if (collect_telemetry) out.per_workload_telemetry.push_back(std::move(tel));
  }
  if (!traces_.empty())
    out.avg_miss_rate = miss_sum / static_cast<double>(traces_.size());
  return out;
}

std::vector<SchemeSuiteResult> ExperimentRunner::run_headline(
    const SchemeParams& params) {
  std::vector<SchemeSuiteResult> all;
  for (SchemeKind k : headline_schemes()) all.push_back(run_scheme(k, params));
  normalize(all);
  return all;
}

void ExperimentRunner::normalize(std::vector<SchemeSuiteResult>& results) {
  if (results.empty()) return;
  const SchemeSuiteResult& base = results[0];
  for (SchemeSuiteResult& r : results) {
    std::vector<double> e_cache, e_total, t_exec;
    for (std::size_t w = 0; w < r.per_workload.size(); ++w) {
      const SimResult& s = r.per_workload[w];
      const SimResult& b = base.per_workload[w];
      const double base_cache = b.l2_energy.cache_nj();
      const double base_total = b.l2_energy.total_nj();
      const double base_cycles = static_cast<double>(b.cycles);
      if (base_cache > 0) e_cache.push_back(s.l2_energy.cache_nj() / base_cache);
      if (base_total > 0) e_total.push_back(s.l2_energy.total_nj() / base_total);
      if (base_cycles > 0)
        t_exec.push_back(static_cast<double>(s.cycles) / base_cycles);
    }
    r.norm_cache_energy = geomean(e_cache);
    r.norm_total_energy = geomean(e_total);
    r.norm_exec_time = geomean(t_exec);
  }
}

std::vector<FaultSweepPoint> run_fault_sweep(ExperimentRunner& runner,
                                             SchemeKind kind,
                                             const std::vector<double>& rates,
                                             const SchemeParams& tmpl) {
  // Rate-0 reference over the same traces: the sweep reports degradation
  // caused by faults, not by the scheme itself.
  SchemeParams clean = tmpl;
  clean.fault = FaultConfig{};
  const SchemeSuiteResult base = runner.run_scheme(kind, clean);

  std::vector<FaultSweepPoint> out;
  out.reserve(rates.size());
  for (double rate : rates) {
    SchemeParams p = tmpl;
    p.fault = FaultConfig::from_rate(rate, tmpl.fault.ecc,
                                     tmpl.fault.way_disable_threshold,
                                     tmpl.fault.seed);
    const SchemeSuiteResult r = runner.run_scheme(kind, p);

    FaultSweepPoint pt;
    pt.rate = rate;
    std::vector<double> e_ratios, t_ratios;
    double miss_sum = 0.0;
    for (std::size_t w = 0; w < r.per_workload.size(); ++w) {
      const SimResult& s = r.per_workload[w];
      const SimResult& b = base.per_workload[w];
      if (b.l2_energy.cache_nj() > 0)
        e_ratios.push_back(s.l2_energy.cache_nj() / b.l2_energy.cache_nj());
      if (b.cycles > 0) {
        t_ratios.push_back(static_cast<double>(s.cycles) /
                           static_cast<double>(b.cycles));
      }
      miss_sum += s.l2_miss_rate();
      pt.ecc_corrections += s.l2.ecc_corrections;
      pt.fault_losses += s.l2.fault_losses;
      pt.dirty_losses += s.l2.fault_lost_dirty;
      pt.scrub_repairs += s.l2.scrub_repairs;
      pt.quarantined_ways += s.l2_quarantined_ways;
    }
    pt.norm_cache_energy = geomean(e_ratios);
    pt.norm_exec_time = geomean(t_ratios);
    if (!r.per_workload.empty())
      pt.avg_miss_rate = miss_sum / static_cast<double>(r.per_workload.size());
    out.push_back(pt);
  }
  return out;
}

namespace {

SeedStat to_stat(const RunningStat& r) {
  return {r.mean(), r.stddev(), r.min(), r.max()};
}

}  // namespace

std::vector<MultiSeedResult> run_multi_seed(
    const std::vector<AppId>& apps, std::uint64_t accesses,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<SchemeKind>& schemes, const SchemeParams& params) {
  std::vector<RunningStat> energy(schemes.size());
  std::vector<RunningStat> time(schemes.size());
  std::vector<RunningStat> miss(schemes.size());

  for (std::uint64_t seed : seeds) {
    ExperimentRunner runner(apps, accesses, seed);
    std::vector<SchemeSuiteResult> results;
    results.reserve(schemes.size());
    for (SchemeKind k : schemes) results.push_back(runner.run_scheme(k, params));
    ExperimentRunner::normalize(results);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      energy[i].add(results[i].norm_cache_energy);
      time[i].add(results[i].norm_exec_time);
      miss[i].add(results[i].avg_miss_rate);
    }
  }

  std::vector<MultiSeedResult> out;
  out.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    MultiSeedResult r;
    r.kind = schemes[i];
    r.name = scheme_name(schemes[i]);
    r.cache_energy = to_stat(energy[i]);
    r.exec_time = to_stat(time[i]);
    r.miss_rate = to_stat(miss[i]);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace mobcache
