#include "workload/scenario.hpp"

#include <string>

#include "common/rng.hpp"
#include "workload/generator.hpp"
#include "workload/kernel_model.hpp"

namespace mobcache {

Trace generate_scenario(const ScenarioConfig& cfg) {
  std::string name = "mix";
  for (AppId id : cfg.apps) {
    name += "-";
    name += app_name(id);
  }
  Trace out(std::move(name));
  if (cfg.apps.empty() || cfg.total_accesses == 0) return out;
  // Interleaved records accumulate in a flat buffer and move into the Trace
  // once at the end (Trace::append).
  std::vector<Access> buf;
  buf.reserve(cfg.total_accesses + 8192);

  // Per-app source streams. Each app gets enough records that wrap-around
  // (which would replay its trace verbatim) is rare but harmless: phase
  // machines repeat anyway.
  std::vector<Trace> sources;
  sources.reserve(cfg.apps.size());
  const std::uint64_t per_app =
      cfg.total_accesses / cfg.apps.size() + cfg.slice_mean + 4096;
  for (std::size_t i = 0; i < cfg.apps.size(); ++i) {
    GeneratorConfig gc;
    gc.target_accesses = per_app;
    gc.seed = cfg.seed + i * 1000003;
    sources.push_back(generate_trace(make_app(cfg.apps[i]), gc));
  }
  std::vector<std::size_t> cursor(cfg.apps.size(), 0);

  Rng rng(cfg.seed ^ 0xabcdef12345ull);
  KernelModel switcher(cfg.seed);
  std::size_t foreground = 0;

  while (buf.size() < cfg.total_accesses) {
    // Context switch into the next foreground app: the scheduler picks the
    // task, binder delivers the focus event, and a few pages fault back in.
    switcher.emit_episode(KernelService::SchedTick, 1, buf, rng);
    switcher.emit_episode(KernelService::BinderIpc, 0, buf, rng);
    if (rng.chance(0.5))
      switcher.emit_episode(KernelService::PageFault, 0, buf, rng);

    const std::uint64_t slice = rng.geometric(
        1.0 / static_cast<double>(cfg.slice_mean));
    const Trace& src = sources[foreground];
    const Addr slot = kAppSlotStride * foreground;
    const auto tbase = static_cast<std::uint16_t>(foreground * 4);

    for (std::uint64_t i = 0;
         i < slice && buf.size() < cfg.total_accesses; ++i) {
      Access a = src[cursor[foreground]];
      cursor[foreground] = (cursor[foreground] + 1) % src.size();
      if (a.mode == Mode::User) {
        a.addr += slot;  // processes have disjoint user address spaces
        a.thread = static_cast<std::uint16_t>(a.thread + tbase);
      }
      buf.push_back(a);
    }
    foreground = (foreground + 1) % cfg.apps.size();
  }
  out.append(std::move(buf));
  return out;
}

}  // namespace mobcache
