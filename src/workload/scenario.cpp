#include "workload/scenario.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workload/generator.hpp"
#include "workload/kernel_model.hpp"

namespace mobcache {

namespace {

std::string scenario_name(const ScenarioConfig& cfg) {
  std::string name = "mix";
  for (AppId id : cfg.apps) {
    name += "-";
    name += app_name(id);
  }
  return name;
}

/// Forward-only reader over one app's source stream. Exhaustion restarts the
/// stream, which replays the identical record sequence — the streaming
/// equivalent of the materialized path's `cursor % src.size()` wrap-around.
struct AppSource {
  std::unique_ptr<AppTraceStream> stream;
  std::span<const Access> cur;

  Access next() {
    if (cur.empty()) {
      cur = stream->next_chunk();
      if (cur.empty()) {
        stream->reset();
        cur = stream->next_chunk();
      }
    }
    const Access a = cur.front();
    cur = cur.subspan(1);
    return a;
  }
};

}  // namespace

/// The generate_scenario() loop suspended between chunks. A chunk boundary
/// can land mid-slice, so the remaining slice length is part of the state;
/// every Rng draw happens at the same point of the record sequence as in the
/// batch formulation.
struct ScenarioStream::Impl {
  ScenarioConfig cfg;
  std::string name;
  std::vector<AppSource> sources;
  Rng rng{0};
  KernelModel switcher{0};
  std::size_t foreground = 0;
  std::uint64_t slice_remaining = 0;
  bool in_slice = false;
  std::uint64_t emitted = 0;
  bool finished = false;
  ChunkBuffer chunk;

  explicit Impl(const ScenarioConfig& c) : cfg(c), name(scenario_name(c)) {
    restart();
  }

  void restart() {
    rng = Rng(cfg.seed ^ 0xabcdef12345ull);
    switcher = KernelModel(cfg.seed);
    foreground = 0;
    slice_remaining = 0;
    in_slice = false;
    emitted = 0;
    finished = cfg.apps.empty() || cfg.total_accesses == 0;
    sources.clear();
    if (finished) return;
    // Per-app source streams. Each app gets enough records that a restart
    // (which replays its sequence verbatim) is rare but harmless: phase
    // machines repeat anyway.
    const std::uint64_t per_app =
        cfg.total_accesses / cfg.apps.size() + cfg.slice_mean + 4096;
    sources.reserve(cfg.apps.size());
    for (std::size_t i = 0; i < cfg.apps.size(); ++i) {
      GeneratorConfig gc;
      gc.target_accesses = per_app;
      gc.seed = cfg.seed + i * 1000003;
      AppSource src;
      src.stream =
          std::make_unique<AppTraceStream>(make_app(cfg.apps[i]), gc);
      sources.push_back(std::move(src));
    }
  }

  void fill(std::vector<Access>& out) {
    auto total = [&] { return emitted + out.size(); };
    while (out.size() < kStreamChunkRecords) {
      if (!in_slice) {
        if (total() >= cfg.total_accesses) {
          finished = true;
          break;
        }
        // Context switch into the next foreground app: the scheduler picks
        // the task, binder delivers the focus event, and a few pages fault
        // back in.
        switcher.emit_episode(KernelService::SchedTick, 1, out, rng);
        switcher.emit_episode(KernelService::BinderIpc, 0, out, rng);
        if (rng.chance(0.5))
          switcher.emit_episode(KernelService::PageFault, 0, out, rng);
        slice_remaining =
            rng.geometric(1.0 / static_cast<double>(cfg.slice_mean));
        in_slice = true;
      }

      const Addr slot = kAppSlotStride * foreground;
      const auto tbase = static_cast<std::uint16_t>(foreground * 4);
      while (slice_remaining > 0 && total() < cfg.total_accesses &&
             out.size() < kStreamChunkRecords) {
        Access a = sources[foreground].next();
        if (a.mode == Mode::User) {
          a.addr += slot;  // processes have disjoint user address spaces
          a.thread = static_cast<std::uint16_t>(a.thread + tbase);
        }
        out.push_back(a);
        --slice_remaining;
      }
      if (total() >= cfg.total_accesses) {
        // The batch loop would truncate the slice here and exit on its next
        // while check; nothing after this point is observable.
        finished = true;
        break;
      }
      if (slice_remaining == 0) {
        foreground = (foreground + 1) % cfg.apps.size();
        in_slice = false;
      }
    }
    emitted += out.size();
  }
};

ScenarioStream::ScenarioStream(const ScenarioConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

ScenarioStream::~ScenarioStream() = default;

const std::string& ScenarioStream::name() const { return impl_->name; }

std::span<const Access> ScenarioStream::next_chunk() {
  if (impl_->finished) return {};
  std::vector<Access>& out = impl_->chunk.refill();
  impl_->fill(out);
  if (out.empty()) return {};
  return impl_->chunk.publish();
}

void ScenarioStream::reset() { impl_->restart(); }

Trace generate_scenario(const ScenarioConfig& cfg) {
  ScenarioStream stream(cfg);
  return materialize(stream);
}

PopulationModel PopulationModel::default_mix(
    std::uint64_t mean_session_accesses) {
  PopulationModel m;
  const std::uint64_t mean = std::max<std::uint64_t>(1, mean_session_accesses);
  // Three tiers: entry devices are common and short-session, flagships rarer
  // with long sessions and snappier app switching. Slice length scales with
  // the session so every tier sees a comparable number of app switches.
  m.devices = {
      {"entry", 0.35, std::max<std::uint64_t>(1, mean / 2),
       std::max<std::uint64_t>(1, mean / 40)},
      {"mid", 0.45, mean, std::max<std::uint64_t>(1, mean / 20)},
      {"flagship", 0.20, mean * 2, std::max<std::uint64_t>(1, mean / 16)},
  };
  // Popularity per AppId, in enum order (app_model.hpp): messaging, browser
  // and social dominate foreground time; the compute controls are rare.
  m.app_weights = {
      3.0,  // Launcher
      6.0,  // Browser
      4.0,  // Game
      5.0,  // VideoPlayer
      3.0,  // AudioPlayer
      3.0,  // Email
      2.5,  // Maps
      6.0,  // Social
      0.5,  // ComputeFft
      0.5,  // ComputeMatmul
      2.0,  // Camera
      7.0,  // Messenger
  };
  m.min_apps = 1;
  m.max_apps = 4;
  return m;
}

ScenarioConfig sample_session(const PopulationModel& model,
                              std::uint64_t seed) {
  if (model.devices.empty()) {
    throw ConfigError("PopulationModel has no device classes");
  }
  // A distinct stream from both the generator's (seed * golden-ratio + app)
  // and the scenario's (seed ^ 0xabcdef12345) seeding, so sampling draws
  // never correlate with the session's own record stream.
  Rng rng(seed * 0xd1b5'4a32'd192'ed03ull + 0x9e37'79b9ull);

  std::vector<double> dw;
  dw.reserve(model.devices.size());
  for (const DeviceClassSpec& d : model.devices) dw.push_back(d.weight);
  const DeviceClassSpec& dev = model.devices[rng.weighted(dw)];

  std::vector<double> w(model.app_weights);
  w.resize(static_cast<std::size_t>(kAppCount), 1.0);
  std::size_t drawable = 0;
  for (double x : w)
    if (x > 0.0) ++drawable;
  if (drawable == 0) throw ConfigError("PopulationModel has no drawable apps");

  const std::uint32_t lo = std::max<std::uint32_t>(1, model.min_apps);
  const std::uint32_t hi = std::max<std::uint32_t>(lo, model.max_apps);
  std::uint64_t napps = rng.range(lo, hi);
  if (napps > drawable) napps = drawable;

  ScenarioConfig sc;
  sc.apps.reserve(napps);
  for (std::uint64_t i = 0; i < napps; ++i) {
    const std::size_t idx = rng.weighted(w);
    sc.apps.push_back(static_cast<AppId>(idx));
    w[idx] = 0.0;  // without replacement: a session's apps are distinct
  }
  sc.total_accesses = dev.session_accesses;
  sc.slice_mean = std::max<std::uint64_t>(1, dev.slice_mean);
  sc.seed = seed;
  return sc;
}

}  // namespace mobcache
