#pragma once
/// \file generator.hpp
/// Turns an AppSpec into a concrete interleaved user/kernel access trace.

#include <cstdint>
#include <memory>

#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

struct GeneratorConfig {
  /// Total records to emit (user + kernel combined).
  std::uint64_t target_accesses = 2'000'000;
  std::uint64_t seed = 1;
};

/// Streaming app-trace generator: the phase machine of generate_trace() as a
/// resumable state machine emitting ~kStreamChunkRecords records per chunk,
/// so an app trace never has to exist fully in memory. Deterministic in
/// (spec, cfg.seed); generate_trace() is exactly materialize() over this
/// stream, so the chunked and batch record sequences are identical by
/// construction (tests/test_trace_stream.cpp pins it).
class AppTraceStream final : public TraceStream {
 public:
  AppTraceStream(const AppSpec& spec, const GeneratorConfig& cfg);
  ~AppTraceStream() override;

  const std::string& name() const override;
  std::span<const Access> next_chunk() override;
  void reset() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Generates the trace for one app. Deterministic in (spec, cfg.seed).
/// The result satisfies Trace::modes_consistent_with_addresses().
Trace generate_trace(const AppSpec& spec, const GeneratorConfig& cfg);

}  // namespace mobcache
