#pragma once
/// \file generator.hpp
/// Turns an AppSpec into a concrete interleaved user/kernel access trace.

#include <cstdint>

#include "trace/trace.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

struct GeneratorConfig {
  /// Total records to emit (user + kernel combined).
  std::uint64_t target_accesses = 2'000'000;
  std::uint64_t seed = 1;
};

/// Generates the trace for one app. Deterministic in (spec, cfg.seed).
/// The result satisfies Trace::modes_consistent_with_addresses().
Trace generate_trace(const AppSpec& spec, const GeneratorConfig& cfg);

}  // namespace mobcache
