#pragma once
/// \file app_model.hpp
/// Parameterized models of mobile applications.
///
/// Each app is a small phase machine. A phase describes the user-mode
/// behavior (hot code, data working set and access pattern) plus the rates
/// at which it invokes kernel services. Interactive apps alternate
/// bursty user computation with dense kernel activity (input, binder, I/O,
/// vsync); compute apps grind through large working sets with few syscalls.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/kernel_model.hpp"

namespace mobcache {

/// The modeled application suite. The first eight are the interactive
/// smartphone apps of the paper's motivation; the last two are
/// compute-bound controls with low kernel share.
enum class AppId : std::uint8_t {
  Launcher,
  Browser,
  Game,
  VideoPlayer,
  AudioPlayer,
  Email,
  Maps,
  Social,
  ComputeFft,
  ComputeMatmul,
  Camera,     ///< viewfinder + burst capture: DMA-heavy, page-fault bursts
  Messenger,  ///< chat: long idle, notification-driven kernel activity
};

inline constexpr int kAppCount = 12;

const char* app_name(AppId id);

/// How a phase walks its data working set.
enum class AccessPattern : std::uint8_t {
  ZipfReuse,     ///< skewed reuse: hot subset pinned, long tail
  Stream,        ///< sequential, no reuse beyond spatial
  Stride,        ///< fixed-stride sweep (image rows, audio frames)
  PointerChase,  ///< dependent random walk (DOM/JS objects, maps tiles)
};

/// Kernel invocation rate: expected episodes per 1000 user-mode accesses.
struct ServiceRate {
  KernelService service;
  double per_kilo_user;
};

struct PhaseSpec {
  std::string name;
  /// User code: number of hot text lines and zipf skew (small + skewed =>
  /// excellent L1I locality, the opposite of kernel paths).
  std::uint32_t hot_code_lines = 192;
  double code_zipf_alpha = 1.1;
  /// Instruction fetches emitted per data access.
  double ifetch_per_data = 2.0;
  /// Data working set.
  std::uint64_t ws_bytes = 512ull << 10;
  AccessPattern pattern = AccessPattern::ZipfReuse;
  double data_zipf_alpha = 0.95;  ///< for ZipfReuse
  std::uint32_t stride_lines = 4;  ///< for Stride
  double store_fraction = 0.25;
  /// Mean user-mode accesses spent in the phase per visit.
  std::uint64_t mean_phase_len = 150'000;
  /// Kernel services this phase triggers.
  std::vector<ServiceRate> services;
};

struct AppSpec {
  AppId id = AppId::Launcher;
  std::string name;
  bool interactive = true;
  std::vector<PhaseSpec> phases;
  /// Phase selection weights (row = current phase, col = next). Empty =>
  /// uniform random next phase.
  std::vector<std::vector<double>> transitions;
  /// Scheduler tick every this many user accesses (models the periodic
  /// timer interrupt, present in every app).
  std::uint64_t sched_tick_interval = 4000;
};

/// Builds the calibrated spec for one app.
AppSpec make_app(AppId id);

/// All twelve apps.
std::vector<AppId> all_apps();
/// The eight interactive apps (paper's primary suite, frozen so headline
/// numbers stay comparable across versions).
std::vector<AppId> interactive_apps();
/// Additional interactive apps beyond the primary suite (camera,
/// messenger) — used by the robustness experiments.
std::vector<AppId> extra_apps();

}  // namespace mobcache
