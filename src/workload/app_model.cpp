#include "workload/app_model.hpp"

namespace mobcache {

const char* app_name(AppId id) {
  switch (id) {
    case AppId::Launcher: return "launcher";
    case AppId::Browser: return "browser";
    case AppId::Game: return "game";
    case AppId::VideoPlayer: return "video";
    case AppId::AudioPlayer: return "audio";
    case AppId::Email: return "email";
    case AppId::Maps: return "maps";
    case AppId::Social: return "social";
    case AppId::ComputeFft: return "fft";
    case AppId::ComputeMatmul: return "matmul";
    case AppId::Camera: return "camera";
    case AppId::Messenger: return "messenger";
  }
  return "?";
}

std::vector<AppId> all_apps() {
  return {AppId::Launcher, AppId::Browser,  AppId::Game,
          AppId::VideoPlayer, AppId::AudioPlayer, AppId::Email,
          AppId::Maps,     AppId::Social,   AppId::ComputeFft,
          AppId::ComputeMatmul, AppId::Camera, AppId::Messenger};
}

std::vector<AppId> extra_apps() { return {AppId::Camera, AppId::Messenger}; }

std::vector<AppId> interactive_apps() {
  return {AppId::Launcher, AppId::Browser,  AppId::Game, AppId::VideoPlayer,
          AppId::AudioPlayer, AppId::Email, AppId::Maps, AppId::Social};
}

namespace {

using KS = KernelService;

// Calibration note: service rates and working-set sizes below were tuned
// (tests/test_workload.cpp pins the bands) so that interactive apps show
// the paper's motivating behavior — >40% of L2 accesses from kernel mode —
// while compute apps stay below 15%, and shared-L2 miss rates land in a
// plausible 10–40% range for a 2 MB mobile L2.

PhaseSpec phase(std::string name, std::uint64_t ws_bytes, AccessPattern pat,
                double store_frac, std::uint64_t mean_len,
                std::vector<ServiceRate> services) {
  PhaseSpec p;
  p.name = std::move(name);
  p.ws_bytes = ws_bytes;
  p.pattern = pat;
  p.store_fraction = store_frac;
  p.mean_phase_len = mean_len;
  p.services = std::move(services);
  return p;
}

AppSpec launcher() {
  AppSpec a;
  a.id = AppId::Launcher;
  a.name = app_name(a.id);
  // Idle home screen: tiny user footprint, UI activity is kernel-driven.
  PhaseSpec idle = phase("idle", 96ull << 10, AccessPattern::ZipfReuse, 0.1,
                         80'000,
                         {{KS::InputEvent, 2.2},
                          {KS::BinderIpc, 1.6},
                          {KS::FrameFlip, 0.9},
                          {KS::NetRx, 0.4}});
  PhaseSpec scroll = phase("scroll", 320ull << 10, AccessPattern::Stride, 0.2,
                           120'000,
                           {{KS::InputEvent, 3.6},
                            {KS::FrameFlip, 2.2},
                            {KS::BinderIpc, 1.1},
                            {KS::PageFault, 0.4}});
  PhaseSpec app_switch =
      phase("app-switch", 512ull << 10, AccessPattern::PointerChase, 0.3,
            60'000,
            {{KS::BinderIpc, 4.0},
             {KS::PageFault, 2.7},
             {KS::FileRead, 1.4},
             {KS::FrameFlip, 1.4}});
  a.phases = {idle, scroll, app_switch};
  a.transitions = {{0.5, 0.35, 0.15}, {0.4, 0.4, 0.2}, {0.6, 0.3, 0.1}};
  return a;
}

AppSpec browser() {
  AppSpec a;
  a.id = AppId::Browser;
  a.name = app_name(a.id);
  PhaseSpec load = phase("page-load", 640ull << 10,
                         AccessPattern::PointerChase, 0.35, 100'000,
                         {{KS::NetRx, 4.2},
                          {KS::PageFault, 2.1},
                          {KS::FileRead, 0.9},
                          {KS::BinderIpc, 0.9}});
  load.hot_code_lines = 320;  // JS engine + layout: bigger hot code
  PhaseSpec render = phase("render", 384ull << 10, AccessPattern::Stride, 0.3,
                           90'000,
                           {{KS::FrameFlip, 2.2}, {KS::BinderIpc, 0.7}});
  PhaseSpec scroll = phase("scroll", 320ull << 10, AccessPattern::Stride,
                           0.15, 110'000,
                           {{KS::InputEvent, 3.8},
                            {KS::FrameFlip, 2.6},
                            {KS::NetRx, 0.5}});
  PhaseSpec idle = phase("idle-read", 256ull << 10, AccessPattern::ZipfReuse,
                         0.05, 70'000,
                         {{KS::InputEvent, 1.4},
                          {KS::NetRx, 0.9},
                          {KS::BinderIpc, 0.5}});
  a.phases = {load, render, scroll, idle};
  a.transitions = {{0.1, 0.5, 0.2, 0.2},
                   {0.1, 0.2, 0.4, 0.3},
                   {0.2, 0.2, 0.3, 0.3},
                   {0.3, 0.1, 0.3, 0.3}};
  return a;
}

AppSpec game() {
  AppSpec a;
  a.id = AppId::Game;
  a.name = app_name(a.id);
  PhaseSpec frame = phase("frame-loop", 768ull << 10,
                          AccessPattern::ZipfReuse, 0.3, 200'000,
                          {{KS::InputEvent, 2.7},
                           {KS::FrameFlip, 2.5},
                           {KS::AudioDma, 0.9},
                           {KS::BinderIpc, 0.5}});
  frame.hot_code_lines = 384;
  frame.data_zipf_alpha = 0.95;
  PhaseSpec asset = phase("asset-load", 2ull << 20, AccessPattern::Stream,
                          0.4, 50'000,
                          {{KS::FileRead, 4.5},
                           {KS::PageFault, 2.2},
                           {KS::BinderIpc, 0.5}});
  a.phases = {frame, asset};
  a.transitions = {{0.85, 0.15}, {0.8, 0.2}};
  return a;
}

AppSpec video_player() {
  AppSpec a;
  a.id = AppId::VideoPlayer;
  a.name = app_name(a.id);
  PhaseSpec decode = phase("decode", 640ull << 10, AccessPattern::Stride,
                           0.45, 180'000,
                           {{KS::FileRead, 2.6},
                            {KS::FrameFlip, 2.6},
                            {KS::AudioDma, 1.3},
                            {KS::BinderIpc, 0.4}});
  decode.stride_lines = 8;  // macroblock rows
  PhaseSpec ui = phase("ui", 192ull << 10, AccessPattern::ZipfReuse, 0.1,
                       60'000,
                       {{KS::InputEvent, 1.8},
                        {KS::BinderIpc, 1.1},
                        {KS::FrameFlip, 1.1}});
  a.phases = {decode, ui};
  a.transitions = {{0.9, 0.1}, {0.6, 0.4}};
  return a;
}

AppSpec audio_player() {
  AppSpec a;
  a.id = AppId::AudioPlayer;
  a.name = app_name(a.id);
  // Small decoder working set: the CPU-side work is light, so kernel
  // activity (DMA periods, file reads) dominates L2 traffic.
  PhaseSpec decode = phase("decode", 256ull << 10, AccessPattern::ZipfReuse,
                           0.3, 150'000,
                           {{KS::AudioDma, 4.0}, {KS::FileRead, 1.8}});
  PhaseSpec idle_ui = phase("idle-ui", 96ull << 10, AccessPattern::ZipfReuse,
                            0.1, 80'000,
                            {{KS::AudioDma, 4.0},
                             {KS::InputEvent, 0.7},
                             {KS::BinderIpc, 0.5}});
  a.phases = {decode, idle_ui};
  a.transitions = {{0.7, 0.3}, {0.5, 0.5}};
  return a;
}

AppSpec email() {
  AppSpec a;
  a.id = AppId::Email;
  a.name = app_name(a.id);
  PhaseSpec sync = phase("sync", 512ull << 10, AccessPattern::Stream, 0.4,
                         70'000,
                         {{KS::NetRx, 3.2},
                          {KS::NetTx, 1.4},
                          {KS::FileWrite, 2.2},
                          {KS::BinderIpc, 0.7}});
  PhaseSpec read = phase("read", 384ull << 10, AccessPattern::ZipfReuse, 0.1,
                         120'000,
                         {{KS::InputEvent, 2.2},
                          {KS::FrameFlip, 1.1},
                          {KS::FileRead, 0.9},
                          {KS::BinderIpc, 0.7}});
  PhaseSpec compose = phase("compose", 256ull << 10, AccessPattern::ZipfReuse,
                            0.3, 90'000,
                            {{KS::InputEvent, 4.0},
                             {KS::BinderIpc, 0.9},
                             {KS::FileWrite, 0.5}});
  a.phases = {sync, read, compose};
  a.transitions = {{0.2, 0.6, 0.2}, {0.2, 0.5, 0.3}, {0.2, 0.4, 0.4}};
  return a;
}

AppSpec maps() {
  AppSpec a;
  a.id = AppId::Maps;
  a.name = app_name(a.id);
  PhaseSpec pan = phase("pan", 768ull << 10, AccessPattern::PointerChase,
                        0.25, 130'000,
                        {{KS::NetRx, 2.9},
                         {KS::InputEvent, 2.5},
                         {KS::FrameFlip, 1.8},
                         {KS::PageFault, 1.1}});
  PhaseSpec route = phase("route", 1ull << 20, AccessPattern::ZipfReuse, 0.2,
                          100'000,
                          {{KS::BinderIpc, 0.5}, {KS::NetRx, 0.5}});
  route.data_zipf_alpha = 0.7;
  a.phases = {pan, route};
  a.transitions = {{0.7, 0.3}, {0.6, 0.4}};
  return a;
}

AppSpec social() {
  AppSpec a;
  a.id = AppId::Social;
  a.name = app_name(a.id);
  PhaseSpec feed = phase("feed-scroll", 1ull << 20, AccessPattern::Stream,
                         0.3, 140'000,
                         {{KS::NetRx, 3.2},
                          {KS::InputEvent, 2.5},
                          {KS::FrameFlip, 1.8},
                          {KS::PageFault, 0.9}});
  PhaseSpec post = phase("post", 384ull << 10, AccessPattern::ZipfReuse, 0.3,
                         60'000,
                         {{KS::InputEvent, 3.6},
                          {KS::NetTx, 1.8},
                          {KS::BinderIpc, 1.1}});
  a.phases = {feed, post};
  a.transitions = {{0.8, 0.2}, {0.7, 0.3}};
  return a;
}

AppSpec compute_fft() {
  AppSpec a;
  a.id = AppId::ComputeFft;
  a.name = app_name(a.id);
  a.interactive = false;
  a.sched_tick_interval = 4000;  // timer still fires
  PhaseSpec butterfly = phase("butterfly", 4ull << 20, AccessPattern::Stride,
                              0.5, 400'000, {});
  butterfly.stride_lines = 16;
  butterfly.ifetch_per_data = 1.5;  // tight numeric loop
  butterfly.hot_code_lines = 64;
  PhaseSpec transpose = phase("transpose", 4ull << 20, AccessPattern::Stride,
                              0.5, 200'000, {});
  transpose.stride_lines = 64;
  transpose.hot_code_lines = 48;
  a.phases = {butterfly, transpose};
  a.transitions = {{0.7, 0.3}, {0.7, 0.3}};
  return a;
}

AppSpec compute_matmul() {
  AppSpec a;
  a.id = AppId::ComputeMatmul;
  a.name = app_name(a.id);
  a.interactive = false;
  PhaseSpec inner = phase("blocked-inner", 2ull << 20,
                          AccessPattern::ZipfReuse, 0.35, 400'000, {});
  inner.data_zipf_alpha = 0.6;
  inner.hot_code_lines = 48;
  inner.ifetch_per_data = 1.2;
  PhaseSpec pack = phase("pack", 3ull << 20, AccessPattern::Stream, 0.5,
                         150'000, {{KS::PageFault, 0.1}});
  pack.hot_code_lines = 48;
  a.phases = {inner, pack};
  a.transitions = {{0.8, 0.2}, {0.8, 0.2}};
  return a;
}

AppSpec camera() {
  AppSpec a;
  a.id = AppId::Camera;
  a.name = app_name(a.id);
  // Viewfinder: steady sensor DMA (audio-dma episodes stand in for the
  // sensor period interrupts), ISP-ish strided processing of the preview.
  PhaseSpec viewfinder = phase("viewfinder", 640ull << 10,
                               AccessPattern::Stride, 0.4, 160'000,
                               {{KS::AudioDma, 2.9},
                                {KS::FrameFlip, 2.2},
                                {KS::InputEvent, 1.1},
                                {KS::BinderIpc, 0.5}});
  viewfinder.stride_lines = 8;
  // Burst capture: pages fault in for the full-resolution buffers and the
  // encoder streams them to the page cache.
  PhaseSpec burst = phase("burst-capture", 2ull << 20, AccessPattern::Stream,
                          0.6, 50'000,
                          {{KS::PageFault, 2.9},
                           {KS::FileWrite, 2.5},
                           {KS::AudioDma, 1.4},
                           {KS::FrameFlip, 0.9}});
  a.phases = {viewfinder, burst};
  a.transitions = {{0.8, 0.2}, {0.6, 0.4}};
  return a;
}

AppSpec messenger() {
  AppSpec a;
  a.id = AppId::Messenger;
  a.name = app_name(a.id);
  // Mostly idle chat screen: almost everything that happens is kernel work
  // (notifications arriving, binder to the notification service).
  PhaseSpec idle = phase("idle-chat", 128ull << 10, AccessPattern::ZipfReuse,
                         0.1, 100'000,
                         {{KS::NetRx, 1.8},
                          {KS::BinderIpc, 1.4},
                          {KS::InputEvent, 0.9},
                          {KS::FrameFlip, 0.5}});
  PhaseSpec type = phase("typing", 256ull << 10, AccessPattern::ZipfReuse,
                         0.3, 80'000,
                         {{KS::InputEvent, 4.0},
                          {KS::FrameFlip, 1.4},
                          {KS::NetTx, 0.7},
                          {KS::BinderIpc, 0.7}});
  PhaseSpec media = phase("media-view", 768ull << 10, AccessPattern::Stream,
                          0.2, 60'000,
                          {{KS::NetRx, 2.9},
                           {KS::FileRead, 1.4},
                           {KS::PageFault, 0.9},
                           {KS::FrameFlip, 1.1}});
  a.phases = {idle, type, media};
  a.transitions = {{0.5, 0.3, 0.2}, {0.5, 0.3, 0.2}, {0.6, 0.2, 0.2}};
  return a;
}

}  // namespace

AppSpec make_app(AppId id) {
  switch (id) {
    case AppId::Launcher: return launcher();
    case AppId::Browser: return browser();
    case AppId::Game: return game();
    case AppId::VideoPlayer: return video_player();
    case AppId::AudioPlayer: return audio_player();
    case AppId::Email: return email();
    case AppId::Maps: return maps();
    case AppId::Social: return social();
    case AppId::ComputeFft: return compute_fft();
    case AppId::ComputeMatmul: return compute_matmul();
    case AppId::Camera: return camera();
    case AppId::Messenger: return messenger();
  }
  return launcher();
}

}  // namespace mobcache
