#include "workload/generator.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace mobcache {
namespace {

/// User-space address plan: one text slice and one data arena per phase, so
/// phases have disjoint footprints (as different activity in a real app
/// does) while revisits to a phase re-touch the same lines.
constexpr Addr kUserTextBase = 0x0000'0000'0040'0000ull;
constexpr Addr kUserDataBase = 0x0000'7000'0000'0000ull;
constexpr std::uint64_t kPhaseTextSlice = 1ull << 20;
constexpr std::uint64_t kPhaseDataSlice = 1ull << 32;

/// Runtime cursor state for one phase.
struct PhaseState {
  std::unique_ptr<ZipfSampler> code;
  std::unique_ptr<ZipfSampler> data_zipf;
  std::uint64_t ws_lines = 0;
  std::uint64_t stream_cursor = 0;
  std::uint64_t stride_cursor = 0;
  std::uint64_t chase_cursor = 1;
};

Addr phase_text_base(std::size_t phase) {
  return kUserTextBase + phase * kPhaseTextSlice;
}
Addr phase_data_base(std::size_t phase) {
  return kUserDataBase + phase * kPhaseDataSlice;
}

}  // namespace

/// The whole generate_trace() loop, suspended between chunks. `emitted` plus
/// the in-flight chunk size plays the role the growing buffer's size played
/// in the batch formulation, so every "have we hit the target yet" decision
/// — and therefore every Rng draw — lands on the same record boundaries.
struct AppTraceStream::Impl {
  AppSpec spec;
  GeneratorConfig cfg;
  Rng rng{0};
  KernelModel kernel{0};
  std::vector<PhaseState> states;
  std::size_t phase_idx = 0;
  std::uint64_t phase_remaining = 0;
  std::uint64_t user_accesses = 0;
  std::uint64_t next_tick = 0;
  double ifetch_debt = 0.0;
  std::uint64_t emitted = 0;  ///< records handed out in earlier chunks
  bool finished = false;
  ChunkBuffer chunk;

  Impl(const AppSpec& s, const GeneratorConfig& c) : spec(s), cfg(c) {
    restart();
  }

  void restart() {
    rng = Rng(cfg.seed * 0x9e37'79b9'7f4a'7c15ull +
              static_cast<int>(spec.id));
    kernel = KernelModel(cfg.seed);
    states.clear();
    states.resize(spec.phases.size());
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      const PhaseSpec& p = spec.phases[i];
      states[i].ws_lines = std::max<std::uint64_t>(1, p.ws_bytes / kLineSize);
      states[i].code = std::make_unique<ZipfSampler>(p.hot_code_lines,
                                                     p.code_zipf_alpha);
      if (p.pattern == AccessPattern::ZipfReuse) {
        states[i].data_zipf = std::make_unique<ZipfSampler>(
            states[i].ws_lines, p.data_zipf_alpha);
      }
    }
    phase_idx = 0;
    phase_remaining = 0;
    user_accesses = 0;
    next_tick = spec.sched_tick_interval;
    ifetch_debt = 0.0;
    emitted = 0;
    finished = false;
  }

  Addr next_data_addr(const PhaseSpec& p, PhaseState& st) {
    const Addr base = phase_data_base(phase_idx);
    std::uint64_t line = 0;
    switch (p.pattern) {
      case AccessPattern::ZipfReuse:
        line = st.data_zipf->sample(rng);
        break;
      case AccessPattern::Stream:
        line = st.stream_cursor++ % st.ws_lines;
        break;
      case AccessPattern::Stride: {
        line = st.stride_cursor % st.ws_lines;
        st.stride_cursor += p.stride_lines;
        if (st.stride_cursor >= st.ws_lines &&
            st.stride_cursor % st.ws_lines < p.stride_lines) {
          ++st.stride_cursor;  // phase-shift each sweep to cover all lines
        }
        break;
      }
      case AccessPattern::PointerChase:
        st.chase_cursor =
            st.chase_cursor * 2862933555777941757ull + 3037000493ull;
        line = st.chase_cursor % st.ws_lines;
        break;
    }
    return base + line * kLineSize;
  }

  /// Fills `out` with at least kStreamChunkRecords records (or everything
  /// remaining). The loop body is the batch generator's, with the running
  /// buffer size replaced by emitted + out.size().
  void fill(std::vector<Access>& out) {
    auto total = [&] { return emitted + out.size(); };
    auto emit_user = [&](Addr addr, AccessType type) {
      Access a;
      a.addr = addr;
      a.type = type;
      a.mode = Mode::User;
      a.thread = 0;
      out.push_back(a);
      ++user_accesses;
    };

    while (total() < cfg.target_accesses &&
           out.size() < kStreamChunkRecords) {
      if (phase_remaining == 0) {
        // Enter next phase.
        if (!spec.transitions.empty()) {
          phase_idx = rng.weighted(spec.transitions[phase_idx]);
        } else {
          phase_idx = rng.below(spec.phases.size());
        }
        const PhaseSpec& p = spec.phases[phase_idx];
        phase_remaining =
            rng.geometric(1.0 / static_cast<double>(p.mean_phase_len));
      }
      const PhaseSpec& p = spec.phases[phase_idx];
      PhaseState& st = states[phase_idx];

      // One user-mode chunk.
      const std::uint64_t burst =
          std::min<std::uint64_t>(phase_remaining, rng.range(128, 512));
      for (std::uint64_t i = 0;
           i < burst && total() < cfg.target_accesses; ++i) {
        ifetch_debt += p.ifetch_per_data;
        while (ifetch_debt >= 1.0) {
          emit_user(phase_text_base(phase_idx) +
                        st.code->sample(rng) * kLineSize,
                    AccessType::InstFetch);
          ifetch_debt -= 1.0;
        }
        emit_user(next_data_addr(p, st), rng.chance(p.store_fraction)
                                             ? AccessType::Write
                                             : AccessType::Read);
      }
      phase_remaining -= std::min(burst, phase_remaining);

      // Periodic timer interrupt.
      while (user_accesses >= next_tick) {
        kernel.emit_episode(KernelService::SchedTick, /*thread=*/1, out, rng);
        next_tick += spec.sched_tick_interval;
      }

      // Phase-driven kernel services.
      for (const ServiceRate& sr : p.services) {
        if (sr.per_kilo_user <= 0.0) continue;
        const double expected =
            sr.per_kilo_user * static_cast<double>(burst) / 1000.0;
        std::uint64_t episodes = static_cast<std::uint64_t>(expected);
        if (rng.chance(expected - static_cast<double>(episodes))) ++episodes;
        const bool irq_context = sr.service == KernelService::InputEvent ||
                                 sr.service == KernelService::AudioDma ||
                                 sr.service == KernelService::FrameFlip;
        for (std::uint64_t e = 0;
             e < episodes && total() < cfg.target_accesses; ++e) {
          kernel.emit_episode(sr.service, irq_context ? 1 : 0, out, rng);
        }
      }
    }
    if (total() >= cfg.target_accesses) finished = true;
    emitted += out.size();
  }
};

AppTraceStream::AppTraceStream(const AppSpec& spec, const GeneratorConfig& cfg)
    : impl_(std::make_unique<Impl>(spec, cfg)) {}

AppTraceStream::~AppTraceStream() = default;

const std::string& AppTraceStream::name() const { return impl_->spec.name; }

std::span<const Access> AppTraceStream::next_chunk() {
  if (impl_->finished) return {};
  std::vector<Access>& out = impl_->chunk.refill();
  impl_->fill(out);
  if (out.empty()) return {};
  return impl_->chunk.publish();
}

void AppTraceStream::reset() { impl_->restart(); }

Trace generate_trace(const AppSpec& spec, const GeneratorConfig& cfg) {
  AppTraceStream stream(spec, cfg);
  return materialize(stream);
}

}  // namespace mobcache
