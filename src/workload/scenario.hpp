#pragma once
/// \file scenario.hpp
/// Multitasking scenarios: several apps time-sliced on one core with
/// context-switch kernel activity between slices.
///
/// Phones run a foreground app plus rotating background work (music, sync,
/// notifications). A scenario trace interleaves per-app traces in random
/// foreground slices; each switch emits the kernel's scheduler/binder/fault
/// work. App user address spaces are disjoint (separate processes); the
/// kernel address space is shared by all of them — which concentrates even
/// more reuse in the kernel segment, strengthening the partitioning story
/// (experiment E11).
///
/// Two producers exist: generate_scenario() materializes the whole session,
/// and ScenarioStream emits the identical record sequence chunk by chunk
/// with O(apps · chunk) memory — the E22 fleet path. On top of them,
/// PopulationModel/sample_session() draw whole sessions from device-mix and
/// app-mix distributions (docs/WORKLOADS.md), which is how the fleet sweep
/// turns one base seed into millions of distinct-but-reproducible users.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

struct ScenarioConfig {
  std::vector<AppId> apps;
  std::uint64_t total_accesses = 4'000'000;
  /// Mean records per foreground slice (~a few UI frames).
  std::uint64_t slice_mean = 200'000;
  std::uint64_t seed = 1;
};

/// Generates the interleaved trace. Apps appear round-robin with
/// geometrically distributed slice lengths; user addresses are relocated
/// into per-app slots, kernel addresses are shared. Deterministic in the
/// seed; result satisfies Trace::modes_consistent_with_addresses().
Trace generate_scenario(const ScenarioConfig& cfg);

/// Streaming producer of the exact generate_scenario() record sequence.
/// Per-app source traces are themselves AppTraceStreams pulled lazily and
/// restarted on exhaustion — a restart replays the identical per-app
/// sequence, which is precisely what the materialized path's cursor
/// wrap-around (`cursor % src.size()`) does, so neither the sources nor the
/// interleaved session ever exist fully in memory.
class ScenarioStream final : public TraceStream {
 public:
  explicit ScenarioStream(const ScenarioConfig& cfg);
  ~ScenarioStream() override;

  const std::string& name() const override;
  std::span<const Access> next_chunk() override;
  void reset() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Address-slot stride separating two apps' user address spaces.
inline constexpr Addr kAppSlotStride = 1ull << 44;

/// One device tier in the fleet population (entry / mid-range / flagship):
/// how likely it is, how long its sessions run, and how fast it switches
/// between foreground apps.
struct DeviceClassSpec {
  std::string name;
  double weight = 1.0;                      ///< unnormalized draw weight
  std::uint64_t session_accesses = 2'000'000;
  std::uint64_t slice_mean = 100'000;
};

/// Fleet session distribution: device tiers plus per-app popularity. A
/// session is a device draw, an app-count draw, and a without-replacement
/// weighted draw of that many distinct apps.
struct PopulationModel {
  std::vector<DeviceClassSpec> devices;
  /// Unnormalized popularity per AppId (index = AppId value). Shorter
  /// vectors are padded with weight 1.0; zero-weight apps are never drawn.
  std::vector<double> app_weights;
  std::uint32_t min_apps = 1;
  std::uint32_t max_apps = 4;

  /// The default fleet mix used by E22: three device tiers with session
  /// lengths 0.5× / 1× / 2× `mean_session_accesses`, and app popularity
  /// skewed toward the interactive apps (messaging/browser/social top;
  /// compute controls rare).
  static PopulationModel default_mix(
      std::uint64_t mean_session_accesses = 2'000'000);
};

/// Draws one session configuration from the population. Pure function of
/// (model, seed): the fleet sampler feeds sweep_point_seed(base, session)
/// here, so session i is the same user on every run, shard layout and
/// --jobs value. The returned config's seed is `seed` itself.
ScenarioConfig sample_session(const PopulationModel& model,
                              std::uint64_t seed);

}  // namespace mobcache
