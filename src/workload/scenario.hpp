#pragma once
/// \file scenario.hpp
/// Multitasking scenarios: several apps time-sliced on one core with
/// context-switch kernel activity between slices.
///
/// Phones run a foreground app plus rotating background work (music, sync,
/// notifications). A scenario trace interleaves per-app traces in random
/// foreground slices; each switch emits the kernel's scheduler/binder/fault
/// work. App user address spaces are disjoint (separate processes); the
/// kernel address space is shared by all of them — which concentrates even
/// more reuse in the kernel segment, strengthening the partitioning story
/// (experiment E11).

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

struct ScenarioConfig {
  std::vector<AppId> apps;
  std::uint64_t total_accesses = 4'000'000;
  /// Mean records per foreground slice (~a few UI frames).
  std::uint64_t slice_mean = 200'000;
  std::uint64_t seed = 1;
};

/// Generates the interleaved trace. Apps appear round-robin with
/// geometrically distributed slice lengths; user addresses are relocated
/// into per-app slots, kernel addresses are shared. Deterministic in the
/// seed; result satisfies Trace::modes_consistent_with_addresses().
Trace generate_scenario(const ScenarioConfig& cfg);

/// Address-slot stride separating two apps' user address spaces.
inline constexpr Addr kAppSlotStride = 1ull << 44;

}  // namespace mobcache
