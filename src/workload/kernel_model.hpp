#pragma once
/// \file kernel_model.hpp
/// Synthetic OS-kernel service model.
///
/// Replaces the Android/Linux kernel activity a gem5 full-system run would
/// produce. Each KernelService emits one "episode": the instruction-fetch
/// walk over the (long, poorly L1-cached) handler path plus the data
/// references the service performs on kernel structures. Address regions,
/// footprints and burst shapes are chosen to reproduce the properties the
/// paper exploits:
///   * kernel episodes touch many distinct lines per invocation → they miss
///     L1 often and contribute >40% of L2 accesses in interactive apps;
///   * consecutive invocations reuse the same handler text and hot
///     structures → a modest dedicated kernel segment captures them;
///   * kernel blocks are rewritten/retired quickly → short lifetimes, which
///     is what makes short-retention STT-RAM viable for the kernel segment.

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace mobcache {

/// Kernel service categories modeled (an abstraction of the syscalls/IRQ
/// handlers interactive Android apps exercise most).
enum class KernelService : std::uint8_t {
  FileRead,     ///< read(2): VFS + page-cache streaming
  FileWrite,    ///< write(2): VFS + page-cache dirtying
  NetRx,        ///< socket receive: skb + buffer streaming
  NetTx,        ///< socket send
  BinderIpc,    ///< Android binder transaction (UI ↔ services)
  SchedTick,    ///< timer interrupt + scheduler bookkeeping
  PageFault,    ///< anonymous page fault incl. page zeroing
  InputEvent,   ///< touchscreen/input IRQ delivery
  AudioDma,     ///< audio buffer period interrupt
  FrameFlip,    ///< display vsync / compositor buffer flip
};

inline constexpr int kKernelServiceCount = 10;

constexpr std::string_view to_string(KernelService s) {
  switch (s) {
    case KernelService::FileRead: return "file-read";
    case KernelService::FileWrite: return "file-write";
    case KernelService::NetRx: return "net-rx";
    case KernelService::NetTx: return "net-tx";
    case KernelService::BinderIpc: return "binder";
    case KernelService::SchedTick: return "sched-tick";
    case KernelService::PageFault: return "page-fault";
    case KernelService::InputEvent: return "input";
    case KernelService::AudioDma: return "audio";
    case KernelService::FrameFlip: return "frame-flip";
  }
  return "?";
}

/// Layout of the simulated kernel address space (all above
/// kKernelSpaceBase; sizes are line-granular working areas, not claims
/// about a real kernel image).
struct KernelLayout {
  Addr text_base = kKernelSpaceBase + 0x0000'0000;
  std::uint64_t text_bytes = 6ull << 20;  ///< handler code, split per service
  Addr page_cache_base = kKernelSpaceBase + 0x1000'0000;
  std::uint64_t page_cache_bytes = 64ull << 20;
  Addr slab_base = kKernelSpaceBase + 0x2000'0000;
  std::uint64_t slab_bytes = 4ull << 20;  ///< task structs, inodes, dentries
  Addr net_base = kKernelSpaceBase + 0x3000'0000;
  std::uint64_t net_bytes = 8ull << 20;   ///< skbs + socket buffers
  Addr binder_base = kKernelSpaceBase + 0x4000'0000;
  std::uint64_t binder_bytes = 4ull << 20;
  Addr pgtable_base = kKernelSpaceBase + 0x5000'0000;
  std::uint64_t pgtable_bytes = 8ull << 20;
  Addr runq_base = kKernelSpaceBase + 0x6000'0000;
  std::uint64_t runq_bytes = 256ull << 10;  ///< per-cpu runqueues, timer wheel
  Addr gfx_base = kKernelSpaceBase + 0x7000'0000;
  std::uint64_t gfx_bytes = 16ull << 20;  ///< framebuffer/ion buffers
};

/// Stateful kernel activity generator shared by all apps in a scenario.
class KernelModel {
 public:
  explicit KernelModel(std::uint64_t seed);

  /// Appends one full episode of `service` to `out` (mode=Kernel). The
  /// vector overload is the primary API — generators accumulate records in
  /// a flat buffer and bulk-transfer it via Trace::append once, instead of
  /// paying a push per record.
  void emit_episode(KernelService service, std::uint16_t thread,
                    std::vector<Access>& out, Rng& rng);
  /// Convenience overload for callers holding a Trace (tests, ad-hoc use).
  void emit_episode(KernelService service, std::uint16_t thread, Trace& out,
                    Rng& rng);

  const KernelLayout& layout() const { return layout_; }

  /// Rough episode length in accesses (mean), used by the generator to
  /// budget kernel share. Exposed for tests.
  static double mean_episode_accesses(KernelService s);

 private:
  /// Emits the handler-path instruction walk: `lines` distinct text lines
  /// starting at a per-(service,invocation) offset, with hot shared prologue
  /// lines mixed in.
  void emit_text_walk(KernelService s, std::uint32_t lines,
                      std::vector<Access>& out, Rng& rng,
                      std::uint16_t thread);

  void data(Addr addr, bool write, std::uint16_t thread,
            std::vector<Access>& out) const;

  KernelLayout layout_;
  ZipfSampler hot_text_;      ///< shared hot entry/exit path lines
  ZipfSampler slab_sampler_;  ///< skewed task/inode reuse
  std::uint64_t page_cache_cursor_ = 0;  ///< streaming file position (lines)
  std::uint64_t net_cursor_ = 0;
  std::uint64_t binder_cursor_ = 0;
  std::uint64_t gfx_cursor_ = 0;
  std::uint64_t fault_cursor_ = 0;
};

}  // namespace mobcache
