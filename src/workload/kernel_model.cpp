#include "workload/kernel_model.hpp"

#include <algorithm>

namespace mobcache {
namespace {

/// Per-service handler code span (distinct text lines walked per
/// invocation) and its jitter. Long paths are what make kernel ifetches
/// L1I-hostile.
struct TextShape {
  std::uint32_t mean_lines;
  std::uint32_t jitter;
};

TextShape text_shape(KernelService s) {
  switch (s) {
    case KernelService::FileRead: return {60, 16};
    case KernelService::FileWrite: return {64, 16};
    case KernelService::NetRx: return {72, 20};
    case KernelService::NetTx: return {68, 20};
    case KernelService::BinderIpc: return {90, 24};
    case KernelService::SchedTick: return {28, 8};
    case KernelService::PageFault: return {40, 12};
    case KernelService::InputEvent: return {24, 8};
    case KernelService::AudioDma: return {30, 8};
    case KernelService::FrameFlip: return {52, 16};
  }
  return {32, 8};
}

constexpr std::uint64_t kHotTextLines = 256;  ///< shared entry/exit code

}  // namespace

KernelModel::KernelModel(std::uint64_t seed)
    : hot_text_(kHotTextLines, 0.9),
      slab_sampler_(layout_.slab_bytes / kLineSize, 0.8) {
  (void)seed;  // model state is deterministic; callers pass their own Rng
}

void KernelModel::data(Addr addr, bool write, std::uint16_t thread,
                       std::vector<Access>& out) const {
  Access a;
  a.addr = addr;
  a.type = write ? AccessType::Write : AccessType::Read;
  a.mode = Mode::Kernel;
  a.thread = thread;
  out.push_back(a);
}

void KernelModel::emit_text_walk(KernelService s, std::uint32_t lines,
                                 std::vector<Access>& out, Rng& rng,
                                 std::uint16_t thread) {
  // Each service owns a slice of kernel text; invocations start at a small
  // jittered offset into it, so successive calls re-touch mostly the same
  // lines (L2-friendly) while spanning far more than an L1I set's worth.
  const std::uint64_t slice =
      layout_.text_bytes / static_cast<std::uint64_t>(kKernelServiceCount);
  const Addr slice_base =
      layout_.text_base + static_cast<std::uint64_t>(s) * slice;
  const std::uint64_t slice_lines = slice / kLineSize;
  std::uint64_t cursor = rng.below(8);  // entry-point jitter

  const Addr hot_base =
      layout_.text_base + layout_.text_bytes - kHotTextLines * kLineSize;

  for (std::uint32_t i = 0; i < lines; ++i) {
    Access a;
    a.type = AccessType::InstFetch;
    a.mode = Mode::Kernel;
    a.thread = thread;
    if (rng.chance(0.25)) {
      a.addr = hot_base + hot_text_.sample(rng) * kLineSize;
    } else {
      a.addr = slice_base + (cursor % slice_lines) * kLineSize;
      ++cursor;
      if (rng.chance(0.1)) cursor += rng.below(4);  // branches skip ahead
    }
    out.push_back(a);
  }
}

void KernelModel::emit_episode(KernelService service, std::uint16_t thread,
                               Trace& out, Rng& rng) {
  std::vector<Access> buf;
  emit_episode(service, thread, buf, rng);
  out.append(std::move(buf));
}

void KernelModel::emit_episode(KernelService service, std::uint16_t thread,
                               std::vector<Access>& out, Rng& rng) {
  const TextShape ts = text_shape(service);
  const auto lines = static_cast<std::uint32_t>(
      rng.range(ts.mean_lines - ts.jitter, ts.mean_lines + ts.jitter));
  // Entry portion of the handler path.
  emit_text_walk(service, (lines * 2) / 3, out, rng, thread);

  auto slab = [&](std::size_t count, double write_frac) {
    for (std::size_t i = 0; i < count; ++i) {
      const Addr a = layout_.slab_base + slab_sampler_.sample(rng) * kLineSize;
      data(a, rng.chance(write_frac), thread, out);
    }
  };
  auto stream = [&](Addr base, std::uint64_t region_bytes,
                    std::uint64_t& cursor, std::uint64_t count, bool write) {
    const std::uint64_t region_lines = region_bytes / kLineSize;
    for (std::uint64_t i = 0; i < count; ++i) {
      data(base + (cursor % region_lines) * kLineSize, write, thread, out);
      ++cursor;
    }
  };

  switch (service) {
    case KernelService::FileRead:
      slab(6, 0.1);  // dentry/inode/file structs
      stream(layout_.page_cache_base, layout_.page_cache_bytes,
             page_cache_cursor_, rng.range(32, 128), /*write=*/false);
      break;
    case KernelService::FileWrite:
      slab(6, 0.3);
      stream(layout_.page_cache_base, layout_.page_cache_bytes,
             page_cache_cursor_, rng.range(32, 128), /*write=*/true);
      break;
    case KernelService::NetRx:
      slab(8, 0.5);  // skb allocation
      stream(layout_.net_base, layout_.net_bytes, net_cursor_,
             rng.range(16, 64), /*write=*/true);  // DMA'd payload copied in
      break;
    case KernelService::NetTx:
      slab(8, 0.4);
      stream(layout_.net_base, layout_.net_bytes, net_cursor_,
             rng.range(16, 64), /*write=*/false);
      break;
    case KernelService::BinderIpc:
      slab(8, 0.3);  // task/thread lookups on both ends
      stream(layout_.binder_base, layout_.binder_bytes, binder_cursor_,
             rng.range(16, 48), /*write=*/true);  // transaction buffer copy
      break;
    case KernelService::SchedTick:
      for (std::uint64_t i = 0, n = rng.range(8, 16); i < n; ++i) {
        const std::uint64_t runq_lines = layout_.runq_bytes / kLineSize;
        data(layout_.runq_base + rng.below(runq_lines) * kLineSize,
             rng.chance(0.4), thread, out);
      }
      slab(4, 0.3);  // task-struct vruntime updates
      break;
    case KernelService::PageFault: {
      // Page-table walk then zeroing of the fresh 4 KB page (64 lines).
      const std::uint64_t pt_lines = layout_.pgtable_bytes / kLineSize;
      for (int level = 0; level < 4; ++level)
        data(layout_.pgtable_base + rng.below(pt_lines) * kLineSize,
             level == 3, thread, out);
      const Addr anon_base =
          layout_.page_cache_base + layout_.page_cache_bytes / 2;
      const std::uint64_t pool_lines =
          layout_.page_cache_bytes / 2 / kLineSize;
      const std::uint64_t page_start =
          (fault_cursor_ * 64) % (pool_lines - 64);
      ++fault_cursor_;
      for (std::uint64_t i = 0; i < 64; ++i)
        data(anon_base + (page_start + i) * kLineSize, true, thread, out);
      break;
    }
    case KernelService::InputEvent:
      slab(4, 0.5);
      for (int i = 0; i < 2; ++i) {
        const std::uint64_t runq_lines = layout_.runq_bytes / kLineSize;
        data(layout_.runq_base + rng.below(runq_lines) * kLineSize, true,
             thread, out);
      }
      break;
    case KernelService::AudioDma:
      stream(layout_.gfx_base, layout_.gfx_bytes, gfx_cursor_,
             rng.range(24, 40), /*write=*/true);
      break;
    case KernelService::FrameFlip:
      stream(layout_.gfx_base, layout_.gfx_bytes, gfx_cursor_,
             rng.range(64, 192), /*write=*/true);
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t runq_lines = layout_.runq_bytes / kLineSize;
        data(layout_.runq_base + rng.below(runq_lines) * kLineSize, false,
             thread, out);
      }
      break;
  }

  // Exit path back to user mode.
  emit_text_walk(service, lines - (lines * 2) / 3, out, rng, thread);
}

double KernelModel::mean_episode_accesses(KernelService s) {
  const TextShape ts = text_shape(s);
  double datamean = 0.0;
  switch (s) {
    case KernelService::FileRead: datamean = 6 + 80; break;
    case KernelService::FileWrite: datamean = 6 + 80; break;
    case KernelService::NetRx: datamean = 8 + 40; break;
    case KernelService::NetTx: datamean = 8 + 40; break;
    case KernelService::BinderIpc: datamean = 8 + 32; break;
    case KernelService::SchedTick: datamean = 12 + 4; break;
    case KernelService::PageFault: datamean = 4 + 64; break;
    case KernelService::InputEvent: datamean = 6; break;
    case KernelService::AudioDma: datamean = 32; break;
    case KernelService::FrameFlip: datamean = 128 + 4; break;
  }
  return datamean + ts.mean_lines;
}

}  // namespace mobcache
