#pragma once
/// \file suite.hpp
/// Convenience entry points for the evaluation suite.

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

/// Generates one app's trace with `accesses` records.
Trace generate_app_trace(AppId id, std::uint64_t accesses,
                         std::uint64_t seed = 1);

/// Generates traces for several apps (same per-app length and seed).
std::vector<Trace> generate_suite(const std::vector<AppId>& apps,
                                  std::uint64_t accesses_per_app,
                                  std::uint64_t seed = 1);

/// TraceCache-backed app trace: generated once process-wide per
/// (app, accesses, seed), then shared read-only — the input side of the
/// parallel sweep engine (docs/PARALLELISM.md).
std::shared_ptr<const Trace> cached_app_trace(AppId id,
                                              std::uint64_t accesses,
                                              std::uint64_t seed = 1);

/// TraceCache-backed suite (one shared trace per app).
std::vector<std::shared_ptr<const Trace>> cached_suite(
    const std::vector<AppId>& apps, std::uint64_t accesses_per_app,
    std::uint64_t seed = 1);

/// Trace length used by the bench binaries: the MOBCACHE_TRACE_LEN
/// environment variable when set (records per app), else `fallback`.
std::uint64_t bench_trace_len(std::uint64_t fallback = 2'000'000);

}  // namespace mobcache
