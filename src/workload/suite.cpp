#include "workload/suite.hpp"

#include "common/env.hpp"
#include "trace/trace_cache.hpp"
#include "workload/generator.hpp"

namespace mobcache {

Trace generate_app_trace(AppId id, std::uint64_t accesses,
                         std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_accesses = accesses;
  cfg.seed = seed;
  return generate_trace(make_app(id), cfg);
}

std::vector<Trace> generate_suite(const std::vector<AppId>& apps,
                                  std::uint64_t accesses_per_app,
                                  std::uint64_t seed) {
  std::vector<Trace> traces;
  traces.reserve(apps.size());
  for (AppId id : apps) traces.push_back(generate_app_trace(id, accesses_per_app, seed));
  return traces;
}

std::shared_ptr<const Trace> cached_app_trace(AppId id,
                                              std::uint64_t accesses,
                                              std::uint64_t seed) {
  TraceCacheKey key;
  key.domain = static_cast<std::uint64_t>(id);
  key.accesses = accesses;
  key.seed = seed;
  return TraceCache::instance().get_or_generate(
      key, [&] { return generate_app_trace(id, accesses, seed); });
}

std::vector<std::shared_ptr<const Trace>> cached_suite(
    const std::vector<AppId>& apps, std::uint64_t accesses_per_app,
    std::uint64_t seed) {
  std::vector<std::shared_ptr<const Trace>> traces;
  traces.reserve(apps.size());
  for (AppId id : apps)
    traces.push_back(cached_app_trace(id, accesses_per_app, seed));
  return traces;
}

std::uint64_t bench_trace_len(std::uint64_t fallback) {
  return env_u64_or("MOBCACHE_TRACE_LEN", fallback, 1, 100'000'000'000ull);
}

}  // namespace mobcache
