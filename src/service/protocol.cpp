#include "service/protocol.hpp"

#include "common/flat_json.hpp"
#include "common/json_writer.hpp"

namespace mobcache {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::optional<AppId> parse_app(const std::string& name) {
  for (AppId id : all_apps())
    if (name == app_name(id)) return id;
  return std::nullopt;
}

/// Optional unsigned field: absent keeps the default, present-but-invalid
/// (quoted, negative, non-numeric) is a hard reject.
bool read_u64_field(const FlatParser& f, const char* key, std::uint64_t& slot,
                    std::string& error) {
  if (!f.has(key)) return true;
  if (f.get_u64(key, slot)) return true;
  error = std::string("\"") + key + "\" must be a non-negative integer";
  return false;
}

}  // namespace

ParsedRequestLine parse_request_line(const std::string& line) {
  ParsedRequestLine out;
  FlatParser f;
  if (!f.parse(line)) {
    out.error = "malformed request (flat JSON object expected)";
    return out;
  }
  std::string id;
  if (!f.get_str("id", id) || id.empty()) {
    out.error = "request needs a non-empty string \"id\"";
    return out;
  }
  out.id = id;

  ServiceRequest rq;
  rq.id = id;
  std::string kind = "sim";
  if (f.has("kind") && !f.get_str("kind", kind)) {
    out.error = "\"kind\" must be a string";
    return out;
  }
  if (kind == "sim") {
    rq.kind = ServiceRequest::Kind::Sim;
  } else if (kind == "fleet") {
    rq.kind = ServiceRequest::Kind::Fleet;
  } else {
    out.error = "unknown kind '" + kind + "' (sim|fleet)";
    return out;
  }

  if (!read_u64_field(f, "records", rq.records, out.error) ||
      !read_u64_field(f, "seed", rq.seed, out.error) ||
      !read_u64_field(f, "deadline_ms", rq.deadline_ms, out.error) ||
      !read_u64_field(f, "sessions", rq.sessions, out.error) ||
      !read_u64_field(f, "mean_accesses", rq.mean_accesses, out.error))
    return out;
  if (rq.records == 0) {
    out.error = "\"records\" must be >= 1";
    return out;
  }

  std::string scheme =
      rq.kind == ServiceRequest::Kind::Fleet ? "dpstt" : "all";
  if (f.has("scheme") && !f.get_str("scheme", scheme)) {
    out.error = "\"scheme\" must be a string";
    return out;
  }

  if (rq.kind == ServiceRequest::Kind::Sim) {
    if (scheme == "all") {
      rq.schemes = headline_schemes();
    } else if (const auto k = parse_scheme_kind(scheme)) {
      // Mirror simrun: a named scheme always runs against the baseline.
      rq.schemes = {SchemeKind::BaselineSram};
      if (*k != SchemeKind::BaselineSram) rq.schemes.push_back(*k);
    } else {
      out.error = "unknown scheme '" + scheme + "'";
      return out;
    }
    std::string apps;
    if (!f.get_str("apps", apps) || apps.empty()) {
      out.error = "sim request needs \"apps\" (comma-separated app names)";
      return out;
    }
    for (const std::string& name : split_commas(apps)) {
      if (const auto app = parse_app(name)) {
        rq.apps.push_back(*app);
      } else {
        out.error = "unknown app '" + name + "'";
        return out;
      }
    }
  } else {
    if (const auto k = parse_scheme_kind(scheme)) {
      rq.fleet_scheme = *k;
    } else {
      out.error = "unknown scheme '" + scheme + "'";
      return out;
    }
    if (rq.sessions == 0) {
      out.error = "\"sessions\" must be >= 1";
      return out;
    }
  }

  out.request = std::move(rq);
  return out;
}

std::string ok_response_line(const std::string& id, const std::string& scheme,
                             const std::string& workload,
                             const std::string& result_payload) {
  // Hand-assembled so the record payload is embedded byte-for-byte —
  // JsonWriter would re-serialize it.
  std::string out = "{\"id\":\"" + json_escape(id) + "\",\"scheme\":\"" +
                    json_escape(scheme) + "\",\"workload\":\"" +
                    json_escape(workload) + "\",\"result\":";
  out += result_payload;
  out += '}';
  return out;
}

std::string fleet_response_line(const std::string& id, SchemeKind scheme,
                                const FleetResult& fleet) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("kind").value("fleet");
  w.key("scheme").value(scheme_name(scheme));
  w.key("sessions").value(fleet.acc.sessions);
  w.key("records").value(fleet.acc.records);
  w.key("shards").value(static_cast<std::uint64_t>(fleet.shards));
  const auto metric = [&](const char* name, const FleetMetric& m) {
    w.key(name);
    w.begin_object();
    w.key("mean").value(m.stat.mean());
    w.key("p50").value(m.sketch.quantile(0.5));
    w.key("p95").value(m.sketch.quantile(0.95));
    w.key("p99").value(m.sketch.quantile(0.99));
    w.end_object();
  };
  metric("cache_energy_nj", fleet.acc.cache_energy_nj);
  metric("total_energy_nj", fleet.acc.total_energy_nj);
  metric("cpi", fleet.acc.cpi);
  w.end_object();
  return w.str();
}

std::string error_response_line(const std::string& id,
                                const std::string& error_type,
                                const std::string& message) {
  return "{\"id\":\"" + json_escape(id) + "\",\"error_type\":\"" +
         json_escape(error_type) + "\",\"message\":\"" +
         json_escape(message) + "\"}";
}

std::optional<std::string> response_result_payload(const std::string& line) {
  static const std::string kMarker = "\"result\":";
  const std::size_t pos = line.find(kMarker);
  if (pos == std::string::npos) return std::nullopt;
  const std::size_t start = pos + kMarker.size();
  // The payload is the flat object running to the line's closing brace.
  if (line.empty() || line.back() != '}' || start >= line.size() - 1)
    return std::nullopt;
  return line.substr(start, line.size() - 1 - start);
}

}  // namespace mobcache
