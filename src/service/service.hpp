#pragma once
/// \file service.hpp
/// mobcached: a long-running simulation service over the sweep pipeline.
///
/// The daemon watches `<dir>/inbox/` for JSONL request files (producers
/// atomically rename() them in — see service/protocol.hpp), runs each
/// request through the same ExperimentRunner / run_fleet machinery the CLI
/// tools use, and publishes one response file per request file under
/// `<dir>/outbox/` with the store's tmp + fsync + rename idiom. With a
/// store directory configured, every (scheme × workload) cell memoizes
/// through the shared ResultStore — repeat requests are warm hits, and the
/// store interoperates byte-for-byte with `mobcache_simrun --store-dir`.
///
/// Supervision contract (docs/SERVICE.md):
///  - Crash-safe ordering: the response file is published *before* the
///    inbox file is consumed, so a crash between the two re-serves the
///    request from warm store hits and re-publishes the identical bytes
///    (rename over the previous response) — at-least-once processing with
///    idempotent output, never a lost request.
///  - SIGTERM/SIGINT drain: cancellation propagates out of the in-flight
///    request (CancelledError → guarded_main → exit 75). Completed points
///    are already persisted; the in-flight request file stays in the inbox,
///    so a restarted daemon finishes it from warm hits.
///  - Poison requests: a file containing malformed lines, a torn (not
///    newline-terminated) file, or a request whose execution fails gets its
///    error lines in the response and the request file moved to
///    `<dir>/quarantine/` instead of deleted — inspectable, never re-run.
///  - Liveness: `<dir>/metrics.json` is republished atomically every epoch
///    with service.* counters plus the result_store.* / stream.* / fleet.*
///    groups the CLI tools expose.

#include <cstdint>
#include <memory>
#include <string>

#include "common/cancel.hpp"
#include "exp/result_store.hpp"
#include "service/protocol.hpp"

namespace mobcache {

struct ServiceConfig {
  std::string dir;        ///< service root: inbox/ outbox/ quarantine/ metrics.json
  std::string store_dir;  ///< result-store directory ("" = memoization off)
  unsigned jobs = 0;      ///< worker threads per request (0 = auto)
  std::uint64_t poll_ms = 50;    ///< inbox poll interval when idle
  std::uint64_t epoch_ms = 1000; ///< metrics.json republish cadence
  bool once = false;             ///< drain the current inbox, then exit
  std::uint64_t idle_exit_ms = 0;  ///< exit after this long idle (0 = never)
  /// Cancellation token the daemon and its simulations poll; null = the
  /// process-wide global_cancel_token() (the one SIGTERM flips).
  const CancelToken* cancel = nullptr;
};

struct ServiceStats {
  std::uint64_t files_served = 0;       ///< request files fully processed
  std::uint64_t files_quarantined = 0;  ///< of those, moved to quarantine/
  std::uint64_t requests_seen = 0;      ///< request lines parsed (ok + bad)
  std::uint64_t requests_served = 0;    ///< requests answered with results
  std::uint64_t requests_rejected = 0;  ///< parse or execution failures
};

class MobcacheDaemon {
 public:
  /// Creates inbox/outbox/quarantine under cfg.dir (sweeping `.tmp-*`
  /// orphans from outbox) and opens the result store when configured.
  /// Throws std::runtime_error when the directories cannot be created.
  explicit MobcacheDaemon(ServiceConfig cfg);

  /// Serves the inbox until once-mode drains it, the idle deadline passes,
  /// or cancellation fires (CancelledError propagates — guarded_main maps
  /// it to the resumable exit 75). Returns 0.
  int run();

  /// Processes every request file currently in the inbox (sorted by name);
  /// returns the number handled. Exposed for tests and the bench driver.
  std::size_t scan_once();

  /// Republishes `<dir>/metrics.json` atomically.
  void publish_metrics();

  std::string inbox_dir() const;
  std::string outbox_dir() const;
  std::string quarantine_dir() const;
  std::string metrics_path() const;

  ServiceStats stats() const { return stats_; }
  ResultStore* store() { return store_.get(); }

 private:
  void process_file(const std::string& path, const std::string& name);
  std::string run_request(const ServiceRequest& rq);

  ServiceConfig cfg_;
  std::unique_ptr<ResultStore> store_;
  const CancelToken* cancel_;
  ServiceStats stats_;
  std::uint64_t active_ = 0;  ///< requests currently executing (0 or 1)
  std::uint64_t publish_counter_ = 0;
};

}  // namespace mobcache
