#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "exp/fleet.hpp"
#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "obs/trace_export.hpp"
#include "trace/trace_stream.hpp"
#include "workload/scenario.hpp"

namespace mobcache {

namespace fs = std::filesystem;

MobcacheDaemon::MobcacheDaemon(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cancel_(cfg_.cancel != nullptr ? cfg_.cancel : &global_cancel_token()) {
  if (cfg_.dir.empty())
    throw std::runtime_error("mobcached: service directory required");
  std::error_code ec;
  for (const std::string& d :
       {inbox_dir(), outbox_dir(), quarantine_dir()}) {
    fs::create_directories(d, ec);
    if (!fs::is_directory(d, ec))
      throw std::runtime_error("mobcached: cannot create '" + d + "'");
  }
  // A killed publish leaves a `.tmp-*` orphan next to its target; the
  // rename never happened, so the file it was building will be re-published
  // anyway.
  for (const auto& entry : fs::directory_iterator(outbox_dir(), ec)) {
    if (entry.path().filename().string().rfind(".tmp-", 0) == 0)
      fs::remove(entry.path(), ec);
  }
  if (!cfg_.store_dir.empty())
    store_ = std::make_unique<ResultStore>(cfg_.store_dir);
}

std::string MobcacheDaemon::inbox_dir() const {
  return (fs::path(cfg_.dir) / "inbox").string();
}
std::string MobcacheDaemon::outbox_dir() const {
  return (fs::path(cfg_.dir) / "outbox").string();
}
std::string MobcacheDaemon::quarantine_dir() const {
  return (fs::path(cfg_.dir) / "quarantine").string();
}
std::string MobcacheDaemon::metrics_path() const {
  return (fs::path(cfg_.dir) / "metrics.json").string();
}

int MobcacheDaemon::run() {
  using clock = std::chrono::steady_clock;
  publish_metrics();
  auto last_publish = clock::now();
  auto idle_since = last_publish;
  for (;;) {
    cancel_->check();
    const std::size_t handled = scan_once();
    const auto now = clock::now();
    if (handled > 0) idle_since = now;
    if (cfg_.once && handled == 0) break;
    if (now - last_publish >=
        std::chrono::milliseconds(cfg_.epoch_ms)) {
      publish_metrics();
      last_publish = now;
    }
    if (handled == 0) {
      if (cfg_.idle_exit_ms != 0 &&
          now - idle_since >= std::chrono::milliseconds(cfg_.idle_exit_ms))
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.poll_ms));
    }
  }
  publish_metrics();
  return 0;
}

std::size_t MobcacheDaemon::scan_once() {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(inbox_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    // Dotfiles cover in-flight `.tmp-*` staging by producers that stage
    // inside the inbox; the rename into a visible name is the submission.
    if (name.empty() || name[0] == '.') continue;
    if (entry.path().extension() != ".jsonl") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    cancel_->check();
    process_file((fs::path(inbox_dir()) / name).string(), name);
  }
  return names.size();
}

void MobcacheDaemon::process_file(const std::string& path,
                                  const std::string& name) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }

  std::string responses;
  bool poison = false;
  if (bytes.empty() || bytes.back() != '\n') {
    // A producer that renames complete files in can never submit this; a
    // torn file means the submission contract was violated (copy instead of
    // rename, or a truncating writer). Quarantine, don't guess.
    ++stats_.requests_seen;
    ++stats_.requests_rejected;
    responses = error_response_line(
                    name, "trace",
                    "torn request file (missing trailing newline)") +
                "\n";
    poison = true;
  } else {
    std::size_t start = 0;
    while (start < bytes.size()) {
      const std::size_t nl = bytes.find('\n', start);
      const std::string line = bytes.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      cancel_->check();
      ++stats_.requests_seen;
      const ParsedRequestLine parsed = parse_request_line(line);
      if (!parsed.request) {
        ++stats_.requests_rejected;
        responses += error_response_line(
                         parsed.id.empty() ? name : parsed.id, "config",
                         parsed.error) +
                     "\n";
        poison = true;
        continue;
      }
      active_ = 1;
      try {
        responses += run_request(*parsed.request);
        active_ = 0;
        ++stats_.requests_served;
      } catch (...) {
        active_ = 0;
        const std::exception_ptr e = std::current_exception();
        // Cancellation is a daemon-level event: leave the request file in
        // the inbox (the restart re-serves it from warm store hits) and let
        // guarded_main turn the drain into exit 75.
        if (is_cancellation(e)) std::rethrow_exception(e);
        ++stats_.requests_rejected;
        responses += error_response_line(parsed.request->id,
                                         error_type_of(e),
                                         error_message_of(e)) +
                     "\n";
        poison = true;
      }
    }
  }

  // Publish the response *before* consuming the request: a crash between
  // the two re-runs the file against the warm store and renames identical
  // bytes over this response. The reverse order would lose the request.
  atomic_publish((fs::path(outbox_dir()) / name).string(), responses,
                 "resp-" + std::to_string(++publish_counter_));
  std::error_code ec;
  if (poison) {
    fs::rename(path, fs::path(quarantine_dir()) / name, ec);
    if (ec) fs::remove(path, ec);
    ++stats_.files_quarantined;
  } else {
    fs::remove(path, ec);
  }
  ++stats_.files_served;
}

std::string MobcacheDaemon::run_request(const ServiceRequest& rq) {
  if (rq.kind == ServiceRequest::Kind::Fleet) {
    FleetConfig fc;
    if (rq.mean_accesses != 0)
      fc.mix = PopulationModel::default_mix(rq.mean_accesses);
    fc.sessions = rq.sessions;
    fc.seed = rq.seed;
    fc.scheme = rq.fleet_scheme;
    fc.jobs = cfg_.jobs;
    fc.sim.point_deadline_ms = rq.deadline_ms;
    fc.sim.cancel = cancel_;
    const FleetResult fr = run_fleet(fc);
    return fleet_response_line(rq.id, rq.fleet_scheme, fr) + "\n";
  }

  // Same execution path and content keys as `mobcache_simrun` plain mode:
  // the runner's scheme_design hash over default SchemeParams matches the
  // CLI's, so one store serves both producers interchangeably.
  ExperimentRunner runner(rq.apps, rq.records, rq.seed);
  runner.jobs = effective_jobs(cfg_.jobs);
  runner.result_store = store_.get();
  runner.sim_options.point_deadline_ms = rq.deadline_ms;
  runner.sim_options.cancel = cancel_;
  const std::vector<SchemeSuiteResult> results =
      runner.run_schemes(rq.schemes);
  std::string out;
  for (const SchemeSuiteResult& s : results) {
    for (const SimResult& r : s.per_workload)
      out += ok_response_line(rq.id, r.scheme, r.workload,
                              result_to_record_json(r)) +
             "\n";
  }
  return out;
}

void MobcacheDaemon::publish_metrics() {
  MetricRegistry reg;
  reg.counter("service.queued").add(stats_.requests_seen);
  reg.counter("service.served").add(stats_.requests_served);
  reg.counter("service.rejected").add(stats_.requests_rejected);
  reg.counter("service.files").add(stats_.files_served);
  reg.counter("service.quarantined").add(stats_.files_quarantined);
  reg.gauge("service.active").set(static_cast<double>(active_));
  if (store_) {
    const ResultStoreStats st = store_->stats();
    // Point-level hits ARE the warm-request signal: a fully warm request
    // touches only cached cells.
    reg.counter("service.warm_hits").add(st.hits);
    reg.counter("result_store.hits").add(st.hits);
    reg.counter("result_store.misses").add(st.misses);
    reg.counter("result_store.stores").add(st.stores);
    reg.counter("result_store.corrupt_skipped").add(st.corrupt_skipped);
    reg.counter("result_store.loaded").add(st.loaded);
    reg.counter("result_store.poisoned_loaded").add(st.poisoned_loaded);
    reg.counter("result_store.poison_hits").add(st.poison_hits);
    reg.counter("result_store.poison_stores").add(st.poison_stores);
  }
  const StreamCounters stream = stream_counters();
  reg.counter("stream.chunks_generated").add(stream.chunks_generated);
  reg.counter("stream.chunk_reuse_hits").add(stream.chunk_reuse_hits);
  reg.counter("stream.high_water_chunk_bytes")
      .add(stream.high_water_chunk_bytes);
  const FleetCounters fleet = fleet_counters();
  reg.counter("fleet.sessions_simulated").add(fleet.sessions_simulated);
  reg.counter("fleet.session_records").add(fleet.session_records);
  reg.counter("fleet.shard_merges").add(fleet.shard_merges);
  atomic_publish(metrics_path(), metrics_json_string(reg) + "\n",
                 "metrics-" + std::to_string(++publish_counter_));
}

}  // namespace mobcache
