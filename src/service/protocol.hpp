#pragma once
/// \file protocol.hpp
/// Wire format of the mobcached file-inbox protocol (docs/SERVICE.md).
///
/// A request file is JSONL: one flat JSON object per line, each describing
/// one simulation or fleet request. Producers write the file elsewhere and
/// atomically rename() it into `<dir>/inbox/` — exactly the publication
/// idiom the result store uses — so the daemon never reads a half-written
/// request. The response file (same name, under `<dir>/outbox/`) carries
/// one line per result: ok lines embed the result-store record payload
/// *verbatim* (result_to_record_json bytes), so a daemon response is
/// byte-identical to what `mobcache_simrun --store-dir` persists for the
/// same point; error lines carry the stable error taxonomy label
/// (error_type_of) plus a one-line message.
///
/// Request fields (flat JSON, common/flat_json.hpp grammar):
///   id            required, non-empty string — echoed on every response line
///   kind          "sim" (default) | "fleet"
///   apps          sim only, required: comma-separated app names
///   scheme        scheme name | "all" (sim default "all", fleet "dpstt");
///                 a named scheme runs {base, scheme} exactly like simrun
///   records       sim trace length per app (default 1000000)
///   seed          trace/population seed (default 1)
///   deadline_ms   per-point wall-clock budget, 0 = none (default 0)
///   sessions      fleet only: session count (default 1000)
///   mean_accesses fleet only: population mean session length, 0 = the
///                 PopulationModel default mix (default 0)

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "exp/fleet.hpp"
#include "workload/app_model.hpp"

namespace mobcache {

struct ServiceRequest {
  enum class Kind : std::uint8_t { Sim, Fleet };

  std::string id;
  Kind kind = Kind::Sim;
  std::vector<AppId> apps;           ///< sim suite (request order)
  std::vector<SchemeKind> schemes;   ///< resolved sim selection
  SchemeKind fleet_scheme = SchemeKind::DynamicStt;
  std::uint64_t records = 1'000'000;
  std::uint64_t seed = 1;
  std::uint64_t deadline_ms = 0;
  std::uint64_t sessions = 1'000;
  std::uint64_t mean_accesses = 0;
};

/// One parsed request line. `request` is set iff the line was valid;
/// otherwise `error` says why and `id` carries the request id when one was
/// readable (so the error response can still be correlated).
struct ParsedRequestLine {
  std::optional<ServiceRequest> request;
  std::string id;
  std::string error;
};

ParsedRequestLine parse_request_line(const std::string& line);

/// One sim result line: `{"id":...,"scheme":...,"workload":...,"result":P}`
/// where P is the result-store record payload, embedded verbatim.
std::string ok_response_line(const std::string& id, const std::string& scheme,
                             const std::string& workload,
                             const std::string& result_payload);

/// One fleet summary line: session/record totals plus mean and p50/p95/p99
/// of the per-session energy and CPI sketches.
std::string fleet_response_line(const std::string& id, SchemeKind scheme,
                                const FleetResult& fleet);

/// One error line: `{"id":...,"error_type":...,"message":...}`. error_type
/// is the stable taxonomy label (error_type_of / to_string(SimErrorKind)).
std::string error_response_line(const std::string& id,
                                const std::string& error_type,
                                const std::string& message);

/// Extracts the embedded record payload from an ok_response_line — the
/// bytes a result-store record for the same point would carry. nullopt for
/// error/fleet lines.
std::optional<std::string> response_result_payload(const std::string& line);

}  // namespace mobcache
