#include "energy/refresh.hpp"

#include <tuple>
#include <vector>

namespace mobcache {

RefreshTickResult RefreshController::tick(SetAssocCache& cache, Cycle now,
                                          const TechParams& tech,
                                          EnergyAccountant& acct) {
  RefreshTickResult r;
  if (ticked_ && now == last_tick_) return r;  // same-cycle re-entry
  last_tick_ = now;
  ticked_ = true;
  if (cache.retention_period() == 0) return r;  // nothing decays

  if (policy_ != RefreshPolicy::InvalidateOnExpiry) {
    // The scrub engine is autonomous hardware; this simulation only
    // observes it at tick time. Rewrite every protected block that would
    // expire before the next pass — including blocks whose deadline already
    // passed (under sparse traffic the observation is late, but the real
    // scrubber kept them alive; charge one refresh per elapsed period).
    const Cycle horizon = now + interval_;
    const Cycle period = cache.retention_period();
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
        to_refresh;
    const bool dirty_only = policy_ == RefreshPolicy::ScrubDirty;
    cache.for_each_valid_block([&](std::uint32_t set, std::uint32_t way,
                                   const BlockMeta& b) {
      if (b.retention_deadline == 0) return;
      if (dirty_only && !b.dirty) return;
      if (b.retention_deadline > horizon) return;
      to_refresh.emplace_back(set, way,
                              b.retention_deadline <= now
                                  ? 1 + (now - b.retention_deadline) / period
                                  : 1);
    });
    const CacheStats before = cache.stats();
    std::uint64_t refresh_writes = 0;
    for (auto [set, way, writes] : to_refresh) {
      // A scrub is also a repair pass: refresh_block runs the corrector
      // first, and only blocks that survive it are rewritten (and charged).
      if (cache.refresh_block(set, way, now)) refresh_writes += writes;
    }
    const CacheStats& after = cache.stats();
    r.refreshed = refresh_writes;
    r.repaired = after.scrub_repairs - before.scrub_repairs;
    r.fault_lost = after.fault_losses - before.fault_losses;
    r.fault_lost_dirty = after.fault_lost_dirty - before.fault_lost_dirty;
    acct.add_refresh(tech, refresh_writes);
    // Dirty blocks dropped by the corrector are NOT written back — their
    // data is the thing that was lost — so no DRAM energy is charged.
  }

  // Invalidate anything already past its deadline (under ScrubDirty these
  // are clean blocks; under ScrubAll only blocks that decayed between
  // passes, which a conforming interval makes impossible).
  const auto [expired, dirty] = cache.expire_sweep(now);
  r.expired_dirty = dirty;
  r.expired_clean = expired - dirty;
  // The expiry logic streams dirty victims to DRAM before the data decays.
  acct.add_dram(dirty);
  return r;
}

}  // namespace mobcache
