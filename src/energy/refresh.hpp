#pragma once
/// \file refresh.hpp
/// Scrub/refresh schemes for finite-retention STT-RAM segments.
///
/// Low-retention STT-RAM trades cheap writes for data that decays after
/// t_ret. Something must handle blocks that outlive their retention:
///  - InvalidateOnExpiry: let blocks die; dirty ones are written back to
///    DRAM by the expiry logic (energy charged), clean ones just vanish and
///    may cost a future miss.
///  - ScrubDirty: rewrite only dirty blocks nearing expiry (no data loss,
///    no DRAM traffic); clean blocks are allowed to expire. This is the
///    paper-style compromise and the default.
///  - ScrubAll: DRAM-style refresh of every live block nearing expiry;
///    misses are never caused by retention, at maximal refresh energy.

#include <cstdint>
#include <string_view>

#include "cache/set_assoc_cache.hpp"
#include "energy/energy_accountant.hpp"
#include "energy/technology.hpp"

namespace mobcache {

enum class RefreshPolicy : std::uint8_t {
  InvalidateOnExpiry,
  ScrubDirty,
  ScrubAll,
};

constexpr std::string_view to_string(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::InvalidateOnExpiry: return "invalidate";
    case RefreshPolicy::ScrubDirty: return "scrub-dirty";
    case RefreshPolicy::ScrubAll: return "scrub-all";
  }
  return "?";
}

/// Outcome of one maintenance pass (for stats/tests).
struct RefreshTickResult {
  std::uint64_t refreshed = 0;
  std::uint64_t expired_clean = 0;
  std::uint64_t expired_dirty = 0;
  // Fault-subsystem outcomes (zero without fault hooks): scrubs double as a
  // repair pass — correctable fault bits are healed by the rewrite, while
  // detected-uncorrectable blocks are dropped instead of refreshed.
  std::uint64_t repaired = 0;
  std::uint64_t fault_lost = 0;
  std::uint64_t fault_lost_dirty = 0;
};

/// Periodic maintenance engine for one finite-retention cache array.
///
/// The owning L2 design calls tick() at least every check_interval cycles
/// (epoch boundaries); the controller guarantees that with
/// check_interval <= t_ret / 2, scrubbed blocks never expire.
class RefreshController {
 public:
  RefreshController(RefreshPolicy policy, Cycle check_interval)
      : policy_(policy), interval_(check_interval) {}

  RefreshPolicy policy() const { return policy_; }
  Cycle interval() const { return interval_; }

  /// Runs one maintenance pass over `cache` at time `now`, charging scrub
  /// writes and expiry DRAM writebacks to `acct` using `tech`.
  RefreshTickResult tick(SetAssocCache& cache, Cycle now,
                         const TechParams& tech, EnergyAccountant& acct);

  /// True when it is time for another pass.
  bool due(Cycle now) const { return now >= last_tick_ + interval_; }
  void mark_ticked(Cycle now) { last_tick_ = now; }

 private:
  RefreshPolicy policy_;
  Cycle interval_;
  Cycle last_tick_ = 0;
  /// Guards against two passes in the same cycle (e.g. an epoch boundary
  /// followed by finalize at the same timestamp): the second pass would
  /// re-scrub just-refreshed blocks and double-charge their energy.
  bool ticked_ = false;
};

}  // namespace mobcache
