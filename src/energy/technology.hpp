#pragma once
/// \file technology.hpp
/// Analytical SRAM / STT-RAM technology model.
///
/// Replaces the NVSim/CACTI tables the paper used. All constants live in
/// this header, are documented, and follow the functional forms that matter
/// for the paper's conclusions:
///   * SRAM leakage power is linear in capacity and dominates L2 energy in a
///     mobile SoC — the source of the static technique's 75% saving.
///   * Dynamic access energy grows ~sqrt(capacity) (bitline/wordline length).
///   * STT-RAM cells do not leak (only peripheral logic does); reads cost
///     about as much as SRAM reads; writes are expensive, and their
///     energy/latency grow with the thermal stability factor Δ, which sets
///     the retention time t_ret ≈ t0 · e^Δ.
///
/// The platform clock is 1 GHz, so 1 cycle == 1 ns throughout.

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace mobcache {

/// Simulated core frequency; cycles ↔ seconds conversions assume this.
inline constexpr double kClockHz = 1e9;

/// Storage technology of a cache segment.
enum class TechKind : std::uint8_t { Sram, SttRam };

/// STT-RAM retention classes explored by the paper's multi-retention design.
/// Retention times follow t_ret = t0 · e^Δ with t0 = 1 ns:
///   Lo  : Δ ≈ 16.1 → ~10 ms   (needs scrubbing, cheapest writes)
///   Mid : Δ ≈ 20.7 → ~1 s     (mild scrubbing)
///   Hi  : Δ ≈ 40.3 → ~10 yr   (effectively non-volatile, costliest writes)
enum class RetentionClass : std::uint8_t { Lo = 0, Mid = 1, Hi = 2 };

inline constexpr int kRetentionClassCount = 3;

constexpr std::string_view to_string(TechKind k) {
  return k == TechKind::Sram ? "SRAM" : "STT-RAM";
}

constexpr std::string_view to_string(RetentionClass r) {
  switch (r) {
    case RetentionClass::Lo: return "LO(10ms)";
    case RetentionClass::Mid: return "MID(1s)";
    case RetentionClass::Hi: return "HI(10yr)";
  }
  return "?";
}

/// Everything the energy accountant and timing model need to know about one
/// cache segment's array technology, already specialized to its capacity.
struct TechParams {
  TechKind kind = TechKind::Sram;
  RetentionClass retention = RetentionClass::Hi;  // meaningful for SttRam only

  double read_energy_nj = 0.0;    ///< per 64 B line read
  double write_energy_nj = 0.0;   ///< per 64 B line write (fill/store/scrub)
  double leakage_mw = 0.0;        ///< static power of the whole segment
  Cycle read_latency = 0;         ///< cycles
  Cycle write_latency = 0;        ///< cycles
  Cycle retention_cycles = 0;     ///< 0 = effectively infinite
  double cycle_ns = 1.0;          ///< wall time per core cycle (DVFS)

  /// Leakage energy (nJ) over `cycles` cycles for a fraction `enabled`
  /// (0..1) of the segment being powered (way gating). Static power burns
  /// wall time, so slower clocks leak more per cycle.
  double leakage_nj(Cycle cycles, double enabled = 1.0) const {
    // mW · ns = pJ; /1e3 → nJ.
    return leakage_mw * static_cast<double>(cycles) * cycle_ns * enabled /
           1e3;
  }
};

/// Reference constants (documented, 45 nm class, per 64 B line access).
/// These are representative of the NVSim numbers used across the
/// multi-retention STT-RAM literature; the paper's results are reported as
/// ratios, which these preserve.
namespace tech_constants {
/// SRAM leakage power density. 2 MB → ~330 mW, the regime in which L2
/// leakage dominates a mobile SoC's cache energy.
inline constexpr double kSramLeakMwPerKb = 0.16;
/// SRAM dynamic energy at the 2 MB reference point.
inline constexpr double kSramReadNj2Mb = 0.28;
inline constexpr double kSramWriteNj2Mb = 0.30;
/// STT-RAM peripheral leakage relative to SRAM of equal capacity.
inline constexpr double kSttLeakFactor = 0.22;
/// STT-RAM read energy relative to SRAM read of equal capacity.
inline constexpr double kSttReadFactor = 0.85;
/// STT-RAM write energy at the 2 MB / Δ=40.3 (Hi) reference point.
inline constexpr double kSttWriteNjHi2Mb = 1.95;
/// Write energy scaling with Δ: E(Δ) = E_hi · (floor + (1-floor)·(Δ/Δ_hi)²).
/// Quadratic: lowering Δ reduces both the switching current and the pulse
/// width, so relaxing retention 10 yr → 10 ms cuts write energy ~4× (the
/// trend reported by the multi-retention STT-RAM literature).
inline constexpr double kWriteEnergyFloor = 0.12;
/// Latencies at the 2 MB reference point (1 GHz cycles).
inline constexpr Cycle kSramLat2Mb = 20;
inline constexpr Cycle kSttReadLat2Mb = 21;
inline constexpr Cycle kSttWriteLatHi2Mb = 42;
inline constexpr Cycle kSttWriteLatMid2Mb = 26;
inline constexpr Cycle kSttWriteLatLo2Mb = 22;
/// Thermal stability factors for the three classes.
inline constexpr double kDeltaLo = 16.1;
inline constexpr double kDeltaMid = 20.7;
inline constexpr double kDeltaHi = 40.3;
/// Retention periods in cycles (1 GHz): 10 ms, 1 s, "infinite".
inline constexpr Cycle kRetentionLoCycles = 10'000'000;        // 10 ms
inline constexpr Cycle kRetentionMidCycles = 1'000'000'000;    // 1 s
inline constexpr Cycle kRetentionHiCycles = 0;                 // non-volatile
/// Off-chip access energy per 64 B line (LPDDR-class), and latency. This is
/// what punishes shrinking the cache too far.
inline constexpr double kDramAccessNj = 18.0;
inline constexpr Cycle kDramLatency = 200;
/// Visible per-miss stall after memory-level parallelism: MSHRs and DRAM
/// banking overlap a large part of kDramLatency with other work, so the
/// core observes ~kDramLatency/2.5 cycles of stall per L2 miss on average.
inline constexpr Cycle kDramVisibleStall = 80;
}  // namespace tech_constants

/// Runtime-overridable copy of the technology constants, for sensitivity
/// studies (experiment E13): "would the paper's conclusions survive a 2x
/// error in any single constant?". Defaults mirror tech_constants.
struct TechnologyConfig {
  double sram_leak_mw_per_kb = tech_constants::kSramLeakMwPerKb;
  double sram_read_nj_2mb = tech_constants::kSramReadNj2Mb;
  double sram_write_nj_2mb = tech_constants::kSramWriteNj2Mb;
  double stt_leak_factor = tech_constants::kSttLeakFactor;
  double stt_read_factor = tech_constants::kSttReadFactor;
  double stt_write_nj_hi_2mb = tech_constants::kSttWriteNjHi2Mb;
  double write_energy_floor = tech_constants::kWriteEnergyFloor;
  double dram_access_nj = tech_constants::kDramAccessNj;
  /// Core clock period in ns (1.0 = the nominal 1 GHz). DVFS experiment
  /// E17: DRAM wall time is fixed, so its visible stall in cycles scales
  /// with the clock; leakage energy scales with wall time.
  double cycle_ns = 1.0;
  /// Junction temperature in kelvin. The thermal stability factor is
  /// Δ = E_b/(k_B·T), so Δ(T) = Δ(T0)·T0/T with T0 = 318 K (45 °C, the
  /// temperature the class Δ values are specified at). Hotter silicon
  /// shortens retention exponentially (experiment E19).
  double temperature_k = 318.0;
};

/// Reference temperature the retention classes are specified at (45 °C).
inline constexpr double kNominalTempK = 318.0;

/// Effective Δ of a class at the active temperature.
double delta_at_temperature(RetentionClass r);

/// Visible DRAM stall at the active clock (kDramVisibleStall is specified
/// at 1 GHz; a faster clock waits more cycles for the same wall time).
Cycle dram_visible_stall_cycles();

/// The active technology configuration. Thread-local: each thread starts at
/// the defaults, and ScopedTechnology only affects the calling thread.
/// SweepExecutor (exp/parallel.hpp) captures the submitting thread's
/// configuration and re-applies it on its workers, so scoped overrides
/// compose with parallel sweeps. Prefer ScopedTechnology over mutating
/// directly.
const TechnologyConfig& technology();

/// RAII override of the active configuration; restores on destruction.
class ScopedTechnology {
 public:
  explicit ScopedTechnology(const TechnologyConfig& cfg);
  ~ScopedTechnology();
  ScopedTechnology(const ScopedTechnology&) = delete;
  ScopedTechnology& operator=(const ScopedTechnology&) = delete;

 private:
  TechnologyConfig prev_;
};

/// SRAM segment of the given capacity (uses the active configuration).
TechParams make_sram(std::uint64_t capacity_bytes);

/// STT-RAM segment of the given capacity and retention class.
TechParams make_sttram(std::uint64_t capacity_bytes, RetentionClass r);

/// Δ for a retention class (exposed for reports/tests).
double delta_of(RetentionClass r);

/// Retention period in cycles for a class at the active temperature and
/// clock (0 = infinite). At the nominal 318 K this returns the documented
/// 10 ms / 1 s / ∞ values.
Cycle retention_cycles_of(RetentionClass r);

}  // namespace mobcache
