#include "energy/technology.hpp"

#include <cmath>

namespace mobcache {

namespace {

using namespace tech_constants;

/// Thread-local so concurrent sweep workers can hold different overrides
/// (sensitivity/DVFS points) without racing. SweepExecutor re-applies the
/// submitting thread's active configuration on every worker it spawns.
thread_local TechnologyConfig g_technology{};

constexpr double kRefBytes = 2.0 * 1024 * 1024;  // 2 MB reference point

/// Dynamic energy scales ~sqrt(capacity): halving the array shortens both
/// the bitlines and the H-tree, consistent with CACTI trends.
double dyn_scale(std::uint64_t capacity_bytes) {
  return std::sqrt(static_cast<double>(capacity_bytes) / kRefBytes);
}

/// L2 access latency in a mobile SoC is dominated by the interconnect and
/// controller, not the array, so it does not improve when the array
/// shrinks (a smaller L2 must not look "faster" — the paper's performance
/// cost comes from extra misses and STT-RAM write occupancy only).
Cycle lat_scale(Cycle ref, std::uint64_t /*capacity_bytes*/) { return ref; }

double write_energy_factor(double delta) {
  const double x = delta / kDeltaHi;
  const double floor = g_technology.write_energy_floor;
  return floor + (1.0 - floor) * x * x;
}

}  // namespace

const TechnologyConfig& technology() { return g_technology; }

Cycle dram_visible_stall_cycles() {
  const double cycles =
      static_cast<double>(kDramVisibleStall) / g_technology.cycle_ns;
  return static_cast<Cycle>(cycles + 0.5);
}

ScopedTechnology::ScopedTechnology(const TechnologyConfig& cfg)
    : prev_(g_technology) {
  g_technology = cfg;
}

ScopedTechnology::~ScopedTechnology() { g_technology = prev_; }

TechParams make_sram(std::uint64_t capacity_bytes) {
  TechParams t;
  t.kind = TechKind::Sram;
  t.retention = RetentionClass::Hi;
  const double s = dyn_scale(capacity_bytes);
  t.read_energy_nj = g_technology.sram_read_nj_2mb * s;
  t.write_energy_nj = g_technology.sram_write_nj_2mb * s;
  t.leakage_mw = g_technology.sram_leak_mw_per_kb *
                 static_cast<double>(capacity_bytes) / 1024.0;
  t.read_latency = lat_scale(kSramLat2Mb, capacity_bytes);
  t.write_latency = t.read_latency;
  t.retention_cycles = 0;
  t.cycle_ns = g_technology.cycle_ns;
  return t;
}

TechParams make_sttram(std::uint64_t capacity_bytes, RetentionClass r) {
  TechParams t;
  t.kind = TechKind::SttRam;
  t.retention = r;
  const double s = dyn_scale(capacity_bytes);
  const TechParams sram = make_sram(capacity_bytes);
  t.read_energy_nj = sram.read_energy_nj * g_technology.stt_read_factor;
  t.write_energy_nj =
      g_technology.stt_write_nj_hi_2mb * s * write_energy_factor(delta_of(r));
  t.leakage_mw = sram.leakage_mw * g_technology.stt_leak_factor;
  t.read_latency = lat_scale(kSttReadLat2Mb, capacity_bytes);
  const Cycle wref = r == RetentionClass::Hi    ? kSttWriteLatHi2Mb
                     : r == RetentionClass::Mid ? kSttWriteLatMid2Mb
                                                : kSttWriteLatLo2Mb;
  t.write_latency = lat_scale(wref, capacity_bytes);
  t.retention_cycles = retention_cycles_of(r);  // temperature & clock aware
  t.cycle_ns = g_technology.cycle_ns;
  return t;
}

double delta_of(RetentionClass r) {
  using namespace tech_constants;
  switch (r) {
    case RetentionClass::Lo: return kDeltaLo;
    case RetentionClass::Mid: return kDeltaMid;
    case RetentionClass::Hi: return kDeltaHi;
  }
  return kDeltaHi;
}

double delta_at_temperature(RetentionClass r) {
  return delta_of(r) * kNominalTempK / g_technology.temperature_k;
}

Cycle retention_cycles_of(RetentionClass r) {
  if (r == RetentionClass::Hi) return 0;  // ~10 yr even when hot
  // t_ret = t0·e^Δ(T) with t0 = 1 ns; convert to cycles at the active
  // clock. At nominal temperature this reproduces the documented values
  // (within the rounding of the published Δ's, corrected to land exactly
  // on 10 ms / 1 s nominally).
  const double nominal =
      r == RetentionClass::Lo
          ? static_cast<double>(tech_constants::kRetentionLoCycles)
          : static_cast<double>(tech_constants::kRetentionMidCycles);
  const double shift = delta_at_temperature(r) - delta_of(r);
  const double wall_ns = nominal * std::exp(shift);
  const double cycles = wall_ns / g_technology.cycle_ns;
  return cycles < 1.0 ? 1 : static_cast<Cycle>(cycles);
}

}  // namespace mobcache
