#include "energy/energy_accountant.hpp"

namespace mobcache {

EnergyBreakdown operator-(const EnergyBreakdown& a, const EnergyBreakdown& b) {
  EnergyBreakdown d;
  d.leakage_nj = a.leakage_nj - b.leakage_nj;
  d.read_nj = a.read_nj - b.read_nj;
  d.write_nj = a.write_nj - b.write_nj;
  d.refresh_nj = a.refresh_nj - b.refresh_nj;
  d.dram_nj = a.dram_nj - b.dram_nj;
  d.ecc_nj = a.ecc_nj - b.ecc_nj;
  return d;
}

}  // namespace mobcache
