#include "energy/energy_accountant.hpp"

// EnergyAccountant is header-only today; this TU anchors the module and
// keeps the build graph stable if out-of-line members are added.
