#pragma once
/// \file energy_accountant.hpp
/// Event-based energy bookkeeping for one L2 organization.
///
/// The accountant converts cache events (reads, fills, scrubs, DRAM traffic)
/// plus elapsed time × enabled capacity into the five-way breakdown the
/// paper's energy figures use.

#include <cstdint>

#include "energy/technology.hpp"

namespace mobcache {

/// Energy totals in nanojoules.
struct EnergyBreakdown {
  double leakage_nj = 0.0;   ///< static energy of the (enabled) arrays
  double read_nj = 0.0;      ///< array reads (hits and miss probes)
  double write_nj = 0.0;     ///< array writes (fills, store hits)
  double refresh_nj = 0.0;   ///< STT-RAM scrub rewrites + expiry writebacks
  double dram_nj = 0.0;      ///< off-chip traffic caused by this design
  double ecc_nj = 0.0;       ///< ECC correction work (zero when fault-free)

  double total_nj() const {
    return leakage_nj + read_nj + write_nj + refresh_nj + dram_nj + ecc_nj;
  }
  /// On-chip cache energy only (the quantity the paper's "cache energy
  /// consumption" results normalize).
  double cache_nj() const {
    return leakage_nj + read_nj + write_nj + refresh_nj + ecc_nj;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    leakage_nj += o.leakage_nj;
    read_nj += o.read_nj;
    write_nj += o.write_nj;
    refresh_nj += o.refresh_nj;
    dram_nj += o.dram_nj;
    ecc_nj += o.ecc_nj;
    return *this;
  }
};

/// Component-wise difference — the telemetry epoch sampler diffs running
/// breakdown snapshots to attribute energy to intervals.
EnergyBreakdown operator-(const EnergyBreakdown& a, const EnergyBreakdown& b);

class EnergyAccountant {
 public:
  void add_read(const TechParams& t) { e_.read_nj += t.read_energy_nj; }
  void add_write(const TechParams& t) { e_.write_nj += t.write_energy_nj; }
  void add_refresh(const TechParams& t, std::uint64_t count = 1) {
    e_.refresh_nj += t.write_energy_nj * static_cast<double>(count);
  }
  /// DRAM line transfers (misses, writebacks, expiry scrub-writebacks).
  void add_dram(std::uint64_t count = 1) {
    e_.dram_nj += technology().dram_access_nj * static_cast<double>(count);
  }
  /// Static energy for `cycles` of a segment with `enabled` fraction of its
  /// arrays powered (way gating).
  void add_leakage(const TechParams& t, Cycle cycles, double enabled = 1.0) {
    e_.leakage_nj += t.leakage_nj(cycles, enabled);
  }
  /// One ECC correction pass (fault subsystem; see EccModel).
  void add_ecc(double nj) { e_.ecc_nj += nj; }

  const EnergyBreakdown& breakdown() const { return e_; }
  void reset() { e_ = EnergyBreakdown{}; }

 private:
  EnergyBreakdown e_;
};

}  // namespace mobcache
