#include "trace/trace_stream.hpp"

#include <algorithm>
#include <atomic>

namespace mobcache {

namespace {

std::atomic<std::uint64_t> g_chunks_generated{0};
std::atomic<std::uint64_t> g_chunk_reuse_hits{0};
std::atomic<std::uint64_t> g_high_water_chunk_bytes{0};

void raise_high_water(std::uint64_t bytes) {
  std::uint64_t cur = g_high_water_chunk_bytes.load(std::memory_order_relaxed);
  while (bytes > cur &&
         !g_high_water_chunk_bytes.compare_exchange_weak(
             cur, bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace

StreamCounters stream_counters() {
  StreamCounters c;
  c.chunks_generated = g_chunks_generated.load(std::memory_order_relaxed);
  c.chunk_reuse_hits = g_chunk_reuse_hits.load(std::memory_order_relaxed);
  c.high_water_chunk_bytes =
      g_high_water_chunk_bytes.load(std::memory_order_relaxed);
  return c;
}

void reset_stream_counters() {
  g_chunks_generated.store(0, std::memory_order_relaxed);
  g_chunk_reuse_hits.store(0, std::memory_order_relaxed);
  g_high_water_chunk_bytes.store(0, std::memory_order_relaxed);
}

std::vector<Access>& ChunkBuffer::refill() {
  if (filled_once_ && buf_.capacity() != 0) {
    g_chunk_reuse_hits.fetch_add(1, std::memory_order_relaxed);
  }
  buf_.clear();
  return buf_;
}

std::span<const Access> ChunkBuffer::publish() {
  filled_once_ = true;
  g_chunks_generated.fetch_add(1, std::memory_order_relaxed);
  raise_high_water(buf_.capacity() * sizeof(Access));
  return {buf_.data(), buf_.size()};
}

std::span<const Access> MaterializedTraceStream::next_chunk() {
  const std::vector<Access>& a = trace_->accesses();
  if (pos_ >= a.size()) return {};
  const std::size_t n = std::min(kStreamChunkRecords, a.size() - pos_);
  std::span<const Access> chunk(a.data() + pos_, n);
  pos_ += n;
  g_chunks_generated.fetch_add(1, std::memory_order_relaxed);
  return chunk;
}

Trace materialize(TraceStream& stream) {
  Trace out(stream.name());
  for (std::span<const Access> c = stream.next_chunk(); !c.empty();
       c = stream.next_chunk()) {
    out.append(c);
  }
  return out;
}

}  // namespace mobcache
