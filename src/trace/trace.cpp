#include "trace/trace.hpp"

#include <unordered_set>

namespace mobcache {

TraceSummary Trace::summarize() const {
  TraceSummary s;
  std::unordered_set<Addr> user_lines;
  std::unordered_set<Addr> kernel_lines;
  for (const Access& a : accesses_) {
    ++s.total;
    ++s.by_mode[static_cast<int>(a.mode)];
    if (a.is_write()) ++s.writes;
    if (a.is_ifetch()) ++s.ifetches;
    if (a.mode == Mode::User) {
      user_lines.insert(line_addr(a.addr));
    } else {
      kernel_lines.insert(line_addr(a.addr));
    }
  }
  s.distinct_lines_user = user_lines.size();
  s.distinct_lines_kernel = kernel_lines.size();
  return s;
}

bool Trace::modes_consistent_with_addresses() const {
  for (const Access& a : accesses_) {
    if (is_kernel_addr(a.addr) != (a.mode == Mode::Kernel)) return false;
  }
  return true;
}

}  // namespace mobcache
