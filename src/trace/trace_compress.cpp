#include "trace/trace_compress.hpp"

#include <fstream>

#include "trace/trace_io.hpp"

namespace mobcache {
namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

bool get_varint(const std::string& in, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const auto byte = static_cast<unsigned char>(in[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

TraceReadResult fail(TraceIoStatus s, std::string detail) {
  TraceReadResult r;
  r.status = s;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

bool write_trace_compressed(const Trace& trace, const std::string& path) {
  std::string body;
  body.reserve(trace.size() * 3);

  Addr prev_addr[kModeCount] = {0, kKernelSpaceBase};
  std::uint16_t prev_thread = 0;
  for (const Access& a : trace.accesses()) {
    const int m = static_cast<int>(a.mode);
    const bool thread_changed = a.thread != prev_thread;
    const auto meta = static_cast<unsigned char>(
        (static_cast<unsigned>(a.type) & 0x3) |
        (static_cast<unsigned>(a.mode) << 2) |
        (static_cast<unsigned>(thread_changed) << 3));
    body += static_cast<char>(meta);
    put_varint(body, zigzag(static_cast<std::int64_t>(a.addr) -
                            static_cast<std::int64_t>(prev_addr[m])));
    if (thread_changed) {
      put_varint(body, a.thread);
      prev_thread = a.thread;
    }
    prev_addr[m] = a.addr;
  }

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(&kTraceMagicZ), sizeof kTraceMagicZ);
  const auto name_len = static_cast<std::uint32_t>(trace.name().size());
  f.write(reinterpret_cast<const char*>(&name_len), sizeof name_len);
  f.write(trace.name().data(), name_len);
  const std::uint64_t count = trace.size();
  f.write(reinterpret_cast<const char*>(&count), sizeof count);
  const std::uint64_t body_len = body.size();
  f.write(reinterpret_cast<const char*>(&body_len), sizeof body_len);
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(f);
}

TraceReadResult read_trace_compressed_detailed(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(TraceIoStatus::FileNotFound, "cannot open " + path);
  std::uint64_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!f)
    return fail(TraceIoStatus::CorruptHeader, "file too small for magic");
  if (magic != kTraceMagicZ)
    return fail(TraceIoStatus::BadMagic, "not a .mctz trace: " + path);
  std::uint32_t name_len = 0;
  f.read(reinterpret_cast<char*>(&name_len), sizeof name_len);
  if (!f)
    return fail(TraceIoStatus::CorruptHeader, "truncated name length");
  if (name_len > (1u << 20)) {
    return fail(TraceIoStatus::CorruptHeader,
                "implausible name length " + std::to_string(name_len));
  }
  std::string name(name_len, '\0');
  f.read(name.data(), name_len);
  std::uint64_t count = 0;
  std::uint64_t body_len = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof count);
  f.read(reinterpret_cast<char*>(&body_len), sizeof body_len);
  if (!f)
    return fail(TraceIoStatus::CorruptHeader, "truncated counts");
  if (body_len > (1ull << 33)) {
    return fail(TraceIoStatus::CorruptHeader,
                "implausible body length " + std::to_string(body_len));
  }
  // Each record costs at least 2 body bytes (meta + 1-byte varint), so a
  // count the body cannot possibly hold is rejected before reserving.
  if (count > body_len) {
    return fail(TraceIoStatus::TruncatedRecords,
                "header promises " + std::to_string(count) +
                    " records but the body holds only " +
                    std::to_string(body_len) + " bytes");
  }
  std::string body(body_len, '\0');
  f.read(body.data(), static_cast<std::streamsize>(body_len));
  if (!f) {
    return fail(TraceIoStatus::TruncatedRecords,
                "body truncated: expected " + std::to_string(body_len) +
                    " bytes");
  }

  Trace trace(std::move(name));
  trace.reserve(count);
  Addr prev_addr[kModeCount] = {0, kKernelSpaceBase};
  std::uint16_t prev_thread = 0;
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (pos >= body.size()) {
      return fail(TraceIoStatus::TruncatedRecords,
                  "record " + std::to_string(i) + " of " +
                      std::to_string(count) + " truncated");
    }
    const auto meta = static_cast<unsigned char>(body[pos++]);
    if ((meta & 0x3) > 2) {
      return fail(TraceIoStatus::BadRecord,
                  "record " + std::to_string(i) + " has bad type bits");
    }
    Access a;
    a.type = static_cast<AccessType>(meta & 0x3);
    a.mode = static_cast<Mode>((meta >> 2) & 0x1);
    std::uint64_t zz = 0;
    if (!get_varint(body, pos, zz)) {
      return fail(TraceIoStatus::TruncatedRecords,
                  "record " + std::to_string(i) + " address varint cut off");
    }
    const int m = static_cast<int>(a.mode);
    a.addr = static_cast<Addr>(static_cast<std::int64_t>(prev_addr[m]) +
                               unzigzag(zz));
    prev_addr[m] = a.addr;
    if (meta & 0x8) {
      std::uint64_t t = 0;
      if (!get_varint(body, pos, t)) {
        return fail(TraceIoStatus::TruncatedRecords,
                    "record " + std::to_string(i) + " thread varint cut off");
      }
      if (t > 0xffff) {
        return fail(TraceIoStatus::BadRecord,
                    "record " + std::to_string(i) + " thread id " +
                        std::to_string(t) + " out of range");
      }
      prev_thread = static_cast<std::uint16_t>(t);
    }
    a.thread = prev_thread;
    trace.push(a);
  }
  if (pos != body.size()) {
    return fail(TraceIoStatus::BadRecord,
                std::to_string(body.size() - pos) +
                    " trailing bytes after the last record");
  }
  if (!trace.modes_consistent_with_addresses()) {
    return fail(TraceIoStatus::InconsistentModes,
                "record modes contradict their address halves");
  }
  TraceReadResult ok;
  ok.trace = std::move(trace);
  return ok;
}

std::optional<Trace> read_trace_compressed(const std::string& path) {
  return read_trace_compressed_detailed(path).trace;
}

TraceReadResult read_trace_any_detailed(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    TraceReadResult r;
    r.status = TraceIoStatus::FileNotFound;
    r.detail = "cannot open " + path;
    return r;
  }
  std::uint64_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!f) {
    TraceReadResult r;
    r.status = TraceIoStatus::CorruptHeader;
    r.detail = "file too small for magic: " + path;
    return r;
  }
  f.close();
  if (magic == kTraceMagicZ) return read_trace_compressed_detailed(path);
  if (magic == kTraceMagic) return read_trace_detailed(path);
  TraceReadResult r;
  r.status = TraceIoStatus::BadMagic;
  r.detail = "magic matches neither .mct nor .mctz: " + path;
  return r;
}

std::optional<Trace> read_trace_any(const std::string& path) {
  return read_trace_any_detailed(path).trace;
}

}  // namespace mobcache
