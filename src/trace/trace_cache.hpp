#pragma once
/// \file trace_cache.hpp
/// Process-wide immutable cache of synthesized workload traces.
///
/// Sweeps rerun the same (app, accesses, seed) suite under dozens of cache
/// configurations; regenerating multi-million-record traces per point used
/// to dominate sweep wall time. The cache generates each trace exactly once
/// — even under concurrent first requests — and hands out shared read-only
/// views. Traces are immutable after generation, so sharing across
/// SweepExecutor workers is race-free by construction.
///
/// The cache is keyed generically (this layer knows nothing about apps);
/// workload/suite.hpp provides the AppId-typed wrappers
/// (cached_app_trace / cached_suite) every runner goes through.
///
/// Memory is bounded: entries nobody currently references are evicted LRU
/// once the resident budget (MOBCACHE_TRACE_CACHE_MB, default 1024) is
/// exceeded. Entries still referenced by a live runner are never evicted, so
/// a returned pointer stays valid for as long as the caller holds it; pinned
/// entries can push residency over budget transiently, and the budget is
/// re-enforced on every subsequent access (hit or publish), not just when
/// the capacity changes.

#include <cstdint>
#include <functional>
#include <memory>

#include "trace/trace.hpp"

namespace mobcache {

/// Cache key. `domain` namespaces producers (workload/suite uses the app
/// id); `accesses`/`seed` mirror the generator configuration.
struct TraceCacheKey {
  std::uint64_t domain = 0;
  std::uint64_t accesses = 0;
  std::uint64_t seed = 0;

  bool operator==(const TraceCacheKey& o) const {
    return domain == o.domain && accesses == o.accesses && seed == o.seed;
  }
};

class TraceCache {
 public:
  /// The process-wide instance (benches, tools and tests share it).
  static TraceCache& instance();

  /// Returns the cached trace for `key`, invoking `generate` exactly once
  /// process-wide on first request. Concurrent requests for the same key
  /// block (without holding the cache lock) until the generating thread
  /// publishes, then share its result.
  std::shared_ptr<const Trace> get_or_generate(
      const TraceCacheKey& key, const std::function<Trace()>& generate);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< generations started
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t resident_entries = 0;
  };
  Stats stats() const;

  /// Resident-byte budget; shrinking it evicts unreferenced entries now.
  void set_capacity_bytes(std::uint64_t bytes);
  std::uint64_t capacity_bytes() const;

  /// Drops every unreferenced entry and resets the statistics counters.
  void clear();

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

 private:
  TraceCache();
  ~TraceCache();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mobcache
