#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace mobcache {
namespace {

struct RawRecord {
  std::uint64_t addr;
  std::uint64_t reserved;
  std::uint8_t type;
  std::uint8_t mode;
  std::uint16_t thread;
  std::uint32_t pad;
};
static_assert(sizeof(RawRecord) == 24);

template <typename T>
void put(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(f);
}

TraceReadResult fail(TraceIoStatus s, std::string detail) {
  TraceReadResult r;
  r.status = s;
  r.detail = std::move(detail);
  return r;
}

/// File size via seek, so the record count can be validated before any
/// allocation happens.
std::uint64_t stream_size(std::ifstream& f) {
  const auto here = f.tellg();
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  f.seekg(here);
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

}  // namespace

const char* to_string(TraceIoStatus s) {
  switch (s) {
    case TraceIoStatus::Ok: return "ok";
    case TraceIoStatus::FileNotFound: return "file-not-found";
    case TraceIoStatus::BadMagic: return "bad-magic";
    case TraceIoStatus::CorruptHeader: return "corrupt-header";
    case TraceIoStatus::TruncatedRecords: return "truncated-records";
    case TraceIoStatus::BadRecord: return "bad-record";
    case TraceIoStatus::InconsistentModes: return "inconsistent-modes";
  }
  return "?";
}

bool write_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  put(f, kTraceMagic);
  const auto name_len = static_cast<std::uint32_t>(trace.name().size());
  put(f, name_len);
  f.write(trace.name().data(), name_len);
  const std::uint64_t count = trace.size();
  put(f, count);
  for (const Access& a : trace.accesses()) {
    RawRecord r{};
    r.addr = a.addr;
    r.reserved = 0;
    r.type = static_cast<std::uint8_t>(a.type);
    r.mode = static_cast<std::uint8_t>(a.mode);
    r.thread = a.thread;
    r.pad = 0;
    f.write(reinterpret_cast<const char*>(&r), sizeof r);
  }
  return static_cast<bool>(f);
}

TraceReadResult read_trace_detailed(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(TraceIoStatus::FileNotFound, "cannot open " + path);
  const std::uint64_t file_size = stream_size(f);

  std::uint64_t magic = 0;
  if (!get(f, magic)) {
    return fail(TraceIoStatus::CorruptHeader,
                "file too small for magic (" + std::to_string(file_size) +
                    " bytes)");
  }
  if (magic != kTraceMagic)
    return fail(TraceIoStatus::BadMagic, "not a .mct trace: " + path);

  std::uint32_t name_len = 0;
  if (!get(f, name_len))
    return fail(TraceIoStatus::CorruptHeader, "truncated name length");
  if (name_len > (1u << 20)) {
    return fail(TraceIoStatus::CorruptHeader,
                "implausible name length " + std::to_string(name_len));
  }
  std::string name(name_len, '\0');
  f.read(name.data(), name_len);
  if (!f) return fail(TraceIoStatus::CorruptHeader, "truncated name bytes");
  std::uint64_t count = 0;
  if (!get(f, count))
    return fail(TraceIoStatus::CorruptHeader, "truncated record count");

  // Validate the promised record section against the actual file size
  // before reserving anything: a flipped bit in `count` must produce a
  // diagnostic, not an allocation of `count * 32` bytes.
  const std::uint64_t header = 8 + 4 + name_len + 8;
  const std::uint64_t avail = file_size > header ? file_size - header : 0;
  if (count > avail / sizeof(RawRecord)) {
    return fail(TraceIoStatus::TruncatedRecords,
                "header promises " + std::to_string(count) +
                    " records but the file holds only " +
                    std::to_string(avail / sizeof(RawRecord)));
  }

  Trace trace(std::move(name));
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RawRecord r{};
    if (!get(f, r)) {
      return fail(TraceIoStatus::TruncatedRecords,
                  "record " + std::to_string(i) + " of " +
                      std::to_string(count) + " truncated");
    }
    if (r.type > 2 || r.mode > 1) {
      return fail(TraceIoStatus::BadRecord,
                  "record " + std::to_string(i) + " has type=" +
                      std::to_string(r.type) + " mode=" +
                      std::to_string(r.mode));
    }
    Access a;
    a.addr = r.addr;
    a.type = static_cast<AccessType>(r.type);
    a.mode = static_cast<Mode>(r.mode);
    a.thread = r.thread;
    trace.push(a);
  }
  if (!trace.modes_consistent_with_addresses()) {
    return fail(TraceIoStatus::InconsistentModes,
                "record modes contradict their address halves");
  }
  TraceReadResult ok;
  ok.trace = std::move(trace);
  return ok;
}

std::optional<Trace> read_trace(const std::string& path) {
  return read_trace_detailed(path).trace;
}

}  // namespace mobcache
