#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace mobcache {
namespace {

constexpr std::uint64_t kMagic = 0x3148434143424f4dull;  // "MOBCAC H1"

struct RawRecord {
  std::uint64_t addr;
  std::uint64_t reserved;
  std::uint8_t type;
  std::uint8_t mode;
  std::uint16_t thread;
  std::uint32_t pad;
};
static_assert(sizeof(RawRecord) == 24);

template <typename T>
void put(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(f);
}

}  // namespace

bool write_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  put(f, kMagic);
  const auto name_len = static_cast<std::uint32_t>(trace.name().size());
  put(f, name_len);
  f.write(trace.name().data(), name_len);
  const std::uint64_t count = trace.size();
  put(f, count);
  for (const Access& a : trace.accesses()) {
    RawRecord r{};
    r.addr = a.addr;
    r.reserved = 0;
    r.type = static_cast<std::uint8_t>(a.type);
    r.mode = static_cast<std::uint8_t>(a.mode);
    r.thread = a.thread;
    r.pad = 0;
    f.write(reinterpret_cast<const char*>(&r), sizeof r);
  }
  return static_cast<bool>(f);
}

std::optional<Trace> read_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::uint64_t magic = 0;
  if (!get(f, magic) || magic != kMagic) return std::nullopt;
  std::uint32_t name_len = 0;
  if (!get(f, name_len) || name_len > (1u << 20)) return std::nullopt;
  std::string name(name_len, '\0');
  f.read(name.data(), name_len);
  if (!f) return std::nullopt;
  std::uint64_t count = 0;
  if (!get(f, count)) return std::nullopt;

  Trace trace(std::move(name));
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RawRecord r{};
    if (!get(f, r)) return std::nullopt;
    if (r.type > 2 || r.mode > 1) return std::nullopt;
    Access a;
    a.addr = r.addr;
    a.type = static_cast<AccessType>(r.type);
    a.mode = static_cast<Mode>(r.mode);
    a.thread = r.thread;
    trace.push(a);
  }
  if (!trace.modes_consistent_with_addresses()) return std::nullopt;
  return trace;
}

}  // namespace mobcache
