#pragma once
/// \file trace_stream.hpp
/// Chunked trace streaming: produce and consume a session's access sequence
/// in fixed-size chunks so the full Trace never has to exist in memory.
///
/// A TraceStream yields the *exact* record sequence its materialized
/// counterpart would produce — the batch entry points (generate_trace,
/// generate_scenario) are implemented as "drain the stream", so the two
/// paths cannot drift (identity by construction, pinned by
/// tests/test_trace_stream.cpp). The consumers (simulate, and the batched
/// sweep engine's build_demand_stream) process one chunk at a time and poll
/// supervision at chunk boundaries, which keeps peak memory at
/// O(kStreamChunkRecords) per live stream instead of O(session length).
/// That bound is what makes the E22 fleet sweep (docs/SWEEP_ENGINE.md,
/// EXPERIMENTS.md) possible: session count is limited by compute, not RAM.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mobcache {

/// Soft chunk size in records. Generator streams fill at least this many
/// records per chunk (the last loop iteration may overshoot by one emission
/// unit — a user burst or kernel episode — so chunks stay aligned with the
/// generators' natural emission granularity). Matches the supervision poll
/// stride: one chunk ≈ one kCancelPollStride block of the materialized
/// demand loop, so the streaming and batch paths poll at the same cadence.
inline constexpr std::size_t kStreamChunkRecords = std::size_t{1} << 16;

/// Process-wide streaming counters, surfaced by `simrun --metrics` as the
/// stream.* group. Relaxed atomics under the hood: cheap enough to leave on.
struct StreamCounters {
  std::uint64_t chunks_generated = 0;   ///< chunks published by any stream
  std::uint64_t chunk_reuse_hits = 0;   ///< refills that reused a buffer
  std::uint64_t high_water_chunk_bytes = 0;  ///< max live chunk-buffer bytes
};

/// Snapshot of the process-wide counters.
StreamCounters stream_counters();
/// Test hook: zeroes the process-wide counters.
void reset_stream_counters();

/// A restartable, chunked producer of trace records. Chunks are views into
/// stream-owned storage: a chunk stays valid until the next call to
/// next_chunk() or reset() on the same stream.
class TraceStream {
 public:
  virtual ~TraceStream() = default;

  /// Workload name (what SimResult::workload reports).
  virtual const std::string& name() const = 0;

  /// The next chunk of records; empty exactly when the stream is exhausted.
  virtual std::span<const Access> next_chunk() = 0;

  /// Rewinds to the beginning: the stream replays the identical record
  /// sequence (same seed, same state machine).
  virtual void reset() = 0;
};

/// Reusable chunk storage for generator-backed streams. Owns one flat
/// vector that is cleared (capacity kept) per refill; publishing accounts
/// the chunk in the process-wide stream counters.
class ChunkBuffer {
 public:
  /// Clears for the next fill, keeping the allocation. Counts a reuse hit
  /// once the buffer's capacity survives from an earlier chunk.
  std::vector<Access>& refill();

  /// Publishes the filled buffer as the next chunk.
  std::span<const Access> publish();

 private:
  std::vector<Access> buf_;
  bool filled_once_ = false;
};

/// Adapter presenting an in-memory Trace as a stream of
/// kStreamChunkRecords-sized subspans (zero copy).
class MaterializedTraceStream final : public TraceStream {
 public:
  /// Non-owning: `trace` must outlive the stream.
  explicit MaterializedTraceStream(const Trace& trace) : trace_(&trace) {}

  const std::string& name() const override { return trace_->name(); }
  std::span<const Access> next_chunk() override;
  void reset() override { pos_ = 0; }

 private:
  const Trace* trace_;
  std::size_t pos_ = 0;
};

/// Drains `stream` into an in-memory Trace (the classic batch
/// representation). The generators' batch entry points are exactly this.
Trace materialize(TraceStream& stream);

}  // namespace mobcache
