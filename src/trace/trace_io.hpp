#pragma once
/// \file trace_io.hpp
/// Compact binary on-disk trace format (".mct" — mobcache trace).
///
/// Layout (little endian):
///   magic   u64  'MOBCACH1'
///   name_len u32, name bytes
///   count   u64
///   count × { addr u64, pc-reserved u64=0, type u8, mode u8, thread u16,
///             pad u32 }
///
/// The fixed 24-byte record keeps reads/writes trivially seekable; traces at
/// the scales used here (≤ tens of millions of records) load in well under a
/// second.

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace mobcache {

/// Writes the trace; returns false on I/O failure.
bool write_trace(const Trace& trace, const std::string& path);

/// Loads a trace; returns std::nullopt on missing file, bad magic,
/// truncation, or a record whose mode contradicts its address half.
std::optional<Trace> read_trace(const std::string& path);

}  // namespace mobcache
