#pragma once
/// \file trace_io.hpp
/// Compact binary on-disk trace format (".mct" — mobcache trace).
///
/// Layout (little endian):
///   magic   u64  'MOBCACH1'
///   name_len u32, name bytes
///   count   u64
///   count × { addr u64, pc-reserved u64=0, type u8, mode u8, thread u16,
///             pad u32 }
///
/// The fixed 24-byte record keeps reads/writes trivially seekable; traces at
/// the scales used here (≤ tens of millions of records) load in well under a
/// second.
///
/// Readers come in two flavours: the legacy std::optional API (kept for
/// callers that only care about success) and the *_detailed API that
/// classifies failures so tools can print an actionable diagnostic and exit
/// nonzero instead of silently regenerating a workload.

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace mobcache {

/// Why a trace failed to load. Every reader maps low-level stream errors to
/// exactly one of these, with a human-readable `detail` alongside.
enum class TraceIoStatus : std::uint8_t {
  Ok,
  FileNotFound,       ///< the path could not be opened at all
  BadMagic,           ///< first 8 bytes match neither .mct nor .mctz
  CorruptHeader,      ///< header fields truncated or self-inconsistent
  TruncatedRecords,   ///< header promises more records than the file holds
  BadRecord,          ///< a record decoded to out-of-range fields
  InconsistentModes,  ///< record modes contradict their address halves
};

const char* to_string(TraceIoStatus s);

/// Result of a detailed read: `trace` is engaged iff `status == Ok`;
/// otherwise `detail` carries a one-line diagnostic suitable for stderr.
struct TraceReadResult {
  TraceIoStatus status = TraceIoStatus::Ok;
  std::string detail;
  std::optional<Trace> trace;

  bool ok() const { return status == TraceIoStatus::Ok; }
};

/// On-disk magic of the flat format ("MOBCACH1").
inline constexpr std::uint64_t kTraceMagic = 0x3148434143424f4dull;

/// Writes the trace; returns false on I/O failure.
bool write_trace(const Trace& trace, const std::string& path);

/// Loads a trace; returns std::nullopt on missing file, bad magic,
/// truncation, or a record whose mode contradicts its address half.
std::optional<Trace> read_trace(const std::string& path);

/// Loads a trace with a typed failure classification. Validates the record
/// count against the file size *before* reserving, so a corrupt header can
/// never drive a multi-gigabyte allocation.
TraceReadResult read_trace_detailed(const std::string& path);

}  // namespace mobcache
