#pragma once
/// \file trace_compress.hpp
/// Compressed on-disk trace format (".mctz").
///
/// The flat .mct format spends 24 bytes per record; memory traces are
/// extremely delta-compressible (streams, loops, fixed strides). The .mctz
/// encoding stores per record:
///   meta byte  : type (2 b) | mode (1 b) | thread-changed (1 b) | reserved
///   addr delta : zigzag varint of (addr - previous addr of the same mode)
///   [thread]   : varint, only when thread-changed
/// Typical synthetic mobile traces compress 4–6× (pinned by tests), which
/// matters once traces reach hundreds of millions of records.

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace mobcache {

/// Writes the compressed trace; returns false on I/O failure.
bool write_trace_compressed(const Trace& trace, const std::string& path);

/// Loads a compressed trace; std::nullopt on missing/corrupt input or a
/// record whose mode contradicts its address half.
std::optional<Trace> read_trace_compressed(const std::string& path);

/// Convenience: picks the reader by file magic (.mct or .mctz).
std::optional<Trace> read_trace_any(const std::string& path);

}  // namespace mobcache
