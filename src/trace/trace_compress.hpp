#pragma once
/// \file trace_compress.hpp
/// Compressed on-disk trace format (".mctz").
///
/// The flat .mct format spends 24 bytes per record; memory traces are
/// extremely delta-compressible (streams, loops, fixed strides). The .mctz
/// encoding stores per record:
///   meta byte  : type (2 b) | mode (1 b) | thread-changed (1 b) | reserved
///   addr delta : zigzag varint of (addr - previous addr of the same mode)
///   [thread]   : varint, only when thread-changed
/// Typical synthetic mobile traces compress 4–6× (pinned by tests), which
/// matters once traces reach hundreds of millions of records.

#include <optional>
#include <string>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace mobcache {

/// On-disk magic of the compressed format ("MOBCACZ1").
inline constexpr std::uint64_t kTraceMagicZ = 0x315a4341'43424f4dull;

/// Writes the compressed trace; returns false on I/O failure.
bool write_trace_compressed(const Trace& trace, const std::string& path);

/// Loads a compressed trace; std::nullopt on missing/corrupt input or a
/// record whose mode contradicts its address half.
std::optional<Trace> read_trace_compressed(const std::string& path);

/// Typed-diagnostic variant of read_trace_compressed.
TraceReadResult read_trace_compressed_detailed(const std::string& path);

/// Convenience: picks the reader by file magic (.mct or .mctz).
std::optional<Trace> read_trace_any(const std::string& path);

/// Sniffs the magic and dispatches to the matching detailed reader, so an
/// unreadable file reports *why* it is unreadable (a file whose magic
/// matches neither format is BadMagic, not two stacked nullopts).
TraceReadResult read_trace_any_detailed(const std::string& path);

}  // namespace mobcache
