#include "trace/trace_cache.hpp"

#include <future>
#include <mutex>
#include <unordered_map>

#include "common/env.hpp"

namespace mobcache {

namespace {

struct KeyHash {
  std::size_t operator()(const TraceCacheKey& k) const {
    // splitmix64-style combine; the three fields are small integers, so a
    // multiplicative mix is enough to spread buckets.
    std::uint64_t h = k.domain * 0x9e3779b97f4a7c15ull;
    h ^= k.accesses + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= k.seed + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

std::uint64_t default_capacity_bytes() {
  // Bounded to 16 TiB so the shift below cannot overflow 64 bits.
  return env_u64_or("MOBCACHE_TRACE_CACHE_MB", 1024, 1, 16ull << 20) << 20;
}

std::uint64_t trace_bytes(const Trace& t) {
  return t.accesses().capacity() * sizeof(Access) + t.name().size() +
         sizeof(Trace);
}

}  // namespace

struct TraceCache::Impl {
  struct Entry {
    /// Ready or in flight; waiters block on the future, not on the lock.
    std::shared_future<std::shared_ptr<const Trace>> fut;
    std::uint64_t bytes = 0;  ///< 0 while generation is in flight
    std::uint64_t last_use = 0;
  };

  mutable std::mutex m;
  std::unordered_map<TraceCacheKey, Entry, KeyHash> map;
  std::uint64_t capacity = default_capacity_bytes();
  std::uint64_t resident = 0;
  std::uint64_t tick = 0;
  Stats counters;

  /// Evicts LRU entries that are ready and externally unreferenced until
  /// the budget holds (or nothing more can go). Caller holds `m`.
  void evict_to_budget() {
    while (resident > capacity) {
      auto victim = map.end();
      for (auto it = map.begin(); it != map.end(); ++it) {
        Entry& e = it->second;
        if (e.bytes == 0) continue;  // in flight
        // use_count == 1 ⇔ only the future's stored copy remains.
        if (e.fut.get().use_count() > 1) continue;
        if (victim == map.end() || e.last_use < victim->second.last_use)
          victim = it;
      }
      if (victim == map.end()) return;  // everything pinned or in flight
      resident -= victim->second.bytes;
      ++counters.evictions;
      map.erase(victim);
    }
  }
};

TraceCache::TraceCache() : impl_(new Impl) {}
TraceCache::~TraceCache() = default;

TraceCache& TraceCache::instance() {
  static TraceCache cache;
  return cache;
}

std::shared_ptr<const Trace> TraceCache::get_or_generate(
    const TraceCacheKey& key, const std::function<Trace()>& generate) {
  std::shared_future<std::shared_ptr<const Trace>> fut;
  std::promise<std::shared_ptr<const Trace>> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    auto it = impl_->map.find(key);
    if (it != impl_->map.end()) {
      ++impl_->counters.hits;
      it->second.last_use = ++impl_->tick;
      fut = it->second.fut;
      // Re-converge on hits too: publishes that ran while every entry was
      // pinned leave the cache over budget, and without this the budget
      // would only be enforced again at the next publish or capacity
      // change — possibly never (tests/test_trace_cache.cpp,
      // ReleasedPinsReconvergeOnNextHit). The hit entry itself is safe:
      // `fut` keeps the trace alive even if the map entry is evicted.
      impl_->evict_to_budget();
    } else {
      ++impl_->counters.misses;
      owner = true;
      fut = promise.get_future().share();
      Impl::Entry e;
      e.fut = fut;
      e.last_use = ++impl_->tick;
      impl_->map.emplace(key, std::move(e));
    }
  }

  if (!owner) return fut.get();  // waits if generation is still in flight

  // Generate outside the lock so other keys proceed in parallel.
  std::shared_ptr<const Trace> trace;
  try {
    trace = std::make_shared<const Trace>(generate());
  } catch (...) {
    // Publish the failure to any waiters, then forget the key so a later
    // request can retry.
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->map.erase(key);
    throw;
  }
  promise.set_value(trace);

  std::lock_guard<std::mutex> lock(impl_->m);
  auto it = impl_->map.find(key);
  if (it != impl_->map.end()) {
    it->second.bytes = trace_bytes(*trace);
    impl_->resident += it->second.bytes;
    impl_->evict_to_budget();
  }
  return trace;
}

TraceCache::Stats TraceCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  Stats s = impl_->counters;
  s.resident_bytes = impl_->resident;
  s.resident_entries = impl_->map.size();
  return s;
}

void TraceCache::set_capacity_bytes(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->capacity = bytes;
  impl_->evict_to_budget();
}

std::uint64_t TraceCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->capacity;
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->m);
  for (auto it = impl_->map.begin(); it != impl_->map.end();) {
    Impl::Entry& e = it->second;
    const bool evictable = e.bytes != 0 && e.fut.get().use_count() == 1;
    if (evictable) {
      impl_->resident -= e.bytes;
      it = impl_->map.erase(it);
    } else {
      ++it;
    }
  }
  impl_->counters = Stats{};
}

}  // namespace mobcache
