#pragma once
/// \file trace.hpp
/// Memory-access trace representation.
///
/// A Trace is the interface between the workload generator (or an external
/// trace file) and the simulated memory hierarchy. Records carry the
/// privilege mode explicitly — the property the whole paper is built on.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

/// One dynamic memory reference.
struct Access {
  Addr addr = 0;        ///< virtual byte address (kernel half ⇔ Mode::Kernel)
  AccessType type = AccessType::Read;
  Mode mode = Mode::User;
  std::uint16_t thread = 0;  ///< simulated thread/context id

  bool is_ifetch() const { return type == AccessType::InstFetch; }
  bool is_write() const { return type == AccessType::Write; }
};

/// Aggregate counts over a trace, split by mode.
struct TraceSummary {
  std::uint64_t total = 0;
  std::uint64_t by_mode[kModeCount] = {0, 0};
  std::uint64_t writes = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t distinct_lines_user = 0;
  std::uint64_t distinct_lines_kernel = 0;

  double kernel_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(by_mode[1]) /
                            static_cast<double>(total);
  }
};

/// In-memory access trace with provenance metadata.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  void reserve(std::size_t n) { accesses_.reserve(n); }
  void push(const Access& a) { accesses_.push_back(a); }

  const std::vector<Access>& accesses() const { return accesses_; }
  std::size_t size() const { return accesses_.size(); }
  bool empty() const { return accesses_.empty(); }
  const Access& operator[](std::size_t i) const { return accesses_[i]; }

  /// Full scan computing mode/type mix and distinct-footprint counts.
  TraceSummary summarize() const;

  /// Sanity invariant: every record's mode matches its address-space half.
  /// The generator maintains this by construction; trace files are checked
  /// on load.
  bool modes_consistent_with_addresses() const;

 private:
  std::string name_;
  std::vector<Access> accesses_;
};

}  // namespace mobcache
