#pragma once
/// \file trace.hpp
/// Memory-access trace representation.
///
/// A Trace is the interface between the workload generator (or an external
/// trace file) and the simulated memory hierarchy. Records carry the
/// privilege mode explicitly — the property the whole paper is built on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace mobcache {

/// One dynamic memory reference. Field order packs the record into 12 used
/// bytes (16 with alignment padding): traces hold hundreds of millions of
/// these and the simulator streams them sequentially, so layout is part of
/// the hot-path contract and pinned by static_asserts below.
struct Access {
  Addr addr = 0;             ///< virtual byte address (kernel half ⇔ Mode::Kernel)
  std::uint16_t thread = 0;  ///< simulated thread/context id
  AccessType type = AccessType::Read;
  Mode mode = Mode::User;

  bool is_ifetch() const { return type == AccessType::InstFetch; }
  bool is_write() const { return type == AccessType::Write; }
};

static_assert(sizeof(Access) <= 16, "Access must stay within one 16-byte slot");
static_assert(offsetof(Access, addr) == 0 && offsetof(Access, thread) == 8 &&
                  offsetof(Access, type) == 10 && offsetof(Access, mode) == 11,
              "Access field layout is load-bearing for trace streaming");
static_assert(std::is_trivially_copyable_v<Access>,
              "bulk append relies on trivially copyable records");

/// Aggregate counts over a trace, split by mode.
struct TraceSummary {
  std::uint64_t total = 0;
  std::uint64_t by_mode[kModeCount] = {0, 0};
  std::uint64_t writes = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t distinct_lines_user = 0;
  std::uint64_t distinct_lines_kernel = 0;

  double kernel_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(by_mode[1]) /
                            static_cast<double>(total);
  }
};

/// In-memory access trace with provenance metadata.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  void reserve(std::size_t n) { accesses_.reserve(n); }
  void push(const Access& a) { accesses_.push_back(a); }

  /// Bulk append: adopts `batch` wholesale when the trace is empty (no copy
  /// at all), otherwise splices it onto the end in one reallocation-checked
  /// insert. Generators should accumulate into a plain vector and hand it
  /// over here instead of calling push() per record.
  void append(std::vector<Access>&& batch) {
    if (accesses_.empty()) {
      accesses_ = std::move(batch);
    } else {
      accesses_.insert(accesses_.end(), batch.begin(), batch.end());
    }
    batch.clear();
  }

  /// Bulk append from a borrowed chunk (trace streaming / materialize()).
  void append(std::span<const Access> chunk) {
    accesses_.insert(accesses_.end(), chunk.begin(), chunk.end());
  }

  const std::vector<Access>& accesses() const { return accesses_; }
  std::size_t size() const { return accesses_.size(); }
  bool empty() const { return accesses_.empty(); }
  const Access& operator[](std::size_t i) const { return accesses_[i]; }

  /// Full scan computing mode/type mix and distinct-footprint counts.
  TraceSummary summarize() const;

  /// Sanity invariant: every record's mode matches its address-space half.
  /// The generator maintains this by construction; trace files are checked
  /// on load.
  bool modes_consistent_with_addresses() const;

 private:
  std::string name_;
  std::vector<Access> accesses_;
};

}  // namespace mobcache
