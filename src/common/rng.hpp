#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random utilities for workload synthesis.
///
/// All simulation randomness flows through Rng so that every experiment is
/// exactly reproducible from its seed. The generator is xoshiro256**, which
/// is far faster than std::mt19937_64 and has no observable bias at the
/// scales used here.

#include <array>
#include <cstdint>
#include <vector>

namespace mobcache {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64,
  /// per the authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Geometric number of trials until success with success probability p;
  /// returns at least 1. Used for phase lengths and burst sizes.
  std::uint64_t geometric(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Index drawn from the (unnormalized) weight vector.
  std::size_t weighted(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Zipf(alpha) sampler over {0, ..., n-1}, item 0 most popular.
///
/// Precomputes the CDF once; sampling is a binary search. Used to model
/// skewed reuse inside working sets (hot lines vs. cold lines), the property
/// that makes user-phase streams L1-friendly and kernel streams L1-hostile.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mobcache
