#pragma once
/// \file flat_json.hpp
/// Minimal parser for the *flat* JSON objects this codebase writes itself:
/// string or bare-number values only, one nesting level, no arrays. It
/// exists so on-disk artifacts (result-store records, daemon requests) can
/// be read back without growing a real JSON dependency — every document it
/// must accept was produced by JsonWriter or by an operator writing a
/// one-line request, and anything outside that grammar is *supposed* to be
/// rejected. Returns false on anything unexpected: a reject is a corrupt
/// record (or a malformed request), never a crash.
///
/// Escape handling mirrors json_escape(): \" \\ \n \t \r \b \f plus \u00xx
/// for control bytes. Numbers are kept as text; get_u64/get_dbl parse on
/// demand and type-check (a quoted number is not a number).

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace mobcache {

class FlatParser {
 public:
  /// Parses one complete object; trailing non-whitespace fails the parse.
  bool parse(const std::string& text);

  /// True when `key` was present (string or number).
  bool has(const char* key) const;

  bool get_str(const char* key, std::string& out) const;
  bool get_u64(const char* key, std::uint64_t& out) const;
  bool get_dbl(const char* key, double& out) const;

 private:
  void skip_ws();
  bool consume(char c);
  bool parse_string(std::string& out);

  const char* p_ = nullptr;
  std::map<std::string, std::pair<std::string, bool>> fields_;
};

}  // namespace mobcache
