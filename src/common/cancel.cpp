#include "common/cancel.hpp"

#include <string>

#include "common/error.hpp"

#if !defined(_WIN32)
#include <csignal>
#endif

namespace mobcache {

void CancelToken::check() const {
  if (!cancel_requested()) return;
  const int sig = signal();
  std::string why = "run cancelled";
  if (sig != 0) why += " by signal " + std::to_string(sig);
  why += "; completed points are persisted, re-run to resume";
  throw CancelledError(std::move(why));
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

#if !defined(_WIN32)

namespace {

void on_cancel_signal(int sig) {
  // Async-signal-safe by construction: two relaxed atomic stores.
  global_cancel_token().request_cancel(sig);
}

}  // namespace

void install_cancellation_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_cancel_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a sweep blocked in I/O should see EINTR and reach its
  // next cancellation poll instead of sleeping through the shutdown.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

#else

void install_cancellation_handlers() {}

#endif

}  // namespace mobcache
