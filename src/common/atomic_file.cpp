#include "common/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace mobcache {

namespace fs = std::filesystem;

bool write_file_synced(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
#if defined(_WIN32)
  const bool synced = wrote;
#else
  const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#endif
  return (std::fclose(f) == 0) && synced;
}

void atomic_publish(const std::string& final_path, const std::string& bytes,
                    const std::string& tmp_token) {
  const fs::path target(final_path);
  const std::string tmp_path =
      (target.parent_path() / (".tmp-" + tmp_token)).string();
  if (!write_file_synced(tmp_path, bytes)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    throw std::runtime_error("atomic publish: cannot write '" + tmp_path +
                             "'");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("atomic publish: cannot publish '" + final_path +
                             "'");
  }
}

}  // namespace mobcache
