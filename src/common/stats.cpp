#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace mobcache {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Log2Histogram::add(std::uint64_t value) {
  const std::size_t bucket =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  max_value_ = std::max(max_value_, value);
  min_value_ = total_ == 0 ? value : std::min(min_value_, value);
  ++total_;
}

void Log2Histogram::merge(const Log2Histogram& o) {
  if (o.buckets_.size() > buckets_.size()) buckets_.resize(o.buckets_.size(), 0);
  for (std::size_t b = 0; b < o.buckets_.size(); ++b)
    buckets_[b] += o.buckets_[b];
  if (o.total_ > 0) {
    max_value_ = std::max(max_value_, o.max_value_);
    min_value_ = total_ == 0 ? o.min_value_ : std::min(min_value_, o.min_value_);
  }
  total_ += o.total_;
}

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const {
  if (total_ == 0) return 0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  // q=0 (or any q naming the rank-1 sample) is exactly the smallest sample
  // recorded — never bucket 0's bound, never the first bucket's sentinel.
  if (target <= 1) return min_value_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target)
      return std::min<std::uint64_t>((2ull << b) - 1, max_value_);
  }
  return max_value_;
}

double Log2Histogram::fraction_below(std::uint64_t threshold) const {
  if (total_ == 0 || threshold == 0) return 0.0;
  double count = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t lo = b == 0 ? 0 : (1ull << b);
    const std::uint64_t hi = 2ull << b;  // exclusive
    if (hi <= threshold) {
      count += static_cast<double>(buckets_[b]);
    } else if (lo < threshold) {
      const double share = static_cast<double>(threshold - lo) /
                           static_cast<double>(hi - lo);
      count += share * static_cast<double>(buckets_[b]);
    }
  }
  return count / static_cast<double>(total_);
}

long QuantileSketch::index_of(double v) {
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
  long sub = static_cast<long>((mant - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // mant rounding guard
  return static_cast<long>(exp) * kSubBuckets + sub;
}

double QuantileSketch::lower_bound_of(long index) {
  // Floor division so negative exponents (values < 0.5) map correctly.
  long exp = index / kSubBuckets;
  long sub = index % kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    --exp;
  }
  return std::ldexp(0.5 + static_cast<double>(sub) * 0.5 / kSubBuckets,
                    static_cast<int>(exp));
}

double QuantileSketch::width_of(long index) {
  long exp = index / kSubBuckets;
  if (index % kSubBuckets < 0) --exp;
  return std::ldexp(0.5 / kSubBuckets, static_cast<int>(exp));
}

void QuantileSketch::ensure_range(long lo, long hi) {
  // Grow buckets_ to cover global indices [lo, hi] inclusive.
  if (buckets_.empty()) {
    base_index_ = lo;
    buckets_.assign(static_cast<std::size_t>(hi - lo + 1), 0);
    return;
  }
  if (lo < base_index_) {
    const std::size_t grow = static_cast<std::size_t>(base_index_ - lo);
    buckets_.insert(buckets_.begin(), grow, 0);
    base_index_ = lo;
  }
  const long top = base_index_ + static_cast<long>(buckets_.size()) - 1;
  if (hi > top) {
    buckets_.resize(buckets_.size() + static_cast<std::size_t>(hi - top), 0);
  }
}

void QuantileSketch::add(double v) {
  const bool positive = v > 0.0;  // false for NaN too
  const double clamped = positive ? v : 0.0;
  if (count_ == 0) {
    min_ = max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
  if (!positive) {
    ++zero_count_;
    return;
  }
  const long idx = index_of(v);
  ensure_range(idx, idx);
  ++buckets_[static_cast<std::size_t>(idx - base_index_)];
}

void QuantileSketch::merge(const QuantileSketch& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  count_ += o.count_;
  zero_count_ += o.zero_count_;
  if (!o.buckets_.empty()) {
    const long lo = o.base_index_;
    const long hi = o.base_index_ + static_cast<long>(o.buckets_.size()) - 1;
    ensure_range(lo, hi);
    for (std::size_t b = 0; b < o.buckets_.size(); ++b) {
      buckets_[static_cast<std::size_t>(lo - base_index_) + b] +=
          o.buckets_[b];
    }
  }
}

double QuantileSketch::min() const { return count_ ? min_ : 0.0; }
double QuantileSketch::max() const { return count_ ? max_ : 0.0; }

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  // Boundaries are exact: interpolation inside the straddling sub-bucket
  // could otherwise report a midpoint above the smallest (or clamp-mask the
  // largest) recorded sample.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  double cum = static_cast<double>(zero_count_);
  if (target < cum) return std::clamp(0.0, min_, max_);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double c = static_cast<double>(buckets_[b]);
    if (c == 0.0) continue;
    if (target < cum + c) {
      const long idx = base_index_ + static_cast<long>(b);
      const double frac = (target - cum + 0.5) / c;
      const double v = lower_bound_of(idx) + width_of(idx) * frac;
      return std::clamp(v, min_, max_);
    }
    cum += c;
  }
  return max_;
}

std::vector<CdfPoint> build_cdf(std::vector<double> samples,
                                std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty() || max_points == 0) return out;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Last sample of each stride so the final point is the max at cum=1.
    const std::size_t idx = (i + 1) * n / points - 1;
    out.push_back({samples[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, 1e-300));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string format_percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[48];
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%llu MB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1ull << 10)) {
    // Non-exact sizes (e.g. time-averaged enabled capacity) round to KB.
    std::snprintf(buf, sizeof buf, "%llu KB",
                  static_cast<unsigned long long>((bytes + 512) >> 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace mobcache
