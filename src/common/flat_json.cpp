#include "common/flat_json.hpp"

#include <cerrno>
#include <cstdlib>

namespace mobcache {

bool FlatParser::parse(const std::string& text) {
  fields_.clear();
  p_ = text.c_str();
  skip_ws();
  if (!consume('{')) return false;
  skip_ws();
  if (consume('}')) {
    skip_ws();
    return *p_ == '\0';
  }
  while (true) {
    std::string key, value;
    bool is_string = false;
    if (!parse_string(key)) return false;
    skip_ws();
    if (!consume(':')) return false;
    skip_ws();
    if (*p_ == '"') {
      if (!parse_string(value)) return false;
      is_string = true;
    } else {
      const char* start = p_;
      while (*p_ != '\0' && *p_ != ',' && *p_ != '}' && *p_ != ' ' &&
             *p_ != '\n')
        ++p_;
      if (p_ == start) return false;
      value.assign(start, p_);
    }
    fields_[key] = {std::move(value), is_string};
    skip_ws();
    if (consume('}')) break;
    if (!consume(',')) return false;
    skip_ws();
  }
  skip_ws();
  return *p_ == '\0';
}

bool FlatParser::has(const char* key) const {
  return fields_.find(key) != fields_.end();
}

bool FlatParser::get_str(const char* key, std::string& out) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || !it->second.second) return false;
  out = it->second.first;
  return true;
}

bool FlatParser::get_u64(const char* key, std::uint64_t& out) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || it->second.second) return false;
  const std::string& t = it->second.first;
  if (t.empty()) return false;
  for (char c : t)
    if (c < '0' || c > '9') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(t.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool FlatParser::get_dbl(const char* key, double& out) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || it->second.second) return false;
  const std::string& t = it->second.first;
  char* end = nullptr;
  out = std::strtod(t.c_str(), &end);
  return end != nullptr && end != t.c_str() && *end == '\0';
}

void FlatParser::skip_ws() {
  while (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r') ++p_;
}

bool FlatParser::consume(char c) {
  if (*p_ != c) return false;
  ++p_;
  return true;
}

bool FlatParser::parse_string(std::string& out) {
  if (!consume('"')) return false;
  out.clear();
  while (*p_ != '\0' && *p_ != '"') {
    if (*p_ == '\\') {
      ++p_;
      switch (*p_) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // json_escape only emits \u00xx for control bytes.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++p_;
            const char c = *p_;
            if (c >= '0' && c <= '9') code = code * 16 + (c - '0');
            else if (c >= 'a' && c <= 'f') code = code * 16 + (c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') code = code * 16 + (c - 'A' + 10);
            else return false;
          }
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
      ++p_;
    } else {
      out += *p_;
      ++p_;
    }
  }
  return consume('"');
}

}  // namespace mobcache
