#pragma once
/// \file table.hpp
/// Aligned console tables and CSV emission for experiment reports.
///
/// Every bench binary renders its paper table/figure through TablePrinter so
/// that the output of `bench_e*` binaries matches EXPERIMENTS.md verbatim.

#include <string>
#include <vector>

namespace mobcache {

/// Column-aligned plain-text table. Cells are strings; numeric formatting is
/// the caller's concern (see format_percent / format_bytes in stats.hpp).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule. Returned string ends in '\n'.
  std::string render() const;

  /// Convenience: render() to stdout.
  void print() const;

  /// Serializes headers + rows as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes).
  std::string to_csv() const;

  /// Writes to_csv() to `path`, creating parent directories if needed.
  /// Returns false (and leaves no partial file behind) on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-decimal double formatting ("3.142").
std::string format_double(double v, int decimals = 3);
/// Integer with thousands separators ("1,234,567").
std::string format_count(unsigned long long v);

}  // namespace mobcache
