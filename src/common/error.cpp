#include "common/error.hpp"

#include "common/env.hpp"

namespace mobcache {

const char* to_string(SimErrorKind kind) {
  switch (kind) {
    case SimErrorKind::Trace: return "trace";
    case SimErrorKind::Config: return "config";
    case SimErrorKind::Numeric: return "numeric";
    case SimErrorKind::Deadline: return "deadline";
    case SimErrorKind::Cancelled: return "cancelled";
    case SimErrorKind::Internal: return "internal";
  }
  return "internal";
}

int exit_code_for(const std::exception& e) {
  if (const auto* sim = dynamic_cast<const SimError*>(&e)) {
    switch (sim->kind()) {
      case SimErrorKind::Trace: return kExitTraceError;
      case SimErrorKind::Config: return kExitUsage;
      case SimErrorKind::Numeric: return kExitNumericError;
      case SimErrorKind::Deadline: return kExitDeadline;
      case SimErrorKind::Cancelled: return kExitInterrupted;
      case SimErrorKind::Internal: return kExitInternal;
    }
  }
  // A bad MOBCACHE_* value is operator error, same bucket as bad usage.
  if (dynamic_cast<const EnvError*>(&e) != nullptr) return kExitUsage;
  return kExitInternal;
}

SimError::SimError(SimErrorKind kind, std::string message)
    : kind_(kind), message_(std::move(message)) {
  reformat();
}

SimError& SimError::with_point(std::uint64_t index) {
  point_ = index;
  reformat();
  return *this;
}

SimError& SimError::with_scheme(std::string scheme) {
  scheme_ = std::move(scheme);
  reformat();
  return *this;
}

SimError& SimError::with_workload(std::string workload) {
  workload_ = std::move(workload);
  reformat();
  return *this;
}

void SimError::reformat() {
  formatted_ = "[";
  formatted_ += to_string(kind_);
  formatted_ += "] ";
  formatted_ += message_;
  if (point_ || !scheme_.empty() || !workload_.empty()) {
    formatted_ += " (";
    bool first = true;
    auto add = [&](const std::string& part) {
      if (!first) formatted_ += ", ";
      formatted_ += part;
      first = false;
    };
    if (point_) add("point " + std::to_string(*point_));
    if (!scheme_.empty()) add("scheme=" + scheme_);
    if (!workload_.empty()) add("workload=" + workload_);
    formatted_ += ")";
  }
}

std::string error_type_of(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const SimError& s) {
    return to_string(s.kind());
  } catch (const std::exception&) {
    return "exception";
  } catch (...) {
    return "unknown";
  }
}

std::string error_message_of(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const SimError& s) {
    // The kind is reported separately (error_type_of) and the context via
    // PointFailure, so strip what()'s "[kind] ..." decoration here.
    return s.message();
  } catch (const std::exception& s) {
    return s.what();
  } catch (...) {
    return "(non-standard exception)";
  }
}

bool is_cancellation(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const SimError& s) {
    return s.kind() == SimErrorKind::Cancelled;
  } catch (...) {
    return false;
  }
}

}  // namespace mobcache
