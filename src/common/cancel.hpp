#pragma once
/// \file cancel.hpp
/// Cooperative cancellation for long-running sweeps.
///
/// Nothing in the simulator preempts anything: cancellation is a flag that
/// hot loops *poll* at a coarse stride (the simulate loop checks once per
/// kCancelPollStride trace records — one relaxed atomic load per ~65k
/// accesses, unmeasurable against the access kernels and gated by
/// BENCH_micro like every other hot-path change). When the flag fires, the
/// polling site throws CancelledError; the sweep machinery treats that as
/// "stop handing out points, drain in-flight workers, keep everything
/// already persisted" and guarded_main turns it into the documented
/// resumable exit code (75).
///
/// The process-wide token is what the SIGINT/SIGTERM handler flips — the
/// handler only stores to an atomic (async-signal-safe), all the real work
/// happens at the next poll. See docs/RELIABILITY.md for the
/// interrupt-and-resume runbook.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mobcache {

/// How often the simulate loop polls for cancellation, in trace records.
/// Coarse on purpose: at typical simulation speed this is a check every few
/// hundred microseconds — latency no human or CI job can see, cost no
/// microbenchmark can measure.
inline constexpr std::uint64_t kCancelPollStride = 1u << 16;

/// A pollable cancellation flag. request_cancel() is async-signal-safe and
/// thread-safe; everything else is called from normal code.
class CancelToken {
 public:
  void request_cancel(int signal = 0) noexcept {
    signal_.store(signal, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The signal that triggered cancellation (0 when cancelled in code).
  int signal() const noexcept {
    return signal_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token (tests and repeated in-process runs).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    signal_.store(0, std::memory_order_relaxed);
  }

  /// Throws CancelledError when cancellation has been requested.
  void check() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> signal_{0};
};

/// The process-wide token. Sweep machinery (SweepExecutor, simulate) polls
/// it unconditionally; it only ever fires if someone cancels it — the
/// signal handler below, or a test.
CancelToken& global_cancel_token();

/// Installs SIGINT/SIGTERM handlers that cancel the global token (idempotent;
/// POSIX only, a no-op elsewhere). Call from mains that run sweeps and can
/// act on cancellation — tools that should die on Ctrl-C as usual must NOT
/// install this.
void install_cancellation_handlers();

}  // namespace mobcache
