#pragma once
/// \file env.hpp
/// Checked parsing of MOBCACHE_* environment variables.
///
/// The env knobs (MOBCACHE_JOBS, MOBCACHE_TRACE_LEN, ...) used to be parsed
/// ad hoc with strtoul and friends, which silently misread garbage
/// ("12abc" -> 12), negatives ("-1" -> huge unsigned), and overflow. Every
/// knob now goes through one parser that either yields a validated value or
/// throws EnvError naming the variable, the offending text, and the accepted
/// range — a typo in a sweep script fails loudly instead of quietly running
/// the wrong experiment.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace mobcache {

/// Thrown for unparsable or out-of-range environment values. The message is
/// self-contained ("MOBCACHE_JOBS: expected an integer in [1, 65536], got
/// 'abc'") so an uncaught escape still diagnoses itself.
class EnvError : public std::runtime_error {
 public:
  explicit EnvError(const std::string& what) : std::runtime_error(what) {}
};

/// Reads `name` as an unsigned integer in [min, max]. Unset (or empty)
/// returns nullopt; anything else non-conforming — trailing junk, a sign, a
/// value outside the range, overflow — throws EnvError.
std::optional<std::uint64_t> env_u64(const char* name,
                                     std::uint64_t min = 0,
                                     std::uint64_t max = UINT64_MAX);

/// env_u64 with a fallback for the unset case.
std::uint64_t env_u64_or(const char* name, std::uint64_t fallback,
                         std::uint64_t min = 0,
                         std::uint64_t max = UINT64_MAX);

/// Reads `name` as a string; unset or empty returns nullopt.
std::optional<std::string> env_string(const char* name);

}  // namespace mobcache
