#pragma once
/// \file types.hpp
/// Fundamental vocabulary types shared by every mobcache module.

#include <cstdint>
#include <string_view>

namespace mobcache {

/// Physical (or simulated-physical) byte address.
using Addr = std::uint64_t;

/// Simulated core clock cycle count.
using Cycle = std::uint64_t;

/// Privilege mode of a memory reference. The central distinction of the
/// paper: user-mode and kernel-mode streams interfere in a shared L2.
enum class Mode : std::uint8_t {
  User = 0,
  Kernel = 1,
};

/// Number of distinct Mode values (used to size per-mode arrays).
inline constexpr int kModeCount = 2;

/// Kind of memory reference as seen by the cache hierarchy.
enum class AccessType : std::uint8_t {
  Read = 0,       ///< data load
  Write = 1,      ///< data store
  InstFetch = 2,  ///< instruction fetch
};

/// Cache line size used throughout the simulated platform (bytes).
inline constexpr std::uint64_t kLineSize = 64;

/// Strip the intra-line offset from an address.
constexpr Addr line_addr(Addr a) { return a & ~(kLineSize - 1); }

/// Canonical start of the simulated kernel address space. Mirrors the
/// AArch64 split: user VAs have the top bits clear, kernel VAs set.
inline constexpr Addr kKernelSpaceBase = 0xffff'0000'0000'0000ull;

/// True when the address lies in the kernel half of the address space.
constexpr bool is_kernel_addr(Addr a) { return a >= kKernelSpaceBase; }

constexpr std::string_view to_string(Mode m) {
  return m == Mode::User ? "user" : "kernel";
}

constexpr std::string_view to_string(AccessType t) {
  switch (t) {
    case AccessType::Read: return "read";
    case AccessType::Write: return "write";
    case AccessType::InstFetch: return "ifetch";
  }
  return "?";
}

}  // namespace mobcache
