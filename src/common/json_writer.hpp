#pragma once
/// \file json_writer.hpp
/// Minimal dependency-free JSON value builder shared by the experiment
/// exporter (exp/json_export) and the observability sinks (obs/trace_export).
///
/// Emits a strict subset of JSON — objects, arrays, strings, finite doubles
/// (non-finite values degrade to null), integers, booleans.

#include <cstdint>
#include <string>
#include <vector>

namespace mobcache {

/// Values are appended in document order; the writer validates nesting
/// (object keys, array elements).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Starts a key inside an object; follow with exactly one value.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);

  /// The finished document. Must be called at nesting depth zero.
  const std::string& str() const;

 private:
  void comma_if_needed();
  std::string out_;
  /// Stack of 'o' (object) / 'a' (array) with a "has elements" flag.
  std::vector<std::pair<char, bool>> stack_;
  bool expecting_value_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace mobcache
