#pragma once
/// \file stats.hpp
/// Lightweight statistics helpers used by monitors, experiments and reports.

#include <cstdint>
#include <string>
#include <vector>

namespace mobcache {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  /// Combines another accumulator into this one (parallel Welford / Chan et
  /// al.), as if every sample of `o` had been add()ed here. Used for
  /// cross-workload metric aggregation.
  void merge(const RunningStat& o);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for wide-ranging positive quantities
/// (block lifetimes, inter-access gaps). Bucket b counts values in
/// [2^b, 2^(b+1)); values of 0 land in bucket 0.
class Log2Histogram {
 public:
  void add(std::uint64_t value);

  /// Adds another histogram's buckets into this one (cross-workload
  /// aggregation; buckets align because both are powers of two).
  void merge(const Log2Histogram& o);

  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Smallest value v such that at least `q` (0..1) of samples are <= upper
  /// bound of v's bucket. Returns bucket upper bound; 0 when empty.
  std::uint64_t quantile_upper_bound(double q) const;

  /// Fraction of samples whose value is strictly below `threshold`
  /// (resolved at bucket granularity, counting whole buckets whose upper
  /// bound is <= threshold plus a linear share of the straddling bucket).
  double fraction_below(std::uint64_t threshold) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Builds an empirical CDF from raw samples; used by the lifetime study (E5).
struct CdfPoint {
  double value;
  double cum_fraction;
};

/// Reduce `samples` (consumed, sorted in place) to at most `max_points`
/// evenly spaced CDF points.
std::vector<CdfPoint> build_cdf(std::vector<double> samples,
                                std::size_t max_points);

/// Geometric mean of strictly positive values; 0 if empty.
double geomean(const std::vector<double>& values);

/// "12.3%"-style formatting helpers used across reports.
std::string format_percent(double fraction, int decimals = 1);
/// Human-readable byte size ("512 KB", "2 MB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace mobcache
