#pragma once
/// \file stats.hpp
/// Lightweight statistics helpers used by monitors, experiments and reports.

#include <cstdint>
#include <string>
#include <vector>

namespace mobcache {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  /// Combines another accumulator into this one (parallel Welford / Chan et
  /// al.), as if every sample of `o` had been add()ed here. Used for
  /// cross-workload metric aggregation.
  void merge(const RunningStat& o);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for wide-ranging positive quantities
/// (block lifetimes, inter-access gaps). Bucket b counts values in
/// [2^b, 2^(b+1)); values of 0 land in bucket 0.
class Log2Histogram {
 public:
  void add(std::uint64_t value);

  /// Adds another histogram's buckets into this one (cross-workload
  /// aggregation; buckets align because both are powers of two).
  void merge(const Log2Histogram& o);

  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Largest sample ever add()ed (or merged in); 0 when empty.
  std::uint64_t max_value() const { return total_ ? max_value_ : 0; }

  /// Smallest sample ever add()ed (or merged in); 0 when empty.
  std::uint64_t min_value() const { return total_ ? min_value_ : 0; }

  /// Smallest value v such that at least `q` (0..1) of samples are <= upper
  /// bound of v's bucket. Returns the bucket upper bound clamped to the
  /// maximum observed sample, so q=1 (or any q landing in the top occupied
  /// bucket) never reports a value above anything recorded; q=0 (or any q
  /// naming the rank-1 sample) is exactly the minimum observed sample.
  /// 0 when empty.
  std::uint64_t quantile_upper_bound(double q) const;

  /// Fraction of samples whose value is strictly below `threshold`
  /// (resolved at bucket granularity, counting whole buckets whose upper
  /// bound is <= threshold plus a linear share of the straddling bucket).
  double fraction_below(std::uint64_t threshold) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t max_value_ = 0;
  std::uint64_t min_value_ = 0;
};

/// Deterministic, mergeable quantile sketch for non-negative doubles
/// (HdrHistogram-style): each power-of-two octave is split into
/// 2^kSubBucketBits linear sub-buckets, bounding relative quantile error to
/// ~1/2^kSubBucketBits while the footprint stays a few KB for any
/// realistically clustered metric. All state is integer counts plus exact
/// min/max, so merge() is associative, commutative, and independent of how
/// samples were sharded — the property the fleet accumulator's
/// "identical results for every --jobs value" contract rests on
/// (tests/test_stats.cpp pins it).
class QuantileSketch {
 public:
  /// Adds one sample. Values <= 0 (and NaN) land in a dedicated zero
  /// bucket; the sketch is meant for magnitudes (energy, CPI, latency).
  void add(double v);

  /// Adds another sketch's counts into this one, exactly.
  void merge(const QuantileSketch& o);

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;

  /// Quantile q in [0,1] with midpoint interpolation inside the straddling
  /// sub-bucket, clamped to the exact [min, max]; q<=0 and q>=1 return the
  /// exact min / max observed sample, so the boundaries never report a value
  /// that was not recorded. Deterministic pure function of the merged
  /// counts; 0 when empty.
  double quantile(double q) const;

 private:
  /// Sub-bucket resolution per octave: 128 buckets → ≤0.8% relative error.
  static constexpr int kSubBucketBits = 7;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static long index_of(double v);
  static double lower_bound_of(long index);
  static double width_of(long index);
  void ensure_range(long lo, long hi);

  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  long base_index_ = 0;                  ///< global index of buckets_[0]
  std::vector<std::uint64_t> buckets_;   ///< contiguous, grown on demand
};

/// Builds an empirical CDF from raw samples; used by the lifetime study (E5).
struct CdfPoint {
  double value;
  double cum_fraction;
};

/// Reduce `samples` (consumed, sorted in place) to at most `max_points`
/// evenly spaced CDF points.
std::vector<CdfPoint> build_cdf(std::vector<double> samples,
                                std::size_t max_points);

/// Geometric mean of strictly positive values; 0 if empty.
double geomean(const std::vector<double>& values);

/// "12.3%"-style formatting helpers used across reports.
std::string format_percent(double fraction, int decimals = 1);
/// Human-readable byte size ("512 KB", "2 MB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace mobcache
