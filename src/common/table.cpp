#include "common/table.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace mobcache {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += c == 0 ? "| " : " | ";
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += cell;
      out.append(width[c] - cell.size(), ' ');
    }
    out += " |\n";
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::print() const { std::cout << render(); }

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TablePrinter::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_count(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace mobcache
