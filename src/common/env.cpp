#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>

namespace mobcache {

namespace {

std::string range_text(std::uint64_t min, std::uint64_t max) {
  std::string out = "[" + std::to_string(min) + ", ";
  out += max == UINT64_MAX ? std::string("2^64)") : std::to_string(max) + "]";
  return out;
}

[[noreturn]] void reject(const char* name, const char* raw, std::uint64_t min,
                         std::uint64_t max) {
  throw EnvError(std::string(name) + ": expected an integer in " +
                 range_text(min, max) + ", got '" + raw + "'");
}

}  // namespace

std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t min,
                                     std::uint64_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  // strtoull accepts leading whitespace, signs and hex prefixes; a config
  // knob should accept none of them, so pre-screen for plain digits.
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') reject(name, raw, min, max);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0') reject(name, raw, min, max);
  if (v < min || v > max) reject(name, raw, min, max);
  return static_cast<std::uint64_t>(v);
}

std::uint64_t env_u64_or(const char* name, std::uint64_t fallback,
                         std::uint64_t min, std::uint64_t max) {
  return env_u64(name, min, max).value_or(fallback);
}

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

}  // namespace mobcache
