#include "common/json_writer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mobcache {

void JsonWriter::comma_if_needed() {
  if (expecting_value_) return;  // after a key, no comma
  if (!stack_.empty() && stack_.back().second) out_ += ',';
  if (!stack_.empty()) stack_.back().second = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  expecting_value_ = false;
  out_ += '{';
  stack_.emplace_back('o', false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().first == 'o');
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  expecting_value_ = false;
  out_ += '[';
  stack_.emplace_back('a', false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().first == 'a');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && stack_.back().first == 'o');
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  expecting_value_ = false;
  if (!std::isfinite(v)) {
    // NaN/Inf are not representable in JSON; null keeps the document valid
    // and is unambiguous for downstream tooling.
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  assert(stack_.empty());
  return out_;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace mobcache
