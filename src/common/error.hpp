#pragma once
/// \file error.hpp
/// Typed error taxonomy for the experiment stack.
///
/// Multi-hour sweeps die in exactly four ways — bad input, bad
/// configuration, numeric garbage, and time — and a supervisor can only
/// make per-point decisions (quarantine, retry, abort) if the failure says
/// which one it was. Every error the sweep machinery raises is therefore a
/// SimError subclass carrying a machine-readable kind plus the context that
/// identifies the failing point (index, scheme, workload), attached as the
/// error crosses the executor boundary. Uncaught escapes still diagnose
/// themselves: what() renders kind + message + context in one line.
///
/// Exit codes (docs/RELIABILITY.md): every tool main is wrapped in
/// guarded_main (exp/bench_harness.hpp), which maps a caught error to the
/// table below — scripts branch on the code, humans read the one-line
/// stderr diagnostic.
///
///   0   success
///   1   trace/input error        (TraceError — corrupt/unreadable input)
///   2   usage/configuration      (ConfigError, EnvError — operator error)
///   3   numeric invariant broken (NumericError — NaN/Inf in a result lane)
///   4   per-point deadline hit   (DeadlineExceeded)
///   5   unexpected exception     (anything else)
///   75  interrupted, resumable   (CancelledError — SIGINT/SIGTERM drain;
///                                 completed points are flushed, re-run
///                                 with the same store to resume)

#include <cstdint>
#include <exception>
#include <optional>
#include <string>

namespace mobcache {

/// Machine-readable failure class; the supervisor branches on this, never
/// on message text.
enum class SimErrorKind {
  Trace,      ///< input trace missing, corrupt, or inconsistent
  Config,     ///< invalid configuration / usage
  Numeric,    ///< NaN/Inf or impossible value in a computed result
  Deadline,   ///< per-point deadline exceeded (cooperative cancellation)
  Cancelled,  ///< whole-run cancellation (SIGINT/SIGTERM or explicit)
  Internal,   ///< anything else raised as a SimError
};

const char* to_string(SimErrorKind kind);

/// Documented process exit codes (see the table above). Values 1 and 2
/// preserve the pre-taxonomy contract (1 = bad input, 2 = usage).
enum ExitCode : int {
  kExitOk = 0,
  kExitTraceError = 1,
  kExitUsage = 2,
  kExitNumericError = 3,
  kExitDeadline = 4,
  kExitInternal = 5,
  kExitInterrupted = 75,  ///< EX_TEMPFAIL: partial results flushed, resumable
};

/// Maps a caught exception to its documented exit code (SimError by kind,
/// EnvError to kExitUsage, everything else to kExitInternal).
int exit_code_for(const std::exception& e);

/// Base of the taxonomy. Context setters return *this so call sites can
/// attach-and-throw in one expression:
///   throw NumericError("energy lane is NaN").with_point(i).with_scheme(s);
class SimError : public std::exception {
 public:
  SimError(SimErrorKind kind, std::string message);

  const char* what() const noexcept override { return formatted_.c_str(); }
  SimErrorKind kind() const { return kind_; }
  const std::string& message() const { return message_; }

  const std::optional<std::uint64_t>& point_index() const { return point_; }
  const std::string& scheme() const { return scheme_; }
  const std::string& workload() const { return workload_; }

  SimError& with_point(std::uint64_t index);
  SimError& with_scheme(std::string scheme);
  SimError& with_workload(std::string workload);

 private:
  void reformat();

  SimErrorKind kind_;
  std::string message_;
  std::optional<std::uint64_t> point_;
  std::string scheme_;
  std::string workload_;
  std::string formatted_;
};

class TraceError : public SimError {
 public:
  explicit TraceError(std::string msg)
      : SimError(SimErrorKind::Trace, std::move(msg)) {}
};

class ConfigError : public SimError {
 public:
  explicit ConfigError(std::string msg)
      : SimError(SimErrorKind::Config, std::move(msg)) {}
};

class NumericError : public SimError {
 public:
  explicit NumericError(std::string msg)
      : SimError(SimErrorKind::Numeric, std::move(msg)) {}
};

class DeadlineExceeded : public SimError {
 public:
  explicit DeadlineExceeded(std::string msg)
      : SimError(SimErrorKind::Deadline, std::move(msg)) {}
};

class CancelledError : public SimError {
 public:
  explicit CancelledError(std::string msg)
      : SimError(SimErrorKind::Cancelled, std::move(msg)) {}
};

/// The taxonomy label of an in-flight exception: the SimErrorKind name for
/// SimErrors, "exception" for other std::exceptions, "unknown" otherwise.
/// This is the error_type persisted in failure manifests and poison
/// records, so it must stay stable across versions.
std::string error_type_of(const std::exception_ptr& e);

/// Human message of an in-flight exception: the bare message() for
/// SimErrors (kind and point context are reported separately), what() for
/// other std::exceptions, a placeholder for non-standard throws.
std::string error_message_of(const std::exception_ptr& e);

/// True when the exception represents whole-run cancellation — the one
/// failure class a keep-going sweep must NOT swallow as a point failure.
bool is_cancellation(const std::exception_ptr& e);

}  // namespace mobcache
