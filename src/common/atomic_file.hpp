#pragma once
/// \file atomic_file.hpp
/// Crash-safe file publication: stream to a `.tmp-*` sibling, fsync, then
/// rename() into place. This is the durability idiom the result store has
/// always used; it lives here so every artifact with the same contract —
/// store records, daemon responses, metrics snapshots — publishes through
/// one audited path. Readers of a published name never observe a
/// half-written file; a crash leaves at most a `.tmp-*` orphan, which
/// owners sweep on startup.

#include <string>

namespace mobcache {

/// Writes `bytes` to `path` and flushes them to stable storage (fsync on
/// POSIX). Returns false on any failure; the file may then exist partially
/// written — callers remove it (atomic_publish does).
bool write_file_synced(const std::string& path, const std::string& bytes);

/// Atomically publishes `bytes` as `final_path`: writes them synced to
/// `<parent>/.tmp-<tmp_token>`, then renames over `final_path` (replacing
/// any previous version in the same atomic step). The tmp file is removed
/// on failure. Throws std::runtime_error when the write or rename fails —
/// a caller that believes it published must actually have.
void atomic_publish(const std::string& final_path, const std::string& bytes,
                    const std::string& tmp_token);

}  // namespace mobcache
