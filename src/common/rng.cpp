#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace mobcache {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // A fully-zero state would be absorbing; splitmix64 never yields four
  // zeros from distinct steps, but keep the guarantee explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and division-free in
  // the common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) {
  p = std::clamp(p, 1e-9, 1.0 - 1e-12);
  const double u = std::max(uniform(), 1e-300);
  const double trials = std::floor(std::log(u) / std::log1p(-p)) + 1.0;
  return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

double Rng::exponential(double mean) {
  const double u = std::max(uniform(), 1e-300);
  return -mean * std::log(u);
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  cdf_.resize(n == 0 ? 1 : n);
  double sum = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace mobcache
