#!/usr/bin/env python3
"""Validate a mobcache telemetry trace (CI smoke check).

Checks structure, not semantics:
  - JSONL: every line parses as a JSON object with type/cycle/track fields.
  - Chrome trace_event: top-level object with a traceEvents array; every
    event carries name/ph/pid, non-metadata events carry a numeric ts, and
    cycle timestamps are monotone per (pid, name) counter track.

Exits 0 and prints a one-line summary on success; exits 1 with the first
offending record otherwise.

Usage:
  python3 scripts/check_trace.py TRACE_FILE [--expect-events=N]
                                 [--require-type=NAME ...]
"""

import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# Event kinds with a pinned payload schema: every occurrence must carry all
# of these fields (flat on the record in JSONL, under "args" in Chrome).
REQUIRED_FIELDS = {
    "fault": ("line", "mode", "outcome", "dirty_lost"),
    "way-quarantine": ("segment", "way", "faults", "healthy_ways",
                       "flush_writebacks"),
    "refresh-burst": ("refreshed", "expired_clean", "expired_dirty",
                      "repaired", "fault_lost"),
}

FAULT_OUTCOMES = {"corrected", "lost", "silent"}


def check_payload(kind, payload, where):
    for field in REQUIRED_FIELDS.get(kind, ()):
        if field not in payload:
            fail(f"{where}: '{kind}' event missing '{field}': {payload}")
    if kind == "fault" and payload.get("outcome") not in FAULT_OUTCOMES:
        fail(f"{where}: bad fault outcome {payload.get('outcome')!r}")


def check_jsonl(path):
    types = {}
    with open(path) as f:
        for i, line in enumerate(f, 1):
            if not line.strip():
                fail(f"{path}:{i}: blank line")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{i}: not valid JSON: {e}")
            if not isinstance(rec, dict):
                fail(f"{path}:{i}: line is not a JSON object")
            for field in ("type", "cycle", "track"):
                if field not in rec:
                    fail(f"{path}:{i}: missing '{field}': {line.strip()}")
            if not isinstance(rec["cycle"], int) or rec["cycle"] < 0:
                fail(f"{path}:{i}: bad cycle {rec['cycle']!r}")
            check_payload(rec["type"], rec, f"{path}:{i}")
            types[rec["type"]] = types.get(rec["type"], 0) + 1
    return sum(types.values()), types


def check_chrome(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        fail(f"{path}: no traceEvents array")
    types = {}
    last_ts = {}  # (pid, name) -> ts, for counter-track monotonicity
    n = 0
    for i, ev in enumerate(doc["traceEvents"]):
        for field in ("name", "ph", "pid"):
            if field not in ev:
                fail(f"traceEvents[{i}]: missing '{field}': {ev}")
        if ev["ph"] == "M":
            continue
        n += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"traceEvents[{i}]: bad ts {ts!r}")
        key = (ev["pid"], ev["name"])
        if ev["ph"] == "C" and ts < last_ts.get(key, 0):
            fail(f"traceEvents[{i}]: counter '{ev['name']}' went back in "
                 f"time ({ts} < {last_ts[key]})")
        last_ts[key] = ts
        check_payload(ev["name"], ev.get("args", {}), f"traceEvents[{i}]")
        types[ev["name"]] = types.get(ev["name"], 0) + 1
    return n, types


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    path = sys.argv[1]
    expect_events = 0
    require_types = []
    for a in sys.argv[2:]:
        if a.startswith("--expect-events="):
            expect_events = int(a.split("=", 1)[1])
        elif a.startswith("--require-type="):
            require_types.append(a.split("=", 1)[1])
        else:
            fail(f"unknown argument {a!r}")

    # A Chrome trace is one JSON document with a traceEvents array; JSONL is
    # one self-contained object per line. Both start with '{', so sniff the
    # first line's content.
    with open(path) as f:
        first = f.readline()
    is_chrome = '"traceEvents"' in first
    n, types = check_chrome(path) if is_chrome else check_jsonl(path)

    if n < expect_events:
        fail(f"only {n} events, expected at least {expect_events}")
    for t in require_types:
        if t not in types:
            fail(f"required event type '{t}' absent "
             f"(present: {sorted(types)})")
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(types.items()))
    fmt = "chrome" if is_chrome else "jsonl"
    print(f"check_trace: OK: {path} ({fmt}, {n} events: {kinds})")


if __name__ == "__main__":
    main()
