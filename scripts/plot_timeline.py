#!/usr/bin/env python3
"""Plot the epoch time-series from a mobcache telemetry trace.

Reads a trace written by `mobcache_simrun --trace-out=FILE[,FORMAT]` in
either format (JSONL or Chrome trace_event) and renders, per
workload/scheme track, the way-allocation and miss-rate timelines plus
structured-event markers (partition resizes, drowsy windows, refresh
bursts). With matplotlib it writes PNGs; without it, it prints an ASCII
timeline so the trajectory is still inspectable on a bare box.

Usage:
  python3 scripts/plot_timeline.py TRACE_FILE [out_dir]
"""

import json
import os
import sys


def load_records(path):
    """Normalizes both formats to a list of dicts with type/cycle/track."""
    with open(path) as f:
        first = f.readline()
        f.seek(0)
        # Both formats start with '{'; only the Chrome document mentions
        # traceEvents on its (single) first line.
        if '"traceEvents"' in first:
            doc = json.load(f)
            return chrome_to_records(doc)
        return [json.loads(line) for line in f if line.strip()]


def chrome_to_records(doc):
    # pid -> "workload/scheme" from the process_name metadata events.
    names = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev["args"]["name"]
    records = []
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M":
            continue
        rec = dict(ev.get("args", {}))
        rec["type"] = ev["name"]
        # ts is microseconds at the 1 GHz model clock: 1 us = 1000 cycles.
        rec["cycle"] = int(round(ev["ts"] * 1000))
        rec["track"] = names.get(ev["pid"], str(ev["pid"]))
        records.append(rec)
    return records


def by_track(records):
    tracks = {}
    for r in records:
        tracks.setdefault(r.get("track", "?"), []).append(r)
    for recs in tracks.values():
        recs.sort(key=lambda r: r.get("cycle", 0))
    return tracks


def series(recs, rtype, field):
    pts = [(r["cycle"], r[field]) for r in recs
           if r.get("type") == rtype and field in r]
    return [p[0] for p in pts], [p[1] for p in pts]


def plot_track(track, recs, out_dir, plt):
    cyc_w, user = series(recs, "l2.ways", "user")
    _, kern = series(recs, "l2.ways", "kernel")
    cyc_m, miss = series(recs, "l2.epoch", "miss_rate")
    resizes = [r["cycle"] for r in recs if r.get("type") == "partition-resize"]
    if not cyc_w and not cyc_m:
        return False

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(8, 5), sharex=True)
    ms = [c / 1e6 for c in cyc_w]
    if cyc_w:
        ax1.step(ms, user, where="post", label="user ways", color="#4878d0")
        ax1.step(ms, kern, where="post", label="kernel ways", color="#d65f5f")
    for c in resizes:
        ax1.axvline(c / 1e6, color="#999999", lw=0.4)
    ax1.set_ylabel("ways")
    ax1.legend(fontsize=8)
    ax1.set_title(track)

    if cyc_m:
        ax2.plot([c / 1e6 for c in cyc_m], miss, "o-", ms=2.5,
                 color="#4878d0")
    ax2.set_ylabel("L2 miss rate")
    ax2.set_xlabel("time (ms)")
    fig.tight_layout()
    name = "timeline_" + "".join(
        ch if ch.isalnum() else "_" for ch in track) + ".png"
    out = os.path.join(out_dir, name)
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")
    return True


ASCII_WIDTH = 60


def ascii_timeline(track, recs):
    cyc, user = series(recs, "l2.ways", "user")
    _, kern = series(recs, "l2.ways", "kernel")
    cyc_m, miss = series(recs, "l2.epoch", "miss_rate")
    events = {}
    for r in recs:
        t = r.get("type")
        if t in ("partition-resize", "drowsy-transition", "refresh-burst",
                 "bypass-decision", "eviction"):
            events[t] = events.get(t, 0) + 1

    print(f"== {track}")
    if cyc:
        span = max(cyc) or 1
        print("   ways (u=user k=kernel), time left->right, "
              f"{span / 1e6:.2f} ms span:")
        for label, vals in (("u", user), ("k", kern)):
            cells = ["."] * ASCII_WIDTH
            for c, v in zip(cyc, vals):
                idx = min(ASCII_WIDTH - 1, int(c / span * ASCII_WIDTH))
                cells[idx] = format(int(v), "X")[-1]
            print(f"   {label} |{''.join(cells)}|")
    if cyc_m:
        lo, hi = min(miss), max(miss)
        print(f"   miss rate per epoch ({len(miss)} samples, "
              f"min {lo:.3f}, max {hi:.3f}):")
        rng = (hi - lo) or 1.0
        bars = "".join(
            "▁▂▃▄▅▆▇█"[min(7, int((m - lo) / rng * 8))] for m in miss)
        print(f"     |{bars}|")
    for t, n in sorted(events.items()):
        print(f"   {t}: {n} events")
    print()


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    path = sys.argv[1]
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "."
    tracks = by_track(load_records(path))
    if not tracks:
        print("no records found")
        sys.exit(1)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; ASCII timelines\n")
        for track, recs in sorted(tracks.items()):
            ascii_timeline(track, recs)
        return

    os.makedirs(out_dir, exist_ok=True)
    plotted = 0
    for track, recs in sorted(tracks.items()):
        if plot_track(track, recs, out_dir, plt):
            plotted += 1
    if plotted == 0:
        print("no epoch samples in the trace; run with --sample=N or a "
              "dynamic scheme")


if __name__ == "__main__":
    main()
