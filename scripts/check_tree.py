#!/usr/bin/env python3
"""Tree-hygiene gate: no tracked file may be gitignored or oversized.

PR 4 accidentally committed a 642-file generated build tree (`build2/`)
because the ignore patterns were narrower than the directories people
actually create. This script makes that class of mistake a CI failure:

  1. Every *tracked* file is checked against the repository's ignore rules
     (`git ls-files --cached --ignored --exclude-standard`). A tracked file
     that matches an ignore pattern means generated state was committed —
     fail and name each offender.
  2. Every tracked file is checked against a size ceiling (default 1 MiB,
     override with --max-bytes). Source trees have no business carrying
     megabyte blobs; build artifacts and logs do.

Run from anywhere inside the repo:  python3 scripts/check_tree.py
Exits 0 when clean, 1 with a per-file report otherwise.
"""

import argparse
import os
import subprocess
import sys


def git_lines(args, repo):
    out = subprocess.run(["git", "-C", repo] + args, check=True,
                         capture_output=True).stdout
    return [p for p in out.decode("utf-8").split("\0") if p]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-bytes", type=int, default=1 << 20,
                        help="size ceiling for any tracked file (default 1 MiB)")
    parser.add_argument("--repo", default=None,
                        help="repository root (default: derived from this script)")
    args = parser.parse_args()

    repo = args.repo or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = []

    tracked_ignored = git_lines(
        ["ls-files", "-z", "--cached", "--ignored", "--exclude-standard"], repo)
    for path in tracked_ignored:
        failures.append(f"tracked file matches a .gitignore pattern: {path}")

    for path in git_lines(["ls-files", "-z", "--cached"], repo):
        full = os.path.join(repo, path)
        try:
            size = os.path.getsize(full)
        except OSError:
            continue  # deleted in the worktree but still tracked — fine here
        if size > args.max_bytes:
            failures.append(
                f"tracked file exceeds {args.max_bytes} bytes: {path} ({size})")

    if failures:
        for f in failures:
            print(f"check_tree: FAIL: {f}", file=sys.stderr)
        print(f"check_tree: {len(failures)} problem(s) — generated or "
              f"oversized state must not be committed", file=sys.stderr)
        return 1
    print("check_tree: OK: no tracked file is gitignored or oversized")
    return 0


if __name__ == "__main__":
    sys.exit(main())
