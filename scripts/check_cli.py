#!/usr/bin/env python3
"""CLI flag-contract checks for mobcache_simrun and mobcache_daemon.

Every `--name=value` flag given with an empty value must be a hard usage
error: exit code 2 plus a `--name needs <what>` diagnostic on stderr. A
silently ignored `--metrics=` (a truncated shell variable, usually) is how
results end up in the wrong place without anyone noticing. Also smokes the
daemon's usage error paths and a `--once` run on an empty service dir.

Usage:
  check_cli.py --simrun PATH --daemon PATH --workdir DIR
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

FAILURES = []

# Every =-flag each binary accepts; kept in sync with the tools' usage text
# (tool_cli_contract fails when a new =-flag forgets the empty-value check).
SIMRUN_EQ_FLAGS = [
    "--trace-out",
    "--metrics",
    "--sample",
    "--fault-rate",
    "--ecc",
    "--fault-seed",
    "--way-disable-threshold",
    "--fault-sweep",
    "--jobs",
    "--store-dir",
    "--point-deadline-ms",
]

DAEMON_EQ_FLAGS = [
    "--store-dir",
    "--jobs",
    "--poll-ms",
    "--epoch-ms",
    "--idle-exit-ms",
]


def run(cmd):
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=120
    )


def check(name, ok, detail=""):
    if ok:
        print(f"ok   {name}")
    else:
        print(f"FAIL {name}: {detail}")
        FAILURES.append(name)


def expect_usage_error(tool_name, cmd, needle):
    p = run(cmd)
    label = f"{tool_name} {' '.join(str(c) for c in cmd[1:])!r}"
    check(
        label,
        p.returncode == 2 and needle in p.stderr,
        f"rc={p.returncode} stderr={p.stderr.strip()!r} (wanted rc=2 "
        f"containing {needle!r})",
    )


def check_empty_value_flags(tool_name, binary, flags):
    for flag in flags:
        expect_usage_error(tool_name, [binary, f"{flag}="], f"{flag} needs")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--simrun", required=True, type=pathlib.Path)
    ap.add_argument("--daemon", required=True, type=pathlib.Path)
    ap.add_argument("--workdir", required=True, type=pathlib.Path)
    args = ap.parse_args()

    shutil.rmtree(args.workdir, ignore_errors=True)
    args.workdir.mkdir(parents=True)

    # simrun: empty =-values, missing positionals, unknown flags.
    check_empty_value_flags("simrun", args.simrun, SIMRUN_EQ_FLAGS)
    p = run([args.simrun])
    check(
        "simrun usage without args",
        p.returncode == 2 and "usage:" in p.stderr,
        f"rc={p.returncode} stderr={p.stderr.strip()!r}",
    )
    p = run([args.simrun, "nofile.mctz", "--frobnicate"])
    check(
        "simrun unknown flag",
        p.returncode == 2 and "unknown flag" in p.stderr,
        f"rc={p.returncode} stderr={p.stderr.strip()!r}",
    )

    # daemon: same empty-value contract, then a --once smoke.
    check_empty_value_flags("daemon", args.daemon, DAEMON_EQ_FLAGS)
    p = run([args.daemon])
    check(
        "daemon usage without args",
        p.returncode == 2 and "usage:" in p.stderr,
        f"rc={p.returncode} stderr={p.stderr.strip()!r}",
    )
    p = run([args.daemon, args.workdir / "svc", "--frobnicate"])
    check(
        "daemon unknown flag",
        p.returncode == 2 and "unknown flag" in p.stderr,
        f"rc={p.returncode} stderr={p.stderr.strip()!r}",
    )

    svc = args.workdir / "svc"
    p = run([args.daemon, svc, "--once"])
    check(
        "daemon --once on empty dir",
        p.returncode == 0,
        f"rc={p.returncode} stderr={p.stderr.strip()!r}",
    )
    check(
        "daemon creates service layout",
        all(
            (svc / d).is_dir() for d in ("inbox", "outbox", "quarantine")
        )
        and (svc / "metrics.json").is_file(),
        f"contents={sorted(q.name for q in svc.iterdir())}",
    )
    metrics = (svc / "metrics.json").read_text()
    check(
        "metrics.json carries service counters",
        '"service.served":0' in metrics,
        f"metrics={metrics.strip()!r}",
    )

    if FAILURES:
        print(f"{len(FAILURES)} CLI contract check(s) failed", file=sys.stderr)
        return 1
    print("all CLI contract checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
