#!/usr/bin/env python3
"""Validate BENCH_*.json perf reports and gate determinism + speedup in CI.

A BENCH report (src/exp/bench_harness.hpp) splits into timing fields that
vary run to run (jobs, wall_ms, points_per_sec) and a "results" object that
must be a pure function of the sweep definition. This script enforces both
halves:

  validate FILE...          structural check of each report: required
                            fields present, points > 0, wall_ms > 0, and
                            every "results" value finite and non-null (the
                            JsonWriter degrades NaN/inf to null, so a null
                            here means a poisoned metric). Also checks the
                            failure manifest (docs/RELIABILITY.md): the
                            "sweep" counters must be consistent with the
                            "failures" array, and any failed point fails
                            the gate unless --allow-failures=N admits up
                            to N (for chaos-injection runs).
  compare SERIAL PARALLEL   the two reports name the same bench, their
                            "results" objects are exactly equal (the
                            parallel engine's determinism contract), and
                            the wall-clock speedup is printed. With
                            --min-speedup=X, speedup below X fails. With
                            --rel-tol=R, result keys under the "timing/"
                            prefix (measured throughputs and ratios, e.g.
                            from bench_micro --kernel-report) are compared
                            with relative tolerance R instead of exactly;
                            all other keys stay exact.
  identical A B             byte-for-byte file comparison — for the
                            deterministic result artifacts (CSV / result
                            JSON) emitted by a --jobs=1 vs --jobs=N run.
  rss-gate SMALL LARGE      the constant-memory gate for streaming sweeps
                            (docs/SWEEP_ENGINE.md): LARGE ran many times the
                            sessions of SMALL, yet its peak_rss_bytes must
                            stay within --max-ratio (default 2.0) of SMALL's.
                            A ratio tracking the session count means a
                            session was materialized somewhere.
  store-gate WARM           the warm-run report of a resumable sweep
                            (docs/RESULT_STORE.md): asserts the result
                            store served >= --min-hit-rate (default 0.9)
                            of its lookups and skipped no corrupt
                            records. Run the bench twice against the same
                            --store-dir and gate the second report.

Exits 0 with a one-line summary per check; exits 1 with the first failure.
"""

import argparse
import json
import math
import sys

# peak_rss_bytes is deliberately absent: the harness omits the key when the
# getrusage probe fails, so its presence is optional and its absence only a
# warning (see peak_rss_of).
REQUIRED_FIELDS = ("bench", "schema_version", "jobs", "points", "wall_ms",
                   "points_per_sec", "result_store",
                   "sweep", "failures", "results")

STORE_COUNTERS = ("hits", "misses", "stores", "corrupt_skipped", "loaded",
                  "poisoned_loaded", "poison_hits", "poison_stores")

SWEEP_COUNTERS = ("completed", "failed", "quarantined")

FAILURE_FIELDS = ("point", "error_type", "message", "quarantined")


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"check_bench: WARN: {msg}", file=sys.stderr)


def peak_rss_of(doc, path):
    """Peak RSS from a report, or None (with a warning) when the harness
    omitted the key because the getrusage probe failed."""
    if "peak_rss_bytes" not in doc:
        warn(f"{path}: no peak_rss_bytes (RSS probe failed on the bench "
             f"host) — skipping RSS checks")
        return None
    rss = doc["peak_rss_bytes"]
    if not isinstance(rss, int) or rss <= 0:
        fail(f"{path}: peak_rss_bytes must be a positive integer "
             f"(got {rss!r}) — a failed probe must omit the key, not "
             f"write a zero")
    return rss


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            # Refuse the non-standard NaN/Infinity literals outright: a
            # report containing them is as poisoned as one containing null.
            doc = json.load(
                f, parse_constant=lambda c: fail(f"{path}: literal {c}"))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    for field in REQUIRED_FIELDS:
        if field not in doc:
            fail(f"{path}: missing field '{field}'")
    return doc


def validate(path, allow_failures=0):
    doc = load_report(path)
    if not isinstance(doc["points"], int) or doc["points"] <= 0:
        fail(f"{path}: points must be a positive integer "
             f"(got {doc['points']!r}) — a zero-point sweep ran nothing")
    if not isinstance(doc["wall_ms"], (int, float)) or doc["wall_ms"] <= 0:
        fail(f"{path}: wall_ms must be positive (got {doc['wall_ms']!r})")
    peak_rss_of(doc, path)
    store = doc["result_store"]
    if not isinstance(store, dict):
        fail(f"{path}: 'result_store' must be an object")
    for counter in STORE_COUNTERS:
        value = store.get(counter)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: result_store.{counter} must be a non-negative "
                 f"integer (got {value!r})")
    sweep = doc["sweep"]
    if not isinstance(sweep, dict):
        fail(f"{path}: 'sweep' must be an object")
    for counter in SWEEP_COUNTERS:
        value = sweep.get(counter)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: sweep.{counter} must be a non-negative integer "
                 f"(got {value!r})")
    batch_size = sweep.get("batch_size")
    if not isinstance(batch_size, int) or batch_size < 1:
        fail(f"{path}: sweep.batch_size must be a positive integer "
             f"(got {batch_size!r}) — benches must record the resolved "
             f"lane cap (docs/SWEEP_ENGINE.md)")
    batched = sweep.get("batched")
    if not isinstance(batched, bool):
        fail(f"{path}: sweep.batched must be a boolean (got {batched!r})")
    if batched and batch_size < 2:
        fail(f"{path}: sweep.batched is true but sweep.batch_size is "
             f"{batch_size} — a batched run needs at least 2 lanes")
    failures = doc["failures"]
    if not isinstance(failures, list):
        fail(f"{path}: 'failures' must be an array")
    if len(failures) != sweep["failed"]:
        fail(f"{path}: sweep.failed ({sweep['failed']}) does not match the "
             f"failures manifest ({len(failures)} entries)")
    if sweep["completed"] + sweep["failed"] != doc["points"]:
        fail(f"{path}: sweep.completed + sweep.failed "
             f"({sweep['completed']} + {sweep['failed']}) does not cover "
             f"points ({doc['points']}) — the sweep lost track of work")
    if sweep["quarantined"] > sweep["failed"]:
        fail(f"{path}: sweep.quarantined ({sweep['quarantined']}) exceeds "
             f"sweep.failed ({sweep['failed']})")
    for i, entry in enumerate(failures):
        if not isinstance(entry, dict):
            fail(f"{path}: failures[{i}] must be an object")
        for field in FAILURE_FIELDS:
            if field not in entry:
                fail(f"{path}: failures[{i}] missing field '{field}'")
        if not isinstance(entry["point"], str) or not entry["point"]:
            fail(f"{path}: failures[{i}].point must be a non-empty string")
        if not isinstance(entry["error_type"], str) or not entry["error_type"]:
            fail(f"{path}: failures[{i}].error_type must be a non-empty "
                 f"string")
    if sweep["failed"] > allow_failures:
        fail(f"{path}: {sweep['failed']} failed sweep points "
             f"(allow-failures={allow_failures}):\n" + "\n".join(
                 f"  [{e.get('error_type')}] {e.get('point')}: "
                 f"{e.get('message')}" for e in failures))
    results = doc["results"]
    if not isinstance(results, dict) or not results:
        fail(f"{path}: 'results' must be a non-empty object")
    for key, value in results.items():
        if value is None:
            fail(f"{path}: results.{key} is null (NaN/inf degraded by the "
                 f"JSON writer)")
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            fail(f"{path}: results.{key} is not a finite number "
                 f"(got {value!r})")
        if key.startswith("timing/sweep/") and value <= 0:
            fail(f"{path}: results.{key} must be positive (got {value!r}) "
                 f"— a zero throughput/speedup means the sweep timer broke")
    note = (f" ({sweep['failed']} failed, {sweep['quarantined']} "
            f"quarantined)" if sweep["failed"] else "")
    print(f"check_bench: OK: {path} ({doc['bench']}, jobs={doc['jobs']}, "
          f"{doc['points']} points{note}, {doc['wall_ms']:.0f} ms, "
          f"{len(results)} metrics)")


def within_rel_tol(a, b, rel_tol):
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return False
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)


def compare(serial_path, parallel_path, min_speedup, rel_tol):
    serial = load_report(serial_path)
    parallel = load_report(parallel_path)
    if serial["bench"] != parallel["bench"]:
        fail(f"bench mismatch: {serial['bench']} vs {parallel['bench']}")
    if serial["points"] != parallel["points"]:
        fail(f"{serial['bench']}: point counts differ "
             f"({serial['points']} vs {parallel['points']})")
    keys = set(serial["results"]) | set(parallel["results"])
    toleranced = 0
    for key in sorted(keys):
        a = serial["results"].get(key)
        b = parallel["results"].get(key)
        if key not in serial["results"] or key not in parallel["results"]:
            # Distinguish a missing key from a differing value: a one-sided
            # key means the two runs executed different sweep definitions
            # (or binaries), not that determinism broke.
            missing_from, present_in = (
                (serial_path, parallel_path) if key not in serial["results"]
                else (parallel_path, serial_path))
            fail(f"{serial['bench']}: results.{key} is missing from "
                 f"{missing_from} but present in {present_in} — the two "
                 f"reports do not describe the same sweep")
        if a == b:
            continue
        if rel_tol is not None and key.startswith("timing/"):
            if within_rel_tol(a, b, rel_tol):
                toleranced += 1
                continue
            fail(f"{serial['bench']}: results.{key} differs beyond "
                 f"rel-tol {rel_tol:g}: {a!r} vs {b!r}")
        fail(f"{serial['bench']}: results.{key} differs between "
             f"jobs={serial['jobs']} and jobs={parallel['jobs']}: "
             f"{a!r} vs {b!r} — the parallel engine broke "
             f"determinism")
    tol_note = (f", {toleranced} timing keys within rel-tol {rel_tol:g}"
                if toleranced else "")
    speedup = serial["wall_ms"] / parallel["wall_ms"]
    print(f"check_bench: OK: {serial['bench']} deterministic across "
          f"jobs={serial['jobs']}/jobs={parallel['jobs']}{tol_note}; speedup "
          f"{speedup:.2f}x ({serial['wall_ms']:.0f} ms -> "
          f"{parallel['wall_ms']:.0f} ms)")
    if min_speedup is not None and speedup < min_speedup:
        fail(f"{serial['bench']}: speedup {speedup:.2f}x below required "
             f"{min_speedup:.2f}x")


def identical(path_a, path_b):
    try:
        with open(path_a, "rb") as f:
            a = f.read()
        with open(path_b, "rb") as f:
            b = f.read()
    except OSError as e:
        fail(str(e))
    if a != b:
        fail(f"{path_a} and {path_b} differ — parallel output is not "
             f"byte-identical to serial")
    print(f"check_bench: OK: {path_a} == {path_b} ({len(a)} bytes)")


def rss_gate(small_path, large_path, max_ratio):
    small = load_report(small_path)
    large = load_report(large_path)
    if small["bench"] != large["bench"]:
        fail(f"bench mismatch: {small['bench']} vs {large['bench']}")
    if large["points"] <= small["points"]:
        fail(f"{large_path}: expected more points than {small_path} "
             f"({large['points']} vs {small['points']}) — the rss-gate "
             f"needs a small run and a large run")
    small_rss = peak_rss_of(small, small_path)
    large_rss = peak_rss_of(large, large_path)
    scale = large["points"] / small["points"]
    if small_rss is None or large_rss is None:
        warn(f"{large['bench']}: rss-gate skipped (peak RSS unmeasured)")
        return
    ratio = large_rss / small_rss
    if ratio > max_ratio:
        fail(f"{large['bench']}: peak RSS grew {ratio:.2f}x while points "
             f"grew {scale:.1f}x (limit {max_ratio:.2f}x) — streaming "
             f"memory is no longer constant in the session count")
    print(f"check_bench: OK: {large['bench']} peak RSS {ratio:.2f}x across "
          f"a {scale:.1f}x session scale-up "
          f"({small_rss} -> {large_rss} bytes, "
          f"limit {max_ratio:.2f}x)")


def store_gate(path, min_hit_rate):
    doc = load_report(path)
    store = doc["result_store"]
    hits, misses = store["hits"], store["misses"]
    lookups = hits + misses
    if lookups == 0:
        fail(f"{path}: no store lookups recorded — was the bench run "
             f"without --store-dir?")
    if store["corrupt_skipped"] != 0:
        fail(f"{path}: {store['corrupt_skipped']} corrupt store records "
             f"skipped — the warm store should be pristine")
    hit_rate = hits / lookups
    if hit_rate < min_hit_rate:
        fail(f"{doc['bench']}: warm-run store hit rate {hit_rate:.1%} "
             f"({hits}/{lookups}) below required {min_hit_rate:.0%} — "
             f"the resume path re-simulated points it should have served "
             f"from the store")
    print(f"check_bench: OK: {doc['bench']} warm run served "
          f"{hit_rate:.1%} of lookups from the result store "
          f"({hits}/{lookups}, {store['loaded']} records loaded)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="structural check")
    p_validate.add_argument("files", nargs="+")
    p_validate.add_argument(
        "--allow-failures", type=int, default=0,
        help="admit up to N failed sweep points per report (default 0); "
             "use for chaos-injection runs that expect failures")

    p_compare = sub.add_parser("compare", help="serial vs parallel report")
    p_compare.add_argument("serial")
    p_compare.add_argument("parallel")
    p_compare.add_argument("--min-speedup", type=float, default=None)
    p_compare.add_argument(
        "--rel-tol", type=float, default=None,
        help="relative tolerance for results keys under the 'timing/' "
             "prefix; other keys remain exact")

    p_identical = sub.add_parser("identical", help="byte-compare two files")
    p_identical.add_argument("a")
    p_identical.add_argument("b")

    p_rss = sub.add_parser("rss-gate",
                           help="constant-memory gate across session counts")
    p_rss.add_argument("small")
    p_rss.add_argument("large")
    p_rss.add_argument("--max-ratio", type=float, default=2.0)

    p_store = sub.add_parser("store-gate",
                             help="warm-run result-store hit-rate gate")
    p_store.add_argument("warm")
    p_store.add_argument("--min-hit-rate", type=float, default=0.9)

    args = parser.parse_args()
    if args.command == "validate":
        for path in args.files:
            validate(path, args.allow_failures)
    elif args.command == "compare":
        compare(args.serial, args.parallel, args.min_speedup, args.rel_tol)
    elif args.command == "identical":
        identical(args.a, args.b)
    elif args.command == "rss-gate":
        rss_gate(args.small, args.large, args.max_ratio)
    else:
        store_gate(args.warm, args.min_hit_rate)


if __name__ == "__main__":
    main()
