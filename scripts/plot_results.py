#!/usr/bin/env python3
"""Plot mobcache experiment results.

Reads the CSV/JSON files the bench binaries write under results/ and renders
the paper-style figures as PNGs (requires matplotlib; degrades to a textual
summary without it).

Usage:
  python3 scripts/plot_results.py [results_dir] [out_dir]
"""

import csv
import json
import os
import sys


def load_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def pct(s):
    return float(s.rstrip("%"))


def plot_headline(results_dir, out_dir, plt):
    rows = load_csv(os.path.join(results_dir, "e9_headline.csv"))
    names = [r["scheme"] for r in rows]
    energy = [float(r["norm cache energy"]) for r in rows]
    time = [float(r["norm exec time"]) for r in rows]

    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(11, 4))
    ax1.bar(range(len(names)), energy, color="#4878d0")
    ax1.set_xticks(range(len(names)))
    ax1.set_xticklabels(names, rotation=30, ha="right", fontsize=8)
    ax1.set_ylabel("normalized L2 cache energy")
    ax1.axhline(1.0, color="gray", lw=0.5)
    ax1.set_title("E9: cache energy vs. baseline")

    ax2.bar(range(len(names)), time, color="#d65f5f")
    ax2.set_xticks(range(len(names)))
    ax2.set_xticklabels(names, rotation=30, ha="right", fontsize=8)
    ax2.set_ylabel("normalized execution time")
    ax2.axhline(1.0, color="gray", lw=0.5)
    ax2.set_ylim(bottom=0.9)
    ax2.set_title("E9: execution time vs. baseline")
    fig.tight_layout()
    out = os.path.join(out_dir, "e9_headline.png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_kernel_share(results_dir, out_dir, plt):
    rows = load_csv(os.path.join(results_dir, "e1_kernel_share.csv"))
    rows = [r for r in rows if r["class"]]
    names = [r["app"] for r in rows]
    share = [pct(r["L2 kernel share"]) for r in rows]
    colors = ["#4878d0" if r["class"] == "interactive" else "#aaaaaa"
              for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4))
    ax.bar(range(len(names)), share, color=colors)
    ax.axhline(40, color="red", lw=0.8, ls="--", label="paper: 40%")
    ax.set_xticks(range(len(names)))
    ax.set_xticklabels(names, rotation=30, ha="right", fontsize=8)
    ax.set_ylabel("kernel share of L2 accesses (%)")
    ax.set_title("E1: the motivating observation")
    ax.legend()
    fig.tight_layout()
    out = os.path.join(out_dir, "e1_kernel_share.png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_static_sweep(results_dir, out_dir, plt):
    rows = load_csv(os.path.join(results_dir, "e3_static_sweep.csv"))
    sized = [r for r in rows if r["config (user+kernel)"] != "shared 2MB baseline"]
    totals = [pct(r["vs 2MB"]) for r in sized]
    miss = [pct(r["L2 miss"]) for r in sized]
    base_miss = pct(rows[0]["L2 miss"])
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(totals, miss, "o-", color="#4878d0", label="static partition")
    ax.axhline(base_miss, color="gray", ls="--", label="shared 2 MB")
    ax.set_xlabel("total capacity vs. 2 MB baseline (%)")
    ax.set_ylabel("L2 miss rate (%)")
    ax.set_title("E3: shrink at similar miss rate")
    ax.legend()
    fig.tight_layout()
    out = os.path.join(out_dir, "e3_static_sweep.png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_dynamic_trace(results_dir, out_dir, plt):
    rows = load_csv(os.path.join(results_dir, "e8_dynamic_trace_browser.csv"))
    t = [float(r["time (ms)"]) for r in rows]
    user = [int(r["user ways"]) for r in rows]
    kern = [int(r["kernel ways"]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 3.5))
    ax.step(t, user, where="post", label="user ways", color="#4878d0")
    ax.step(t, kern, where="post", label="kernel ways", color="#d65f5f")
    total = [u + k for u, k in zip(user, kern)]
    ax.step(t, total, where="post", label="total enabled", color="#555555",
            ls="--")
    ax.set_xlabel("time (ms)")
    ax.set_ylabel("ways")
    ax.set_title("E8: dynamic partition allocation (browser)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = os.path.join(out_dir, "e8_dynamic_trace.png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def text_summary(results_dir):
    path = os.path.join(results_dir, "e9_headline.json")
    if not os.path.exists(path):
        print("no e9_headline.json; run build/bench/bench_e9_headline first")
        return
    with open(path) as f:
        doc = json.load(f)
    print(f"experiment {doc['experiment']}:")
    for s in doc["schemes"]:
        print(f"  {s['name']:<20} energy {s['norm_cache_energy']:.3f}  "
              f"time {s['norm_exec_time']:.3f}  miss {s['avg_miss_rate']:.3f}")


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else results_dir
    os.makedirs(out_dir, exist_ok=True)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; textual summary only\n")
        text_summary(results_dir)
        return

    for fn in (plot_headline, plot_kernel_share, plot_static_sweep,
               plot_dynamic_trace):
        try:
            fn(results_dir, out_dir, plt)
        except FileNotFoundError as e:
            print(f"skipping {fn.__name__}: {e}")


if __name__ == "__main__":
    main()
