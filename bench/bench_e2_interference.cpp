/// \file bench_e2_interference.cpp
/// E2 (paper Fig. 2) — user/kernel interference in the shared L2: how many
/// replacements evict a block of the *other* mode, and how the miss rate
/// changes when the same total capacity is split into isolated segments.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/static_partitioned_l2.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::unique_ptr<L2Interface> shared_2mb() {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  return std::make_unique<SharedL2>(c);
}

/// Same 2 MB total, but split (no interference, no shrink yet).
std::unique_ptr<L2Interface> split_2mb() {
  StaticPartitionConfig c;
  c.user = sram_segment(1536ull << 10, 12);
  c.kernel = sram_segment(512ull << 10, 8);
  return std::make_unique<StaticPartitionedL2>(c);
}

}  // namespace

int main() {
  print_banner("E2",
               "User/kernel interference in the shared L2 (cross-mode "
               "evictions and the isolation dividend)");
  const std::uint64_t len = bench_trace_len();

  TablePrinter t({"app", "cross-mode evictions", "shared miss (user)",
                  "shared miss (kern)", "split miss (user)",
                  "split miss (kern)", "miss delta"});

  for (AppId id : interactive_apps()) {
    const Trace trace = generate_app_trace(id, len, 42);
    const SimResult shared = simulate(trace, shared_2mb());
    const SimResult split = simulate(trace, split_2mb());

    const double cross =
        shared.l2.evictions == 0
            ? 0.0
            : static_cast<double>(shared.l2.cross_mode_evictions) /
                  static_cast<double>(shared.l2.evictions);
    t.add_row({app_name(id), format_percent(cross),
               format_percent(shared.l2.miss_rate(Mode::User)),
               format_percent(shared.l2.miss_rate(Mode::Kernel)),
               format_percent(split.l2.miss_rate(Mode::User)),
               format_percent(split.l2.miss_rate(Mode::Kernel)),
               format_percent(split.l2.miss_rate() - shared.l2.miss_rate(),
                              2)});
  }

  emit(t, "e2_interference.csv");
  std::printf(
      "\nReading: a large share of shared-L2 replacements evict the other "
      "mode's blocks.\nIsolating the modes at the SAME total capacity keeps "
      "the miss rate (delta ~0), so\nthe interference headroom can instead "
      "be cashed in as capacity shrink (E3).\n");
  return 0;
}
