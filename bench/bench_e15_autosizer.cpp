/// \file bench_e15_autosizer.cpp
/// E15 (extension) — automated static-partition provisioning. The paper
/// picked its segment sizes offline against its app suite; this bench runs
/// the PartitionAutosizer end-to-end: derive the configuration from the
/// primary suite, then validate it on the held-out apps (camera,
/// messenger) it has never seen.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/partition_autosizer.hpp"
#include "core/scheme.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

std::string cand_name(const PartitionCandidate& c) {
  return std::to_string(c.user_bytes >> 10) + "K/" +
         std::to_string(c.user_assoc) + " + " +
         std::to_string(c.kernel_bytes >> 10) + "K/" +
         std::to_string(c.kernel_assoc);
}

}  // namespace

int main() {
  print_banner("E15", "Automated static-partition provisioning + holdout");
  const std::uint64_t len = bench_trace_len(600'000);

  // 1. Derive the configuration from the primary suite.
  std::vector<Trace> train;
  for (AppId id : interactive_apps())
    train.push_back(generate_app_trace(id, len, 42));

  AutosizerConfig az_cfg;
  az_cfg.max_slowdown = 1.05;
  az_cfg.tech = TechKind::SttRam;
  PartitionAutosizer az(az_cfg);

  const auto scores = az.score_all(train);
  TablePrinter t({"candidate", "total", "miss", "norm energy", "norm time",
                  "feasible (<=1.05x)"});
  for (const CandidateScore& s : scores) {
    t.add_row({cand_name(s.candidate), format_bytes(s.candidate.total_bytes()),
               format_percent(s.avg_miss_rate),
               format_double(s.norm_cache_energy, 3),
               format_double(s.norm_exec_time, 3),
               s.feasible ? "yes" : "no"});
  }
  emit(t, "e15_autosizer_grid.csv");

  const CandidateScore best = az.best(train);
  std::printf("\nchosen configuration: %s (energy %.3f, time %.3f)\n",
              cand_name(best.candidate).c_str(), best.norm_cache_energy,
              best.norm_exec_time);

  // 2. Validate on held-out apps.
  TablePrinter h({"holdout app", "base miss", "chosen-SP miss",
                  "norm cache energy", "norm exec time"});
  for (AppId id : extra_apps()) {
    const Trace trace = generate_app_trace(id, len, 42);
    const SimResult base =
        simulate(trace, build_scheme(SchemeKind::BaselineSram));
    StaticPartitionConfig pc;
    pc.user = sttram_segment(best.candidate.user_bytes,
                             best.candidate.user_assoc, RetentionClass::Mid);
    pc.kernel = sttram_segment(best.candidate.kernel_bytes,
                               best.candidate.kernel_assoc,
                               RetentionClass::Lo);
    const SimResult r =
        simulate(trace, std::make_unique<StaticPartitionedL2>(pc));
    h.add_row({app_name(id), format_percent(base.l2_miss_rate()),
               format_percent(r.l2_miss_rate()),
               format_double(r.l2_energy.cache_nj() /
                                 base.l2_energy.cache_nj(), 3),
               format_double(static_cast<double>(r.cycles) /
                                 static_cast<double>(base.cycles), 3)});
  }
  std::printf("\nholdout validation (apps the autosizer never saw):\n");
  emit(h, "e15_autosizer_holdout.csv");

  std::printf(
      "\nReading: the automatically chosen configuration matches the "
      "hand-picked one\nwithin one grid step, and generalizes to unseen "
      "interactive apps — the static\nprovisioning step is reproducible, "
      "not an artifact of manual tuning.\n");
  return 0;
}
