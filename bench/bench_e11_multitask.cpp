/// \file bench_e11_multitask.cpp
/// E11 (extension) — multitasking robustness: the schemes on a time-sliced
/// multi-app scenario. App switches flush-friendly designs would suffer
/// here; the shared kernel address space concentrates even more reuse in
/// the kernel segment, strengthening the partitioning premise.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

using namespace mobcache;

int main() {
  print_banner("E11", "Multitasking scenario (time-sliced app mix)");
  const std::uint64_t len = bench_trace_len(4'000'000);

  ScenarioConfig sc;
  sc.apps = interactive_apps();
  sc.total_accesses = len;
  sc.seed = 42;
  const Trace mix = generate_scenario(sc);

  const TraceSummary ts = mix.summarize();
  std::printf("scenario: %s records over %zu apps, kernel share %s, "
              "user footprint %s, kernel footprint %s\n\n",
              format_count(ts.total).c_str(), sc.apps.size(),
              format_percent(ts.kernel_fraction()).c_str(),
              format_bytes(ts.distinct_lines_user * kLineSize).c_str(),
              format_bytes(ts.distinct_lines_kernel * kLineSize).c_str());

  TablePrinter t({"scheme", "L2 miss", "L2 kernel share", "avg enabled",
                  "cache E vs base", "time vs base"});
  SimResult base;
  for (SchemeKind k : headline_schemes()) {
    const SimResult r = simulate(mix, build_scheme(k));
    if (k == SchemeKind::BaselineSram) base = r;
    t.add_row({scheme_name(k), format_percent(r.l2_miss_rate()),
               format_percent(r.l2_kernel_fraction()),
               format_bytes(static_cast<std::uint64_t>(r.l2_avg_enabled_bytes)),
               format_double(r.l2_energy.cache_nj() /
                                 base.l2_energy.cache_nj(), 3),
               format_double(static_cast<double>(r.cycles) /
                                 static_cast<double>(base.cycles), 3)});
  }
  emit(t, "e11_multitask.csv");

  std::printf(
      "\nReading: the static partition is robust to multitasking — its "
      "savings and miss\nrate barely move versus the single-app suite. The "
      "dynamic design, by contrast,\nchases each foreground slice's demand "
      "and pays for it (larger enabled capacity,\nreallocation churn, "
      "extra misses): under fast app switching, static provisioning\nis "
      "the safer choice — a trade-off the single-app evaluation cannot "
      "reveal.\n");
  return 0;
}
