/// \file bench_e18_bypass.cpp
/// E18 (extension) — stream write-bypass for the STT-RAM designs: skip the
/// expensive array install for fills predicted dead-on-arrival (streaming
/// page-cache/network/frame data). Reports the write-energy cut against the
/// re-miss cost, per design.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E18", "Stream write-bypass for STT-RAM fills");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);
  const SchemeSuiteResult base = runner.run_scheme(SchemeKind::BaselineSram);

  TablePrinter t({"design", "bypass", "L2 miss", "write energy (uJ)",
                  "norm cache energy", "norm exec time"});

  for (SchemeKind k : {SchemeKind::SharedStt, SchemeKind::StaticPartMrstt}) {
    for (bool bypass : {false, true}) {
      SchemeParams p;
      p.stt_write_bypass = bypass;
      const SchemeSuiteResult r = runner.run_scheme(k, p);
      std::vector<SchemeSuiteResult> v{base, r};
      ExperimentRunner::normalize(v);
      double write_nj = 0.0;
      for (const SimResult& s : r.per_workload)
        write_nj += s.l2_energy.write_nj;
      t.add_row({r.name, bypass ? "on" : "off",
                 format_percent(r.avg_miss_rate),
                 format_double(write_nj / 1e3, 1),
                 format_double(v[1].norm_cache_energy, 3),
                 format_double(v[1].norm_exec_time, 3)});
    }
  }

  emit(t, "e18_bypass.csv");
  std::printf(
      "\nReading: an honest negative-leaning result. Bypass trims STT write "
      "energy a few\npercent and never hurts time (misses it adds were "
      "DRAM-bound anyway), but in the\nsmall partitioned segments it "
      "misclassifies sweep-reuse streams and inflates the\nmiss rate "
      "noticeably — the paper's retention-aware design already makes "
      "writes\ncheap enough that bypass is not worth its misprediction "
      "risk there. It remains\na reasonable add-on for the unpartitioned "
      "STT design only.\n");
  return 0;
}
