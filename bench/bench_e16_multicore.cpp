/// \file bench_e16_multicore.cpp
/// E16 (future-work extension) — multicore SoCs: N cores with private L1s
/// sharing one L2. Compares the mode-oblivious shared baseline, the
/// single-partition designs applied naively (mode-only: all cores' user
/// blocks share one segment), and the grouped multicore dynamic design
/// (shared kernel segment + per-core user segments).

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "exp/report.hpp"
#include "sim/multicore.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

void run_pairing(const char* label, const std::vector<AppId>& apps,
                 std::uint64_t len, TablePrinter& t) {
  std::vector<Trace> traces;
  for (std::size_t i = 0; i < apps.size(); ++i)
    traces.push_back(generate_app_trace(apps[i], len, 42 + i));

  struct Entry {
    std::string name;
    MulticoreResult r;
  };
  std::vector<Entry> entries;

  entries.push_back({"shared SRAM 2MB",
                     simulate_multicore(traces,
                                        std::make_unique<ModeOnlyL2Adapter>(
                                            build_scheme(
                                                SchemeKind::BaselineSram)))});
  entries.push_back(
      {"SP-MRSTT (mode-only)",
       simulate_multicore(traces, std::make_unique<ModeOnlyL2Adapter>(
                                      build_scheme(
                                          SchemeKind::StaticPartMrstt)))});
  MulticoreL2Config mc;
  mc.cache.name = "L2";
  mc.cache.size_bytes = 2ull << 20;
  mc.cache.assoc = 16;
  mc.cores = static_cast<std::uint32_t>(apps.size());
  entries.push_back(
      {"MC-DP-STT (per-core groups)",
       simulate_multicore(traces,
                          std::make_unique<MulticoreDynamicL2>(mc))});

  const MulticoreResult& base = entries[0].r;
  for (const Entry& e : entries) {
    t.add_row({label, e.name, format_percent(e.r.l2_miss_rate()),
               format_bytes(static_cast<std::uint64_t>(
                   e.r.l2_avg_enabled_bytes)),
               format_double(e.r.l2_energy.cache_nj() /
                                 base.l2_energy.cache_nj(), 3),
               format_double(static_cast<double>(e.r.makespan) /
                                 static_cast<double>(base.makespan), 3)});
  }
}

}  // namespace

int main() {
  print_banner("E16", "Multicore: per-core user segments + shared kernel");
  const std::uint64_t len = bench_trace_len(800'000);

  TablePrinter t({"pairing", "L2 design", "L2 miss", "avg enabled",
                  "cache E vs shared", "makespan vs shared"});
  run_pairing("browser+game (2 cores)", {AppId::Browser, AppId::Game}, len, t);
  run_pairing("launcher+audio (2 cores)",
              {AppId::Launcher, AppId::AudioPlayer}, len, t);
  run_pairing("4-core mix",
              {AppId::Browser, AppId::Game, AppId::Email, AppId::AudioPlayer},
              len / 2, t);
  emit(t, "e16_multicore.csv");

  std::printf(
      "\nReading: naively reusing the single-core static partition on a "
      "multicore makes\nall cores' user blocks fight over one segment; the "
      "grouped design isolates each\ncore's user working set, keeps the "
      "shared kernel segment hot for everyone, and\npreserves the "
      "single-core energy savings at multicore scale — the paper's\n"
      "partitioning insight generalizes per core.\n");
  return 0;
}
