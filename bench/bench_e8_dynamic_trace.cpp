/// \file bench_e8_dynamic_trace.cpp
/// E8 (paper Fig. 7) — the dynamic partition in action: per-epoch way
/// allocation over time on a phase-rich workload, plus reconfiguration
/// statistics for every app.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dynamic_partitioned_l2.hpp"
#include "exp/report.hpp"
#include "sim/cpi_model.hpp"
#include "sim/hierarchy.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

struct RunOut {
  std::vector<AllocationSample> history;
  std::uint64_t reconfig_writebacks = 0;
  Cycle end = 0;
  WayAllocation final_alloc;
  double avg_enabled = 0.0;
};

RunOut run_dp(const Trace& trace) {
  DynamicL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  c.tech = TechKind::SttRam;
  c.retention = RetentionClass::Lo;
  DynamicPartitionedL2 dp(c);

  MemoryHierarchy h({}, dp);
  CpiModel cpu;
  Cycle now = 0;
  for (const Access& a : trace.accesses()) now = cpu.retire(h.access(a, now));
  h.finalize(now);

  RunOut out;
  out.history = dp.allocation_history();
  out.reconfig_writebacks = dp.reconfig_writebacks();
  out.end = now;
  out.final_alloc = dp.allocation();
  out.avg_enabled = dp.avg_enabled_bytes();
  return out;
}

}  // namespace

int main() {
  print_banner("E8", "Dynamic partition allocation trace");
  const std::uint64_t len = bench_trace_len();

  // Detailed time series for the phase-rich browser workload.
  const Trace browser = generate_app_trace(AppId::Browser, len, 42);
  const RunOut b = run_dp(browser);

  TablePrinter series({"time (ms)", "user ways", "kernel ways", "off ways",
                       "enabled"});
  const std::size_t stride = std::max<std::size_t>(1, b.history.size() / 32);
  for (std::size_t i = 0; i < b.history.size(); i += stride) {
    const AllocationSample& s = b.history[i];
    const std::uint32_t off = 16 - s.user_ways - s.kernel_ways;
    series.add_row({format_double(static_cast<double>(s.cycle) / 1e6, 2),
                    std::to_string(s.user_ways), std::to_string(s.kernel_ways),
                    std::to_string(off),
                    format_bytes((s.user_ways + s.kernel_ways) * 128ull
                                 << 10)});
  }
  std::printf("browser allocation over time (%zu reconfigurations total):\n",
              b.history.size());
  emit(series, "e8_dynamic_trace_browser.csv");

  // Summary across the suite.
  TablePrinter sum({"app", "reconfigs", "flush writebacks", "final (u/k)",
                    "avg enabled"});
  for (AppId id : interactive_apps()) {
    const Trace trace = generate_app_trace(id, len, 42);
    const RunOut r = run_dp(trace);
    sum.add_row({app_name(id), format_count(r.history.size()),
                 format_count(r.reconfig_writebacks),
                 std::to_string(r.final_alloc.user_ways) + "/" +
                     std::to_string(r.final_alloc.kernel_ways),
                 format_bytes(static_cast<std::uint64_t>(r.avg_enabled))});
  }
  std::printf("\n");
  emit(sum, "e8_dynamic_trace_summary.csv");

  std::printf(
      "\nReading: the controller tracks phase changes (page-load vs idle "
      "demand), keeps the\ntwo segments sized to their current working "
      "sets, and powers the rest off.\n");
  return 0;
}
