/// \file bench_e6_retention_sweep.cpp
/// E6 (paper Fig. 5) — retention-class assignment sweep for the static
/// partition: all 3×3 (user, kernel) class pairings, validating the
/// advisor's (MID, LO) pick as the energy/performance sweet spot.
///
/// Sweep points (the baseline plus the nine pairings) run as one
/// run_designs() grid: pass `--jobs=N` (or MOBCACHE_JOBS) to spread them
/// over worker threads, and `--batch[=N]` (or MOBCACHE_SWEEP_BATCH) to
/// drive all pairings from one trace decode per workload
/// (docs/SWEEP_ENGINE.md). Results are keyed by point index, so the emitted
/// table, CSV and JSON are byte-identical for every job count and batch
/// setting.
///
/// Fault supervision (docs/RELIABILITY.md): --keep-going turns a failing
/// pairing into a manifest entry (the table/CSV/JSON simply omit that row)
/// instead of aborting, and --fail-points=i,j injects chaos faults at those
/// point indices for testing the path. SIGINT/SIGTERM drain in-flight
/// points and exit 75 (resumable against the same --store-dir).

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/parallel.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  const unsigned batch = bench_sweep_batch(argc, argv);
  const bool keep_going = bench_keep_going(argc, argv);
  const std::vector<std::size_t> fail_points = bench_fail_points(argc, argv);
  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  if (store) store->set_retry_failed(bench_retry_failed(argc, argv));
  BenchReport bench("e6_retention_sweep", jobs);
  print_banner("E6", "Multi-retention pairing sweep for the static design");
  // Session-length traces (see E5): shorter runs hide user-block expiry
  // under LO retention. A four-app subset keeps the 9-pairing sweep fast.
  const std::uint64_t len = bench_trace_len(6'000'000);

  ExperimentRunner runner(
      {AppId::Launcher, AppId::Browser, AppId::Email, AppId::Maps}, len, 42);
  runner.result_store = store.get();
  runner.sim_options.point_deadline_ms = bench_point_deadline_ms(argc, argv);
  runner.jobs = jobs;
  runner.sweep_batch = batch;
  bench.set_sweep_batch(batch, runner.batchable());

  const RetentionClass classes[] = {RetentionClass::Lo, RetentionClass::Mid,
                                    RetentionClass::Hi};

  // Spec 0 is the SRAM baseline; specs 1..9 the (user, kernel) pairings
  // in row-major class order. Each cell depends only on its index.
  const std::size_t n_points = 1 + 3 * 3;
  std::vector<DesignSpec> specs;
  specs.reserve(n_points);
  specs.push_back(scheme_design(SchemeKind::BaselineSram));
  for (std::size_t i = 1; i < n_points; ++i) {
    SchemeParams p;
    p.mrstt_user = classes[(i - 1) / 3];
    p.mrstt_kernel = classes[(i - 1) % 3];
    specs.push_back(scheme_design(SchemeKind::StaticPartMrstt, p));
  }
  // Fail-fast (the default, keep_going == false): any failure propagates to
  // guarded_main, so every outcome below holds a value.
  std::vector<PointOutcome<SchemeSuiteResult>> cells =
      runner.run_designs_outcomes(specs, keep_going, [&](std::size_t i) {
        chaos_maybe_fail(fail_points, i);
      });
  bench.set_points(static_cast<std::uint64_t>(n_points));

  auto pair_label = [&](std::size_t i) -> std::string {
    if (i == 0) return "baseline";
    return std::string(to_string(classes[(i - 1) / 3])) + "/" +
           std::string(to_string(classes[(i - 1) % 3]));
  };
  for (std::size_t i = 0; i < n_points; ++i) {
    if (cells[i].ok()) continue;
    std::fprintf(stderr, "e6: point failed: %s: [%s] %s\n",
                 pair_label(i).c_str(), cells[i].failure->error_type.c_str(),
                 cells[i].failure->message.c_str());
    bench.add_point_failure(*cells[i].failure, pair_label(i));
  }
  if (!cells[0].ok()) {
    // Every pairing is normalized against the baseline point; without it
    // the partial results cannot be interpreted, keep-going or not.
    SimError err(SimErrorKind::Internal,
                 "baseline point failed, cannot normalize: " +
                     cells[0].failure->message);
    err.with_point(0);
    throw err;
  }
  const SchemeSuiteResult& base_cell = *cells[0].value;

  TablePrinter t({"user class", "kernel class", "L2 miss",
                  "norm cache energy", "norm exec time", "refresh uJ",
                  "expired blocks"});

  struct Candidate {
    double energy;
    double time;
    std::uint64_t expired;
    std::string pair;
  };
  std::vector<Candidate> candidates;

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("e6_retention_sweep");
  json.key("points");
  json.begin_array();
  for (std::size_t i = 1; i < n_points; ++i) {
    if (!cells[i].ok()) continue;  // failed pairings live in the manifest
    const SchemeSuiteResult& cell = *cells[i].value;
    const RetentionClass u = classes[(i - 1) / 3];
    const RetentionClass k = classes[(i - 1) % 3];
    std::vector<SchemeSuiteResult> v{base_cell, cell};
    ExperimentRunner::normalize(v);

    double refresh_nj = 0.0;
    std::uint64_t expired = 0;
    for (const SimResult& s : cell.per_workload) {
      refresh_nj += s.l2_energy.refresh_nj;
      expired += s.l2.expired_blocks;
    }
    candidates.push_back(
        {v[1].norm_cache_energy, v[1].norm_exec_time, expired,
         std::string(to_string(u)) + " / " + std::string(to_string(k))});
    t.add_row({std::string(to_string(u)), std::string(to_string(k)),
               format_percent(cell.avg_miss_rate),
               format_double(v[1].norm_cache_energy, 3),
               format_double(v[1].norm_exec_time, 3),
               format_double(refresh_nj / 1e3, 1), format_count(expired)});

    json.begin_object();
    json.key("user").value(std::string(to_string(u)));
    json.key("kernel").value(std::string(to_string(k)));
    json.key("miss_rate").value(cell.avg_miss_rate);
    json.key("norm_cache_energy").value(v[1].norm_cache_energy);
    json.key("norm_exec_time").value(v[1].norm_exec_time);
    json.key("refresh_uj").value(refresh_nj / 1e3);
    json.key("expired_blocks").value(expired);
    json.end_object();
  }
  json.end_array();

  emit(t, "e6_retention_sweep.csv");

  // Selection rule: among pairings within 1% (absolute) of the lowest
  // normalized energy, prefer the best execution time. Expiry counts are
  // reported so the reader can see why pushing the user segment to LO buys
  // ~nothing: its cheap writes are paid back in user-block expiry misses.
  double min_e = 1e9;
  for (const Candidate& c : candidates) min_e = std::min(min_e, c.energy);
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.energy > min_e + 0.01) continue;
    if (best == nullptr || c.time < best->time) best = &c;
  }
  if (best == nullptr) {
    // Only reachable under --keep-going when every pairing point failed.
    throw SimError(SimErrorKind::Internal,
                   "all pairing points failed; no candidate to select");
  }
  std::printf(
      "\nChosen pairing (best time within 1%% of best energy): %s — the "
      "paper's\nshort-retention kernel segment plus a longer-retention user "
      "segment. (HI,HI)\nwastes write energy; (LO,*) on the user side trades "
      "its cheaper writes for\nuser-block expiry misses.\n",
      best->pair.c_str());

  json.key("chosen_pairing").value(best->pair);
  json.key("min_norm_energy").value(min_e);
  json.end_object();
  write_json_results(json, "e6_retention_sweep.json");

  bench.add_result("min_norm_energy", min_e);
  bench.add_result("chosen_norm_energy", best->energy);
  bench.add_result("chosen_norm_time", best->time);
  bench.add_result("base_miss_rate", base_cell.avg_miss_rate);
  if (store) bench.set_store_stats(store->stats());
  bench.write();
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e6_retention_sweep", /*install_signals=*/true,
                      argc, argv, run_bench);
}
