/// \file bench_e6_retention_sweep.cpp
/// E6 (paper Fig. 5) — retention-class assignment sweep for the static
/// partition: all 3×3 (user, kernel) class pairings, validating the
/// advisor's (MID, LO) pick as the energy/performance sweet spot.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E6", "Multi-retention pairing sweep for the static design");
  // Session-length traces (see E5): shorter runs hide user-block expiry
  // under LO retention. A four-app subset keeps the 9-pairing sweep fast.
  const std::uint64_t len = bench_trace_len(6'000'000);

  ExperimentRunner runner(
      {AppId::Launcher, AppId::Browser, AppId::Email, AppId::Maps}, len, 42);
  auto base = runner.run_scheme(SchemeKind::BaselineSram);

  const RetentionClass classes[] = {RetentionClass::Lo, RetentionClass::Mid,
                                    RetentionClass::Hi};
  TablePrinter t({"user class", "kernel class", "L2 miss",
                  "norm cache energy", "norm exec time", "refresh uJ",
                  "expired blocks"});

  struct Candidate {
    double energy;
    double time;
    std::uint64_t expired;
    std::string pair;
  };
  std::vector<Candidate> candidates;
  for (RetentionClass u : classes) {
    for (RetentionClass k : classes) {
      SchemeParams p;
      p.mrstt_user = u;
      p.mrstt_kernel = k;
      auto r = runner.run_scheme(SchemeKind::StaticPartMrstt, p);
      std::vector<SchemeSuiteResult> v{base, r};
      ExperimentRunner::normalize(v);

      double refresh_nj = 0.0;
      std::uint64_t expired = 0;
      for (const SimResult& s : r.per_workload) {
        refresh_nj += s.l2_energy.refresh_nj;
        expired += s.l2.expired_blocks;
      }
      candidates.push_back({v[1].norm_cache_energy, v[1].norm_exec_time,
                            expired,
                            std::string(to_string(u)) + " / " +
                                std::string(to_string(k))});
      t.add_row({std::string(to_string(u)), std::string(to_string(k)),
                 format_percent(r.avg_miss_rate),
                 format_double(v[1].norm_cache_energy, 3),
                 format_double(v[1].norm_exec_time, 3),
                 format_double(refresh_nj / 1e3, 1), format_count(expired)});
    }
  }

  emit(t, "e6_retention_sweep.csv");

  // Selection rule: among pairings within 1% (absolute) of the lowest
  // normalized energy, prefer the best execution time. Expiry counts are
  // reported so the reader can see why pushing the user segment to LO buys
  // ~nothing: its cheap writes are paid back in user-block expiry misses.
  double min_e = 1e9;
  for (const Candidate& c : candidates) min_e = std::min(min_e, c.energy);
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.energy > min_e + 0.01) continue;
    if (best == nullptr || c.time < best->time) best = &c;
  }
  std::printf(
      "\nChosen pairing (best time within 1%% of best energy): %s — the "
      "paper's\nshort-retention kernel segment plus a longer-retention user "
      "segment. (HI,HI)\nwastes write energy; (LO,*) on the user side trades "
      "its cheaper writes for\nuser-block expiry misses.\n",
      best->pair.c_str());
  return 0;
}
