/// \file bench_e12_prefetch.cpp
/// E12 (extension) — stream-prefetcher interaction with partitioning.
/// Prefetched kernel streams (page cache, network buffers) pollute a
/// shared L2; in the partitioned designs the pollution stays inside the
/// owning segment. This bench quantifies miss/energy/time with the L2
/// prefetcher off vs on for the three main designs.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E12", "Prefetcher x partitioning interaction");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);
  // Baseline for normalization: no prefetch, shared SRAM.
  const SchemeSuiteResult base = runner.run_scheme(SchemeKind::BaselineSram);

  TablePrinter t({"scheme", "prefetch", "L2 miss", "useful prefetch",
                  "cache E vs base", "time vs base"});

  for (SchemeKind k : {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt,
                       SchemeKind::DynamicStt}) {
    for (bool pf : {false, true}) {
      ExperimentRunner r2(runner.apps(), len, 42);
      r2.sim_options.hierarchy.prefetch.enabled = pf;
      r2.sim_options.hierarchy.prefetch.degree = 2;
      const SchemeSuiteResult r = r2.run_scheme(k);
      std::vector<SchemeSuiteResult> v{base, r};
      ExperimentRunner::normalize(v);

      std::uint64_t pf_fills = 0;
      std::uint64_t pf_useful = 0;
      for (const SimResult& s : r.per_workload) {
        pf_fills += s.l2.prefetch_fills;
        pf_useful += s.l2.useful_prefetches;
      }
      const std::string accuracy =
          pf_fills == 0 ? "-"
                        : format_percent(static_cast<double>(pf_useful) /
                                         static_cast<double>(pf_fills));
      t.add_row({scheme_name(k), pf ? "on" : "off",
                 format_percent(r.avg_miss_rate), accuracy,
                 format_double(v[1].norm_cache_energy, 3),
                 format_double(v[1].norm_exec_time, 3)});
    }
  }

  emit(t, "e12_prefetch.csv");
  std::printf(
      "\nReading: streaming-heavy mobile workloads prefetch well "
      "(accuracy above 50%%),\ncutting miss rates and execution time for "
      "every design. The partitioned caches\nkeep their energy advantage "
      "with prefetch on: pollution stays inside the owning\nsegment instead "
      "of evicting the other mode's blocks.\n");
  return 0;
}
