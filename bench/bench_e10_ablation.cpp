/// \file bench_e10_ablation.cpp
/// E10 — ablation of the design choices DESIGN.md flags: dynamic-partition
/// epoch length, demand-monitor kind, damping step, miss slack, energy
/// criterion, refresh policy, and replacement policy. Each section compares
/// against the same SRAM baseline on a reduced suite.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

std::vector<AppId> reduced_suite() {
  return {AppId::Launcher, AppId::Browser, AppId::AudioPlayer, AppId::Maps};
}

struct Ctx {
  ExperimentRunner* runner;
  SchemeSuiteResult base;
};

void dp_row(Ctx& ctx, TablePrinter& t, const std::string& label,
            const std::function<void(DynamicL2Config&)>& tweak) {
  auto r = ctx.runner->run_custom(label, [&] {
    DynamicL2Config c;
    c.cache.name = "L2";
    c.cache.size_bytes = 2ull << 20;
    c.cache.assoc = 16;
    c.tech = TechKind::SttRam;
    c.retention = RetentionClass::Lo;
    tweak(c);
    return std::make_unique<DynamicPartitionedL2>(c);
  });
  std::vector<SchemeSuiteResult> v{ctx.base, r};
  ExperimentRunner::normalize(v);
  double enabled = 0.0;
  for (const SimResult& s : r.per_workload)
    enabled += s.l2_avg_enabled_bytes / 1024.0;
  enabled /= static_cast<double>(r.per_workload.size());
  t.add_row({label, format_bytes(static_cast<std::uint64_t>(enabled) << 10),
             format_percent(r.avg_miss_rate),
             format_double(v[1].norm_cache_energy, 3),
             format_double(v[1].norm_exec_time, 3)});
}

TablePrinter dp_table() {
  return TablePrinter({"variant", "avg enabled", "L2 miss",
                       "norm cache energy", "norm exec time"});
}

}  // namespace

int main() {
  print_banner("E10", "Ablation of the dynamic/static design choices");
  const std::uint64_t len = bench_trace_len(600'000);

  ExperimentRunner runner(reduced_suite(), len, 42);
  Ctx ctx{&runner, runner.run_scheme(SchemeKind::BaselineSram)};

  std::printf("[a] DP-STT epoch length (accesses between decisions):\n");
  TablePrinter a = dp_table();
  for (std::uint64_t epoch : {2'500ull, 5'000ull, 10'000ull, 20'000ull,
                              40'000ull, 80'000ull}) {
    dp_row(ctx, a, "epoch=" + std::to_string(epoch),
           [&](DynamicL2Config& c) { c.epoch_accesses = epoch; });
  }
  emit(a, "e10a_epoch.csv");

  std::printf("\n[b] demand monitor:\n");
  TablePrinter b = dp_table();
  dp_row(ctx, b, "shadow-utility", [](DynamicL2Config&) {});
  dp_row(ctx, b, "hill-climb", [](DynamicL2Config& c) {
    c.controller.monitor = MonitorKind::HillClimb;
  });
  emit(b, "e10b_monitor.csv");

  std::printf("\n[c] damping step (max ways moved per epoch):\n");
  TablePrinter c = dp_table();
  for (std::uint32_t step : {1u, 2u, 4u, 16u}) {
    dp_row(ctx, c, "step=" + std::to_string(step),
           [&](DynamicL2Config& cc) { cc.controller.max_step = step; });
  }
  emit(c, "e10c_damping.csv");

  std::printf("\n[d] miss slack (allowed projected-miss growth):\n");
  TablePrinter d = dp_table();
  for (double slack : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    dp_row(ctx, d, "slack=" + format_double(slack, 2),
           [&](DynamicL2Config& cc) { cc.controller.miss_slack = slack; });
  }
  emit(d, "e10d_slack.csv");

  std::printf("\n[e] energy criterion (trim ways that don't pay their "
              "leakage):\n");
  TablePrinter e = dp_table();
  dp_row(ctx, e, "off (paper: miss guard only)", [](DynamicL2Config&) {});
  dp_row(ctx, e, "on", [](DynamicL2Config& cc) {
    cc.controller.use_energy_criterion = true;
  });
  emit(e, "e10e_energy_criterion.csv");

  std::printf("\n[f] refresh policy for the short-retention designs "
              "(DP-STT, session-length traces so blocks actually outlive "
              "the 10 ms retention):\n");
  {
    ExperimentRunner long_runner({AppId::Launcher, AppId::Email},
                                 bench_trace_len(6'000'000), 42);
    Ctx long_ctx{&long_runner,
                 long_runner.run_scheme(SchemeKind::BaselineSram)};
    TablePrinter f({"variant", "avg enabled", "L2 miss", "norm cache energy",
                    "norm exec time"});
    for (RefreshPolicy rp :
         {RefreshPolicy::ScrubDirty, RefreshPolicy::ScrubAll,
          RefreshPolicy::InvalidateOnExpiry}) {
      dp_row(long_ctx, f, std::string(to_string(rp)),
             [&](DynamicL2Config& cc) { cc.refresh = rp; });
    }
    emit(f, "e10f_refresh.csv");
  }

  std::printf("\n[h] L1 geometry (does the >40%% kernel-share observation "
              "depend on L1 size?):\n");
  {
    TablePrinter hh({"L1 (I+D)", "L2 kernel share", "base miss",
                     "SP-MRSTT norm energy", "SP-MRSTT norm time"});
    for (std::uint64_t l1_kb : {16ull, 32ull, 64ull}) {
      ExperimentRunner r2(reduced_suite(), len, 42);
      r2.sim_options.hierarchy.l1i.size_bytes = l1_kb << 10;
      r2.sim_options.hierarchy.l1d.size_bytes = l1_kb << 10;
      auto b = r2.run_scheme(SchemeKind::BaselineSram);
      auto sp = r2.run_scheme(SchemeKind::StaticPartMrstt);
      std::vector<SchemeSuiteResult> v{b, sp};
      ExperimentRunner::normalize(v);
      double kshare = 0.0;
      for (const SimResult& s : b.per_workload) kshare += s.l2_kernel_fraction();
      kshare /= static_cast<double>(b.per_workload.size());
      hh.add_row({std::to_string(l1_kb) + "K+" + std::to_string(l1_kb) + "K",
                  format_percent(kshare), format_percent(b.avg_miss_rate),
                  format_double(v[1].norm_cache_energy, 3),
                  format_double(v[1].norm_exec_time, 3)});
    }
    emit(hh, "e10h_l1_geometry.csv");
  }

  std::printf("\n[g] replacement policy (baseline and SP-SRAM):\n");
  TablePrinter g({"policy", "baseline miss", "SP-SRAM miss",
                  "SP-SRAM norm energy", "SP-SRAM norm time"});
  for (ReplKind rk : {ReplKind::Lru, ReplKind::Plru, ReplKind::Srrip,
                      ReplKind::Fifo, ReplKind::Random}) {
    SchemeParams p;
    p.repl = rk;
    auto base_rk = runner.run_scheme(SchemeKind::BaselineSram, p);
    auto sp = runner.run_scheme(SchemeKind::StaticPartSram, p);
    std::vector<SchemeSuiteResult> v{base_rk, sp};
    ExperimentRunner::normalize(v);
    g.add_row({std::string(to_string(rk)),
               format_percent(base_rk.avg_miss_rate),
               format_percent(sp.avg_miss_rate),
               format_double(v[1].norm_cache_energy, 3),
               format_double(v[1].norm_exec_time, 3)});
  }
  emit(g, "e10g_replacement.csv");

  std::printf("\n[k] segment aspect ratio at fixed sizes (1 MB user + "
              "256 KB kernel): way-heavy vs set-heavy segments:\n");
  {
    TablePrinter kk({"user/kernel assoc", "L2 miss", "norm cache energy",
                     "norm exec time"});
    auto base = runner.run_scheme(SchemeKind::BaselineSram);
    for (std::uint32_t assoc : {4u, 8u, 16u}) {
      auto r = runner.run_custom("aspect", [&] {
        StaticPartitionConfig pc;
        pc.user = sram_segment(1024ull << 10, assoc);
        pc.kernel = sram_segment(256ull << 10, assoc);
        return std::make_unique<StaticPartitionedL2>(pc);
      });
      std::vector<SchemeSuiteResult> v{base, r};
      ExperimentRunner::normalize(v);
      kk.add_row({std::to_string(assoc) + "-way",
                  format_percent(r.avg_miss_rate),
                  format_double(v[1].norm_cache_energy, 3),
                  format_double(v[1].norm_exec_time, 3)});
    }
    emit(kk, "e10k_aspect.csv");
  }

  std::printf("\n[j] L2 inclusion policy (SP-MRSTT):\n");
  {
    TablePrinter jj({"policy", "L2 miss", "norm cache energy",
                     "norm exec time"});
    for (bool inclusive : {false, true}) {
      ExperimentRunner r2(reduced_suite(), len, 42);
      r2.sim_options.hierarchy.inclusive_l2 = inclusive;
      auto b = r2.run_scheme(SchemeKind::BaselineSram);
      auto sp = r2.run_scheme(SchemeKind::StaticPartMrstt);
      std::vector<SchemeSuiteResult> v{b, sp};
      ExperimentRunner::normalize(v);
      jj.add_row({inclusive ? "inclusive" : "non-inclusive (paper)",
                  format_percent(sp.avg_miss_rate),
                  format_double(v[1].norm_cache_energy, 3),
                  format_double(v[1].norm_exec_time, 3)});
    }
    emit(jj, "e10j_inclusion.csv");
  }

  std::printf("\n[i] XOR set-index hashing (baseline):\n");
  {
    TablePrinter ii({"indexing", "baseline miss", "norm exec time"});
    auto plain = runner.run_scheme(SchemeKind::BaselineSram);
    SchemeParams px;
    px.xor_index = true;
    auto hashed = runner.run_scheme(SchemeKind::BaselineSram, px);
    std::vector<SchemeSuiteResult> v{plain, hashed};
    ExperimentRunner::normalize(v);
    ii.add_row({"modulo (paper)", format_percent(plain.avg_miss_rate),
                "1.000"});
    ii.add_row({"xor-folded", format_percent(hashed.avg_miss_rate),
                format_double(v[1].norm_exec_time, 3)});
    emit(ii, "e10i_indexing.csv");
  }

  std::printf(
      "\nReading: the miss-slack guard and the epoch length are the main "
      "energy/performance\ndials (longer epochs and zero slack keep more "
      "ways powered); the shadow-utility\nmonitor clearly beats blind "
      "hill-climbing; aggressive (undamped) reallocation\nsaves leakage "
      "but pays in flush misses; refresh policy only matters once blocks\n"
      "outlive their retention, where scrub-dirty is the cheapest safe "
      "choice.\n");
  return 0;
}
