/// \file bench_e9_headline.cpp
/// E9 (paper Fig. 8 / Table 3) — the headline comparison: normalized cache
/// energy and execution time for every scheme over the interactive suite,
/// plus the compute-bound controls as an appendix.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/json_export.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E9", "Headline comparison across all schemes");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);
  const std::vector<SchemeSuiteResult> results = runner.run_headline();

  emit(headline_table(results), "e9_headline.csv");
  if (write_experiment_json("E9", results, "e9_headline.json")) {
    std::printf("[json] %s\n", results_path("e9_headline.json").c_str());
  }

  // Per-app normalized cache energy for the two headline designs.
  const SchemeSuiteResult& base = results[0];
  auto find = [&](SchemeKind k) -> const SchemeSuiteResult& {
    for (const auto& r : results)
      if (r.kind == k) return r;
    return base;
  };
  const SchemeSuiteResult& mrstt = find(SchemeKind::StaticPartMrstt);
  const SchemeSuiteResult& dpstt = find(SchemeKind::DynamicStt);

  TablePrinter per({"app", "SP-MRSTT energy", "SP-MRSTT time",
                    "DP-STT energy", "DP-STT time"});
  for (std::size_t w = 0; w < runner.apps().size(); ++w) {
    const SimResult& b = base.per_workload[w];
    auto e = [&](const SchemeSuiteResult& r) {
      return format_double(
          r.per_workload[w].l2_energy.cache_nj() / b.l2_energy.cache_nj(), 3);
    };
    auto c = [&](const SchemeSuiteResult& r) {
      return format_double(static_cast<double>(r.per_workload[w].cycles) /
                               static_cast<double>(b.cycles),
                           3);
    };
    per.add_row({b.workload, e(mrstt), c(mrstt), e(dpstt), c(dpstt)});
  }
  std::printf("\nPer-app view of the two headline designs:\n");
  emit(per, "e9_headline_per_app.csv");

  // Compute controls: partitioning must not hurt kernel-light workloads.
  ExperimentRunner compute({AppId::ComputeFft, AppId::ComputeMatmul}, len, 42);
  std::vector<SchemeSuiteResult> cres;
  cres.push_back(compute.run_scheme(SchemeKind::BaselineSram));
  cres.push_back(compute.run_scheme(SchemeKind::StaticPartMrstt));
  cres.push_back(compute.run_scheme(SchemeKind::DynamicStt));
  ExperimentRunner::normalize(cres);
  std::printf("\nCompute-bound controls (fft, matmul):\n");
  emit(headline_table(cres), "e9_headline_compute.csv");

  std::printf(
      "\nPaper claims (abstract): static technique −75%% cache energy at "
      "+2%% time;\ndynamic technique −85%% at +3%%.\nMeasured geomeans: "
      "SP-MRSTT %.0f%% reduction at +%.1f%%; DP-STT %.0f%% at +%.1f%%.\n",
      (1.0 - mrstt.norm_cache_energy) * 100.0,
      (mrstt.norm_exec_time - 1.0) * 100.0,
      (1.0 - dpstt.norm_cache_energy) * 100.0,
      (dpstt.norm_exec_time - 1.0) * 100.0);
  return 0;
}
