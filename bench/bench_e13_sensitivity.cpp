/// \file bench_e13_sensitivity.cpp
/// E13 (extension) — robustness of the conclusions to the technology
/// constants. The paper's numbers rest on NVSim/CACTI tables; ours on the
/// analytical model in energy/technology.hpp. This bench perturbs each key
/// constant by 2x in both directions and re-runs the headline designs: the
/// claims survive if SP-MRSTT and DP-STT keep large savings and their
/// ordering under every perturbation.
///
/// Each perturbation variant is one SweepExecutor point. The technology
/// config is thread_local, so a worker's ScopedTechnology override cannot
/// leak into other variants running concurrently (`--jobs=N`).

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/parallel.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

struct Variant {
  std::string name;
  TechnologyConfig cfg;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"nominal", TechnologyConfig{}});

  auto add = [&](const std::string& name, auto setter) {
    TechnologyConfig c;
    setter(c);
    out.push_back({name, c});
  };
  add("SRAM leak /2", [](TechnologyConfig& c) { c.sram_leak_mw_per_kb /= 2; });
  add("SRAM leak x2", [](TechnologyConfig& c) { c.sram_leak_mw_per_kb *= 2; });
  add("STT leak-factor /2",
      [](TechnologyConfig& c) { c.stt_leak_factor /= 2; });
  add("STT leak-factor x2",
      [](TechnologyConfig& c) { c.stt_leak_factor *= 2; });
  add("STT write /2",
      [](TechnologyConfig& c) { c.stt_write_nj_hi_2mb /= 2; });
  add("STT write x2",
      [](TechnologyConfig& c) { c.stt_write_nj_hi_2mb *= 2; });
  add("DRAM energy /2", [](TechnologyConfig& c) { c.dram_access_nj /= 2; });
  add("DRAM energy x2", [](TechnologyConfig& c) { c.dram_access_nj *= 2; });
  add("write floor 0.3",
      [](TechnologyConfig& c) { c.write_energy_floor = 0.3; });
  return out;
}

}  // namespace

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  const unsigned batch = bench_sweep_batch(argc, argv);
  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  BenchReport bench("e13_sensitivity", jobs);
  print_banner("E13", "Sensitivity of the conclusions to technology constants");
  const std::uint64_t len = bench_trace_len(600'000);

  ExperimentRunner runner(
      {AppId::Launcher, AppId::Browser, AppId::AudioPlayer, AppId::Maps},
      len, 42);
  // Safe under ScopedTechnology: the runner hashes technology() on the
  // worker thread, so each variant's cells key on its own perturbed config.
  runner.result_store = store.get();
  // --batch[=N]: each variant's run_schemes() call below then decodes every
  // trace once and replays it into all three scheme lanes (the inner sweep
  // stays on the variant's worker, so its ScopedTechnology still applies).
  runner.sweep_batch = batch;
  bench.set_sweep_batch(batch, runner.batchable());

  const std::vector<Variant> vars = variants();

  SweepExecutor ex(jobs);
  const auto rows = ex.map(vars.size(), [&](std::size_t i) {
    ScopedTechnology scope(vars[i].cfg);
    std::vector<SchemeSuiteResult> r = runner.run_schemes(
        {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt,
         SchemeKind::DynamicStt});
    ExperimentRunner::normalize(r);
    return r;
  });
  bench.set_points(static_cast<std::uint64_t>(rows.size()));

  TablePrinter t({"perturbation", "SP-MRSTT energy", "DP-STT energy",
                  "SP-MRSTT time", "DP-STT time", "dynamic still best?"});

  bool dp_always_best = true;
  double worst_dp_energy = 0.0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const std::vector<SchemeSuiteResult>& r = rows[i];
    const bool dp_best = r[2].norm_cache_energy <= r[1].norm_cache_energy;
    dp_always_best = dp_always_best && dp_best;
    worst_dp_energy = std::max(worst_dp_energy, r[2].norm_cache_energy);
    t.add_row({vars[i].name, format_double(r[1].norm_cache_energy, 3),
               format_double(r[2].norm_cache_energy, 3),
               format_double(r[1].norm_exec_time, 3),
               format_double(r[2].norm_exec_time, 3),
               dp_best ? "yes" : "no"});
  }

  emit(t, "e13_sensitivity.csv");
  std::printf(
      "\nReading: both designs keep ~70%%+ cache-energy savings under every "
      "single-constant\n2x perturbation, and the dynamic design stays at or "
      "below the static one\nthroughout — the conclusions do not hinge on "
      "any one number in the technology\nmodel. The absolute saving is most "
      "sensitive to the STT leakage factor (0.10 to\n0.31 across its 4x "
      "range), exactly the constant a silicon calibration should pin\n"
      "first.\n");

  bench.add_result("dp_always_best", dp_always_best ? 1.0 : 0.0);
  bench.add_result("worst_dp_norm_energy", worst_dp_energy);
  if (store) bench.set_store_stats(store->stats());
  bench.write();
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e13_sensitivity", /*install_signals=*/true, argc, argv,
                      run_bench);
}
