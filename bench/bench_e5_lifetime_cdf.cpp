/// \file bench_e5_lifetime_cdf.cpp
/// E5 (paper Fig. 4) — block-lifetime distributions of the separated user
/// and kernel segments. Kernel blocks die young (short-retention STT-RAM
/// suffices); user blocks persist (need a longer class). Also prints the
/// RetentionAdvisor's recommendation, which E6 validates by sweeping.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/multi_retention_l2.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::string cycles_as_ms(std::uint64_t cycles) {
  return format_double(static_cast<double>(cycles) / 1e6, 3) + " ms";
}

}  // namespace

int main() {
  print_banner("E5",
               "Block lifetime CDFs per segment (justifying multi-retention)");
  // Lifetimes need session-length traces: at short lengths every block
  // fits inside even the 10 ms LO retention and the asymmetry is invisible.
  const std::uint64_t len = bench_trace_len(6'000'000);

  // Aggregate lifetimes across the interactive suite on the chosen static
  // partition (SRAM tech so lifetimes are unaffected by expiry).
  LifetimeRecorder rec;
  SimOptions opts;
  opts.l2_eviction_observer = rec.observer();
  for (AppId id : interactive_apps()) {
    const Trace trace = generate_app_trace(id, len, 42);
    simulate(trace, build_scheme(SchemeKind::StaticPartSram), opts);
  }

  TablePrinter t({"metric", "mode", "p25", "p50", "p75", "p90", "p99"});
  auto row = [&](const char* metric, Mode m, const Log2Histogram& h) {
    t.add_row({metric, std::string(to_string(m)),
               cycles_as_ms(h.quantile_upper_bound(0.25)),
               cycles_as_ms(h.quantile_upper_bound(0.50)),
               cycles_as_ms(h.quantile_upper_bound(0.75)),
               cycles_as_ms(h.quantile_upper_bound(0.90)),
               cycles_as_ms(h.quantile_upper_bound(0.99))});
  };
  for (Mode m : {Mode::User, Mode::Kernel}) {
    row("residency (fill→evict)", m, rec.residency(m));
    row("liveness (fill→last use)", m, rec.liveness(m));
    row("dead time (last use→evict)", m, rec.dead_time(m));
  }
  emit(t, "e5_lifetime_cdf.csv");

  TablePrinter cov({"mode", "blocks", "mean touches",
                    "covered by LO(10ms)", "covered by MID(1s)",
                    "advisor recommends"});
  for (Mode m : {Mode::User, Mode::Kernel}) {
    const Log2Histogram& live = rec.liveness(m);
    cov.add_row(
        {std::string(to_string(m)), format_count(rec.events(m)),
         format_double(rec.reuse(m).mean(), 1),
         format_percent(live.fraction_below(
             tech_constants::kRetentionLoCycles)),
         format_percent(live.fraction_below(
             tech_constants::kRetentionMidCycles)),
         std::string(to_string(RetentionAdvisor::recommend(live)))});
  }
  std::printf("\n");
  emit(cov, "e5_retention_coverage.csv");

  std::printf(
      "\nReading: kernel blocks live far shorter than user blocks — the "
      "short-retention\nclass covers (nearly) all kernel lifetimes, while "
      "the user segment wants a longer\nclass. This is the paper's "
      "'completely different access behaviors' observation.\n");
  return 0;
}
