/// \file bench_e20_endurance.cpp
/// E20 (extension) — write endurance. STT-RAM cells survive ~1e12 writes;
/// the paper's designs concentrate the kernel's write-heavy traffic into a
/// small segment, so the hottest line wears faster than in a big shared
/// array. This bench measures per-location write wear for each design and
/// projects the hottest line's lifetime under continuous worst-case use.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dynamic_partitioned_l2.hpp"
#include "core/multi_retention_l2.hpp"
#include "core/shared_l2.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

constexpr double kEnduranceWrites = 1e12;

struct ArrayWear {
  std::string name;
  WearSummary wear;
};

void report_rows(const std::string& design,
                 const std::vector<ArrayWear>& arrays, double wall_seconds,
                 TablePrinter& t) {
  for (const ArrayWear& a : arrays) {
    const double rate =
        static_cast<double>(a.wear.max_writes) / wall_seconds;  // writes/s
    const double years =
        rate <= 0.0 ? 1e9 : kEnduranceWrites / rate / 3.156e7;
    t.add_row({design, a.name, format_count(a.wear.total_writes),
               format_double(a.wear.mean_writes, 1),
               format_count(a.wear.max_writes),
               format_double(a.wear.imbalance(), 1),
               years > 1000 ? ">1000 y" : format_double(years, 0) + " y"});
  }
}

}  // namespace

int main() {
  print_banner("E20", "Write endurance / wear of the STT-RAM designs");
  const std::uint64_t len = bench_trace_len(2'000'000);
  // Aggregate wear over a busy app (continuous use is the worst case).
  const Trace trace = generate_app_trace(AppId::Game, len, 42);

  TablePrinter t({"design", "array", "total writes", "mean/line", "max/line",
                  "imbalance", "hottest-line lifetime @1e12"});

  {
    SharedL2Config c;
    c.cache.name = "L2";
    c.cache.size_bytes = 2ull << 20;
    c.cache.assoc = 16;
    c.tech = TechKind::SttRam;
    c.retention = RetentionClass::Hi;
    SharedL2 l2(c);
    const SimResult r = simulate(trace, l2);
    const double secs = static_cast<double>(r.cycles) * 1e-9;
    report_rows("Shared-STT-2MB", {{"whole array", l2.array().wear_summary()}},
                secs, t);
  }
  {
    StaticPartitionConfig c = make_mrstt_config(
        1024ull << 10, 8, RetentionClass::Mid, 256ull << 10, 8,
        RetentionClass::Lo);
    StaticPartitionedL2 l2(c);
    const SimResult r = simulate(trace, l2);
    const double secs = static_cast<double>(r.cycles) * 1e-9;
    report_rows("SP-MRSTT",
                {{"user 1MB", l2.segment(Mode::User).array().wear_summary()},
                 {"kernel 256KB",
                  l2.segment(Mode::Kernel).array().wear_summary()}},
                secs, t);
  }
  {
    // The mitigation E20 recommends: set-index rotation on both segments
    // (demo cadence: every 30-100k writes; a product would rotate daily).
    // Same traffic, flatter wear — especially for the user segment's hot
    // line, whose imbalance dominates.
    StaticPartitionConfig c = make_mrstt_config(
        1024ull << 10, 8, RetentionClass::Mid, 256ull << 10, 8,
        RetentionClass::Lo);
    c.user.wear_rotate_writes = 30'000;
    c.kernel.wear_rotate_writes = 100'000;
    StaticPartitionedL2 l2(c);
    const SimResult r = simulate(trace, l2);
    const double secs = static_cast<double>(r.cycles) * 1e-9;
    report_rows("SP-MRSTT + rotation",
                {{"user 1MB", l2.segment(Mode::User).array().wear_summary()},
                 {"kernel 256KB",
                  l2.segment(Mode::Kernel).array().wear_summary()}},
                secs, t);
  }
  {
    DynamicL2Config c;
    c.cache.name = "L2";
    c.cache.size_bytes = 2ull << 20;
    c.cache.assoc = 16;
    c.tech = TechKind::SttRam;
    c.retention = RetentionClass::Lo;
    DynamicPartitionedL2 l2(c);
    const SimResult r = simulate(trace, l2);
    const double secs = static_cast<double>(r.cycles) * 1e-9;
    report_rows("DP-STT", {{"whole array", l2.array().wear_summary()}}, secs,
                t);
  }

  emit(t, "e20_endurance.csv");
  std::printf(
      "\nReading: the dedicated kernel segment concentrates writes (7x the "
      "mean per-line\nwear of the shared array) but evens them out "
      "(imbalance 1.4 vs ~17); the real\nendurance hazard is the hot user "
      "line (imbalance ~40, hottest-line lifetime ~1\nyear of UNINTERRUPTED "
      "worst-case gaming). The implemented mitigation — periodic\nset-index "
      "rotation — cuts the hot line 4x (292 -> 77 writes, ~7 years) at the "
      "cost\nof ~40%% extra fills from the rotation flushes. Endurance is "
      "a real but\nmanageable consideration the paper inherits from "
      "STT-RAM.\n");
  return 0;
}
