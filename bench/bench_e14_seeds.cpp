/// \file bench_e14_seeds.cpp
/// E14 (extension) — statistical robustness: the headline designs across
/// five workload seeds. Reported as mean ± stddev [min, max]; the paper's
/// orderings must hold outside the seed-noise band, not just at one seed.
///
/// run_multi_seed shards its (seed × scheme) grid through a SweepExecutor
/// (`--jobs=N` / MOBCACHE_JOBS); stats accumulate in seed order after the
/// sweep, so the reported numbers are identical for every job count.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

std::string pm(const SeedStat& s, int decimals = 3) {
  return format_double(s.mean, decimals) + " +- " +
         format_double(s.stddev, decimals) + " [" +
         format_double(s.min, decimals) + ", " +
         format_double(s.max, decimals) + "]";
}

}  // namespace

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  BenchReport bench("e14_seeds", jobs);
  print_banner("E14", "Seed robustness of the headline results");
  const std::uint64_t len = bench_trace_len();
  const std::vector<std::uint64_t> seeds = {11, 22, 42, 1234, 98765};

  const std::vector<SchemeKind> schemes = {
      SchemeKind::BaselineSram, SchemeKind::ShrunkSram,
      SchemeKind::DrowsySram, SchemeKind::StaticPartMrstt,
      SchemeKind::DynamicStt};

  const auto results = run_multi_seed(interactive_apps(), len, seeds, schemes,
                                      {}, jobs, store.get());
  bench.set_points(static_cast<std::uint64_t>(seeds.size() * schemes.size()));

  TablePrinter t({"scheme", "norm cache energy (mean +- sd [min,max])",
                  "norm exec time", "miss rate"});
  for (const MultiSeedResult& r : results) {
    t.add_row({r.name, pm(r.cache_energy), pm(r.exec_time),
               pm(r.miss_rate)});
  }
  emit(t, "e14_seeds.csv");

  // The claims that must clear the noise band.
  const MultiSeedResult& mrstt = results[3];
  const MultiSeedResult& dpstt = results[4];
  std::printf(
      "\nChecks across %zu seeds:\n"
      "  SP-MRSTT saves >70%% in the worst seed: %s (max %.3f)\n"
      "  DP-STT   saves >70%% in the worst seed: %s (max %.3f)\n"
      "  DP-STT mean <= SP-MRSTT mean + 1 sd:    %s\n",
      seeds.size(), mrstt.cache_energy.max < 0.30 ? "yes" : "NO",
      mrstt.cache_energy.max, dpstt.cache_energy.max < 0.30 ? "yes" : "NO",
      dpstt.cache_energy.max,
      dpstt.cache_energy.mean <=
              mrstt.cache_energy.mean + mrstt.cache_energy.stddev
          ? "yes"
          : "NO");

  bench.add_result("sp_mrstt_energy_mean", mrstt.cache_energy.mean);
  bench.add_result("sp_mrstt_energy_max", mrstt.cache_energy.max);
  bench.add_result("dp_stt_energy_mean", dpstt.cache_energy.mean);
  bench.add_result("dp_stt_energy_max", dpstt.cache_energy.max);
  if (store) bench.set_store_stats(store->stats());
  bench.write();
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e14_seeds", /*install_signals=*/true, argc, argv,
                      run_bench);
}
