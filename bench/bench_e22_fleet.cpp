/// \file bench_e22_fleet.cpp
/// E22 (extension) — fleet population sweep: many thousands of sampled user
/// sessions stream through the proposed dynamic STT design, folding into
/// mergeable fleet statistics (docs/EXPERIMENTS.md). Sessions never
/// materialize — ScenarioStream chunks feed simulate(TraceStream&) directly,
/// so peak RSS is bounded by jobs · O(chunk) regardless of the session
/// count. CI's fleet-gate holds this binary to a sessions/s floor and a
/// peak-RSS ceiling (scripts/check_bench.py rss-gate).
///
/// Flags (on top of the shared --jobs=N):
///   --sessions=N          fleet size (default 10000)
///   --mean-accesses=N     population mean session length (default
///                         MOBCACHE_TRACE_LEN, else 60000)
///   --seed=N              base seed; session i draws sweep_point_seed(seed,i)
///   --scheme=NAME         L2 design under test (default dp_stt)
///   --min-sessions-per-s=X   gate: exit 1 below this throughput
///   --max-peak-rss-mb=X      gate: exit 1 above this peak RSS
///
/// The BENCH "results" section reports the merged-sketch quantiles — exact
/// integer-count merges, so byte-identical for every --jobs value (the
/// determinism contract in src/exp/fleet.hpp, pinned by tests/test_fleet.cpp).

#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/fleet.hpp"
#include "exp/report.hpp"
#include "trace/trace_stream.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  std::uint64_t v = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') continue;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(argv[i] + len + 1, &end, 10);
    if (end == argv[i] + len + 1 || *end != '\0') {
      throw ConfigError(std::string("bad ") + name + " value: " +
                        (argv[i] + len + 1));
    }
    v = parsed;
  }
  return v;
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  const std::size_t len = std::strlen(name);
  double v = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') continue;
    char* end = nullptr;
    const double parsed = std::strtod(argv[i] + len + 1, &end);
    if (end == argv[i] + len + 1 || *end != '\0') {
      throw ConfigError(std::string("bad ") + name + " value: " +
                        (argv[i] + len + 1));
    }
    v = parsed;
  }
  return v;
}

SchemeKind flag_scheme(int argc, char** argv, SchemeKind fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scheme=", 9) != 0) continue;
    const char* want = argv[i] + 9;
    bool found = false;
    for (int k = 0; k < kSchemeCount; ++k) {
      if (std::strcmp(scheme_name(static_cast<SchemeKind>(k)), want) == 0) {
        fallback = static_cast<SchemeKind>(k);
        found = true;
      }
    }
    if (!found) throw ConfigError(std::string("unknown --scheme: ") + want);
  }
  return fallback;
}

void add_metric_results(BenchReport& bench, const char* key,
                        const FleetMetric& m) {
  // Sketch quantiles only: exact under any sharding, so safe for the
  // check_bench.py determinism compare. (The Welford mean is jobs-stable
  // but not shard-count-stable — it stays out of "results".)
  bench.add_result(std::string(key) + "_p50", m.sketch.quantile(0.50));
  bench.add_result(std::string(key) + "_p95", m.sketch.quantile(0.95));
  bench.add_result(std::string(key) + "_p99", m.sketch.quantile(0.99));
  bench.add_result(std::string(key) + "_max", m.sketch.max());
}

std::string row(const FleetMetric& m, int decimals) {
  return format_double(m.sketch.quantile(0.50), decimals) + " / " +
         format_double(m.sketch.quantile(0.95), decimals) + " / " +
         format_double(m.sketch.quantile(0.99), decimals);
}

}  // namespace

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  BenchReport bench("e22_fleet", jobs);
  print_banner("E22", "Fleet population sweep (streaming sessions)");

  FleetConfig cfg;
  cfg.sessions = flag_u64(argc, argv, "--sessions", 10'000);
  cfg.seed = flag_u64(argc, argv, "--seed", 1);
  cfg.scheme = flag_scheme(argc, argv, SchemeKind::DynamicStt);
  cfg.jobs = jobs;
  const std::uint64_t mean =
      flag_u64(argc, argv, "--mean-accesses", bench_trace_len(60'000));
  cfg.mix = PopulationModel::default_mix(mean);

  reset_stream_counters();
  reset_fleet_counters();
  const FleetResult fleet = run_fleet(cfg);
  const double wall = bench.wall_ms();
  const double sessions_per_s =
      wall > 0.0 ? static_cast<double>(fleet.acc.sessions) * 1e3 / wall : 0.0;

  TablePrinter t({"metric", "p50 / p95 / p99", "mean", "max"});
  t.add_row({"cache energy (nJ)", row(fleet.acc.cache_energy_nj, 1),
             format_double(fleet.acc.cache_energy_nj.stat.mean(), 1),
             format_double(fleet.acc.cache_energy_nj.stat.max(), 1)});
  t.add_row({"total energy (nJ)", row(fleet.acc.total_energy_nj, 1),
             format_double(fleet.acc.total_energy_nj.stat.mean(), 1),
             format_double(fleet.acc.total_energy_nj.stat.max(), 1)});
  t.add_row({"CPI", row(fleet.acc.cpi, 4),
             format_double(fleet.acc.cpi.stat.mean(), 4),
             format_double(fleet.acc.cpi.stat.max(), 4)});
  emit(t, "e22_fleet.csv");

  const StreamCounters sc = stream_counters();
  std::printf(
      "\n%llu sessions (%llu records) on %s, %zu shards, %.1f sessions/s\n"
      "streaming: %llu chunks, %llu buffer reuses, "
      "high-water chunk %.1f KiB, peak RSS %.1f MiB\n",
      static_cast<unsigned long long>(fleet.acc.sessions),
      static_cast<unsigned long long>(fleet.acc.records),
      scheme_name(cfg.scheme), fleet.shards, sessions_per_s,
      static_cast<unsigned long long>(sc.chunks_generated),
      static_cast<unsigned long long>(sc.chunk_reuse_hits),
      static_cast<double>(sc.high_water_chunk_bytes) / 1024.0,
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));

  bench.set_points(fleet.acc.sessions);
  bench.add_run_fact("sessions_per_s", sessions_per_s);
  bench.add_result("sessions", static_cast<double>(fleet.acc.sessions));
  bench.add_result("records", static_cast<double>(fleet.acc.records));
  add_metric_results(bench, "cache_energy_nj", fleet.acc.cache_energy_nj);
  add_metric_results(bench, "total_energy_nj", fleet.acc.total_energy_nj);
  add_metric_results(bench, "cpi", fleet.acc.cpi);
  bench.write();

  // In-binary CI gates (CI passes the floors; local runs skip them).
  const double min_rate =
      flag_double(argc, argv, "--min-sessions-per-s", 0.0);
  if (min_rate > 0.0 && sessions_per_s < min_rate) {
    std::fprintf(stderr,
                 "bench_e22_fleet: FAIL: %.1f sessions/s below the %.1f "
                 "floor\n",
                 sessions_per_s, min_rate);
    return 1;
  }
  const double max_rss_mb = flag_double(argc, argv, "--max-peak-rss-mb", 0.0);
  const double rss_mb =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
  if (max_rss_mb > 0.0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr,
                 "bench_e22_fleet: FAIL: peak RSS %.1f MiB above the %.1f "
                 "MiB ceiling — a session materialized somewhere\n",
                 rss_mb, max_rss_mb);
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e22_fleet", /*install_signals=*/true, argc, argv,
                      run_bench);
}
