/// \file bench_e7_energy_breakdown.cpp
/// E7 (paper Fig. 6) — where the energy goes: leakage / array reads /
/// array writes / refresh / DRAM, per scheme, summed over the interactive
/// suite and normalized to the baseline's cache energy.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E7", "Energy breakdown per scheme (suite total)");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);

  struct Row {
    std::string name;
    EnergyBreakdown e;
  };
  std::vector<Row> rows;
  for (SchemeKind k : headline_schemes()) {
    auto r = runner.run_scheme(k);
    EnergyBreakdown sum;
    for (const SimResult& s : r.per_workload) sum += s.l2_energy;
    rows.push_back({r.name, sum});
  }
  const double base_cache = rows.front().e.cache_nj();

  TablePrinter t({"scheme", "leakage", "reads", "writes", "refresh",
                  "cache total", "DRAM", "cache vs base"});
  for (const Row& r : rows) {
    auto uj = [](double nj) { return format_double(nj / 1e3, 1) + " uJ"; };
    t.add_row({r.name, uj(r.e.leakage_nj), uj(r.e.read_nj), uj(r.e.write_nj),
               uj(r.e.refresh_nj), uj(r.e.cache_nj()), uj(r.e.dram_nj),
               format_percent(r.e.cache_nj() / base_cache)});
  }
  emit(t, "e7_energy_breakdown.csv");

  // Percentage view (the stacked-bar figure as a table).
  TablePrinter p({"scheme", "leakage %", "reads %", "writes %", "refresh %"});
  for (const Row& r : rows) {
    const double c = r.e.cache_nj();
    p.add_row({r.name, format_percent(r.e.leakage_nj / c),
               format_percent(r.e.read_nj / c),
               format_percent(r.e.write_nj / c),
               format_percent(r.e.refresh_nj / c)});
  }
  std::printf("\nComposition of each scheme's own cache energy:\n");
  emit(p, "e7_energy_composition.csv");

  std::printf(
      "\nReading: the SRAM baseline is leakage-dominated; partitioning + "
      "shrinking attacks\nexactly that term, and STT-RAM removes most of "
      "what remains at the cost of a\nvisible write/refresh component.\n");
  return 0;
}
