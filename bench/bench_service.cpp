/// \file bench_service.cpp
/// Service throughput driver: push >=10^5 streamed fleet sessions through an
/// in-process mobcached (docs/SERVICE.md) and hold it to a sessions/s floor.
/// Requests are split across several JSONL files, submitted with the inbox
/// rename idiom, and drained in once-mode — so the bench exercises the whole
/// daemon path (scan, parse, execute, atomic response publication, metrics
/// snapshots), not just run_fleet().
///
/// Flags (on top of the shared --jobs=N):
///   --sessions=N          total fleet sessions across all requests
///                         (default 100000)
///   --requests=N          request files to split them over (default 8)
///   --mean-accesses=N     population mean session length (default
///                         MOBCACHE_TRACE_LEN, else 2000)
///   --seed=N              base seed (request i uses seed+i)
///   --min-sessions-per-s=X   gate: exit 1 below this throughput
///   --max-peak-rss-mb=X      gate: exit 1 above this peak RSS
///
/// The BENCH "results" section reports session/record totals — pure
/// functions of (mix, sessions, seed), so byte-identical for every --jobs
/// value (the fleet determinism contract, src/exp/fleet.hpp).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "exp/bench_harness.hpp"
#include "exp/fleet.hpp"
#include "exp/report.hpp"
#include "service/service.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

namespace {

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  std::uint64_t v = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') continue;
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(argv[i] + len + 1, &end, 10);
    if (end == argv[i] + len + 1 || *end != '\0') {
      throw ConfigError(std::string("bad ") + name + " value: " +
                        (argv[i] + len + 1));
    }
    v = parsed;
  }
  return v;
}

double flag_double(int argc, char** argv, const char* name, double fallback) {
  const std::size_t len = std::strlen(name);
  double v = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') continue;
    char* end = nullptr;
    const double parsed = std::strtod(argv[i] + len + 1, &end);
    if (end == argv[i] + len + 1 || *end != '\0') {
      throw ConfigError(std::string("bad ") + name + " value: " +
                        (argv[i] + len + 1));
    }
    v = parsed;
  }
  return v;
}

}  // namespace

static int run_bench(int argc, char** argv) {
  namespace fs = std::filesystem;
  const unsigned jobs = bench_jobs(argc, argv);
  BenchReport bench("service", jobs);
  print_banner("SVC", "mobcached streamed-session throughput");

  const std::uint64_t total_sessions =
      flag_u64(argc, argv, "--sessions", 100'000);
  const std::uint64_t requests = flag_u64(argc, argv, "--requests", 8);
  const std::uint64_t mean =
      flag_u64(argc, argv, "--mean-accesses", bench_trace_len(2'000));
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 1);
  if (requests == 0) throw ConfigError("--requests must be >= 1");

  const std::string dir = results_path("bench_service_dir");
  std::error_code ec;
  fs::remove_all(dir, ec);  // fresh daemon state: throughput, not warm cache

  ServiceConfig cfg;
  cfg.dir = dir;
  cfg.jobs = jobs;
  cfg.once = true;
  MobcacheDaemon daemon(cfg);

  // Submit all request files up front with the rename idiom, then drain.
  std::uint64_t submitted = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    std::uint64_t n = total_sessions / requests;
    if (i == requests - 1) n = total_sessions - submitted;
    submitted += n;
    char name[32];
    std::snprintf(name, sizeof name, "req-%04llu.jsonl",
                  static_cast<unsigned long long>(i));
    const std::string body =
        "{\"id\":\"bench-" + std::to_string(i) +
        "\",\"kind\":\"fleet\",\"scheme\":\"dpstt\",\"sessions\":" +
        std::to_string(n) + ",\"seed\":" + std::to_string(seed + i) +
        ",\"mean_accesses\":" + std::to_string(mean) + "}\n";
    atomic_publish((fs::path(daemon.inbox_dir()) / name).string(), body,
                   std::string("submit-") + name);
  }

  reset_fleet_counters();
  daemon.run();

  const ServiceStats stats = daemon.stats();
  if (stats.requests_rejected != 0 || stats.requests_served != requests) {
    std::fprintf(stderr,
                 "bench_service: FAIL: %llu/%llu requests served, %llu "
                 "rejected — see %s\n",
                 static_cast<unsigned long long>(stats.requests_served),
                 static_cast<unsigned long long>(requests),
                 static_cast<unsigned long long>(stats.requests_rejected),
                 daemon.outbox_dir().c_str());
    return 1;
  }
  const FleetCounters fleet = fleet_counters();
  const double wall = bench.wall_ms();
  const double sessions_per_s =
      wall > 0.0
          ? static_cast<double>(fleet.sessions_simulated) * 1e3 / wall
          : 0.0;

  std::printf(
      "\n%llu sessions (%llu records) over %llu requests, %.1f sessions/s, "
      "peak RSS %.1f MiB\n",
      static_cast<unsigned long long>(fleet.sessions_simulated),
      static_cast<unsigned long long>(fleet.session_records),
      static_cast<unsigned long long>(requests), sessions_per_s,
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));

  bench.set_points(fleet.sessions_simulated);
  bench.add_run_fact("sessions_per_s", sessions_per_s);
  bench.add_run_fact("requests", static_cast<double>(requests));
  bench.add_result("sessions", static_cast<double>(fleet.sessions_simulated));
  bench.add_result("records", static_cast<double>(fleet.session_records));
  bench.write();

  if (fleet.sessions_simulated != total_sessions) {
    std::fprintf(stderr,
                 "bench_service: FAIL: simulated %llu of %llu requested "
                 "sessions\n",
                 static_cast<unsigned long long>(fleet.sessions_simulated),
                 static_cast<unsigned long long>(total_sessions));
    return 1;
  }

  // In-binary CI gates (CI passes the floors; local runs skip them).
  const double min_rate = flag_double(argc, argv, "--min-sessions-per-s", 0.0);
  if (min_rate > 0.0 && sessions_per_s < min_rate) {
    std::fprintf(stderr,
                 "bench_service: FAIL: %.1f sessions/s below the %.1f "
                 "floor\n",
                 sessions_per_s, min_rate);
    return 1;
  }
  const double max_rss_mb = flag_double(argc, argv, "--max-peak-rss-mb", 0.0);
  const double rss_mb =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
  if (max_rss_mb > 0.0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr,
                 "bench_service: FAIL: peak RSS %.1f MiB above the %.1f MiB "
                 "ceiling — a session materialized somewhere\n",
                 rss_mb, max_rss_mb);
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_service", /*install_signals=*/true, argc, argv,
                      run_bench);
}
