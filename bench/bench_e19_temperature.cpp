/// \file bench_e19_temperature.cpp
/// E19 (extension) — junction-temperature sensitivity of the retention
/// design. Δ = E_b/(k_B·T): hotter silicon shortens STT-RAM retention
/// exponentially, so classes chosen at 45 °C decay faster on a phone gaming
/// in the sun. Sweeps 25/45/65/85 °C and reports what happens to the
/// multi-retention static design — expiries, refresh work and the bottom
/// line — plus what the advisor recommends at each temperature.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/multi_retention_l2.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E19", "Temperature sweep for the multi-retention design");
  // Session-length traces so blocks actually face the (shortened)
  // retention windows.
  const std::uint64_t len = bench_trace_len(4'000'000);
  const std::vector<AppId> suite = {AppId::Launcher, AppId::Browser,
                                    AppId::Email};

  TablePrinter t({"temp", "LO retention", "MID retention", "L2 miss",
                  "expired blocks", "refresh uJ", "norm cache energy",
                  "norm exec time", "advisor (user/kernel)"});

  for (double celsius : {25.0, 45.0, 65.0, 85.0}) {
    TechnologyConfig cfg;
    cfg.temperature_k = celsius + 273.0;
    ScopedTechnology scope(cfg);

    ExperimentRunner runner(suite, len, 42);
    auto base = runner.run_scheme(SchemeKind::BaselineSram);
    auto r = runner.run_scheme(SchemeKind::StaticPartMrstt);
    std::vector<SchemeSuiteResult> v{base, r};
    ExperimentRunner::normalize(v);

    std::uint64_t expired = 0;
    double refresh_nj = 0.0;
    for (const SimResult& s : r.per_workload) {
      expired += s.l2.expired_blocks;
      refresh_nj += s.l2_energy.refresh_nj;
    }

    // What would the advisor choose at this temperature?
    LifetimeRecorder rec;
    SimOptions opts;
    opts.l2_eviction_observer = rec.observer();
    simulate(runner.trace(0), build_scheme(SchemeKind::StaticPartSram),
             opts);
    const RetentionClass user_rec =
        RetentionAdvisor::recommend(rec.liveness(Mode::User));
    const RetentionClass kernel_rec =
        RetentionAdvisor::recommend(rec.liveness(Mode::Kernel));

    auto ms = [](Cycle c) {
      return c == 0 ? std::string("inf")
                    : format_double(static_cast<double>(c) / 1e6, 2) + " ms";
    };
    t.add_row({format_double(celsius, 0) + " C",
               ms(retention_cycles_of(RetentionClass::Lo)),
               ms(retention_cycles_of(RetentionClass::Mid)),
               format_percent(r.avg_miss_rate), format_count(expired),
               format_double(refresh_nj / 1e3, 1),
               format_double(v[1].norm_cache_energy, 3),
               format_double(v[1].norm_exec_time, 3),
               std::string(to_string(user_rec)) + " / " +
                   std::string(to_string(kernel_rec))});
  }

  emit(t, "e19_temperature.csv");
  std::printf(
      "\nReading: retention collapses exponentially with temperature (LO: "
      "10 ms at 45 C,\n~1.7 ms at 85 C), and expiries grow an order of "
      "magnitude hot — yet the design\ndegrades gracefully: the scrub "
      "controller absorbs the shorter windows and the\nbottom line moves "
      "less than a point. A deployment should provision retention\nat the "
      "hot corner, exactly as the advisor's hot-trace recommendation (user "
      "class\nbumped to MID from 65 C) indicates.\n");
  return 0;
}
