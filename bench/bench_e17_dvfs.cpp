/// \file bench_e17_dvfs.cpp
/// E17 (extension) — DVFS interaction. Mobile governors trade clock speed
/// for energy; leakage burns *wall time*, so slower clocks make the SRAM
/// baseline leak proportionally more per unit of work — and make the
/// paper's leakage-free designs comparatively even stronger. Sweeps the
/// core clock and reports each design's absolute L2 energy per workload
/// unit plus its saving versus the same-clock baseline.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E17", "Core-clock (DVFS) sweep");
  const std::uint64_t len = bench_trace_len(600'000);

  const std::vector<AppId> suite = {AppId::Launcher, AppId::Browser,
                                    AppId::AudioPlayer, AppId::Maps};

  TablePrinter t({"clock", "design", "L2 miss", "cache energy (uJ)",
                  "saving vs same-clock base", "exec time vs 1 GHz base"});

  double base_1ghz_cycles_ns = 0.0;
  for (double ghz : {1.0, 0.5, 1.5}) {  // 1 GHz first: it anchors the last column
    TechnologyConfig cfg;
    cfg.cycle_ns = 1.0 / ghz;
    ScopedTechnology scope(cfg);

    ExperimentRunner runner(suite, len, 42);
    std::vector<SchemeSuiteResult> r;
    r.push_back(runner.run_scheme(SchemeKind::BaselineSram));
    r.push_back(runner.run_scheme(SchemeKind::StaticPartMrstt));
    r.push_back(runner.run_scheme(SchemeKind::DynamicStt));
    ExperimentRunner::normalize(r);

    // Wall time of this clock's baseline (ns), for the cross-clock column.
    double base_ns = 0.0;
    double base_cache_nj = 0.0;
    for (const SimResult& s : r[0].per_workload) {
      base_ns += static_cast<double>(s.cycles) * cfg.cycle_ns;
      base_cache_nj += s.l2_energy.cache_nj();
    }
    if (ghz == 1.0) base_1ghz_cycles_ns = base_ns;

    for (const SchemeSuiteResult& sr : r) {
      double cache_nj = 0.0;
      double wall_ns = 0.0;
      for (const SimResult& s : sr.per_workload) {
        cache_nj += s.l2_energy.cache_nj();
        wall_ns += static_cast<double>(s.cycles) * cfg.cycle_ns;
      }
      t.add_row({format_double(ghz, 1) + " GHz", sr.name,
                 format_percent(sr.avg_miss_rate),
                 format_double(cache_nj / 1e3, 0),
                 format_percent(1.0 - cache_nj / base_cache_nj),
                 base_1ghz_cycles_ns > 0
                     ? format_double(wall_ns / base_1ghz_cycles_ns, 2)
                     : "-"});
    }
  }

  emit(t, "e17_dvfs.csv");
  std::printf(
      "\nReading: halving the clock roughly doubles the baseline's leakage "
      "energy per unit\nof work, while the STT designs' energy barely moves "
      "— their savings *grow* at the\nlow-frequency operating points "
      "governors actually prefer, compounding the two\ntechniques. (Note "
      "the 0.5 GHz rows are computed against their own-clock baseline;\n"
      "the final column shows wall time relative to the 1 GHz baseline.)\n");
  return 0;
}
