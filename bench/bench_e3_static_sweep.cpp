/// \file bench_e3_static_sweep.cpp
/// E3 (paper Fig. 3) — shrinking the statically partitioned L2: miss rate,
/// energy and execution time of (user+kernel) segment sizings against the
/// shared 2 MB baseline. Shows the knee the paper's chosen config sits on.
///
/// The baseline plus the seven sizings run as one run_designs() grid:
/// `--jobs=N` / MOBCACHE_JOBS pick the worker count, and `--batch[=N]` /
/// MOBCACHE_SWEEP_BATCH switch the grid onto the single-pass batch engine
/// (one trace decode drives all sizings — docs/SWEEP_ENGINE.md). Neither
/// knob changes any emitted number.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/parallel.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

struct Sizing {
  std::uint64_t user_kb;
  std::uint32_t user_assoc;
  std::uint64_t kernel_kb;
  std::uint32_t kernel_assoc;
};

}  // namespace

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  const unsigned batch = bench_sweep_batch(argc, argv);
  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  BenchReport bench("e3_static_sweep", jobs);
  print_banner("E3",
               "Static partition size sweep: miss rate vs. total capacity");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);
  runner.result_store = store.get();
  runner.jobs = jobs;
  runner.sweep_batch = batch;
  bench.set_sweep_batch(batch, runner.batchable());

  const std::vector<Sizing> sweep = {
      {256, 8, 128, 8},  {512, 8, 128, 8},   {512, 8, 256, 8},
      {768, 12, 256, 8}, {1024, 8, 256, 8},  {1024, 8, 512, 8},
      {1536, 12, 512, 8},
  };

  // Spec 0 is the shared baseline; spec i (>0) the sizing sweep[i-1].
  std::vector<DesignSpec> specs;
  specs.reserve(1 + sweep.size());
  specs.push_back(scheme_design(SchemeKind::BaselineSram));
  for (const Sizing& s : sweep) {
    DesignSpec d;
    d.name = "sp";
    d.build = [s] {
      StaticPartitionConfig pc;
      pc.user = sram_segment(s.user_kb << 10, s.user_assoc);
      pc.kernel = sram_segment(s.kernel_kb << 10, s.kernel_assoc);
      return std::make_unique<StaticPartitionedL2>(pc);
    };
    // Design hash covers everything the builder bakes in: both SRAM
    // segment geometries (sram_segment derives the rest from these).
    d.design_hash = ContentHasher()
                        .mix(std::string("e3-sp-sram"))
                        .mix(s.user_kb << 10)
                        .mix(std::uint64_t{s.user_assoc})
                        .mix(s.kernel_kb << 10)
                        .mix(std::uint64_t{s.kernel_assoc})
                        .digest();
    specs.push_back(std::move(d));
  }
  const std::vector<SchemeSuiteResult> cells = runner.run_designs(specs);
  bench.set_points(static_cast<std::uint64_t>(cells.size()));
  const SchemeSuiteResult& base = cells[0];

  TablePrinter t({"config (user+kernel)", "total", "vs 2MB", "L2 miss",
                  "norm cache energy", "norm exec time"});
  t.add_row({"shared 2MB baseline", "2 MB", "100.0%",
             format_percent(base.avg_miss_rate), "1.000", "1.000"});

  double knee_energy = 1.0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const Sizing& s = sweep[i];
    std::vector<SchemeSuiteResult> v{base, cells[1 + i]};
    ExperimentRunner::normalize(v);
    const std::uint64_t total = (s.user_kb + s.kernel_kb) << 10;
    if (s.user_kb == 1024 && s.kernel_kb == 256)
      knee_energy = v[1].norm_cache_energy;
    t.add_row({std::to_string(s.user_kb) + "K+" + std::to_string(s.kernel_kb) +
                   "K",
               format_bytes(total),
               format_percent(static_cast<double>(total) / (2ull << 20)),
               format_percent(cells[1 + i].avg_miss_rate),
               format_double(v[1].norm_cache_energy, 3),
               format_double(v[1].norm_exec_time, 3)});
  }

  emit(t, "e3_static_sweep.csv");
  std::printf(
      "\nReading: once each segment covers its mode's reused working set "
      "(~1 MB+256 KB here),\nfurther capacity buys almost nothing — the "
      "paper's 'shrink at similar miss rate' claim.\n");

  bench.add_result("base_miss_rate", base.avg_miss_rate);
  bench.add_result("knee_norm_energy", knee_energy);
  if (store) bench.set_store_stats(store->stats());
  bench.write();
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e3_static_sweep", /*install_signals=*/true, argc, argv,
                      run_bench);
}
