/// \file bench_e1_kernel_share.cpp
/// E1 (paper Fig. 1) — the motivating observation: in interactive
/// smartphone apps, more than 40% of L2 accesses are OS-kernel accesses;
/// compute-bound apps show almost none.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scheme.hpp"
#include "exp/report.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

using namespace mobcache;

int main() {
  print_banner("E1", "Kernel share of L2 accesses per application");
  const std::uint64_t len = bench_trace_len();

  TablePrinter t({"app", "class", "trace kernel share", "L1I miss", "L1D miss",
                  "L2 accesses", "L2 kernel share"});
  double interactive_sum = 0.0;
  int interactive_n = 0;

  for (AppId id : all_apps()) {
    const Trace trace = generate_app_trace(id, len, 42);
    const TraceSummary ts = trace.summarize();
    const SimResult r = simulate(trace, build_scheme(SchemeKind::BaselineSram));

    const bool interactive = make_app(id).interactive;
    if (interactive) {
      interactive_sum += r.l2_kernel_fraction();
      ++interactive_n;
    }
    t.add_row({app_name(id), interactive ? "interactive" : "compute",
               format_percent(ts.kernel_fraction()),
               format_percent(r.l1i.miss_rate()),
               format_percent(r.l1d.miss_rate()),
               format_count(r.l2.total_accesses()),
               format_percent(r.l2_kernel_fraction())});
  }
  t.add_row({"interactive mean", "", "", "", "", "",
             format_percent(interactive_sum / interactive_n)});

  emit(t, "e1_kernel_share.csv");
  std::printf(
      "\nPaper claim: >40%% of L2 accesses are kernel accesses in "
      "interactive apps.\nMeasured interactive mean: %s\n",
      format_percent(interactive_sum / interactive_n).c_str());
  return 0;
}
