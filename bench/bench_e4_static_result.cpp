/// \file bench_e4_static_result.cpp
/// E4 (paper Table 2) — the chosen static configuration, per app: the
/// SP-SRAM and SP-MRSTT designs against the 2 MB SRAM baseline.

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

int main() {
  print_banner("E4", "Chosen static partition: per-app results");
  const std::uint64_t len = bench_trace_len();

  ExperimentRunner runner(interactive_apps(), len, 42);
  std::vector<SchemeSuiteResult> v;
  v.push_back(runner.run_scheme(SchemeKind::BaselineSram));
  v.push_back(runner.run_scheme(SchemeKind::StaticPartSram));
  v.push_back(runner.run_scheme(SchemeKind::StaticPartMrstt));
  ExperimentRunner::normalize(v);

  const SchemeParams defaults;
  std::printf("Configuration: user %s %u-way + kernel %s %u-way (total %s; "
              "baseline 2 MB 16-way)\n\n",
              format_bytes(defaults.sp_user_bytes).c_str(),
              defaults.sp_user_assoc,
              format_bytes(defaults.sp_kernel_bytes).c_str(),
              defaults.sp_kernel_assoc,
              format_bytes(defaults.sp_user_bytes + defaults.sp_kernel_bytes)
                  .c_str());

  TablePrinter t({"app", "base miss", "SP-SRAM miss", "SP-MRSTT miss",
                  "SP-SRAM energy", "SP-MRSTT energy", "SP-SRAM time",
                  "SP-MRSTT time"});
  for (std::size_t w = 0; w < runner.apps().size(); ++w) {
    const SimResult& b = v[0].per_workload[w];
    const SimResult& sp = v[1].per_workload[w];
    const SimResult& mr = v[2].per_workload[w];
    auto ratio = [&](const SimResult& s, auto get) {
      return format_double(get(s) / get(b), 3);
    };
    auto cache_e = [](const SimResult& s) { return s.l2_energy.cache_nj(); };
    auto cyc = [](const SimResult& s) { return static_cast<double>(s.cycles); };
    t.add_row({b.workload, format_percent(b.l2_miss_rate()),
               format_percent(sp.l2_miss_rate()),
               format_percent(mr.l2_miss_rate()), ratio(sp, cache_e),
               ratio(mr, cache_e), ratio(sp, cyc), ratio(mr, cyc)});
  }
  t.add_row({"geomean", format_percent(v[0].avg_miss_rate),
             format_percent(v[1].avg_miss_rate),
             format_percent(v[2].avg_miss_rate),
             format_double(v[1].norm_cache_energy, 3),
             format_double(v[2].norm_cache_energy, 3),
             format_double(v[1].norm_exec_time, 3),
             format_double(v[2].norm_exec_time, 3)});

  emit(t, "e4_static_result.csv");
  std::printf(
      "\nPaper claim: the static technique cuts cache energy ~75%% at ~2%% "
      "performance loss.\nMeasured (SP-MRSTT geomean): %.0f%% energy "
      "reduction at %.1f%% loss.\n",
      (1.0 - v[2].norm_cache_energy) * 100.0,
      (v[2].norm_exec_time - 1.0) * 100.0);
  return 0;
}
