/// \file bench_micro.cpp
/// google-benchmark microbenchmarks of the simulation substrate itself —
/// regression guards for the simulator's own throughput (the evaluation
/// sweeps run hundreds of millions of cache accesses).
///
/// Three entry modes:
///  * default: the usual google-benchmark CLI over every BENCHMARK below;
///  * --kernel-report: a self-timed access-kernel comparison (fast vs.
///    reference dispatch, see docs/PERFORMANCE.md) that writes
///    BENCH_micro.json for CI's perf-smoke gate. Deterministic stat
///    checksums land under "results"; throughputs and speedups land under
///    "timing/" keys, which scripts/check_bench.py treats with a relative
///    tolerance instead of exact equality.
///  * --sweep-report: a self-timed batched-vs-per-point sweep comparison
///    over a frozen 12-lane geometry grid (docs/SWEEP_ENGINE.md) that
///    verifies byte-identical SimResults in-binary and writes the
///    timing/sweep/* keys CI's sweep-gate enforces ≥5x points/s on
///    (--min-sweep-speedup=X).
/// The two report modes are mutually exclusive.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hpp"
#include "cache/shadow_monitor.hpp"
#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "exp/bench_harness.hpp"
#include "exp/result_store.hpp"
#include "obs/telemetry.hpp"
#include "sim/batch.hpp"
#include "sim/multicore.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_compress.hpp"
#include "workload/scenario.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

void BM_CacheHit(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = static_cast<std::uint32_t>(state.range(0));
  SetAssocCache c(cfg);
  c.access(0, AccessType::Read, Mode::User, 0);
  Cycle now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0, AccessType::Read, Mode::User, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit)->Arg(8)->Arg(16);

void BM_CacheMissStream(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = 16;
  SetAssocCache c(cfg);
  Cycle now = 0;
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.access(a, AccessType::Read, Mode::User, ++now));
    a += kLineSize;  // pure streaming: every access misses after warmup
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissStream);

void BM_CacheRandomMix(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = 16;
  cfg.repl = static_cast<ReplKind>(state.range(0));
  SetAssocCache c(cfg, 3);
  Rng rng(5);
  Cycle now = 0;
  for (auto _ : state) {
    const Addr a = rng.below(100'000) * kLineSize;
    benchmark::DoNotOptimize(c.access(
        a, rng.chance(0.3) ? AccessType::Write : AccessType::Read, Mode::User,
        ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheRandomMix)
    ->Arg(static_cast<int>(ReplKind::Lru))
    ->Arg(static_cast<int>(ReplKind::Plru))
    ->Arg(static_cast<int>(ReplKind::Srrip));

// ---- access-kernel microbenchmarks (fast vs reference dispatch) ----------
//
// Each case pre-generates its operation stream once, so the timed loop is
// pure cache-array work. Arg(0) selects the kernel: 0 = fast (specialized),
// 1 = reference (virtual replacement calls, all feature branches). The
// fast/reference ratio is the devirtualization payoff the perf-smoke CI job
// gates on (via --kernel-report below).

/// One pre-generated operation for the kernel benches.
struct KernelOp {
  Addr line;
  AccessType type;
};

/// Frozen replica of the pre-overhaul SetAssocCache hot path: one ~64-byte
/// AoS record per block, virtual replacement calls, every feature branch
/// tested at runtime. This is the baseline the perf gate measures the SoA +
/// devirtualized kernels against (docs/PERFORMANCE.md); it must keep
/// producing the same stats as the live array, which --kernel-report
/// asserts via the shared checksum.
class LegacyAosCache {
 public:
  struct Block {
    Addr line = 0;
    bool valid = false;
    bool dirty = false;
    Mode owner = Mode::User;
    Cycle fill_cycle = 0;
    Cycle last_access = 0;
    Cycle last_write = 0;
    Cycle retention_deadline = 0;
    std::uint32_t access_count = 0;
    bool prefetched = false;
    std::uint16_t fault_bits = 0;
  };

  LegacyAosCache(const CacheConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), num_sets_(cfg.num_sets()) {
    blocks_.resize(static_cast<std::size_t>(num_sets_) * cfg_.assoc);
    wear_.assign(blocks_.size(), 0);
    repl_ = make_replacement(cfg_.repl, num_sets_, cfg_.assoc, seed);
  }

  void set_retention_period(Cycle period) { retention_period_ = period; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  std::string kernel_name() const { return "legacy/aos"; }

  AccessResult access(Addr line, AccessType type, Mode mode, Cycle now) {
    AccessResult r;
    const std::uint32_t set = set_index(line);
    const WayMask allowed = full_way_mask(cfg_.assoc);
    ++stats_.accesses[static_cast<int>(mode)];

    for (WayMask m = allowed; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      Block& b = blocks_[loc(set, way)];
      if (!b.valid || b.line != line) continue;
      if (expired(b, now)) {
        r.target_expired = true;
        r.expired_was_dirty = b.dirty;
        ++stats_.expired_blocks;
        if (b.dirty) ++stats_.expired_dirty;
        b.valid = false;
        repl_->on_invalidate(set, way);
        break;  // fall through to the miss path
      }
      r.hit = true;
      r.way = way;
      ++stats_.hits[static_cast<int>(mode)];
      if (b.prefetched) {
        ++stats_.useful_prefetches;
        b.prefetched = false;
      }
      b.last_access = now;
      ++b.access_count;
      if (type == AccessType::Write) {
        ++stats_.store_hits;
        b.dirty = true;
        b.last_write = now;
        ++wear_[loc(set, way)];
        if (retention_period_ != 0)
          b.retention_deadline = now + retention_period_;
      }
      repl_->on_hit(set, way);
      return r;
    }

    std::uint32_t fill_way = cfg_.assoc;  // sentinel
    for (WayMask m = allowed; m != 0; m &= m - 1) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(m));
      Block& b = blocks_[loc(set, way)];
      if (b.valid && expired(b, now)) {
        ++stats_.expired_blocks;
        if (b.dirty) {
          ++stats_.expired_dirty;
          r.expired_was_dirty = true;
        }
        b.valid = false;
        repl_->on_invalidate(set, way);
      }
      if (!b.valid && fill_way == cfg_.assoc) fill_way = way;
    }

    if (fill_way == cfg_.assoc) {
      fill_way = repl_->choose_victim(set, allowed);
      Block& victim = blocks_[loc(set, fill_way)];
      r.evicted_valid = true;
      r.victim_dirty = victim.dirty;
      r.victim_line = victim.line;
      r.victim_owner = victim.owner;
      r.victim_access_count = victim.access_count;
      ++stats_.evictions;
      if (victim.dirty) ++stats_.writebacks;
      if (victim.owner != mode) ++stats_.cross_mode_evictions;
    }

    Block& b = blocks_[loc(set, fill_way)];
    b.line = line;
    b.valid = true;
    b.dirty = type == AccessType::Write;
    b.owner = mode;
    b.fill_cycle = now;
    b.last_access = now;
    b.last_write = now;
    b.retention_deadline =
        retention_period_ == 0 ? 0 : now + retention_period_;
    b.access_count = 1;
    b.prefetched = false;
    b.fault_bits = 0;
    ++wear_[loc(set, fill_way)];
    repl_->on_fill(set, fill_way);

    r.filled = true;
    r.way = fill_way;
    ++stats_.fills;
    return r;
  }

 private:
  std::size_t loc(std::uint32_t set, std::uint32_t way) const {
    return static_cast<std::size_t>(set) * cfg_.assoc + way;
  }
  std::uint32_t set_index(Addr line) const {
    return static_cast<std::uint32_t>((line / cfg_.line_size) &
                                      (num_sets_ - 1));
  }
  bool expired(const Block& b, Cycle now) const {
    return b.retention_deadline != 0 && now >= b.retention_deadline;
  }

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  Cycle retention_period_ = 0;
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> wear_;
  std::unique_ptr<ReplacementPolicy> repl_;
  CacheStats stats_;
};

enum class KernelCase { HitHeavy, MissHeavy, Mixed, RetentionOn };

const char* kernel_case_name(KernelCase c) {
  switch (c) {
    case KernelCase::HitHeavy: return "hit_heavy";
    case KernelCase::MissHeavy: return "miss_heavy";
    case KernelCase::Mixed: return "mixed";
    case KernelCase::RetentionOn: return "retention_on";
  }
  return "?";
}

/// Builds the deterministic op stream for one case. hit_heavy replays the
/// L1 inner loop — a hot footprint under a 32 KB 8-way array, the probe
/// every single trace record pays twice (l1i/l1d) before L2 is even
/// consulted; miss_heavy streams through a 2 MB array (every access a miss
/// after warmup); mixed draws from a footprint ~3x the 2 MB capacity with
/// 30% writes; retention_on reuses the mixed stream but the cache runs
/// with a finite retention period so the expiry lane is live.
std::vector<KernelOp> make_kernel_ops(KernelCase c, std::size_t n) {
  std::vector<KernelOp> ops;
  ops.reserve(n);
  Rng rng(0xBEEF + static_cast<std::uint64_t>(c));
  for (std::size_t i = 0; i < n; ++i) {
    KernelOp op;
    switch (c) {
      case KernelCase::HitHeavy:
        // 384 lines = 75% of the 32 KB L1-style array: pure hit traffic.
        op.line = rng.below(384) * kLineSize;
        op.type = rng.chance(0.2) ? AccessType::Write : AccessType::Read;
        break;
      case KernelCase::MissHeavy:
        op.line = static_cast<Addr>(i) * kLineSize;
        op.type = AccessType::Read;
        break;
      case KernelCase::Mixed:
      case KernelCase::RetentionOn:
        // 80% of accesses hit a 512 KB working set resident in the 2 MB
        // L2 (L2 hit rates for the paper's mobile workloads sit in the
        // 70–95% band); the rest stream through far lines so the
        // miss/fill path still carries real weight (~800k fills).
        op.line = rng.chance(0.8)
                      ? rng.below(8192) * kLineSize
                      : (8192 + rng.below(1'000'000)) * kLineSize;
        op.type = rng.chance(0.3) ? AccessType::Write : AccessType::Read;
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

/// hit_heavy runs against L1 geometry (32 KB, 8-way — the hierarchy's
/// per-record fast path); the other cases use the paper's 2 MB 16-way L2.
CacheConfig kernel_bench_config(KernelCase c) {
  CacheConfig cfg;
  if (c == KernelCase::HitHeavy) {
    cfg.size_bytes = 32ull << 10;
    cfg.assoc = 8;
  } else {
    cfg.size_bytes = 2ull << 20;
    cfg.assoc = 16;
  }
  return cfg;
}

SetAssocCache make_kernel_cache(KernelCase c, KernelMode mode) {
  SetAssocCache cache(kernel_bench_config(c), /*seed=*/3);
  cache.set_kernel_mode(mode);
  if (c == KernelCase::RetentionOn) cache.set_retention_period(50'000);
  return cache;
}

LegacyAosCache make_legacy_cache(KernelCase c) {
  LegacyAosCache cache(kernel_bench_config(c), /*seed=*/3);
  if (c == KernelCase::RetentionOn) cache.set_retention_period(50'000);
  return cache;
}

/// Replays `ops` through `cache` (SetAssocCache or LegacyAosCache) and
/// returns a stat checksum that any two bit-identical kernels must agree on.
template <typename Cache>
std::uint64_t replay_kernel_ops(Cache& cache,
                                const std::vector<KernelOp>& ops) {
  Cycle now = 0;
  for (const KernelOp& op : ops) {
    benchmark::DoNotOptimize(
        cache.access(op.line, op.type, Mode::User, ++now));
  }
  const CacheStats& s = cache.stats();
  return s.total_hits() + 3 * s.fills + 5 * s.store_hits +
         7 * s.evictions + 11 * s.writebacks + 13 * s.expired_blocks;
}

template <typename Cache>
void run_kernel_bench(benchmark::State& state, Cache cache,
                      const std::vector<KernelOp>& ops) {
  replay_kernel_ops(cache, ops);  // warmup: populate the array
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_kernel_ops(cache, ops));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
  state.SetLabel(cache.kernel_name());
}

void BM_AccessKernel(benchmark::State& state, KernelCase c) {
  const std::vector<KernelOp> ops = make_kernel_ops(c, 1 << 18);
  switch (state.range(0)) {
    case 0:
      run_kernel_bench(state, make_kernel_cache(c, KernelMode::Fast), ops);
      break;
    case 1:
      run_kernel_bench(state, make_kernel_cache(c, KernelMode::Reference),
                       ops);
      break;
    default:
      run_kernel_bench(state, make_legacy_cache(c), ops);
      break;
  }
}

// Arg: 0 = fast kernel, 1 = reference kernel, 2 = pre-overhaul AoS replica.
#define KERNEL_BENCH(case_id)                                       \
  BENCHMARK_CAPTURE(BM_AccessKernel, case_id, KernelCase::case_id) \
      ->Arg(0)                                                      \
      ->Arg(1)                                                      \
      ->Arg(2)                                                      \
      ->Unit(benchmark::kMillisecond)
KERNEL_BENCH(HitHeavy);
KERNEL_BENCH(MissHeavy);
KERNEL_BENCH(Mixed);
KERNEL_BENCH(RetentionOn);
#undef KERNEL_BENCH

void BM_ShadowMonitor(benchmark::State& state) {
  ShadowTagMonitor m(2048, 4, 16);
  Rng rng(7);
  for (auto _ : state) {
    const Addr line = rng.below(32'768) * kLineSize;
    m.access(line, static_cast<std::uint32_t>((line / kLineSize) & 2047));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowMonitor);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_app_trace(AppId::Browser, 100'000, 42));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_EndToEndSimulation(benchmark::State& state) {
  const Trace trace = generate_app_trace(AppId::Launcher, 200'000, 42);
  const auto kind = static_cast<SchemeKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(trace, build_scheme(kind)));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel(scheme_name(kind));
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(SchemeKind::BaselineSram))
    ->Arg(static_cast<int>(SchemeKind::StaticPartMrstt))
    ->Arg(static_cast<int>(SchemeKind::DynamicStt))
    ->Unit(benchmark::kMillisecond);

void BM_TelemetryOverhead(benchmark::State& state) {
  // Arg(0): detached (no Telemetry — the no-sink fast path, one pointer
  // test per instrumentation site). Arg(1): full session attached with
  // trace-cadence sampling. The acceptance bar is <2% overhead detached.
  const Trace trace = generate_app_trace(AppId::Browser, 200'000, 42);
  const bool attached = state.range(0) != 0;
  for (auto _ : state) {
    Telemetry tel;
    SimOptions opts;
    if (attached) {
      tel.set_sample_interval(10'000);
      opts.telemetry = &tel;
    }
    benchmark::DoNotOptimize(
        simulate(trace, build_scheme(SchemeKind::DynamicStt), opts));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel(attached ? "telemetry attached" : "detached (no-sink)");
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TraceCompression(benchmark::State& state) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 42);
  const std::string path = "/tmp/mobcache_bm.mctz";
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_trace_compressed(t, path));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TraceCompression)->Unit(benchmark::kMillisecond);

void BM_TraceDecompression(benchmark::State& state) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 42);
  const std::string path = "/tmp/mobcache_bm.mctz";
  write_trace_compressed(t, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_trace_compressed(path));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TraceDecompression)->Unit(benchmark::kMillisecond);

void BM_MulticoreSimulation(benchmark::State& state) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Browser, 100'000, 42));
  traces.push_back(generate_app_trace(AppId::AudioPlayer, 100'000, 43));
  for (auto _ : state) {
    MulticoreL2Config c;
    c.cache.name = "L2";
    c.cache.size_bytes = 2ull << 20;
    c.cache.assoc = 16;
    c.cores = 2;
    MulticoreDynamicL2 l2(c);
    benchmark::DoNotOptimize(simulate_multicore(traces, l2));
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_MulticoreSimulation)->Unit(benchmark::kMillisecond);

void BM_ScenarioGeneration(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig sc;
    sc.apps = interactive_apps();
    sc.total_accesses = 100'000;
    sc.seed = 42;
    benchmark::DoNotOptimize(generate_scenario(sc));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_ScenarioGeneration)->Unit(benchmark::kMillisecond);

// ---- --kernel-report: self-timed fast-vs-reference comparison ------------

/// Best-of-`reps` wall time for replaying `ops`, plus the stat checksum
/// (identical across reps by construction — the cache is rebuilt per rep).
struct KernelTiming {
  double best_ms = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t hits = 0;
  std::uint64_t fills = 0;
};

template <typename MakeCache>
KernelTiming time_kernel(MakeCache make_cache,
                         const std::vector<KernelOp>& ops, int reps) {
  KernelTiming t;
  for (int r = 0; r < reps; ++r) {
    auto cache = make_cache();
    replay_kernel_ops(cache, ops);  // warmup pass populates the array
    cache.reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t sum = replay_kernel_ops(cache, ops);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < t.best_ms) t.best_ms = ms;
    t.checksum = sum;
    t.hits = cache.stats().total_hits();
    t.fills = cache.stats().fills;
  }
  return t;
}

/// Runs the four kernel cases under both dispatch modes, verifies the stat
/// checksums agree (a cheap in-binary equivalence gate), and writes
/// BENCH_micro.json. With --min-speedup=X, exits nonzero when the
/// fast-kernel speedup on hit_heavy or mixed falls below X.
int run_kernel_report(int argc, char** argv) {
  double min_speedup = 0.0;
  std::size_t accesses = 4u << 20;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0)
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    else if (std::strncmp(argv[i], "--accesses=", 11) == 0)
      accesses = static_cast<std::size_t>(std::strtoull(argv[i] + 11,
                                                        nullptr, 10));
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = static_cast<int>(std::strtol(argv[i] + 7, nullptr, 10));
  }

  BenchReport report("micro", bench_jobs(argc, argv));
  std::uint64_t total = 0;
  bool gate_ok = true;
  for (KernelCase c : {KernelCase::HitHeavy, KernelCase::MissHeavy,
                       KernelCase::Mixed, KernelCase::RetentionOn}) {
    const std::string name = kernel_case_name(c);
    const std::vector<KernelOp> ops = make_kernel_ops(c, accesses);
    const KernelTiming fast = time_kernel(
        [&] { return make_kernel_cache(c, KernelMode::Fast); }, ops, reps);
    const KernelTiming ref = time_kernel(
        [&] { return make_kernel_cache(c, KernelMode::Reference); }, ops,
        reps);
    const KernelTiming aos =
        time_kernel([&] { return make_legacy_cache(c); }, ops, reps);
    total += 3 * ops.size();

    if (fast.checksum != ref.checksum || fast.checksum != aos.checksum ||
        fast.hits != ref.hits || fast.hits != aos.hits ||
        fast.fills != ref.fills || fast.fills != aos.fills) {
      std::fprintf(stderr,
                   "[bench] FAIL %s: kernels diverge (checksum fast %llu, "
                   "reference %llu, aos %llu)\n",
                   name.c_str(),
                   static_cast<unsigned long long>(fast.checksum),
                   static_cast<unsigned long long>(ref.checksum),
                   static_cast<unsigned long long>(aos.checksum));
      return 1;
    }

    // Deterministic half: pure functions of the op stream.
    report.add_result(name + "/hits", static_cast<double>(fast.hits));
    report.add_result(name + "/fills", static_cast<double>(fast.fills));
    report.add_result(name + "/checksum",
                      static_cast<double>(fast.checksum));
    // Timing half: "timing/" keys get relative-tolerance treatment from
    // check_bench.py compare --rel-tol. "speedup" is fast vs. the frozen
    // pre-overhaul AoS baseline (the gated ratio); "speedup_vs_ref" is fast
    // vs. the in-tree reference kernel, which shares the SoA layout and so
    // isolates the devirtualization/feature-elision part of the win.
    const double n = static_cast<double>(ops.size());
    const double fast_mps = n / 1e3 / fast.best_ms;
    const double ref_mps = n / 1e3 / ref.best_ms;
    const double aos_mps = n / 1e3 / aos.best_ms;
    const double speedup = aos.best_ms / fast.best_ms;
    report.add_result("timing/" + name + "/fast_maccess_per_s", fast_mps);
    report.add_result("timing/" + name + "/ref_maccess_per_s", ref_mps);
    report.add_result("timing/" + name + "/aos_maccess_per_s", aos_mps);
    report.add_result("timing/" + name + "/speedup", speedup);
    report.add_result("timing/" + name + "/speedup_vs_ref",
                      ref.best_ms / fast.best_ms);
    std::printf("[bench] %-12s fast %7.1f  ref %7.1f  aos %7.1f Macc/s  "
                "speedup %.2fx (vs ref %.2fx)\n",
                name.c_str(), fast_mps, ref_mps, aos_mps, speedup,
                ref.best_ms / fast.best_ms);
    if (min_speedup > 0.0 &&
        (c == KernelCase::HitHeavy || c == KernelCase::Mixed) &&
        speedup < min_speedup) {
      std::fprintf(stderr,
                   "[bench] FAIL %s: speedup %.2fx below required %.2fx\n",
                   name.c_str(), speedup, min_speedup);
      gate_ok = false;
    }
  }
  report.set_points(total);
  if (!report.write()) return 1;
  return gate_ok ? 0 : 1;
}

// ---- --sweep-report: batched vs per-point sweep-engine comparison --------

/// One frozen lane of the sweep-gate grid: a BaselineSram geometry variant.
struct SweepLane {
  std::uint64_t size_bytes;
  std::uint32_t assoc;
};

/// The frozen 16-lane grid the sweep gate times: 4 capacities × 4 way
/// counts of the shared-SRAM baseline. Enough lanes that the amortized
/// L1 pass dominates the per-point path's cost, small enough that every
/// lane's tag state stays resident during the chunk-blocked replay.
std::vector<SweepLane> sweep_report_lanes() {
  std::vector<SweepLane> lanes;
  for (std::uint64_t kb : {256u, 512u, 1024u, 2048u})
    for (std::uint32_t assoc : {2u, 4u, 8u, 16u})
      lanes.push_back({kb << 10, assoc});
  return lanes;
}

/// Deterministic gate trace: an L1-resident hot footprint with a thin
/// L2-bound tail. The batch engine's win is amortizing the shared L1 pass,
/// so the gate measures it in the regime it exists for — interactive phases
/// where L1 absorbs ~98% of accesses (the paper's mobile workloads idle in
/// this band) and the swept L2 geometry decides the remaining traffic's
/// fate. 30% ifetches over a 128-line code set; data 97% in a 384-line hot
/// set, 2% in a 512 KB warm region (where the grid's capacities actually
/// diverge), 1% streaming cold lines.
Trace make_sweep_trace(std::uint64_t n) {
  Trace t("sweep_gate");
  std::vector<Access> v;
  v.reserve(n);
  Rng rng(0xCAFE);
  for (std::uint64_t i = 0; i < n; ++i) {
    Access a;
    if (rng.chance(0.3)) {
      a.type = AccessType::InstFetch;
      a.addr = (1ull << 32) + rng.below(128) * kLineSize;
    } else {
      if (rng.chance(0.97)) {
        a.addr = rng.below(384) * kLineSize;
      } else if (rng.chance(2.0 / 3.0)) {
        a.addr = (1ull << 33) + rng.below(8192) * kLineSize;
      } else {
        a.addr = (1ull << 34) + static_cast<Addr>(i) * kLineSize;
      }
      a.type = rng.chance(0.2) ? AccessType::Write : AccessType::Read;
    }
    v.push_back(a);
  }
  t.append(std::move(v));
  return t;
}

std::unique_ptr<L2Interface> make_sweep_lane(const SweepLane& l) {
  SchemeParams p;
  p.baseline_bytes = l.size_bytes;
  p.baseline_assoc = l.assoc;
  return build_scheme(SchemeKind::BaselineSram, p);
}

/// Times the frozen grid twice — N independent simulate() runs vs. one
/// build_demand_stream() + N-lane simulate_batch_lanes() replay — and
/// verifies the two paths produce byte-identical SimResults (via the
/// result-store record serialization, the same bytes the ExperimentRunner
/// persists). Writes BENCH_micro.json with the grid's deterministic
/// fingerprint under "results" (sweep/*, including the ShadowConfigBatch
/// estimation error against the real lanes) and the points/s ratio under
/// "timing/sweep/*". With --min-sweep-speedup=X, exits nonzero when the
/// batched path's points/s advantage falls below X — CI's sweep-gate runs
/// this at X = 5 (see .github/workflows/ci.yml for the escape hatch).
int run_sweep_report(int argc, char** argv) {
  double min_speedup = 0.0;
  std::uint64_t accesses = 400'000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-sweep-speedup=", 20) == 0)
      min_speedup = std::strtod(argv[i] + 20, nullptr);
    else if (std::strncmp(argv[i], "--accesses=", 11) == 0)
      accesses = std::strtoull(argv[i] + 11, nullptr, 10);
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = static_cast<int>(std::strtol(argv[i] + 7, nullptr, 10));
  }

  BenchReport report("micro", bench_jobs(argc, argv));
  const Trace trace = make_sweep_trace(accesses);
  const std::vector<SweepLane> grid = sweep_report_lanes();
  const std::size_t n = grid.size();
  const SimOptions opts;  // defaults are batch-eligible by construction
  if (!batch_eligible(opts)) {
    std::fprintf(stderr, "[bench] FAIL sweep: default SimOptions no longer "
                         "batch-eligible\n");
    return 1;
  }

  // Per-point path: what a sweep pays without the batch engine — one full
  // simulate() (L1 front end included) per lane. Scheme construction is
  // timed on both sides; it is part of each path's real per-point cost.
  double pp_best_ms = 0.0;
  std::vector<SimResult> pp_results;
  for (int r = 0; r < reps; ++r) {
    std::vector<SimResult> results;
    results.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    for (const SweepLane& l : grid) {
      const std::unique_ptr<L2Interface> l2 = make_sweep_lane(l);
      results.push_back(simulate(trace, *l2, opts));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < pp_best_ms) pp_best_ms = ms;
    pp_results = std::move(results);
  }

  // Batched path: one shared L1 pass, then every lane replayed from the
  // captured demand stream. The stream build is inside the timed region —
  // it is the batched path's real cost, amortized over all n lanes.
  double batch_best_ms = 0.0;
  std::vector<SimResult> batch_results;
  DemandStream stream;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    DemandStream s = build_demand_stream(trace, opts);
    std::vector<std::unique_ptr<L2Interface>> designs;
    std::vector<L2Interface*> lanes;
    designs.reserve(n);
    lanes.reserve(n);
    for (const SweepLane& l : grid) {
      designs.push_back(make_sweep_lane(l));
      lanes.push_back(designs.back().get());
    }
    std::vector<BatchLaneOutcome> outcomes =
        simulate_batch_lanes(s, lanes, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < batch_best_ms) batch_best_ms = ms;
    batch_results.clear();
    for (BatchLaneOutcome& o : outcomes) {
      if (!o.ok()) std::rethrow_exception(o.error);
      batch_results.push_back(std::move(*o.result));
    }
    stream = std::move(s);
  }

  // In-binary equivalence gate: the exact record bytes the result store
  // would persist must match lane for lane.
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string pp = result_to_record_json(pp_results[i]);
    const std::string ba = result_to_record_json(batch_results[i]);
    if (pp != ba) {
      std::fprintf(stderr,
                   "[bench] FAIL sweep lane %zu (%llu KB %u-way): batched "
                   "result diverges from per-point\n  per-point: %s\n  "
                   "batched:   %s\n",
                   i, static_cast<unsigned long long>(grid[i].size_bytes >> 10),
                   grid[i].assoc, pp.c_str(), ba.c_str());
      return 1;
    }
    const CacheStats& l2 = pp_results[i].l2;
    checksum += l2.total_hits() + 3 * l2.fills + 5 * l2.evictions +
                7 * l2.writebacks;
  }

  // Estimation seam accuracy: the auxiliary-tag ShadowConfigBatch profiles
  // every grid geometry from the same demand stream; its estimated miss
  // rates are compared against the simulated lanes they approximate.
  std::vector<ShadowGeometry> geoms;
  geoms.reserve(n);
  for (const SweepLane& l : grid) {
    geoms.push_back({static_cast<std::uint32_t>(
                         l.size_bytes / (kLineSize * l.assoc)),
                     l.assoc});
  }
  ShadowConfigBatch shadow(geoms, /*sample_shift=*/2);
  const std::vector<double> est = estimate_demand_miss_rates(stream, shadow);
  double max_err = 0.0;
  double sum_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double err = std::abs(est[i] - pp_results[i].l2.miss_rate());
    max_err = std::max(max_err, err);
    sum_err += err;
  }

  const double demand_ratio =
      stream.total_records == 0
          ? 0.0
          : static_cast<double>(stream.size()) /
                static_cast<double>(stream.total_records);
  const double pp_pps = static_cast<double>(n) * 1e3 / pp_best_ms;
  const double batch_pps = static_cast<double>(n) * 1e3 / batch_best_ms;
  const double speedup = pp_best_ms / batch_best_ms;

  report.set_points(static_cast<std::uint64_t>(n));
  report.set_sweep_batch(static_cast<unsigned>(n), /*batched=*/true);
  // Deterministic half: pure functions of the trace + grid definition.
  report.add_result("sweep/lanes", static_cast<double>(n));
  report.add_result("sweep/demand_ratio", demand_ratio);
  report.add_result("sweep/checksum", static_cast<double>(checksum));
  report.add_result("sweep/shadow_max_abs_err", max_err);
  report.add_result("sweep/shadow_mean_abs_err",
                    sum_err / static_cast<double>(n));
  // Timing half: rel-tol keys; "speedup" is the CI-gated ratio.
  report.add_result("timing/sweep/per_point_pps", pp_pps);
  report.add_result("timing/sweep/batched_pps", batch_pps);
  report.add_result("timing/sweep/speedup", speedup);
  std::printf("[bench] sweep %zu lanes  per-point %6.1f  batched %6.1f "
              "points/s  speedup %.2fx  (demand ratio %.3f, shadow max err "
              "%.4f)\n",
              n, pp_pps, batch_pps, speedup, demand_ratio, max_err);

  bool gate_ok = true;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "[bench] FAIL sweep: batched speedup %.2fx below required "
                 "%.2fx\n",
                 speedup, min_speedup);
    gate_ok = false;
  }
  if (!report.write()) return 1;
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace mobcache

int main(int argc, char** argv) {
  bool kernel_report = false;
  bool sweep_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel-report") == 0) kernel_report = true;
    if (std::strcmp(argv[i], "--sweep-report") == 0) sweep_report = true;
  }
  if (kernel_report && sweep_report) {
    std::fprintf(stderr,
                 "bench_micro: --kernel-report and --sweep-report are "
                 "mutually exclusive\n");
    return 1;
  }
  if (kernel_report) return mobcache::run_kernel_report(argc, argv);
  if (sweep_report) return mobcache::run_sweep_report(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
