/// \file bench_micro.cpp
/// google-benchmark microbenchmarks of the simulation substrate itself —
/// regression guards for the simulator's own throughput (the evaluation
/// sweeps run hundreds of millions of cache accesses).

#include <benchmark/benchmark.h>

#include "cache/set_assoc_cache.hpp"
#include "cache/shadow_monitor.hpp"
#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "obs/telemetry.hpp"
#include "sim/multicore.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_compress.hpp"
#include "workload/scenario.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

void BM_CacheHit(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = static_cast<std::uint32_t>(state.range(0));
  SetAssocCache c(cfg);
  c.access(0, AccessType::Read, Mode::User, 0);
  Cycle now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0, AccessType::Read, Mode::User, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit)->Arg(8)->Arg(16);

void BM_CacheMissStream(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = 16;
  SetAssocCache c(cfg);
  Cycle now = 0;
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.access(a, AccessType::Read, Mode::User, ++now));
    a += kLineSize;  // pure streaming: every access misses after warmup
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissStream);

void BM_CacheRandomMix(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.assoc = 16;
  cfg.repl = static_cast<ReplKind>(state.range(0));
  SetAssocCache c(cfg, 3);
  Rng rng(5);
  Cycle now = 0;
  for (auto _ : state) {
    const Addr a = rng.below(100'000) * kLineSize;
    benchmark::DoNotOptimize(c.access(
        a, rng.chance(0.3) ? AccessType::Write : AccessType::Read, Mode::User,
        ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheRandomMix)
    ->Arg(static_cast<int>(ReplKind::Lru))
    ->Arg(static_cast<int>(ReplKind::Plru))
    ->Arg(static_cast<int>(ReplKind::Srrip));

void BM_ShadowMonitor(benchmark::State& state) {
  ShadowTagMonitor m(2048, 4, 16);
  Rng rng(7);
  for (auto _ : state) {
    const Addr line = rng.below(32'768) * kLineSize;
    m.access(line, static_cast<std::uint32_t>((line / kLineSize) & 2047));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowMonitor);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_app_trace(AppId::Browser, 100'000, 42));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_EndToEndSimulation(benchmark::State& state) {
  const Trace trace = generate_app_trace(AppId::Launcher, 200'000, 42);
  const auto kind = static_cast<SchemeKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(trace, build_scheme(kind)));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel(scheme_name(kind));
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(SchemeKind::BaselineSram))
    ->Arg(static_cast<int>(SchemeKind::StaticPartMrstt))
    ->Arg(static_cast<int>(SchemeKind::DynamicStt))
    ->Unit(benchmark::kMillisecond);

void BM_TelemetryOverhead(benchmark::State& state) {
  // Arg(0): detached (no Telemetry — the no-sink fast path, one pointer
  // test per instrumentation site). Arg(1): full session attached with
  // trace-cadence sampling. The acceptance bar is <2% overhead detached.
  const Trace trace = generate_app_trace(AppId::Browser, 200'000, 42);
  const bool attached = state.range(0) != 0;
  for (auto _ : state) {
    Telemetry tel;
    SimOptions opts;
    if (attached) {
      tel.set_sample_interval(10'000);
      opts.telemetry = &tel;
    }
    benchmark::DoNotOptimize(
        simulate(trace, build_scheme(SchemeKind::DynamicStt), opts));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel(attached ? "telemetry attached" : "detached (no-sink)");
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TraceCompression(benchmark::State& state) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 42);
  const std::string path = "/tmp/mobcache_bm.mctz";
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_trace_compressed(t, path));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TraceCompression)->Unit(benchmark::kMillisecond);

void BM_TraceDecompression(benchmark::State& state) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 42);
  const std::string path = "/tmp/mobcache_bm.mctz";
  write_trace_compressed(t, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_trace_compressed(path));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TraceDecompression)->Unit(benchmark::kMillisecond);

void BM_MulticoreSimulation(benchmark::State& state) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Browser, 100'000, 42));
  traces.push_back(generate_app_trace(AppId::AudioPlayer, 100'000, 43));
  for (auto _ : state) {
    MulticoreL2Config c;
    c.cache.name = "L2";
    c.cache.size_bytes = 2ull << 20;
    c.cache.assoc = 16;
    c.cores = 2;
    MulticoreDynamicL2 l2(c);
    benchmark::DoNotOptimize(simulate_multicore(traces, l2));
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_MulticoreSimulation)->Unit(benchmark::kMillisecond);

void BM_ScenarioGeneration(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig sc;
    sc.apps = interactive_apps();
    sc.total_accesses = 100'000;
    sc.seed = 42;
    benchmark::DoNotOptimize(generate_scenario(sc));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_ScenarioGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mobcache

BENCHMARK_MAIN();
