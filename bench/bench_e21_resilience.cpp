/// \file bench_e21_resilience.cpp
/// E21 (extension) — resilience of the relaxed-retention designs. The
/// paper's energy wins come from shrinking the STT-RAM thermal stability
/// factor, which raises raw bit-error rates; this bench quantifies the cost
/// of riding that curve: error rate vs cache energy and execution time under
/// ECC + scrub repair + way-disable quarantine (docs/RELIABILITY.md).
///
/// run_fault_sweep shards its (rate × workload) grid through the runner's
/// SweepExecutor; `--jobs=N` / MOBCACHE_JOBS set the worker count. Output is
/// keyed by grid index, so every job count emits identical tables and JSON.

#include <vector>

#include "common/table.hpp"
#include "exp/bench_harness.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

void sweep_rows(SchemeKind kind, const std::vector<FaultSweepPoint>& pts,
                TablePrinter& t, JsonWriter& json) {
  for (const FaultSweepPoint& p : pts) {
    t.add_row({scheme_name(kind), format_double(p.rate, 4),
               format_double(p.norm_cache_energy, 3),
               format_double(p.norm_exec_time, 3),
               format_percent(p.avg_miss_rate), format_count(p.ecc_corrections),
               format_count(p.fault_losses), format_count(p.dirty_losses),
               format_count(p.scrub_repairs),
               format_count(p.quarantined_ways)});
    json.begin_object();
    json.key("scheme").value(scheme_name(kind));
    json.key("rate").value(p.rate);
    json.key("norm_cache_energy").value(p.norm_cache_energy);
    json.key("norm_exec_time").value(p.norm_exec_time);
    json.key("miss_rate").value(p.avg_miss_rate);
    json.key("ecc_corrections").value(p.ecc_corrections);
    json.key("fault_losses").value(p.fault_losses);
    json.key("scrub_repairs").value(p.scrub_repairs);
    json.key("quarantined_ways").value(p.quarantined_ways);
    json.end_object();
  }
}

}  // namespace

static int run_bench(int argc, char** argv) {
  const unsigned jobs = bench_jobs(argc, argv);
  BenchReport bench("e21_resilience", jobs);
  print_banner("E21", "Error rate vs energy/CPI under ECC + repair");
  const std::uint64_t len = bench_trace_len(400'000);
  ExperimentRunner runner({AppId::Browser, AppId::Game}, len, 21);
  runner.jobs = jobs;
  const std::unique_ptr<ResultStore> store = bench_result_store(argc, argv);
  runner.result_store = store.get();

  const std::vector<double> rates = {0.0, 1e-4, 1e-3, 5e-3, 2e-2};
  SchemeParams tmpl;
  tmpl.fault.ecc = EccKind::Secded;
  tmpl.fault.way_disable_threshold = 4;

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("e21_resilience");
  json.key("points");
  json.begin_array();

  TablePrinter t({"scheme", "rate", "cache E vs clean", "time vs clean",
                  "L2 miss", "corrected", "lost", "dirty lost", "scrub repair",
                  "ways out"});
  const std::vector<FaultSweepPoint> sp_pts =
      run_fault_sweep(runner, SchemeKind::StaticPartMrstt, rates, tmpl);
  const std::vector<FaultSweepPoint> dp_pts =
      run_fault_sweep(runner, SchemeKind::DynamicStt, rates, tmpl);
  sweep_rows(SchemeKind::StaticPartMrstt, sp_pts, t, json);
  sweep_rows(SchemeKind::DynamicStt, dp_pts, t, json);
  emit(t, "e21_resilience.csv");

  // Same injection stream, different protection: what each ECC tier buys.
  std::printf("\nECC scheme comparison at rate 5e-3 (SP-MRSTT)\n");
  TablePrinter e({"ecc", "cache E vs clean", "time vs clean", "L2 miss",
                  "corrected", "lost", "silent-ish scrubs", "ways out"});
  std::uint64_t ecc_points = 0;
  for (EccKind ecc : {EccKind::None, EccKind::Parity, EccKind::Secded,
                      EccKind::Dected}) {
    SchemeParams p = tmpl;
    p.fault.ecc = ecc;
    const std::vector<FaultSweepPoint> pts =
        run_fault_sweep(runner, SchemeKind::StaticPartMrstt, {5e-3}, p);
    ecc_points += pts.size();
    const FaultSweepPoint& pt = pts.front();
    e.add_row({std::string(to_string(ecc)),
               format_double(pt.norm_cache_energy, 3),
               format_double(pt.norm_exec_time, 3),
               format_percent(pt.avg_miss_rate),
               format_count(pt.ecc_corrections), format_count(pt.fault_losses),
               format_count(pt.scrub_repairs),
               format_count(pt.quarantined_ways)});
  }
  e.print();

  json.end_array();
  json.end_object();
  write_json_results(json, "e21_resilience.json");

  bench.set_points(static_cast<std::uint64_t>(sp_pts.size() + dp_pts.size()) +
                   ecc_points);
  bench.add_result("sp_mrstt_worst_energy", sp_pts.back().norm_cache_energy);
  bench.add_result("sp_mrstt_worst_time", sp_pts.back().norm_exec_time);
  bench.add_result("dp_stt_worst_energy", dp_pts.back().norm_cache_energy);
  bench.add_result("dp_stt_worst_time", dp_pts.back().norm_exec_time);
  if (store) bench.set_store_stats(store->stats());
  bench.write();

  std::printf(
      "\nReading: SECDED absorbs the low-rate regime almost for free (the "
      "corrector\nruns off the critical path except on actual corrections); "
      "past ~5e-3 the\ndetected-uncorrectable losses turn into extra DRAM "
      "refills and the energy\ncurve bends up. Way quarantine keeps the "
      "high-rate points *running* —\ncapacity degrades instead of the "
      "simulation asserting — which is the\ngraceful-degradation property "
      "the repair controller exists for.\n");
  return 0;
}

int main(int argc, char** argv) {
  return guarded_main("bench_e21_resilience", /*install_signals=*/true, argc, argv,
                      run_bench);
}
