/// \file bench_e21_resilience.cpp
/// E21 (extension) — resilience of the relaxed-retention designs. The
/// paper's energy wins come from shrinking the STT-RAM thermal stability
/// factor, which raises raw bit-error rates; this bench quantifies the cost
/// of riding that curve: error rate vs cache energy and execution time under
/// ECC + scrub repair + way-disable quarantine (docs/RELIABILITY.md).

#include <vector>

#include "common/table.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

using namespace mobcache;

namespace {

void sweep_table(ExperimentRunner& runner, SchemeKind kind,
                 const std::vector<double>& rates, const SchemeParams& tmpl,
                 TablePrinter& t) {
  for (const FaultSweepPoint& p : run_fault_sweep(runner, kind, rates, tmpl)) {
    t.add_row({scheme_name(kind), format_double(p.rate, 4),
               format_double(p.norm_cache_energy, 3),
               format_double(p.norm_exec_time, 3),
               format_percent(p.avg_miss_rate), format_count(p.ecc_corrections),
               format_count(p.fault_losses), format_count(p.dirty_losses),
               format_count(p.scrub_repairs),
               format_count(p.quarantined_ways)});
  }
}

}  // namespace

int main() {
  print_banner("E21", "Error rate vs energy/CPI under ECC + repair");
  const std::uint64_t len = bench_trace_len(400'000);
  ExperimentRunner runner({AppId::Browser, AppId::Game}, len, 21);

  const std::vector<double> rates = {0.0, 1e-4, 1e-3, 5e-3, 2e-2};
  SchemeParams tmpl;
  tmpl.fault.ecc = EccKind::Secded;
  tmpl.fault.way_disable_threshold = 4;

  TablePrinter t({"scheme", "rate", "cache E vs clean", "time vs clean",
                  "L2 miss", "corrected", "lost", "dirty lost", "scrub repair",
                  "ways out"});
  sweep_table(runner, SchemeKind::StaticPartMrstt, rates, tmpl, t);
  sweep_table(runner, SchemeKind::DynamicStt, rates, tmpl, t);
  emit(t, "e21_resilience.csv");

  // Same injection stream, different protection: what each ECC tier buys.
  std::printf("\nECC scheme comparison at rate 5e-3 (SP-MRSTT)\n");
  TablePrinter e({"ecc", "cache E vs clean", "time vs clean", "L2 miss",
                  "corrected", "lost", "silent-ish scrubs", "ways out"});
  for (EccKind ecc : {EccKind::None, EccKind::Parity, EccKind::Secded,
                      EccKind::Dected}) {
    SchemeParams p = tmpl;
    p.fault.ecc = ecc;
    const std::vector<FaultSweepPoint> pts =
        run_fault_sweep(runner, SchemeKind::StaticPartMrstt, {5e-3}, p);
    const FaultSweepPoint& pt = pts.front();
    e.add_row({std::string(to_string(ecc)),
               format_double(pt.norm_cache_energy, 3),
               format_double(pt.norm_exec_time, 3),
               format_percent(pt.avg_miss_rate),
               format_count(pt.ecc_corrections), format_count(pt.fault_losses),
               format_count(pt.scrub_repairs),
               format_count(pt.quarantined_ways)});
  }
  e.print();

  std::printf(
      "\nReading: SECDED absorbs the low-rate regime almost for free (the "
      "corrector\nruns off the critical path except on actual corrections); "
      "past ~5e-3 the\ndetected-uncorrectable losses turn into extra DRAM "
      "refills and the energy\ncurve bends up. Way quarantine keeps the "
      "high-rate points *running* —\ncapacity degrades instead of the "
      "simulation asserting — which is the\ngraceful-degradation property "
      "the repair controller exists for.\n");
  return 0;
}
