#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/partition_autosizer.hpp"
#include "core/scheme.hpp"
#include "core/shared_l2.hpp"
#include "energy/refresh.hpp"
#include "fault/fault_injector.hpp"
#include "fault/repair_controller.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

// ---- ECC decode table ----------------------------------------------------

TEST(EccModel, NoneIsAlwaysSilent) {
  EccModel m(EccKind::None);
  for (std::uint32_t bits : {1u, 2u, 3u, 8u})
    EXPECT_EQ(m.evaluate(bits), FaultReadOutcome::Silent) << bits;
  EXPECT_EQ(m.correction_latency(), 0u);
  EXPECT_EQ(m.correction_energy_nj(), 0.0);
}

TEST(EccModel, ParityDetectsOddCounts) {
  EccModel m(EccKind::Parity);
  EXPECT_EQ(m.evaluate(1), FaultReadOutcome::Lost);
  EXPECT_EQ(m.evaluate(2), FaultReadOutcome::Silent);
  EXPECT_EQ(m.evaluate(3), FaultReadOutcome::Lost);
  EXPECT_EQ(m.evaluate(4), FaultReadOutcome::Silent);
}

TEST(EccModel, SecdedCorrectsOneDetectsTwo) {
  EccModel m(EccKind::Secded);
  EXPECT_EQ(m.evaluate(1), FaultReadOutcome::Corrected);
  EXPECT_EQ(m.evaluate(2), FaultReadOutcome::Lost);
  EXPECT_EQ(m.evaluate(3), FaultReadOutcome::Silent);
  EXPECT_GT(m.correction_latency(), 0u);
  EXPECT_GT(m.correction_energy_nj(), 0.0);
}

TEST(EccModel, DectedCorrectsTwoDetectsThree) {
  EccModel m(EccKind::Dected);
  EXPECT_EQ(m.evaluate(1), FaultReadOutcome::Corrected);
  EXPECT_EQ(m.evaluate(2), FaultReadOutcome::Corrected);
  EXPECT_EQ(m.evaluate(3), FaultReadOutcome::Lost);
  EXPECT_EQ(m.evaluate(4), FaultReadOutcome::Silent);
  EXPECT_GT(m.correction_latency(), EccModel(EccKind::Secded).correction_latency());
}

TEST(EccModel, ParseRoundtrips) {
  for (EccKind k : {EccKind::None, EccKind::Parity, EccKind::Secded,
                    EccKind::Dected}) {
    const auto parsed = parse_ecc_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_ecc_kind("chipkill").has_value());
}

// ---- FaultConfig ---------------------------------------------------------

TEST(FaultConfig, DefaultAndRateZeroAreDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_FALSE(FaultConfig::from_rate(0.0).enabled());
}

TEST(FaultConfig, FromRateScalesAllMechanisms) {
  const FaultConfig f = FaultConfig::from_rate(0.01, EccKind::Dected, 5, 42);
  EXPECT_TRUE(f.enabled());
  EXPECT_DOUBLE_EQ(f.write_fault_prob, 0.01);
  EXPECT_GT(f.transient_per_mcycle, 0.0);
  EXPECT_GT(f.retention_sigma, 0.0);
  EXPECT_EQ(f.ecc, EccKind::Dected);
  EXPECT_EQ(f.way_disable_threshold, 5u);
  EXPECT_EQ(f.seed, 42u);
}

// ---- RepairController ----------------------------------------------------

TEST(RepairController, ThresholdCrossingQueuesOneQuarantine) {
  RepairController rc(8, 3);
  EXPECT_FALSE(rc.record_fault(2));
  EXPECT_FALSE(rc.record_fault(2));
  EXPECT_TRUE(rc.record_fault(2));  // third fault crosses
  EXPECT_TRUE(rc.has_pending());
  EXPECT_FALSE(rc.record_fault(2));  // past threshold: no re-queue
  EXPECT_EQ(rc.take_pending(), 2u);
  EXPECT_FALSE(rc.has_pending());
  EXPECT_EQ(rc.healthy_ways(), 7u);
  EXPECT_EQ(rc.quarantined_ways(), 1u);
  EXPECT_EQ(rc.healthy_mask() & way_bit(2), 0u);
}

TEST(RepairController, ZeroThresholdNeverQuarantines) {
  RepairController rc(4, 0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rc.record_fault(1));
  EXPECT_FALSE(rc.has_pending());
  EXPECT_EQ(rc.healthy_ways(), 4u);
}

TEST(RepairController, LastHealthyWaySurvives) {
  RepairController rc(2, 1);
  EXPECT_TRUE(rc.record_fault(0));
  rc.take_pending();
  EXPECT_EQ(rc.healthy_ways(), 1u);
  // Way 1 is the last healthy way: evidence accumulates but no quarantine.
  EXPECT_FALSE(rc.record_fault(1));
  EXPECT_FALSE(rc.record_fault(1));
  EXPECT_EQ(rc.healthy_ways(), 1u);
}

TEST(RepairController, PendingWaysCountAgainstSurvivorBudget) {
  RepairController rc(2, 1);
  EXPECT_TRUE(rc.record_fault(0));
  // Way 0 is pending (not yet drained): quarantining way 1 too would leave
  // nothing, so it must be refused even before take_pending runs.
  EXPECT_FALSE(rc.record_fault(1));
  EXPECT_EQ(rc.take_pending(), 0u);
  EXPECT_EQ(rc.healthy_ways(), 1u);
}

// ---- static-partition renegotiation --------------------------------------

TEST(PartitionAutosizer, RenegotiateAfterFaultsKeepsSetCount) {
  StaticPartitionConfig c;
  c.user = sram_segment(1024ull << 10, 8);
  c.kernel = sram_segment(256ull << 10, 8);
  const StaticPartitionConfig out =
      PartitionAutosizer::renegotiate_after_faults(c, 6, 3);
  EXPECT_EQ(out.user.assoc, 6u);
  EXPECT_EQ(out.user.size_bytes, (1024ull << 10) / 8 * 6);
  EXPECT_EQ(out.kernel.assoc, 3u);
  EXPECT_EQ(out.kernel.size_bytes, (256ull << 10) / 8 * 3);
  // Set count unchanged: bytes / (assoc * 64) identical before and after.
  EXPECT_EQ(out.user.size_bytes / out.user.assoc,
            c.user.size_bytes / c.user.assoc);
  // Degenerate inputs clamp to at least one way.
  const StaticPartitionConfig floor =
      PartitionAutosizer::renegotiate_after_faults(c, 0, 99);
  EXPECT_EQ(floor.user.assoc, 1u);
  EXPECT_EQ(floor.kernel.assoc, 8u);
}

// ---- end-to-end: bit-identity, determinism, degradation ------------------

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.records, b.records) << label;
  EXPECT_EQ(a.l2.total_accesses(), b.l2.total_accesses()) << label;
  EXPECT_EQ(a.l2.total_hits(), b.l2.total_hits()) << label;
  EXPECT_EQ(a.l2.writebacks, b.l2.writebacks) << label;
  EXPECT_EQ(a.l2.expired_blocks, b.l2.expired_blocks) << label;
  EXPECT_EQ(a.l2.refreshes, b.l2.refreshes) << label;
  EXPECT_EQ(a.l2_quarantined_ways, b.l2_quarantined_ways) << label;
  // Energy must match to the bit, not to a tolerance: the fault layer is
  // required to leave the arithmetic stream untouched when disabled and to
  // be fully seed-deterministic when enabled.
  EXPECT_EQ(a.l2_energy.leakage_nj, b.l2_energy.leakage_nj) << label;
  EXPECT_EQ(a.l2_energy.read_nj, b.l2_energy.read_nj) << label;
  EXPECT_EQ(a.l2_energy.write_nj, b.l2_energy.write_nj) << label;
  EXPECT_EQ(a.l2_energy.refresh_nj, b.l2_energy.refresh_nj) << label;
  EXPECT_EQ(a.l2_energy.ecc_nj, b.l2_energy.ecc_nj) << label;
  EXPECT_EQ(a.l2_energy.dram_nj, b.l2_energy.dram_nj) << label;
  EXPECT_EQ(a.l2_avg_enabled_bytes, b.l2_avg_enabled_bytes) << label;
}

TEST(FaultEndToEnd, RateZeroIsBitIdenticalToDefaultBuild) {
  const Trace trace = generate_app_trace(AppId::Browser, 120'000, 7);
  SchemeParams zero;
  zero.fault = FaultConfig::from_rate(0.0, EccKind::Dected, 4, 99);
  for (SchemeKind k : headline_schemes()) {
    const SimResult plain = simulate(trace, build_scheme(k));
    const SimResult zeroed = simulate(trace, build_scheme(k, zero));
    expect_identical(plain, zeroed, scheme_name(k));
  }
}

TEST(FaultEndToEnd, RateZeroBuildsNoInjector) {
  SchemeParams zero;
  zero.fault = FaultConfig::from_rate(0.0);
  const auto l2 = build_scheme(SchemeKind::SharedStt, zero);
  const auto* shared = dynamic_cast<const SharedL2*>(l2.get());
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->fault_injector(), nullptr);
}

/// Serializes the fault/quarantine event stream for exact comparison.
std::string run_and_log_events(SchemeKind kind, const SchemeParams& params,
                               const Trace& trace, SimResult* out) {
  Telemetry tel;
  std::ostringstream log;
  tel.hub().on_fault([&log](const FaultEvent& e) {
    log << "F " << e.cycle << ' ' << e.line << ' '
        << static_cast<int>(e.outcome) << ' ' << e.dirty_lost << '\n';
  });
  tel.hub().on_way_quarantine([&log](const WayQuarantineEvent& e) {
    log << "Q " << e.cycle << ' ' << e.segment << ' ' << e.way << ' '
        << e.healthy_ways << '\n';
  });
  SimOptions opts;
  opts.telemetry = &tel;
  *out = simulate(trace, build_scheme(kind, params), opts);
  return log.str();
}

TEST(FaultEndToEnd, SameSeedSameConfigIsFullyDeterministic) {
  const Trace trace = generate_app_trace(AppId::Game, 150'000, 11);
  SchemeParams p;
  p.fault = FaultConfig::from_rate(0.01, EccKind::Secded, 3, 77);
  for (SchemeKind k : {SchemeKind::SharedStt, SchemeKind::StaticPartMrstt,
                       SchemeKind::DynamicStt}) {
    SimResult a, b;
    const std::string log_a = run_and_log_events(k, p, trace, &a);
    const std::string log_b = run_and_log_events(k, p, trace, &b);
    expect_identical(a, b, scheme_name(k));
    EXPECT_EQ(log_a, log_b) << scheme_name(k);
    EXPECT_FALSE(log_a.empty()) << scheme_name(k)
                                << ": rate 0.01 should produce events";
  }
}

TEST(FaultEndToEnd, DifferentSeedsDiverge) {
  const Trace trace = generate_app_trace(AppId::Game, 120'000, 11);
  SchemeParams a, b;
  a.fault = FaultConfig::from_rate(0.01, EccKind::Secded, 0, 1);
  b.fault = a.fault;
  b.fault.seed = 2;
  SimResult ra, rb;
  const std::string log_a =
      run_and_log_events(SchemeKind::SharedStt, a, trace, &ra);
  const std::string log_b =
      run_and_log_events(SchemeKind::SharedStt, b, trace, &rb);
  EXPECT_NE(log_a, log_b);
}

TEST(FaultEndToEnd, HighRateDegradesGracefullyWithQuarantine) {
  const Trace trace = generate_app_trace(AppId::Game, 150'000, 13);
  SchemeParams p;
  p.fault = FaultConfig::from_rate(0.05, EccKind::Secded, 2, 5);
  for (SchemeKind k : {SchemeKind::SharedStt, SchemeKind::StaticPartMrstt,
                       SchemeKind::DynamicStt}) {
    const SimResult r = simulate(trace, build_scheme(k, p));
    EXPECT_GT(r.l2_quarantined_ways, 0u) << scheme_name(k);
    EXPECT_GT(r.l2.write_faults, 0u) << scheme_name(k);
    EXPECT_GT(r.l2.ecc_corrections, 0u) << scheme_name(k);
    EXPECT_LE(r.l2_miss_rate(), 1.0) << scheme_name(k);
    EXPECT_GT(r.cycles, 0u) << scheme_name(k);
    // Way gating shows up in the powered-capacity integral.
    EXPECT_LT(r.l2_avg_enabled_bytes,
              static_cast<double>(r.l2_capacity_bytes) + 1.0)
        << scheme_name(k);
  }
}

TEST(FaultEndToEnd, EccTiersTradeLossesForCorrections) {
  const Trace trace = generate_app_trace(AppId::Browser, 120'000, 17);
  SchemeParams none, secded;
  none.fault = FaultConfig::from_rate(0.02, EccKind::None, 0, 3);
  secded.fault = FaultConfig::from_rate(0.02, EccKind::Secded, 0, 3);
  const SimResult rn =
      simulate(trace, build_scheme(SchemeKind::SharedStt, none));
  const SimResult rs =
      simulate(trace, build_scheme(SchemeKind::SharedStt, secded));
  // Unprotected arrays corrupt silently; SECDED converts the bulk of those
  // into corrections (plus a few detected losses).
  EXPECT_GT(rn.l2.silent_faults, 0u);
  EXPECT_EQ(rn.l2.ecc_corrections, 0u);
  EXPECT_GT(rs.l2.ecc_corrections, 0u);
  EXPECT_GT(rs.l2_energy.ecc_nj, 0.0);
  EXPECT_EQ(rn.l2_energy.ecc_nj, 0.0);
  EXPECT_LT(rs.l2.silent_faults, rn.l2.silent_faults);
}

TEST(FaultScrub, ScrubPassRepairsCorrectableBlocksAndDropsLostOnes) {
  CacheConfig cc;
  cc.name = "stt";
  cc.size_bytes = 16ull << 10;
  cc.assoc = 4;
  SetAssocCache cache(cc);
  cache.set_retention_period(1000);

  FaultConfig fc;
  fc.write_fault_prob = 0.5;  // every other fill leaves bad bits
  fc.ecc = EccKind::Secded;
  fc.seed = 9;
  FaultInjector inj(fc, cache);

  RefreshController ctl(RefreshPolicy::ScrubAll, 500);
  TechParams tech = make_sttram(cc.size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;
  for (std::uint64_t i = 0; i < 64; ++i)
    cache.access(i * kLineSize, AccessType::Write, Mode::User, 0);
  ASSERT_GT(cache.stats().write_faults, 0u);

  const auto r = ctl.tick(cache, 600, tech, acct);
  // SECDED heals 1-bit blocks in place; >=2-bit blocks are detected and
  // dropped (no rewrite charged), the rest are refreshed faithfully.
  EXPECT_GT(r.repaired, 0u);
  EXPECT_EQ(cache.stats().scrub_repairs, r.repaired);
  EXPECT_EQ(r.refreshed + r.fault_lost, 64u);
  // (The rewrite itself is a stochastic STT-RAM write and may leave fresh
  // faults — a scrub heals what it finds, it does not promise perfection.)
}

}  // namespace
}  // namespace mobcache
