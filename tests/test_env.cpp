#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mobcache {
namespace {

/// RAII env var: every test leaves the environment as it found it, so the
/// MOBCACHE_* knobs never leak between tests (several suites read them).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_) {
      setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

constexpr const char* kVar = "MOBCACHE_TEST_ENV_U64";

TEST(EnvU64, UnsetReturnsNullopt) {
  ScopedEnv e(kVar, nullptr);
  EXPECT_FALSE(env_u64(kVar).has_value());
}

TEST(EnvU64, EmptyReturnsNullopt) {
  ScopedEnv e(kVar, "");
  EXPECT_FALSE(env_u64(kVar).has_value());
}

TEST(EnvU64, ParsesPlainDecimal) {
  ScopedEnv e(kVar, "12345");
  const auto v = env_u64(kVar);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 12345u);
}

TEST(EnvU64, ParsesExtremes) {
  {
    ScopedEnv e(kVar, "0");
    EXPECT_EQ(env_u64(kVar).value(), 0u);
  }
  {
    ScopedEnv e(kVar, "18446744073709551615");
    EXPECT_EQ(env_u64(kVar).value(), UINT64_MAX);
  }
}

TEST(EnvU64, RejectsGarbage) {
  ScopedEnv e(kVar, "abc");
  EXPECT_THROW(env_u64(kVar), EnvError);
}

TEST(EnvU64, RejectsTrailingJunk) {
  // The strtoul-era parsers read "12abc" as 12; that silent misread is the
  // bug this parser exists to kill.
  ScopedEnv e(kVar, "12abc");
  EXPECT_THROW(env_u64(kVar), EnvError);
}

TEST(EnvU64, RejectsSigns) {
  {
    ScopedEnv e(kVar, "-3");
    EXPECT_THROW(env_u64(kVar), EnvError);
  }
  {
    ScopedEnv e(kVar, "+3");
    EXPECT_THROW(env_u64(kVar), EnvError);
  }
}

TEST(EnvU64, RejectsOverflow) {
  ScopedEnv e(kVar, "18446744073709551616");  // UINT64_MAX + 1
  EXPECT_THROW(env_u64(kVar), EnvError);
}

TEST(EnvU64, EnforcesRange) {
  ScopedEnv e(kVar, "100");
  EXPECT_EQ(env_u64(kVar, 1, 100).value(), 100u);
  EXPECT_EQ(env_u64(kVar, 100, 100).value(), 100u);
  EXPECT_THROW(env_u64(kVar, 101, 200), EnvError);
  EXPECT_THROW(env_u64(kVar, 1, 99), EnvError);
}

TEST(EnvU64, ErrorMessageIsSelfContained) {
  ScopedEnv e(kVar, "zzz");
  try {
    env_u64(kVar, 1, 64);
    FAIL() << "expected EnvError";
  } catch (const EnvError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find(kVar), std::string::npos) << msg;
    EXPECT_NE(msg.find("zzz"), std::string::npos) << msg;
  }
}

TEST(EnvU64Or, FallbackOnlyWhenUnset) {
  {
    ScopedEnv e(kVar, nullptr);
    EXPECT_EQ(env_u64_or(kVar, 77), 77u);
  }
  {
    ScopedEnv e(kVar, "5");
    EXPECT_EQ(env_u64_or(kVar, 77), 5u);
  }
  {
    // A set-but-invalid value must throw, not fall back: falling back would
    // silently run the wrong experiment.
    ScopedEnv e(kVar, "nope");
    EXPECT_THROW(env_u64_or(kVar, 77), EnvError);
  }
}

TEST(EnvString, UnsetAndEmptyAreNullopt) {
  {
    ScopedEnv e(kVar, nullptr);
    EXPECT_FALSE(env_string(kVar).has_value());
  }
  {
    ScopedEnv e(kVar, "");
    EXPECT_FALSE(env_string(kVar).has_value());
  }
  {
    ScopedEnv e(kVar, "/some/path");
    EXPECT_EQ(env_string(kVar).value(), "/some/path");
  }
}

}  // namespace
}  // namespace mobcache
