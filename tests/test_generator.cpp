/// \file test_generator.cpp
/// Behavioral tests of the workload generator beyond the suite-level bands:
/// access patterns must actually produce the locality profiles the app
/// models claim, because every paper result rests on them.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "workload/generator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

/// Builds a single-phase app spec for pattern isolation tests.
AppSpec one_phase(AccessPattern pat, std::uint64_t ws_bytes,
                  double zipf_alpha = 0.95) {
  AppSpec a;
  a.id = AppId::Launcher;
  a.name = "synthetic";
  PhaseSpec p;
  p.name = "only";
  p.pattern = pat;
  p.ws_bytes = ws_bytes;
  p.data_zipf_alpha = zipf_alpha;
  p.mean_phase_len = 1'000'000;  // never leave the phase
  p.services = {};               // pure user stream
  a.phases = {p};
  a.sched_tick_interval = 1ull << 60;  // no timer
  return a;
}

std::vector<Addr> data_lines(const Trace& t) {
  std::vector<Addr> out;
  for (const Access& a : t.accesses()) {
    if (!a.is_ifetch() && a.mode == Mode::User) out.push_back(line_addr(a.addr));
  }
  return out;
}

Trace gen(const AppSpec& spec, std::uint64_t n) {
  GeneratorConfig cfg;
  cfg.target_accesses = n;
  cfg.seed = 77;
  return generate_trace(spec, cfg);
}

TEST(Generator, StreamPatternCoversWorkingSetSequentially) {
  const Trace t = gen(one_phase(AccessPattern::Stream, 256ull << 10), 60'000);
  const auto lines = data_lines(t);
  ASSERT_GT(lines.size(), 1000u);
  // Consecutive data accesses advance by exactly one line (mod wraparound).
  std::size_t sequential = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    sequential += lines[i] == lines[i - 1] + kLineSize;
  }
  EXPECT_GT(static_cast<double>(sequential) /
                static_cast<double>(lines.size()),
            0.95);
}

TEST(Generator, StridePatternHasFixedStride) {
  AppSpec spec = one_phase(AccessPattern::Stride, 256ull << 10);
  spec.phases[0].stride_lines = 8;
  const Trace t = gen(spec, 60'000);
  const auto lines = data_lines(t);
  std::size_t strided = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    strided += lines[i] == lines[i - 1] + 8 * kLineSize;
  }
  EXPECT_GT(static_cast<double>(strided) / static_cast<double>(lines.size()),
            0.9);
}

TEST(Generator, ZipfPatternConcentratesOnHotLines) {
  const Trace t =
      gen(one_phase(AccessPattern::ZipfReuse, 1ull << 20, 1.0), 80'000);
  const auto lines = data_lines(t);
  std::unordered_map<Addr, std::uint64_t> counts;
  for (Addr l : lines) ++counts[l];
  // Top-1% of distinct lines must absorb a large share of the accesses.
  std::vector<std::uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [l, n] : counts) freq.push_back(n);
  std::sort(freq.rbegin(), freq.rend());
  const std::size_t top = std::max<std::size_t>(1, freq.size() / 100);
  std::uint64_t hot = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    total += freq[i];
    if (i < top) hot += freq[i];
  }
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.15);
}

TEST(Generator, PointerChaseHasNoSpatialLocality) {
  const Trace t =
      gen(one_phase(AccessPattern::PointerChase, 1ull << 20), 60'000);
  const auto lines = data_lines(t);
  std::size_t adjacent = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto delta = lines[i] > lines[i - 1] ? lines[i] - lines[i - 1]
                                               : lines[i - 1] - lines[i];
    adjacent += delta <= 2 * kLineSize;
  }
  EXPECT_LT(static_cast<double>(adjacent) / static_cast<double>(lines.size()),
            0.05);
}

TEST(Generator, PatternsStayInsideWorkingSet) {
  for (AccessPattern pat :
       {AccessPattern::ZipfReuse, AccessPattern::Stream, AccessPattern::Stride,
        AccessPattern::PointerChase}) {
    const std::uint64_t ws = 128ull << 10;
    const Trace t = gen(one_phase(pat, ws), 30'000);
    std::unordered_set<Addr> distinct;
    for (Addr l : data_lines(t)) distinct.insert(l);
    EXPECT_LE(distinct.size(), ws / kLineSize)
        << "pattern " << static_cast<int>(pat) << " escaped its arena";
  }
}

TEST(Generator, PhaseTransitionsFollowMatrix) {
  // A two-phase app whose matrix forbids self-loops on phase 0 must
  // alternate arenas; verify both phase arenas are actually visited.
  AppSpec spec = one_phase(AccessPattern::Stream, 64ull << 10);
  PhaseSpec second = spec.phases[0];
  second.name = "second";
  spec.phases.push_back(second);
  spec.phases[0].mean_phase_len = 5'000;
  spec.phases[1].mean_phase_len = 5'000;
  spec.transitions = {{0.0, 1.0}, {1.0, 0.0}};  // strict alternation

  const Trace t = gen(spec, 100'000);
  // Phase arenas are 4 GB apart (kPhaseDataSlice); count both.
  std::unordered_set<std::uint64_t> arenas;
  for (const Access& a : t.accesses()) {
    if (!a.is_ifetch() && a.mode == Mode::User)
      arenas.insert(a.addr >> 32);
  }
  EXPECT_GE(arenas.size(), 2u);
}

TEST(Generator, SchedTickFiresAtConfiguredInterval) {
  AppSpec spec = one_phase(AccessPattern::ZipfReuse, 64ull << 10);
  spec.sched_tick_interval = 10'000;
  const Trace t = gen(spec, 100'000);
  const TraceSummary s = t.summarize();
  // Roughly one tick (~45 records) per 10k user records.
  EXPECT_GT(s.by_mode[1], 5u * 30u);
  EXPECT_LT(s.by_mode[1], 15u * 80u);
}

TEST(Generator, IfetchRatioMatchesSpec) {
  AppSpec spec = one_phase(AccessPattern::ZipfReuse, 64ull << 10);
  spec.phases[0].ifetch_per_data = 3.0;
  const Trace t = gen(spec, 60'000);
  std::uint64_t ifetch = 0;
  std::uint64_t data = 0;
  for (const Access& a : t.accesses()) {
    if (a.mode != Mode::User) continue;
    (a.is_ifetch() ? ifetch : data)++;
  }
  EXPECT_NEAR(static_cast<double>(ifetch) / static_cast<double>(data), 3.0,
              0.1);
}

TEST(Generator, StoreFractionMatchesSpec) {
  AppSpec spec = one_phase(AccessPattern::Stream, 128ull << 10);
  spec.phases[0].store_fraction = 0.4;
  const Trace t = gen(spec, 60'000);
  std::uint64_t writes = 0;
  std::uint64_t data = 0;
  for (const Access& a : t.accesses()) {
    if (a.mode != Mode::User || a.is_ifetch()) continue;
    ++data;
    writes += a.is_write();
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(data), 0.4,
              0.03);
}

}  // namespace
}  // namespace mobcache
