#include "core/scheme.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

TEST(Scheme, HeadlineListBaselineFirstAndComplete) {
  const auto list = headline_schemes();
  ASSERT_EQ(list.size(), static_cast<std::size_t>(kSchemeCount));
  EXPECT_EQ(list.front(), SchemeKind::BaselineSram);
  // No duplicates.
  for (std::size_t i = 0; i < list.size(); ++i)
    for (std::size_t j = i + 1; j < list.size(); ++j)
      EXPECT_NE(list[i], list[j]);
}

TEST(Scheme, EveryKindBuilds) {
  for (SchemeKind k : headline_schemes()) {
    auto l2 = build_scheme(k);
    ASSERT_NE(l2, nullptr) << scheme_name(k);
    EXPECT_FALSE(l2->describe().empty());
  }
}

TEST(Scheme, BaselineGeometry) {
  auto l2 = build_scheme(SchemeKind::BaselineSram);
  EXPECT_EQ(l2->capacity_bytes(), 2ull << 20);
  EXPECT_NE(l2->describe().find("SRAM"), std::string::npos);
}

TEST(Scheme, ShrunkGeometry) {
  auto l2 = build_scheme(SchemeKind::ShrunkSram);
  EXPECT_EQ(l2->capacity_bytes(), 512ull << 10);
}

TEST(Scheme, StaticPartitionCapacityIsSumOfDefaults) {
  SchemeParams p;
  auto l2 = build_scheme(SchemeKind::StaticPartSram, p);
  EXPECT_EQ(l2->capacity_bytes(), p.sp_user_bytes + p.sp_kernel_bytes);
  // The default static partition is well under the 2 MB baseline — that is
  // the whole point of the technique.
  EXPECT_LT(l2->capacity_bytes(), 2ull << 20);
}

TEST(Scheme, MrsttUsesConfiguredRetentions) {
  SchemeParams p;
  p.mrstt_user = RetentionClass::Hi;
  p.mrstt_kernel = RetentionClass::Mid;
  auto l2 = build_scheme(SchemeKind::StaticPartMrstt, p);
  const std::string d = l2->describe();
  EXPECT_NE(d.find("HI"), std::string::npos);
  EXPECT_NE(d.find("MID"), std::string::npos);
}

TEST(Scheme, DynamicVariantsDifferOnlyInTech) {
  auto sram = build_scheme(SchemeKind::DynamicSram);
  auto stt = build_scheme(SchemeKind::DynamicStt);
  EXPECT_EQ(sram->capacity_bytes(), stt->capacity_bytes());
  EXPECT_NE(sram->describe().find("SRAM"), std::string::npos);
  EXPECT_NE(stt->describe().find("STT-RAM"), std::string::npos);
}

TEST(Scheme, ParamsPlumbedToDynamic) {
  SchemeParams p;
  p.dp_monitor = MonitorKind::HillClimb;
  auto l2 = build_scheme(SchemeKind::DynamicStt, p);
  EXPECT_NE(l2->describe().find("hill-climb"), std::string::npos);
}

TEST(Scheme, ReplacementPolicyPlumbedEverywhere) {
  SchemeParams p;
  p.repl = ReplKind::Srrip;
  for (SchemeKind k : headline_schemes()) {
    auto l2 = build_scheme(k, p);
    ASSERT_NE(l2, nullptr) << scheme_name(k);
    // Smoke: run a few accesses to prove the policy was constructible and
    // victim selection works under SRRIP.
    for (std::uint64_t i = 0; i < 64; ++i) {
      l2->access(i * kLineSize, AccessType::Read, Mode::User, i * 10);
      l2->access(kKernelSpaceBase + i * kLineSize, AccessType::Read,
                 Mode::Kernel, i * 10 + 5);
    }
    EXPECT_EQ(l2->aggregate_stats().total_accesses(), 128u) << scheme_name(k);
  }
}

TEST(Scheme, NamesAreUnique) {
  for (SchemeKind a : headline_schemes()) {
    for (SchemeKind b : headline_schemes()) {
      if (a != b) {
        EXPECT_STRNE(scheme_name(a), scheme_name(b));
      }
    }
  }
}

}  // namespace
}  // namespace mobcache
