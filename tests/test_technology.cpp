#include "energy/technology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mobcache {
namespace {

constexpr std::uint64_t kMb = 1ull << 20;

TEST(Technology, SramLeakageLinearInCapacity) {
  const TechParams two = make_sram(2 * kMb);
  const TechParams one = make_sram(1 * kMb);
  EXPECT_NEAR(two.leakage_mw, 2.0 * one.leakage_mw, 1e-9);
  // 2 MB at the documented density.
  EXPECT_NEAR(two.leakage_mw, tech_constants::kSramLeakMwPerKb * 2048, 1e-9);
}

TEST(Technology, DynamicEnergySqrtScaling) {
  const TechParams two = make_sram(2 * kMb);
  const TechParams half = make_sram(512ull << 10);
  EXPECT_NEAR(half.read_energy_nj / two.read_energy_nj, 0.5, 1e-9);
  EXPECT_NEAR(half.write_energy_nj / two.write_energy_nj, 0.5, 1e-9);
}

TEST(Technology, LatencyIndependentOfSize) {
  // Interconnect-dominated: shrinking the array must not speed it up.
  EXPECT_EQ(make_sram(2 * kMb).read_latency, make_sram(256ull << 10).read_latency);
}

TEST(Technology, SttLeakageMuchLowerThanSram) {
  const TechParams sram = make_sram(2 * kMb);
  const TechParams stt = make_sttram(2 * kMb, RetentionClass::Hi);
  EXPECT_NEAR(stt.leakage_mw / sram.leakage_mw,
              tech_constants::kSttLeakFactor, 1e-9);
}

TEST(Technology, SttReadComparableToSram) {
  const TechParams sram = make_sram(2 * kMb);
  const TechParams stt = make_sttram(2 * kMb, RetentionClass::Lo);
  EXPECT_NEAR(stt.read_energy_nj / sram.read_energy_nj,
              tech_constants::kSttReadFactor, 1e-9);
}

TEST(Technology, WriteEnergyOrderedByRetention) {
  const TechParams lo = make_sttram(2 * kMb, RetentionClass::Lo);
  const TechParams mid = make_sttram(2 * kMb, RetentionClass::Mid);
  const TechParams hi = make_sttram(2 * kMb, RetentionClass::Hi);
  EXPECT_LT(lo.write_energy_nj, mid.write_energy_nj);
  EXPECT_LT(mid.write_energy_nj, hi.write_energy_nj);
  EXPECT_NEAR(hi.write_energy_nj, tech_constants::kSttWriteNjHi2Mb, 1e-9);
  // The quadratic law gives a large Hi:Lo ratio (the multi-retention win).
  EXPECT_GT(hi.write_energy_nj / lo.write_energy_nj, 2.5);
}

TEST(Technology, WriteLatencyOrderedByRetention) {
  const TechParams lo = make_sttram(2 * kMb, RetentionClass::Lo);
  const TechParams mid = make_sttram(2 * kMb, RetentionClass::Mid);
  const TechParams hi = make_sttram(2 * kMb, RetentionClass::Hi);
  EXPECT_LT(lo.write_latency, mid.write_latency);
  EXPECT_LT(mid.write_latency, hi.write_latency);
  // Writes are always slower than reads for STT-RAM.
  EXPECT_GT(lo.write_latency, lo.read_latency);
}

TEST(Technology, SttWriteCostlierThanSramWrite) {
  const TechParams sram = make_sram(2 * kMb);
  const TechParams lo = make_sttram(2 * kMb, RetentionClass::Lo);
  EXPECT_GT(lo.write_energy_nj, sram.write_energy_nj);
}

TEST(Technology, RetentionPeriods) {
  EXPECT_EQ(retention_cycles_of(RetentionClass::Lo),
            tech_constants::kRetentionLoCycles);
  EXPECT_EQ(retention_cycles_of(RetentionClass::Mid),
            tech_constants::kRetentionMidCycles);
  EXPECT_EQ(retention_cycles_of(RetentionClass::Hi), 0u);
  EXPECT_EQ(make_sttram(kMb, RetentionClass::Lo).retention_cycles,
            tech_constants::kRetentionLoCycles);
  EXPECT_EQ(make_sram(kMb).retention_cycles, 0u);
}

TEST(Technology, DeltaConsistentWithRetentionExponential) {
  // t_ret = t0 e^Δ with t0 = 1 ns; check the classes are self-consistent to
  // within the rounding used for the published class values.
  const double lo_pred = std::exp(delta_of(RetentionClass::Lo));     // ns
  EXPECT_NEAR(std::log10(lo_pred), std::log10(1e7), 0.35);            // ~10 ms
  const double mid_pred = std::exp(delta_of(RetentionClass::Mid));
  EXPECT_NEAR(std::log10(mid_pred), std::log10(1e9), 0.35);           // ~1 s
}

TEST(Technology, LeakageEnergyArithmetic) {
  TechParams t;
  t.leakage_mw = 100.0;  // 100 mW → 100 pJ / cycle → 0.1 nJ / cycle
  EXPECT_NEAR(t.leakage_nj(1000), 100.0, 1e-9);
  EXPECT_NEAR(t.leakage_nj(1000, 0.5), 50.0, 1e-9);
  EXPECT_EQ(t.leakage_nj(0), 0.0);
}

TEST(Technology, ToStringCoverage) {
  EXPECT_EQ(to_string(TechKind::Sram), "SRAM");
  EXPECT_EQ(to_string(TechKind::SttRam), "STT-RAM");
  EXPECT_EQ(to_string(RetentionClass::Lo), "LO(10ms)");
  EXPECT_EQ(to_string(RetentionClass::Mid), "MID(1s)");
  EXPECT_EQ(to_string(RetentionClass::Hi), "HI(10yr)");
}

}  // namespace
}  // namespace mobcache
