#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "core/scheme.hpp"
#include "core/shared_l2.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

CacheConfig cfg() {
  CacheConfig c;
  c.size_bytes = 16ull << 10;
  c.assoc = 4;
  return c;
}

TEST(Wear, FillsAndStoresAndScrubsCount) {
  SetAssocCache c(cfg());
  c.set_retention_period(1000);
  c.access(0, AccessType::Read, Mode::User, 1);    // fill: 1 write
  c.access(0, AccessType::Write, Mode::User, 2);   // store hit: 1 write
  c.refresh_block(c.set_index(0), 0, 3);           // scrub: 1 write
  const WearSummary w = c.wear_summary();
  EXPECT_EQ(w.total_writes, 3u);
  EXPECT_EQ(w.max_writes, 3u);
}

TEST(Wear, ReadsDoNotWear) {
  SetAssocCache c(cfg());
  c.access(0, AccessType::Read, Mode::User, 1);
  for (int i = 0; i < 100; ++i)
    c.access(0, AccessType::Read, Mode::User, 10 + i);
  EXPECT_EQ(c.wear_summary().total_writes, 1u);  // the fill only
}

TEST(Wear, ConservationAgainstCounters) {
  SetAssocCache c(cfg());
  
  // Drive a mixed stream; total wear == fills + prefetch fills + store hits
  // + refreshes.
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    const Addr line = (i * 37 % 1024) * kLineSize;
    const auto type = i % 3 == 0 ? AccessType::Write : AccessType::Read;
    c.access(line, type, Mode::User, i * 10, full_way_mask(4), i % 17 == 0);
  }
  const CacheStats& s = c.stats();
  EXPECT_EQ(c.wear_summary().total_writes,
            s.fills + s.prefetch_fills + s.store_hits + s.refreshes);
}

TEST(Wear, SmallSegmentConcentratesWrites) {
  // Identical traffic through a large vs a small array: the small array's
  // per-line wear must be higher.
  const Trace t = generate_app_trace(AppId::Game, 150'000, 7);

  SharedL2Config big;
  big.cache.name = "L2";
  big.cache.size_bytes = 2ull << 20;
  big.cache.assoc = 16;
  SharedL2 l2_big(big);
  simulate(t, l2_big);

  SharedL2Config small = big;
  small.cache.size_bytes = 256ull << 10;
  small.cache.assoc = 8;
  SharedL2 l2_small(small);
  simulate(t, l2_small);

  EXPECT_GT(l2_small.array().wear_summary().mean_writes,
            2.0 * l2_big.array().wear_summary().mean_writes);
}

TEST(Wear, SummaryOrderingInvariants) {
  const Trace t = generate_app_trace(AppId::Email, 100'000, 3);
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 1ull << 20;
  c.cache.assoc = 16;
  SharedL2 l2(c);
  simulate(t, l2);
  const WearSummary w = l2.array().wear_summary();
  EXPECT_GE(w.max_writes, w.p99_writes);
  EXPECT_GE(static_cast<double>(w.p99_writes) + 1.0, w.mean_writes);
  EXPECT_GE(w.imbalance(), 1.0);
}

TEST(WearLevel, RotationRemapsSets) {
  SetAssocCache c(cfg());
  c.access(0, AccessType::Read, Mode::User, 1);
  const std::uint32_t before = c.set_index(0);
  const std::uint64_t dirty = c.rotate_index(0x15);
  EXPECT_EQ(dirty, 0u);  // the only block was clean
  EXPECT_NE(c.set_index(0), before);
  EXPECT_FALSE(c.contains(0, 10)) << "rotation flushes the array";
}

TEST(WearLevel, RotationFlushReportsDirty) {
  SetAssocCache c(cfg());
  c.access(0, AccessType::Write, Mode::User, 1);
  c.access(kLineSize, AccessType::Write, Mode::User, 2);
  EXPECT_EQ(c.rotate_index(3), 2u);
}

TEST(WearLevel, RotationFlattensSkewedWear) {
  // Hammer a single hot set. Without rotation, one set's lines take all
  // the wear; with rotation the same traffic spreads across the array.
  auto hammer = [](SharedL2& l2) {
    Cycle now = 0;
    const std::uint64_t sets = l2.array().num_sets();
    for (std::uint64_t i = 0; i < 60'000; ++i) {
      // 8 lines, all mapping to set 0 initially: constant conflict churn.
      l2.access((i % 8) * sets * kLineSize, AccessType::Write, Mode::User,
                now);
      now += 10;
    }
  };

  SharedL2Config plain;
  plain.cache.name = "L2";
  plain.cache.size_bytes = 64ull << 10;
  plain.cache.assoc = 4;
  SharedL2 fixed(plain);
  hammer(fixed);

  SharedL2Config rotating = plain;
  rotating.wear_rotate_writes = 4'000;
  SharedL2 leveled(rotating);
  hammer(leveled);

  EXPECT_GT(leveled.rotations(), 5u);
  const WearSummary wf = fixed.array().wear_summary();
  const WearSummary wl = leveled.array().wear_summary();
  EXPECT_LT(wl.max_writes, wf.max_writes / 4)
      << "rotation must spread the hot set's wear";
}

TEST(WearLevel, OffByDefault) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 64ull << 10;
  c.cache.assoc = 4;
  SharedL2 l2(c);
  for (std::uint64_t i = 0; i < 20'000; ++i)
    l2.access((i % 64) * kLineSize, AccessType::Write, Mode::User, i * 10);
  EXPECT_EQ(l2.rotations(), 0u);
}

TEST(WearLevel, CorrectnessUnderRotation) {
  // Frequent rotations must only cost misses, never wrong data/state.
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 32ull << 10;
  c.cache.assoc = 4;
  c.wear_rotate_writes = 500;
  SharedL2 l2(c);
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    l2.access((i * 13 % 2048) * kLineSize,
              i % 4 == 0 ? AccessType::Write : AccessType::Read, Mode::User,
              now);
    now += 10;
  }
  const CacheStats s = l2.aggregate_stats();
  EXPECT_EQ(s.total_hits() + s.total_misses(), s.total_accesses());
  EXPECT_GT(l2.rotations(), 10u);
}

}  // namespace
}  // namespace mobcache
