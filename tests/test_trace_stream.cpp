// Streaming pipeline identity suite: the chunked producers/consumers must
// reproduce the materialized path bit for bit — same record sequences, same
// demand streams, same SimResults for every scheme. This is the contract
// the E22 fleet sweep (constant-memory sessions) stands on.

#include <gtest/gtest.h>

#include <vector>

#include "core/scheme.hpp"
#include "exp/result_store.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_stream.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace mobcache {
namespace {

// Drains a stream and checks the concatenated chunks equal `expect`
// field-by-field (memcmp would compare padding bytes). Also bounds every
// chunk: generators may overshoot the soft cap by one emission unit (a user
// burst or kernel episode), never more.
void expect_stream_matches(TraceStream& stream, const Trace& expect) {
  constexpr std::size_t kSlack = 16384;
  std::size_t pos = 0;
  for (std::span<const Access> c = stream.next_chunk(); !c.empty();
       c = stream.next_chunk()) {
    EXPECT_LE(c.size(), kStreamChunkRecords + kSlack);
    for (const Access& a : c) {
      ASSERT_LT(pos, expect.size());
      const Access& e = expect[pos];
      ASSERT_EQ(a.addr, e.addr) << "record " << pos;
      ASSERT_EQ(a.thread, e.thread) << "record " << pos;
      ASSERT_EQ(a.type, e.type) << "record " << pos;
      ASSERT_EQ(a.mode, e.mode) << "record " << pos;
      ++pos;
    }
  }
  EXPECT_EQ(pos, expect.size());
  EXPECT_TRUE(stream.next_chunk().empty());  // exhausted stays exhausted
}

GeneratorConfig small_gen_cfg() {
  GeneratorConfig gc;
  gc.target_accesses = 180'000;  // several chunks
  gc.seed = 77;
  return gc;
}

ScenarioConfig small_scenario_cfg() {
  ScenarioConfig sc;
  sc.apps = {AppId::Messenger, AppId::Browser, AppId::AudioPlayer};
  sc.total_accesses = 150'000;
  sc.slice_mean = 9'000;
  sc.seed = 1234;
  return sc;
}

TEST(TraceStream, AppStreamMatchesGenerateTrace) {
  const AppSpec spec = make_app(AppId::Browser);
  const GeneratorConfig gc = small_gen_cfg();
  const Trace batch = generate_trace(spec, gc);
  EXPECT_GE(batch.size(), gc.target_accesses);

  AppTraceStream stream(spec, gc);
  EXPECT_EQ(stream.name(), batch.name());
  expect_stream_matches(stream, batch);
}

TEST(TraceStream, AppStreamResetReplaysIdentically) {
  const AppSpec spec = make_app(AppId::Game);
  GeneratorConfig gc = small_gen_cfg();
  gc.target_accesses = 70'000;
  AppTraceStream stream(spec, gc);
  const Trace first = materialize(stream);
  stream.reset();
  expect_stream_matches(stream, first);
}

TEST(TraceStream, ScenarioStreamMatchesGenerateScenario) {
  const ScenarioConfig sc = small_scenario_cfg();
  const Trace batch = generate_scenario(sc);
  EXPECT_GE(batch.size(), sc.total_accesses);
  EXPECT_TRUE(batch.modes_consistent_with_addresses());

  ScenarioStream stream(sc);
  EXPECT_EQ(stream.name(), batch.name());
  expect_stream_matches(stream, batch);
}

TEST(TraceStream, ScenarioStreamEmptyConfigs) {
  ScenarioConfig none;
  none.apps = {};
  ScenarioStream s1(none);
  EXPECT_TRUE(s1.next_chunk().empty());

  ScenarioConfig zero;
  zero.apps = {AppId::Launcher};
  zero.total_accesses = 0;
  ScenarioStream s2(zero);
  EXPECT_TRUE(s2.next_chunk().empty());
}

TEST(TraceStream, MaterializedStreamRoundTrips) {
  const Trace t = generate_trace(make_app(AppId::Email), small_gen_cfg());
  MaterializedTraceStream stream(t);
  expect_stream_matches(stream, t);
  stream.reset();
  const Trace again = materialize(stream);
  EXPECT_EQ(again.size(), t.size());
  EXPECT_EQ(again.name(), t.name());
}

TEST(TraceStream, CountersTrackChunksAndReuse) {
  reset_stream_counters();
  const AppSpec spec = make_app(AppId::Social);
  const GeneratorConfig gc = small_gen_cfg();
  AppTraceStream stream(spec, gc);
  std::uint64_t chunks = 0;
  while (!stream.next_chunk().empty()) ++chunks;
  EXPECT_GE(chunks, 2u);  // target spans several chunks
  const StreamCounters c = stream_counters();
  EXPECT_EQ(c.chunks_generated, chunks);
  EXPECT_GE(c.chunk_reuse_hits, chunks - 1);  // one buffer, reused per refill
  EXPECT_GT(c.high_water_chunk_bytes, 0u);
  // The high-water mark is the constant-memory witness: one chunk buffer
  // (its vector may round capacity up to the next power of two after an
  // overshoot), never the whole session.
  EXPECT_LE(c.high_water_chunk_bytes,
            4 * kStreamChunkRecords * sizeof(Access));
  reset_stream_counters();
  EXPECT_EQ(stream_counters().chunks_generated, 0u);
}

// The headline identity: simulate(stream) == simulate(materialized trace),
// byte for byte, for every scheme — pinned through the result store's
// exact-round-trip serialization, like the batch engine's equivalence suite.
TEST(TraceStream, StreamingSimulateByteIdenticalOnAllSchemes) {
  ScenarioConfig sc = small_scenario_cfg();
  sc.total_accesses = 90'000;
  const Trace batch = generate_scenario(sc);
  const SimOptions opts;

  for (int k = 0; k < kSchemeCount; ++k) {
    const auto kind = static_cast<SchemeKind>(k);
    const auto ref_l2 = build_scheme(kind);
    const SimResult expect = simulate(batch, *ref_l2, opts);

    ScenarioStream stream(sc);
    const auto stream_l2 = build_scheme(kind);
    const SimResult got = simulate(stream, *stream_l2, opts);

    EXPECT_EQ(result_to_record_json(got), result_to_record_json(expect))
        << "scheme " << scheme_name(kind);
  }
}

TEST(TraceStream, StreamingDemandStreamMatchesMaterialized) {
  ScenarioConfig sc = small_scenario_cfg();
  sc.total_accesses = 80'000;
  const Trace batch = generate_scenario(sc);
  const SimOptions opts;
  ASSERT_TRUE(batch_eligible(opts));

  const DemandStream a = build_demand_stream(batch, opts);
  ScenarioStream stream(sc);
  const DemandStream b = build_demand_stream(stream, opts);

  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.record, b.record);
  EXPECT_EQ(a.line, b.line);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.wb_line, b.wb_line);
  EXPECT_EQ(a.l1_dynamic_nj, b.l1_dynamic_nj);
  EXPECT_EQ(a.l1i.total_accesses(), b.l1i.total_accesses());
  EXPECT_EQ(a.l1i.total_misses(), b.l1i.total_misses());
  EXPECT_EQ(a.l1d.total_accesses(), b.l1d.total_accesses());
  EXPECT_EQ(a.l1d.total_misses(), b.l1d.total_misses());
}

// Streaming lanes compose with the batch engine: a demand stream captured
// from a TraceStream replays into lanes byte-identical to per-point
// simulate() over the materialized trace.
TEST(TraceStream, StreamingDemandStreamFeedsBatchLanes) {
  ScenarioConfig sc = small_scenario_cfg();
  sc.total_accesses = 60'000;
  const Trace batch = generate_scenario(sc);
  const SimOptions opts;

  ScenarioStream stream(sc);
  const DemandStream ds = build_demand_stream(stream, opts);

  const std::vector<SchemeKind> kinds = {
      SchemeKind::BaselineSram, SchemeKind::DynamicStt,
      SchemeKind::StaticPartMrstt};
  std::vector<std::unique_ptr<L2Interface>> owners;
  std::vector<L2Interface*> lanes;
  for (SchemeKind k : kinds) {
    owners.push_back(build_scheme(k));
    lanes.push_back(owners.back().get());
  }
  const auto outcomes = simulate_batch_lanes(ds, lanes, opts);
  ASSERT_EQ(outcomes.size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    const SimResult expect = simulate(batch, *build_scheme(kinds[i]), opts);
    EXPECT_EQ(result_to_record_json(*outcomes[i].result),
              result_to_record_json(expect))
        << "lane " << scheme_name(kinds[i]);
  }
}

}  // namespace
}  // namespace mobcache
