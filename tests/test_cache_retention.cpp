#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"

namespace mobcache {
namespace {

CacheConfig cfg() {
  CacheConfig c;
  c.name = "stt";
  c.size_bytes = 16ull << 10;
  c.assoc = 4;
  return c;
}

TEST(Retention, ZeroPeriodNeverExpires) {
  SetAssocCache c(cfg());
  c.set_retention_period(0);
  c.access(0, AccessType::Read, Mode::User, 1);
  EXPECT_TRUE(c.contains(0, 1'000'000'000'000ull));
  auto [total, dirty] = c.expire_sweep(1'000'000'000'000ull);
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(dirty, 0u);
}

TEST(Retention, BlockExpiresAfterPeriod) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Read, Mode::User, 10);
  EXPECT_TRUE(c.contains(0, 109));
  EXPECT_FALSE(c.contains(0, 110));  // deadline = fill + period

  auto r = c.access(0, AccessType::Read, Mode::User, 200);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.target_expired);
  EXPECT_FALSE(r.expired_was_dirty);
  EXPECT_EQ(c.stats().expired_blocks, 1u);
}

TEST(Retention, DirtyExpiryFlagged) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Write, Mode::User, 10);
  auto r = c.access(0, AccessType::Read, Mode::User, 500);
  EXPECT_TRUE(r.target_expired);
  EXPECT_TRUE(r.expired_was_dirty);
  EXPECT_EQ(c.stats().expired_dirty, 1u);
}

TEST(Retention, StoreHitExtendsDeadline) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Read, Mode::User, 10);   // deadline 110
  c.access(0, AccessType::Write, Mode::User, 100);  // deadline 200
  EXPECT_TRUE(c.contains(0, 150));
  EXPECT_TRUE(c.contains(0, 199));
  EXPECT_FALSE(c.contains(0, 200));
}

TEST(Retention, ReadHitDoesNotExtendDeadline) {
  // STT-RAM reads are non-destructive but also non-restorative: retention
  // counts from the last *write*.
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Read, Mode::User, 10);  // deadline 110
  c.access(0, AccessType::Read, Mode::User, 90);
  EXPECT_FALSE(c.contains(0, 110));
}

TEST(Retention, RefreshBlockExtendsDeadlineAndCounts) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Read, Mode::User, 10);
  const std::uint32_t set = c.set_index(0);
  c.refresh_block(set, 0, 100);  // new deadline 200
  EXPECT_TRUE(c.contains(0, 150));
  EXPECT_FALSE(c.contains(0, 200));
  EXPECT_EQ(c.stats().refreshes, 1u);
}

TEST(Retention, RefreshInvalidBlockIsNoop) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.refresh_block(0, 0, 5);
  EXPECT_EQ(c.stats().refreshes, 0u);
}

TEST(Retention, ExpireSweepInvalidatesAndCounts) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  c.access(0, AccessType::Write, Mode::User, 0);                    // dirty
  c.access(kLineSize, AccessType::Read, Mode::User, 0);             // clean
  c.access(2 * kLineSize, AccessType::Read, Mode::User, 80);        // young

  auto [total, dirty] = c.expire_sweep(150);
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(dirty, 1u);
  EXPECT_EQ(c.occupancy(full_way_mask(4), 150), 1u);
  EXPECT_TRUE(c.contains(2 * kLineSize, 150));
}

TEST(Retention, ExpiredWayIsReusedByFill) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  const std::uint32_t sets = c.num_sets();
  // Fill all 4 ways of set 0; let them expire; a new fill must reuse an
  // expired way without evicting anything live.
  for (std::uint64_t i = 0; i < 4; ++i)
    c.access(i * sets * kLineSize, AccessType::Read, Mode::User, 1);
  auto r = c.access(4 * sets * kLineSize, AccessType::Read, Mode::User, 500);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.filled);
  EXPECT_FALSE(r.evicted_valid) << "expired blocks are not live victims";
}

TEST(Retention, EvictionObserverSeesExpiry) {
  SetAssocCache c(cfg());
  c.set_retention_period(100);
  int events = 0;
  c.set_eviction_observer([&](const EvictionEvent&) { ++events; });
  c.access(0, AccessType::Read, Mode::User, 0);
  c.expire_sweep(1000);
  EXPECT_EQ(events, 1);
}

}  // namespace
}  // namespace mobcache
