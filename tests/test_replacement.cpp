#include "cache/replacement.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"

namespace mobcache {
namespace {

constexpr std::uint32_t kSets = 4;
constexpr std::uint32_t kAssoc = 8;

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto p = make_replacement(ReplKind::Lru, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  // Touch everything except way 3; way 3 becomes the victim.
  for (std::uint32_t w = 0; w < kAssoc; ++w) {
    if (w != 3) p->on_hit(0, w);
  }
  EXPECT_EQ(p->choose_victim(0, full_way_mask(kAssoc)), 3u);
}

TEST(Lru, HitRefreshesRecency) {
  auto p = make_replacement(ReplKind::Lru, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  p->on_hit(0, 0);  // way 0 is now MRU; way 1 is LRU
  EXPECT_EQ(p->choose_victim(0, full_way_mask(kAssoc)), 1u);
}

TEST(Lru, RespectsCandidateMask) {
  auto p = make_replacement(ReplKind::Lru, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  // Ways 0..3 excluded; oldest among {4..7} is 4.
  EXPECT_EQ(p->choose_victim(0, way_range_mask(4, 4)), 4u);
}

TEST(Lru, SetsAreIndependent) {
  auto p = make_replacement(ReplKind::Lru, kSets, kAssoc);
  p->on_fill(0, 5);
  p->on_fill(1, 2);
  p->on_hit(1, 2);
  // Set 0's state is untouched by set 1 activity: way 5 is the only
  // stamped way in set 0, so among {5, 6} the victim is the never-used 6.
  EXPECT_EQ(p->choose_victim(0, way_range_mask(5, 2)), 6u);
}

TEST(Fifo, IgnoresHits) {
  auto p = make_replacement(ReplKind::Fifo, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  // Hitting way 0 must not save it: FIFO evicts insertion order.
  p->on_hit(0, 0);
  EXPECT_EQ(p->choose_victim(0, full_way_mask(kAssoc)), 0u);
}

TEST(Random, AlwaysWithinMaskAndCoversAll) {
  auto p = make_replacement(ReplKind::Random, kSets, kAssoc, /*seed=*/99);
  const WayMask mask = 0b1010'0110;
  WayMask seen = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v = p->choose_victim(0, mask);
    ASSERT_NE((mask >> v) & 1, 0u) << "victim outside mask";
    seen |= 1ull << v;
  }
  EXPECT_EQ(seen, mask) << "random policy should eventually pick every way";
}

TEST(Plru, TouchedWayIsNotImmediateVictim) {
  auto p = make_replacement(ReplKind::Plru, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) {
    p->on_fill(0, w);
    EXPECT_NE(p->choose_victim(0, full_way_mask(kAssoc)), w)
        << "just-filled way must be protected";
  }
}

TEST(Plru, MaskForcesOtherSubtree) {
  auto p = make_replacement(ReplKind::Plru, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  // Restrict to the left half only — the victim must come from it even if
  // the tree points right.
  const std::uint32_t v = p->choose_victim(0, way_range_mask(0, 4));
  EXPECT_LT(v, 4u);
}

TEST(Srrip, HitPromotesBlock) {
  auto p = make_replacement(ReplKind::Srrip, kSets, kAssoc);
  for (std::uint32_t w = 0; w < kAssoc; ++w) p->on_fill(0, w);
  p->on_hit(0, 2);  // way 2 now has RRPV 0, everyone else 2
  // Aging happens uniformly, so way 2 must outlive the others: evict 7
  // times, way 2 must never be chosen.
  for (int i = 0; i < 7; ++i) {
    const std::uint32_t v =
        p->choose_victim(0, full_way_mask(kAssoc) & ~(1ull << 2));
    EXPECT_NE(v, 2u);
    p->on_fill(0, v);
  }
}

TEST(Srrip, InvalidateResetsRrpv) {
  auto p = make_replacement(ReplKind::Srrip, kSets, 4);
  for (std::uint32_t w = 0; w < 4; ++w) {
    p->on_fill(0, w);
    p->on_hit(0, w);  // all RRPV 0
  }
  p->on_invalidate(0, 1);  // way 1 back to max RRPV
  EXPECT_EQ(p->choose_victim(0, full_way_mask(4)), 1u);
}

class PolicyMaskProperty
    : public ::testing::TestWithParam<std::tuple<ReplKind, std::uint32_t>> {};

TEST_P(PolicyMaskProperty, VictimAlwaysInsideMask) {
  const auto [kind, assoc] = GetParam();
  auto p = make_replacement(kind, 16, assoc, /*seed=*/7);
  Rng rng(1234);
  for (int step = 0; step < 3000; ++step) {
    const auto set = static_cast<std::uint32_t>(rng.below(16));
    const auto way = static_cast<std::uint32_t>(rng.below(assoc));
    switch (rng.below(3)) {
      case 0: p->on_fill(set, way); break;
      case 1: p->on_hit(set, way); break;
      default: {
        WayMask mask = rng.next_u64() & full_way_mask(assoc);
        if (mask == 0) mask = 1;
        const std::uint32_t v = p->choose_victim(set, mask);
        ASSERT_LT(v, assoc);
        ASSERT_NE((mask >> v) & 1, 0u)
            << to_string(kind) << " picked way " << v << " outside mask";
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyMaskProperty,
    ::testing::Combine(::testing::Values(ReplKind::Lru, ReplKind::Fifo,
                                         ReplKind::Random, ReplKind::Plru,
                                         ReplKind::Srrip),
                       ::testing::Values(2u, 4u, 8u, 16u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_a" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mobcache
